"""Telemetry publishes once per request, not once per pool attempt.

``record_cover_result`` is documented as publish-on-accept: retried pool
attempts ship trace records per attempt, but exactly one accepted answer
per request reaches the metrics registry. These tests pin both halves —
the pool delivers one outcome per request even under injected retries,
and the worker processes never leak publishes into the parent registry.
"""

from __future__ import annotations

import pytest

from repro.obs.metrics import get_registry, record_cover_result
from repro.resilience import faults
from repro.resilience.faults import FaultConfig
from repro.resilience.pool import PoolConfig, SolveRequest, SolverPool


@pytest.fixture(autouse=True)
def clean_registry():
    get_registry().reset()
    yield
    get_registry().reset()


def _solves_total(snapshot) -> int:
    metric = snapshot.get("scwsc_solves_total")
    if metric is None:
        return 0
    return sum(series["value"] for series in metric["values"])


class TestPublishOncePerRequest:
    def test_retried_request_publishes_single_solve(self, random_system):
        """First attempt SIGKILLed, second accepted: one outcome, and the
        batch-style publish increments scwsc_solves_total by exactly 1."""
        system = random_system(n_elements=20, n_sets=14, seed=31)
        with faults.chaos(FaultConfig(worker_kill=1.0, fault_limit=1, seed=7)):
            with SolverPool(
                PoolConfig(workers=1, request_timeout=30)
            ) as pool:
                outcome = pool.solve(
                    SolveRequest(system=system, k=4, s_hat=0.8)
                )
        attempts = [a["outcome"] for a in outcome.provenance["attempts"]]
        assert len(attempts) >= 2  # the retry actually happened
        assert outcome.result is not None

        # Nothing in the pool/worker path published into this process.
        assert _solves_total(get_registry().snapshot()) == 0

        # The accepted outcome is published once (the batch CLI path).
        record_cover_result(outcome.result)
        assert _solves_total(get_registry().snapshot()) == 1

    def test_batch_counts_requests_not_attempts(self, random_system):
        system = random_system(n_elements=18, n_sets=12, seed=32)
        requests = [
            SolveRequest(system=system, k=4, s_hat=0.8, tag=f"r{i}")
            for i in range(3)
        ]
        with faults.chaos(
            FaultConfig(worker_kill=0.7, fault_limit=2, seed=99)
        ):
            with SolverPool(
                PoolConfig(workers=2, request_timeout=30, max_requeues=3)
            ) as pool:
                outcomes = pool.run(requests)

        assert len(outcomes) == len(requests)
        assert len({o.tag for o in outcomes}) == len(requests)
        total_attempts = sum(
            len(o.provenance["attempts"]) for o in outcomes
        )
        assert total_attempts >= len(requests)

        for outcome in outcomes:
            if outcome.result is not None:
                record_cover_result(outcome.result)
        published = _solves_total(get_registry().snapshot())
        assert published == sum(
            1 for o in outcomes if o.result is not None
        )
        assert published == len(requests)  # every request got an answer
        # Even when the storm forced extra attempts, the publish count
        # tracks requests, never attempts.
        assert published <= total_attempts

    def test_worker_rss_rides_only_the_accepted_attempt(self, random_system):
        """The supervisor attaches the worker's peak RSS to the attempt it
        accepted — retried (killed) attempts never report one."""
        system = random_system(n_elements=20, n_sets=14, seed=33)
        with faults.chaos(FaultConfig(worker_kill=1.0, fault_limit=1, seed=7)):
            with SolverPool(
                PoolConfig(workers=1, request_timeout=30)
            ) as pool:
                outcome = pool.solve(
                    SolveRequest(system=system, k=4, s_hat=0.8)
                )
        attempts = outcome.provenance["attempts"]
        assert attempts[0]["outcome"] == "killed"
        assert "peak_rss_bytes" not in attempts[0]
        if outcome.status == "ok":
            assert attempts[-1].get("peak_rss_bytes", 0) > 0
