"""Observability of the pool: breaker transition hooks and the event
stream a traced pool run writes (worker lifecycle + replayed solver
spans keyed by request id)."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import trace as obs_trace
from repro.obs.schema import validate_record
from repro.resilience.pool.breaker import BreakerBoard, CircuitBreaker
from repro.resilience.pool.protocol import SolveRequest
from repro.resilience.pool.supervisor import PoolConfig, SolverPool


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(autouse=True)
def no_leaked_tracer():
    obs_trace.shutdown()
    yield
    obs_trace.shutdown()


def _records(buffer: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in buffer.getvalue().splitlines()]


def _events(records: list[dict], name: str | None = None) -> list[dict]:
    events = [r for r in records if r["type"] == "event"]
    if name is not None:
        events = [r for r in events if r["name"] == name]
    return events


class TestTransitionHook:
    def test_full_cycle_ordering(self):
        clock = FakeClock()
        transitions: list[tuple[str, str, str]] = []
        breaker = CircuitBreaker(
            "exact",
            failure_threshold=2,
            cooldown=10.0,
            clock=clock,
            on_transition=lambda *args: transitions.append(args),
        )
        breaker.record_failure()
        assert transitions == []  # below threshold: no state change
        breaker.record_failure()
        clock.advance(10.5)
        assert breaker.state == "half_open"  # lazy advance fires the hook
        breaker.record_success()
        assert transitions == [
            ("exact", "closed", "open"),
            ("exact", "open", "half_open"),
            ("exact", "half_open", "closed"),
        ]

    def test_probe_failure_reopens(self):
        clock = FakeClock()
        transitions: list[tuple[str, str, str]] = []
        breaker = CircuitBreaker(
            "lp", failure_threshold=1, cooldown=5.0, clock=clock,
            on_transition=lambda *args: transitions.append(args),
        )
        breaker.record_failure()
        clock.advance(5.1)
        assert breaker.allow()  # the half-open probe
        breaker.record_failure()
        assert transitions == [
            ("lp", "closed", "open"),
            ("lp", "open", "half_open"),
            ("lp", "half_open", "open"),
        ]

    def test_no_hook_without_state_change(self):
        transitions: list[tuple[str, str, str]] = []
        breaker = CircuitBreaker(
            "x", on_transition=lambda *args: transitions.append(args)
        )
        breaker.record_success()  # closed -> closed
        assert transitions == []

    def test_board_passes_hook_to_lazy_breakers(self):
        transitions: list[tuple[str, str, str]] = []
        board = BreakerBoard(
            failure_threshold=1,
            on_transition=lambda *args: transitions.append(args),
        )
        board.record_failure("exact")
        assert transitions == [("exact", "closed", "open")]


class TestPoolBreakerEvents:
    def test_transitions_become_trace_events_and_match_snapshot(self):
        buffer = io.StringIO()
        obs_trace.configure(buffer)
        pool = SolverPool(PoolConfig(breaker_threshold=2))
        try:
            pool.board.record_failure("exact")
            pool.board.record_failure("exact")
            pool.board.record_success("exact")
        finally:
            pool.close()
        obs_trace.shutdown()
        events = _events(_records(buffer), "breaker_transition")
        assert [
            (e["attrs"]["breaker"], e["attrs"]["old"], e["attrs"]["new"])
            for e in events
        ] == [
            ("exact", "closed", "open"),
            ("exact", "open", "closed"),
        ]
        snapshot = pool.breaker_snapshot()
        assert snapshot["exact"]["state"] == "closed"
        assert snapshot["exact"]["times_opened"] == len(
            [e for e in events if e["attrs"]["new"] == "open"]
        )

    def test_breaker_snapshot_counts(self):
        pool = SolverPool(PoolConfig(breaker_threshold=3))
        try:
            pool.board.record_failure("cwsc")
            pool.board.record_success("cwsc")
        finally:
            pool.close()
        snapshot = pool.breaker_snapshot()
        assert snapshot["cwsc"]["total_failures"] == 1
        assert snapshot["cwsc"]["total_successes"] == 1
        assert snapshot["cwsc"]["state"] == "closed"


class TestPoolEventStream:
    def test_traced_run_interleaves_lifecycle_and_worker_spans(
        self, random_system
    ):
        system = random_system(n_elements=10, n_sets=6, seed=3)
        buffer = io.StringIO()
        obs_trace.configure(buffer)
        with SolverPool(PoolConfig(workers=1)) as pool:
            outcome = pool.solve(
                SolveRequest(
                    system=system, k=4, s_hat=0.8, solver="cwsc",
                    timeout=30.0, tag="cell",
                )
            )
        obs_trace.shutdown()
        assert outcome.status == "ok"
        records = _records(buffer)
        for record in records:
            assert validate_record(record) == []

        for name in ("worker_spawn", "worker_ready", "dispatch",
                     "request_complete"):
            assert _events(records, name), f"missing {name} event"

        dispatch = _events(records, "dispatch")[0]
        assert dispatch["attrs"]["request_id"] == 0
        assert dispatch["attrs"]["solver"] == "cwsc"
        complete = _events(records, "request_complete")[0]
        assert complete["attrs"]["status"] == "ok"
        assert complete["t"] >= dispatch["t"]

        worker_spans = [
            r for r in records
            if r["type"] == "span"
            and r.get("attrs", {}).get("request_id") == 0
        ]
        assert worker_spans, "worker solver spans were not replayed"
        solve_span = next(
            r for r in worker_spans if r["name"] == "solve"
        )
        assert solve_span["attrs"]["worker"] == 0
        assert str(solve_span["span_id"]).startswith("r0a1.")

    def test_untraced_run_emits_nothing(self, random_system):
        system = random_system(n_elements=8, n_sets=5, seed=4)
        with SolverPool(PoolConfig(workers=1)) as pool:
            outcome = pool.solve(
                SolveRequest(
                    system=system, k=3, s_hat=0.5, solver="cwsc",
                    timeout=30.0,
                )
            )
        assert outcome.status == "ok"
        assert not obs_trace.enabled()
