"""SolverPool integration: real workers, determinism, failure handling."""

from __future__ import annotations

import pytest

from repro.core.cwsc import cwsc
from repro.core.validate import verify_result
from repro.errors import ValidationError
from repro.resilience import faults, resilient_solve
from repro.resilience.faults import FaultConfig
from repro.resilience.pool import (
    PoolConfig,
    SolveRequest,
    SolverPool,
    run_isolated,
)


class TestPoolConfig:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValidationError):
            PoolConfig(workers=0)
        with pytest.raises(ValidationError):
            PoolConfig(max_requeues=-1)
        with pytest.raises(ValidationError):
            PoolConfig(grace=-1.0)
        with pytest.raises(ValidationError):
            PoolConfig(memory_limit_mb=0)


class TestPoolMatchesSequential:
    def test_direct_solver_cells_match_and_stream(self, random_system):
        systems = [random_system(seed=seed) for seed in (1, 2, 3, 4)]
        requests = [
            SolveRequest(
                system=system, k=4, s_hat=0.8, solver="cwsc",
                tag=f"cell-{i}",
            )
            for i, system in enumerate(systems)
        ]
        streamed = []
        with SolverPool(PoolConfig(workers=2, request_timeout=60)) as pool:
            results = pool.run(
                requests, on_result=lambda outcome: streamed.append(outcome)
            )
        # Output order is request order; streaming saw every result.
        assert [r.tag for r in results] == [f"cell-{i}" for i in range(4)]
        assert sorted(r.tag for r in streamed) == sorted(
            r.tag for r in results
        )
        for i, (system, outcome) in enumerate(zip(systems, results)):
            expected = cwsc(system, 4, 0.8)
            assert outcome.status == "ok"
            assert outcome.result.set_ids == expected.set_ids
            assert outcome.result.total_cost == expected.total_cost
            # Labels are the parent's own objects, not shims.
            assert outcome.result.labels == expected.labels

    def test_run_isolated_matches_inline_chain(self, entities_system):
        inline = resilient_solve(entities_system, 3, 0.5, timeout=30)
        isolated = run_isolated(entities_system, 3, 0.5, timeout=30)
        assert isolated.set_ids == inline.set_ids
        assert isolated.total_cost == inline.total_cost
        assert isolated.params["resilience"]["stage"] == (
            inline.params["resilience"]["stage"]
        )
        assert isolated.params["pool"]["attempts"][0]["outcome"] == "ok"

    def test_pool_reuse_across_run_calls(self, random_system):
        system = random_system(seed=9)
        request = SolveRequest(system=system, k=3, s_hat=0.7, solver="cwsc")
        with SolverPool(PoolConfig(workers=1, request_timeout=60)) as pool:
            first = pool.solve(request)
            second = pool.solve(
                SolveRequest(system=system, k=3, s_hat=0.7, solver="cwsc")
            )
        assert first.result.set_ids == second.result.set_ids


class TestPoolFailureHandling:
    def test_unknown_solver_degrades_to_fallback(self, random_system):
        system = random_system(seed=5)
        with SolverPool(
            PoolConfig(workers=1, request_timeout=30, max_requeues=1)
        ) as pool:
            outcome = pool.solve(
                SolveRequest(system=system, k=3, s_hat=0.5, solver="nope")
            )
        assert outcome.status == "fallback"
        assert outcome.result.feasible
        assert outcome.result.algorithm == "universal"
        assert "ProtocolError" in outcome.provenance["failure"]
        assert verify_result(system, outcome.result, k=3, s_hat=0.5) == []

    def test_validation_error_is_final_not_retried(self, random_system):
        system = random_system(seed=6)
        with SolverPool(PoolConfig(workers=1, request_timeout=30)) as pool:
            outcome = pool.solve(
                SolveRequest(system=system, k=0, s_hat=0.5, solver="cwsc")
            )
        assert outcome.status == "failed"
        assert len(outcome.provenance["attempts"]) == 1
        assert outcome.provenance["attempts"][0]["outcome"] == (
            "error:ValidationError"
        )

    def test_closed_pool_rejects_work(self, random_system):
        pool = SolverPool(PoolConfig(workers=1))
        pool.close()
        with pytest.raises(ValidationError, match="closed"):
            pool.run(
                [SolveRequest(system=random_system(), k=2, s_hat=0.5)]
            )


class TestRequeueDeterminism:
    def test_killed_worker_requeue_reproduces_clean_results(
        self, random_system
    ):
        """Fixed seed + worker kills => the exact same final grid."""
        systems = [random_system(seed=seed) for seed in (11, 12, 13)]

        def grid(config: FaultConfig | None):
            requests = [
                SolveRequest(
                    system=system, k=4, s_hat=0.8, solver="cwsc",
                    tag=f"cell-{i}",
                )
                for i, system in enumerate(systems)
            ]
            pool_config = PoolConfig(
                workers=2, request_timeout=60, max_requeues=3
            )
            if config is None:
                with SolverPool(pool_config) as pool:
                    return pool.run(requests)
            with faults.chaos(config):
                with SolverPool(pool_config) as pool:
                    return pool.run(requests)

        clean = grid(None)
        stormy = grid(FaultConfig(worker_kill=1.0, fault_limit=2, seed=42))
        assert sum(
            attempt["outcome"] == "killed"
            for outcome in stormy
            for attempt in outcome.provenance["attempts"]
        ) == 2
        for before, after in zip(clean, stormy):
            assert after.status == "ok"
            assert after.result.set_ids == before.result.set_ids
            assert after.result.total_cost == before.result.total_cost
            assert after.result.covered == before.result.covered
