"""The chaos layer itself: config validation, env parsing, determinism."""

from __future__ import annotations

import pytest

from repro.errors import TransientSolverError, ValidationError
from repro.resilience import FaultConfig, FaultInjector, chaos
from repro.resilience import faults


@pytest.fixture(autouse=True)
def _no_leftover_injector():
    """Never leak an injector into (or out of) a test."""
    previous = faults._ACTIVE
    faults.uninstall()
    yield
    faults._ACTIVE = previous


class TestFaultConfig:
    def test_defaults_are_all_off(self):
        config = FaultConfig()
        assert config.lp_failure == 0.0
        assert config.slow_iteration == 0.0
        assert config.corrupt_marginal == 0.0

    @pytest.mark.parametrize("name", ["lp_failure", "slow_iteration", "corrupt_marginal"])
    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_rates_must_be_probabilities(self, name, rate):
        with pytest.raises(ValidationError):
            FaultConfig(**{name: rate})

    def test_negative_slow_seconds_rejected(self):
        with pytest.raises(ValidationError):
            FaultConfig(slow_seconds=-1.0)


class TestServerFacingFaults:
    """The client-side faults `scwsc serve` chaos tests drive."""

    def test_defaults_are_off(self):
        config = FaultConfig()
        assert config.slow_client == 0.0
        assert config.malformed_request == 0.0
        assert config.conn_reset == 0.0

    @pytest.mark.parametrize(
        "name", ["slow_client", "malformed_request", "conn_reset"]
    )
    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_rates_must_be_probabilities(self, name, rate):
        with pytest.raises(ValidationError):
            FaultConfig(**{name: rate})

    def test_negative_slow_client_seconds_rejected(self):
        with pytest.raises(ValidationError):
            FaultConfig(slow_client_seconds=-1.0)

    def test_slow_client_returns_configured_stall(self):
        injector = FaultInjector(
            FaultConfig(slow_client=1.0, slow_client_seconds=2.5)
        )
        assert injector.slow_client() == 2.5
        assert injector.stats.slow_clients == 1

    def test_malformed_request_always_changes_the_body(self):
        injector = FaultInjector(FaultConfig(seed=9, malformed_request=1.0))
        body = b'{"system": {"n": 4, "sets": []}, "k": 2, "s": 0.5}'
        for _ in range(10):
            assert injector.malformed_request(body) != body
        assert injector.stats.malformed_requests == 10

    def test_malformed_request_passthrough_at_rate_zero(self):
        injector = FaultInjector(FaultConfig(seed=9))
        body = b'{"k": 1}'
        assert injector.malformed_request(body) is body
        assert injector.stats.malformed_requests == 0

    def test_conn_reset_counts(self):
        injector = FaultInjector(FaultConfig(conn_reset=1.0))
        assert injector.conn_reset()
        assert not FaultInjector(FaultConfig()).conn_reset()
        assert injector.stats.conn_resets == 1

    def test_fault_limit_caps_server_faults_too(self):
        injector = FaultInjector(
            FaultConfig(conn_reset=1.0, fault_limit=2)
        )
        fired = [injector.conn_reset() for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_stats_total_includes_server_faults(self):
        injector = FaultInjector(
            FaultConfig(
                slow_client=1.0, malformed_request=1.0, conn_reset=1.0
            )
        )
        injector.slow_client()
        injector.malformed_request(b"{}")
        injector.conn_reset()
        assert injector.stats.total == 3

    def test_env_round_trip(self):
        config = FaultConfig(
            slow_client=0.25,
            malformed_request=0.5,
            conn_reset=0.75,
            slow_client_seconds=3.0,
            seed=4,
        )
        assert faults.parse_env(faults.encode_env(config)) == config

    def test_env_short_keys(self):
        config = faults.parse_env(
            "slow_client=0.1,malformed=0.2,reset=0.3"
        )
        assert config.slow_client == 0.1
        assert config.malformed_request == 0.2
        assert config.conn_reset == 0.3
        assert faults.parse_env("malformed_request=0.2") == faults.parse_env(
            "malformed=0.2"
        )


class TestParseEnv:
    def test_short_and_long_keys(self):
        config = faults.parse_env("lp=0.3,slow=0.05,corrupt=0.1,seed=42")
        assert config == FaultConfig(
            lp_failure=0.3, slow_iteration=0.05, corrupt_marginal=0.1, seed=42
        )
        assert faults.parse_env("lp_failure=0.3") == faults.parse_env("lp=0.3")

    def test_whitespace_and_empty_entries_tolerated(self):
        config = faults.parse_env(" lp = 0.5 , , seed = 3 ")
        assert config.lp_failure == 0.5
        assert config.seed == 3

    def test_unknown_key_rejected(self):
        with pytest.raises(ValidationError, match="unknown REPRO_CHAOS key"):
            faults.parse_env("explode=1.0")

    def test_malformed_entry_rejected(self):
        with pytest.raises(ValidationError, match="key=value"):
            faults.parse_env("lp")


class TestInjectorHooks:
    def test_lp_attempt_raises_transient_at_rate_one(self):
        injector = FaultInjector(FaultConfig(lp_failure=1.0))
        with pytest.raises(TransientSolverError):
            injector.lp_attempt()
        assert injector.stats.lp_failures == 1

    def test_lp_attempt_silent_at_rate_zero(self):
        injector = FaultInjector(FaultConfig())
        for _ in range(100):
            injector.lp_attempt()
        assert injector.stats.lp_failures == 0

    def test_corrupt_marginal_inflates_not_deflates(self):
        injector = FaultInjector(FaultConfig(corrupt_marginal=1.0, seed=1))
        for newly in range(10):
            corrupted = injector.corrupt_marginal(newly)
            assert corrupted > newly
        assert injector.stats.corruptions == 10

    def test_slow_iteration_counts(self):
        injector = FaultInjector(
            FaultConfig(slow_iteration=1.0, slow_seconds=0.0)
        )
        injector.iteration()
        assert injector.stats.slowdowns == 1

    def test_same_seed_same_schedule(self):
        config = FaultConfig(lp_failure=0.4, corrupt_marginal=0.4, seed=9)

        def schedule():
            injector = FaultInjector(config)
            events = []
            for i in range(50):
                try:
                    injector.lp_attempt()
                    events.append(("ok", i))
                except TransientSolverError:
                    events.append(("fail", i))
                events.append(("gain", injector.corrupt_marginal(i)))
            return events

        assert schedule() == schedule()


class TestActivation:
    def test_chaos_context_installs_and_restores(self):
        assert faults.active() is None
        with chaos(FaultConfig(lp_failure=1.0)) as injector:
            assert faults.active() is injector
        assert faults.active() is None

    def test_chaos_nests(self):
        with chaos(FaultConfig(seed=1)) as outer:
            with chaos(FaultConfig(seed=2)) as inner:
                assert faults.active() is inner
            assert faults.active() is outer

    def test_env_var_consulted_once(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "lp=0.25,seed=11")
        faults._ACTIVE = faults._UNSET
        injector = faults.active()
        assert injector is not None
        assert injector.config == FaultConfig(lp_failure=0.25, seed=11)
        # Later changes to the env are ignored until uninstall/reset.
        monkeypatch.setenv("REPRO_CHAOS", "lp=0.9")
        assert faults.active() is injector

    def test_blank_env_means_no_injector(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "   ")
        faults._ACTIVE = faults._UNSET
        assert faults.active() is None
