"""The chaos layer itself: config validation, env parsing, determinism."""

from __future__ import annotations

import pytest

from repro.errors import TransientSolverError, ValidationError
from repro.resilience import FaultConfig, FaultInjector, chaos
from repro.resilience import faults


@pytest.fixture(autouse=True)
def _no_leftover_injector():
    """Never leak an injector into (or out of) a test."""
    previous = faults._ACTIVE
    faults.uninstall()
    yield
    faults._ACTIVE = previous


class TestFaultConfig:
    def test_defaults_are_all_off(self):
        config = FaultConfig()
        assert config.lp_failure == 0.0
        assert config.slow_iteration == 0.0
        assert config.corrupt_marginal == 0.0

    @pytest.mark.parametrize("name", ["lp_failure", "slow_iteration", "corrupt_marginal"])
    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_rates_must_be_probabilities(self, name, rate):
        with pytest.raises(ValidationError):
            FaultConfig(**{name: rate})

    def test_negative_slow_seconds_rejected(self):
        with pytest.raises(ValidationError):
            FaultConfig(slow_seconds=-1.0)


class TestParseEnv:
    def test_short_and_long_keys(self):
        config = faults.parse_env("lp=0.3,slow=0.05,corrupt=0.1,seed=42")
        assert config == FaultConfig(
            lp_failure=0.3, slow_iteration=0.05, corrupt_marginal=0.1, seed=42
        )
        assert faults.parse_env("lp_failure=0.3") == faults.parse_env("lp=0.3")

    def test_whitespace_and_empty_entries_tolerated(self):
        config = faults.parse_env(" lp = 0.5 , , seed = 3 ")
        assert config.lp_failure == 0.5
        assert config.seed == 3

    def test_unknown_key_rejected(self):
        with pytest.raises(ValidationError, match="unknown REPRO_CHAOS key"):
            faults.parse_env("explode=1.0")

    def test_malformed_entry_rejected(self):
        with pytest.raises(ValidationError, match="key=value"):
            faults.parse_env("lp")


class TestInjectorHooks:
    def test_lp_attempt_raises_transient_at_rate_one(self):
        injector = FaultInjector(FaultConfig(lp_failure=1.0))
        with pytest.raises(TransientSolverError):
            injector.lp_attempt()
        assert injector.stats.lp_failures == 1

    def test_lp_attempt_silent_at_rate_zero(self):
        injector = FaultInjector(FaultConfig())
        for _ in range(100):
            injector.lp_attempt()
        assert injector.stats.lp_failures == 0

    def test_corrupt_marginal_inflates_not_deflates(self):
        injector = FaultInjector(FaultConfig(corrupt_marginal=1.0, seed=1))
        for newly in range(10):
            corrupted = injector.corrupt_marginal(newly)
            assert corrupted > newly
        assert injector.stats.corruptions == 10

    def test_slow_iteration_counts(self):
        injector = FaultInjector(
            FaultConfig(slow_iteration=1.0, slow_seconds=0.0)
        )
        injector.iteration()
        assert injector.stats.slowdowns == 1

    def test_same_seed_same_schedule(self):
        config = FaultConfig(lp_failure=0.4, corrupt_marginal=0.4, seed=9)

        def schedule():
            injector = FaultInjector(config)
            events = []
            for i in range(50):
                try:
                    injector.lp_attempt()
                    events.append(("ok", i))
                except TransientSolverError:
                    events.append(("fail", i))
                events.append(("gain", injector.corrupt_marginal(i)))
            return events

        assert schedule() == schedule()


class TestActivation:
    def test_chaos_context_installs_and_restores(self):
        assert faults.active() is None
        with chaos(FaultConfig(lp_failure=1.0)) as injector:
            assert faults.active() is injector
        assert faults.active() is None

    def test_chaos_nests(self):
        with chaos(FaultConfig(seed=1)) as outer:
            with chaos(FaultConfig(seed=2)) as inner:
                assert faults.active() is inner
            assert faults.active() is outer

    def test_env_var_consulted_once(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "lp=0.25,seed=11")
        faults._ACTIVE = faults._UNSET
        injector = faults.active()
        assert injector is not None
        assert injector.config == FaultConfig(lp_failure=0.25, seed=11)
        # Later changes to the env are ignored until uninstall/reset.
        monkeypatch.setenv("REPRO_CHAOS", "lp=0.9")
        assert faults.active() is injector

    def test_blank_env_means_no_injector(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "   ")
        faults._ACTIVE = faults._UNSET
        assert faults.active() is None
