"""resilient_solve: stage selection, retries, rejection, degradation."""

from __future__ import annotations

import pytest

from repro.core.validate import verify_result
from repro.datasets.adversarial import bmc_adversarial_system
from repro.errors import InfeasibleError, ValidationError
from repro.resilience import FaultConfig, chaos, resilient_solve
from repro.resilience.chain import DEFAULT_CHAIN


def provenance(result) -> dict:
    prov = result.params.get("resilience")
    assert prov is not None, "resilient results must carry provenance"
    return prov


def stage_status(prov: dict) -> dict[str, str]:
    return {r["stage"]: r["status"] for r in prov["stages"]}


class TestHappyPath:
    def test_default_chain_answers_and_verifies(self, random_system):
        system = random_system(n_elements=15, n_sets=10)
        result = resilient_solve(system, k=4, s_hat=0.9)
        assert result.feasible
        prov = provenance(result)
        assert prov["stage"] in DEFAULT_CHAIN
        assert verify_result(
            system, result, k=prov["k_bound"], s_hat=prov["coverage_target"]
        ) == []

    def test_first_ok_stage_wins_and_later_stages_never_run(
        self, random_system
    ):
        system = random_system(n_elements=10, n_sets=6)
        result = resilient_solve(
            system, k=3, s_hat=0.8, chain=("cwsc", "cmc", "universal")
        )
        prov = provenance(result)
        assert prov["stage"] == "cwsc"
        assert [r["stage"] for r in prov["stages"]] == ["cwsc"]

    def test_single_universal_chain(self, random_system):
        system = random_system(n_elements=10, n_sets=6)
        result = resilient_solve(system, k=3, s_hat=1.0, chain=("universal",))
        assert result.feasible
        assert len(result.set_ids) == 1
        assert provenance(result)["stage"] == "universal"

    def test_stage_options_reach_the_solver(self, random_system):
        system = random_system(n_elements=12, n_sets=8)
        result = resilient_solve(
            system,
            k=3,
            s_hat=0.7,
            chain=("cmc_epsilon", "universal"),
            stage_options={"cmc_epsilon": {"b": 2.0, "eps": 2.0}},
        )
        prov = provenance(result)
        assert prov["stage"] in ("cmc_epsilon", "universal")
        assert result.feasible


class TestRetries:
    def test_transient_lp_failures_retried_then_exhausted(self, random_system):
        system = random_system(n_elements=12, n_sets=8)
        with chaos(FaultConfig(lp_failure=1.0, seed=3)) as injector:
            result = resilient_solve(
                system,
                k=4,
                s_hat=0.9,
                chain=("lp_rounding", "cwsc", "universal"),
                max_retries=2,
                backoff_base=0.0,
                backoff_cap=0.0,
            )
        assert result.feasible
        prov = provenance(result)
        statuses = stage_status(prov)
        assert statuses["lp_rounding"] == "transient_exhausted"
        lp_record = prov["stages"][0]
        assert lp_record["attempts"] == 3  # initial + max_retries
        assert injector.stats.lp_failures == 3
        assert prov["stage"] in ("cwsc", "universal")

    def test_intermittent_lp_failure_recovers_within_stage(
        self, random_system
    ):
        system = random_system(n_elements=12, n_sets=8)
        # seed chosen so the injected schedule fails at least once and
        # passes at least once within the retry budget
        for seed in range(20):
            with chaos(FaultConfig(lp_failure=0.5, seed=seed)) as injector:
                result = resilient_solve(
                    system,
                    k=4,
                    s_hat=0.9,
                    chain=("lp_rounding", "universal"),
                    max_retries=5,
                    backoff_base=0.0,
                    backoff_cap=0.0,
                )
            prov = provenance(result)
            if (
                prov["stage"] == "lp_rounding"
                and injector.stats.lp_failures > 0
            ):
                assert prov["stages"][0]["attempts"] > 1
                return
        pytest.fail("no seed produced fail-then-recover within 20 tries")

    def test_zero_retries_fall_straight_through(self, random_system):
        system = random_system(n_elements=12, n_sets=8)
        with chaos(FaultConfig(lp_failure=1.0, seed=3)):
            result = resilient_solve(
                system,
                k=4,
                s_hat=0.9,
                chain=("lp_rounding", "universal"),
                max_retries=0,
            )
        prov = provenance(result)
        assert prov["stages"][0]["attempts"] == 1
        assert prov["stage"] == "universal"


class TestRejection:
    def test_corrupted_answers_are_rejected_not_returned(self, random_system):
        system = random_system(n_elements=20, n_sets=12, seed=2)
        with chaos(FaultConfig(corrupt_marginal=1.0, seed=1)):
            result = resilient_solve(
                system, k=4, s_hat=1.0, chain=("cwsc", "universal")
            )
        prov = provenance(result)
        assert stage_status(prov)["cwsc"] == "rejected"
        assert prov["stage"] == "universal"
        assert result.feasible
        assert verify_result(
            system, result, k=prov["k_bound"], s_hat=prov["coverage_target"]
        ) == []


class TestDeadlines:
    def test_spent_deadline_skips_to_universal(self, random_system):
        system = random_system(n_elements=15, n_sets=10)
        result = resilient_solve(system, k=4, s_hat=1.0, timeout=1e-9)
        prov = provenance(result)
        assert prov["stage"] == "universal"
        statuses = stage_status(prov)
        for name in ("exact", "lp_rounding", "cwsc", "cmc"):
            assert statuses[name] in ("skipped", "timeout")
        assert result.feasible

    def test_generous_timeout_is_invisible(self, random_system):
        system = random_system(n_elements=12, n_sets=8)
        timed = resilient_solve(system, k=4, s_hat=0.9, timeout=120.0)
        plain = resilient_solve(system, k=4, s_hat=0.9)
        assert timed.set_ids == plain.set_ids
        assert provenance(timed)["stage"] == provenance(plain)["stage"]


class TestDegradation:
    def test_on_failure_partial_returns_infeasible_best_effort(self):
        system = bmc_adversarial_system(k=3, c=2, big_c=4)
        result = resilient_solve(
            system, k=1, s_hat=1.0, chain=("cwsc",), on_failure="partial"
        )
        assert not result.feasible
        prov = provenance(result)
        assert prov["stage"] == "best_partial"
        # The claims on the degraded result are rebuilt, not trusted.
        assert result.covered == system.coverage_of(result.set_ids)

    def test_on_failure_raise_attaches_partial(self):
        system = bmc_adversarial_system(k=3, c=2, big_c=4)
        with pytest.raises(InfeasibleError) as excinfo:
            resilient_solve(
                system, k=1, s_hat=1.0, chain=("cwsc",), on_failure="raise"
            )
        partial = excinfo.value.partial
        assert partial is not None
        assert not partial.feasible

    def test_universal_reports_infeasible_without_full_cover_set(self):
        system = bmc_adversarial_system(k=3, c=2, big_c=4)
        result = resilient_solve(
            system, k=3, s_hat=1.0, chain=("universal",)
        )
        statuses = stage_status(provenance(result))
        assert statuses["universal"] == "infeasible"
        assert not result.feasible


class TestValidation:
    def test_unknown_stage_rejected(self, random_system):
        system = random_system()
        with pytest.raises(ValidationError, match="unknown chain stage"):
            resilient_solve(system, k=3, s_hat=0.5, chain=("magic",))

    def test_empty_chain_rejected(self, random_system):
        with pytest.raises(ValidationError):
            resilient_solve(random_system(), k=3, s_hat=0.5, chain=())

    def test_bad_k_raises_once_not_per_stage(self, random_system):
        with pytest.raises(ValidationError):
            resilient_solve(random_system(), k=0, s_hat=0.5)

    def test_bad_timeout_rejected(self, random_system):
        with pytest.raises(ValidationError):
            resilient_solve(random_system(), k=3, s_hat=0.5, timeout=0.0)

    def test_negative_retries_rejected(self, random_system):
        with pytest.raises(ValidationError):
            resilient_solve(random_system(), k=3, s_hat=0.5, max_retries=-1)

    def test_malformed_chaos_env_fails_fast(self, random_system, monkeypatch):
        # Even when no stage in the chain has a fault hook (exact),
        # a typo'd REPRO_CHAOS must surface immediately, not be ignored.
        from repro.resilience import faults

        monkeypatch.setenv("REPRO_CHAOS", "explode=1")
        previous = faults._ACTIVE
        faults._ACTIVE = faults._UNSET
        try:
            with pytest.raises(ValidationError, match="REPRO_CHAOS"):
                resilient_solve(
                    random_system(), k=3, s_hat=0.5, chain=("exact",)
                )
        finally:
            faults._ACTIVE = previous

    def test_strict_mode_validates_the_system(self, random_system):
        from repro.core.setsystem import SetSystem

        bad = SetSystem.from_iterables(3, [{0, 1, 2}], [float("inf")])
        with pytest.raises(ValidationError):
            resilient_solve(bad, k=1, s_hat=0.5, strict=True)
        # Same call without strict still degrades gracefully.
        result = resilient_solve(bad, k=1, s_hat=0.5, strict=False)
        assert provenance(result)["stage"] is not None
