"""The pool's incremental serving API: submit/poll/warm/drain.

``scwsc serve`` drives the pool through these four methods from a
single dispatcher thread; these tests pin their contracts directly,
including the absolute-deadline mode where a request's timeout is an
end-to-end budget rather than a per-attempt one.
"""

from __future__ import annotations

import time

import pytest

from repro.core.cwsc import cwsc
from repro.errors import ValidationError
from repro.resilience.pool import PoolConfig, SolveRequest, SolverPool

HANG_ENV = {"REPRO_CHAOS": "hang=1.0,hang_seconds=120,fault_limit=1000000"}


def drain_all(pool, expected, deadline=120.0):
    results = []
    give_up = time.monotonic() + deadline
    while len(results) < expected:
        assert time.monotonic() < give_up, "poll never completed"
        results.extend(pool.poll(0.05))
    return results


class TestSubmitPoll:
    def test_submit_then_poll_collects_each_result_once(self, random_system):
        system = random_system(seed=1)
        with SolverPool(PoolConfig(workers=2, request_timeout=60)) as pool:
            ids = [
                pool.submit(
                    SolveRequest(
                        system=system, k=3, s_hat=0.7, solver="cwsc",
                        tag=f"r{i}",
                    )
                )
                for i in range(4)
            ]
            assert len(set(ids)) == 4
            results = drain_all(pool, 4)
            # Nothing is returned twice.
            assert pool.poll(0.05) == []
        assert sorted(r.request_id for r in results) == sorted(ids)
        expected = cwsc(system, 3, 0.7)
        for outcome in results:
            assert outcome.status == "ok"
            assert outcome.result.set_ids == expected.set_ids

    def test_poll_with_nothing_queued_is_safe(self):
        with SolverPool(PoolConfig(workers=1)) as pool:
            assert pool.poll(0.01) == []

    def test_submit_after_close_raises(self, random_system):
        pool = SolverPool(PoolConfig(workers=1))
        pool.close()
        with pytest.raises(ValidationError, match="closed"):
            pool.submit(
                SolveRequest(system=random_system(), k=2, s_hat=0.5)
            )
        with pytest.raises(ValidationError, match="closed"):
            pool.poll(0.01)

    def test_queue_and_worker_properties(self, random_system):
        with SolverPool(
            PoolConfig(workers=1, request_timeout=60, worker_env=HANG_ENV,
                       grace=0.5)
        ) as pool:
            assert pool.queue_depth == 0
            assert pool.busy_workers == 0
            for _ in range(2):
                pool.submit(
                    SolveRequest(
                        system=random_system(), k=2, s_hat=0.5,
                        solver="cwsc", timeout=60,
                    )
                )
            assert pool.queue_depth == 2
            pool.poll(0.05)  # dispatches one to the lone worker
            assert pool.busy_workers == 1
            assert pool.queue_depth == 1


class TestWarm:
    def test_warm_blocks_until_workers_ready(self):
        with SolverPool(PoolConfig(workers=2)) as pool:
            assert pool.warm(timeout=60.0) is True
            assert pool.ready_workers == 2

    def test_warm_timeout_returns_false(self):
        # A worker that hangs *at import* never sends ready. Simulate
        # with a tiny timeout instead: spawning is real but readiness
        # cannot complete in zero time.
        with SolverPool(PoolConfig(workers=1)) as pool:
            assert pool.warm(timeout=0.0) is False


class TestDrain:
    def test_drain_finishes_outstanding_work(self, random_system):
        system = random_system(seed=6)
        with SolverPool(PoolConfig(workers=2, request_timeout=60)) as pool:
            ids = [
                pool.submit(
                    SolveRequest(system=system, k=3, s_hat=0.6, solver="cwsc")
                )
                for _ in range(3)
            ]
            results = pool.drain()
            assert sorted(r.request_id for r in results) == sorted(ids)
            assert pool.draining
            with pytest.raises(ValidationError, match="draining"):
                pool.submit(
                    SolveRequest(system=system, k=3, s_hat=0.6)
                )

    def test_drain_timeout_leaves_stragglers_in_flight(self, random_system):
        with SolverPool(
            PoolConfig(workers=1, request_timeout=60, worker_env=HANG_ENV,
                       grace=0.5)
        ) as pool:
            pool.submit(
                SolveRequest(
                    system=random_system(), k=2, s_hat=0.5, timeout=60
                )
            )
            started = time.monotonic()
            results = pool.drain(timeout=0.5)
            assert time.monotonic() - started < 10.0
            assert results == []  # the hung request is still in flight


class TestAbsoluteDeadlines:
    def test_budget_bounds_end_to_end_latency(self, random_system):
        """Per-attempt mode would allow ~2 x (timeout + grace); the
        absolute mode must finish (degraded) within one budget."""
        deadline, grace = 1.0, 0.5
        with SolverPool(
            PoolConfig(
                workers=1,
                grace=grace,
                max_requeues=3,
                worker_env=HANG_ENV,
                absolute_deadlines=True,
            )
        ) as pool:
            pool.submit(
                SolveRequest(
                    system=random_system(seed=8), k=2, s_hat=0.5,
                    timeout=deadline,
                )
            )
            started = time.monotonic()
            (outcome,) = drain_all(pool, 1, deadline=30.0)
            elapsed = time.monotonic() - started
        assert outcome.status == "fallback"
        assert elapsed <= deadline + grace + 2.0, elapsed
        outcomes = [a["outcome"] for a in outcome.provenance["attempts"]]
        assert outcomes.count("hard-timeout") == 1
        assert outcomes[-1] == "deadline-exhausted"

    def test_queue_wait_burns_the_same_clock(self, random_system):
        # Two hanging requests, one worker: the second spends its whole
        # budget queued behind the first and must degrade without ever
        # being dispatched a full slice.
        deadline, grace = 1.0, 0.5
        with SolverPool(
            PoolConfig(
                workers=1,
                grace=grace,
                max_requeues=1,
                worker_env=HANG_ENV,
                absolute_deadlines=True,
            )
        ) as pool:
            first = pool.submit(
                SolveRequest(
                    system=random_system(seed=2), k=2, s_hat=0.5,
                    timeout=deadline,
                )
            )
            second = pool.submit(
                SolveRequest(
                    system=random_system(seed=3), k=2, s_hat=0.5,
                    timeout=deadline,
                )
            )
            started = time.monotonic()
            results = {
                r.request_id: r for r in drain_all(pool, 2, deadline=30.0)
            }
            elapsed = time.monotonic() - started
        assert results[first].status == "fallback"
        assert results[second].status == "fallback"
        # Both budgets ran concurrently from submission: the pair
        # completes in one deadline window, not two.
        assert elapsed <= deadline + grace + 3.0, elapsed

    def test_per_attempt_mode_still_restarts_the_clock(self, random_system):
        # Regression guard for the default mode: a requeue gets a fresh
        # timeout, so two attempts take about twice the budget.
        deadline, grace = 0.6, 0.3
        with SolverPool(
            PoolConfig(
                workers=1,
                grace=grace,
                max_requeues=1,
                worker_env=HANG_ENV,
                absolute_deadlines=False,
            )
        ) as pool:
            pool.submit(
                SolveRequest(
                    system=random_system(seed=4), k=2, s_hat=0.5,
                    timeout=deadline,
                )
            )
            started = time.monotonic()
            (outcome,) = drain_all(pool, 1, deadline=30.0)
            elapsed = time.monotonic() - started
        assert outcome.status == "fallback"
        outcomes = [a["outcome"] for a in outcome.provenance["attempts"]]
        assert outcomes.count("hard-timeout") == 2
        assert elapsed >= 2 * deadline, elapsed

    def test_ok_results_unaffected_by_absolute_mode(self, random_system):
        system = random_system(seed=5)
        with SolverPool(
            PoolConfig(workers=1, absolute_deadlines=True)
        ) as pool:
            outcome = pool.solve(
                SolveRequest(
                    system=system, k=3, s_hat=0.7, solver="cwsc", timeout=60
                )
            )
        expected = cwsc(system, 3, 0.7)
        assert outcome.status == "ok"
        assert outcome.result.set_ids == expected.set_ids
