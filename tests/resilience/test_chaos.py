"""Chaos suite: resilient_solve must survive every injected-fault storm.

Marked ``chaos`` (run via ``make chaos`` or ``pytest -m chaos``). Every
scenario uses a fixed seed so a failure here reproduces identically.

The acceptance bar, from the resilience design: under any combination of
injected LP failures, slowdowns, marginal-gain corruption, and deadline
pressure, ``resilient_solve`` returns a feasible answer that passes
independent verification against the winning stage's guarantee envelope
— with zero uncaught exceptions.
"""

from __future__ import annotations

import pytest

from repro.core.validate import verify_result
from repro.datasets.adversarial import bmc_adversarial_system
from repro.resilience import FaultConfig, chaos, resilient_solve

pytestmark = pytest.mark.chaos

#: The fault storms. Each combines at least one fault family; the last
#: entries turn everything on at once.
SCENARIOS = [
    FaultConfig(lp_failure=1.0, seed=101),
    FaultConfig(lp_failure=0.6, seed=102),
    FaultConfig(corrupt_marginal=1.0, seed=103),
    FaultConfig(corrupt_marginal=0.5, seed=104),
    FaultConfig(slow_iteration=0.5, slow_seconds=0.001, seed=105),
    FaultConfig(lp_failure=0.5, corrupt_marginal=0.5, seed=106),
    FaultConfig(
        lp_failure=0.7,
        slow_iteration=0.3,
        corrupt_marginal=0.7,
        slow_seconds=0.001,
        seed=107,
    ),
]

_FAST_BACKOFF = {"backoff_base": 0.0, "backoff_cap": 0.0}


def _assert_clean(system, result):
    prov = result.params["resilience"]
    assert result.feasible, (
        f"stage {prov['stage']!r} returned infeasible; "
        f"stages: {[(r['stage'], r['status']) for r in prov['stages']]}"
    )
    problems = verify_result(
        system, result, k=prov["k_bound"], s_hat=prov["coverage_target"]
    )
    assert problems == [], problems


@pytest.mark.parametrize(
    "config", SCENARIOS, ids=lambda c: f"seed{c.seed}"
)
class TestChaosScenarios:
    def test_entities_system_survives(self, entities_system, config):
        with chaos(config):
            result = resilient_solve(entities_system, k=5, s_hat=0.8)
        _assert_clean(entities_system, result)

    def test_adversarial_system_survives(self, config):
        system = bmc_adversarial_system(k=3, c=2, big_c=4)
        with chaos(config):
            result = resilient_solve(system, k=3, s_hat=1.0, **_FAST_BACKOFF)
        _assert_clean(system, result)

    def test_deadline_pressure_survives(self, entities_system, config):
        with chaos(config):
            result = resilient_solve(
                entities_system, k=5, s_hat=0.8, timeout=0.05, **_FAST_BACKOFF
            )
        _assert_clean(entities_system, result)

    def test_random_systems_survive(self, random_system, config):
        for system_seed in (0, 1, 2):
            system = random_system(
                n_elements=25, n_sets=15, seed=system_seed
            )
            with chaos(config):
                result = resilient_solve(
                    system, k=5, s_hat=1.0, timeout=0.2, **_FAST_BACKOFF
                )
            _assert_clean(system, result)


class TestChaosDeterminism:
    def test_same_storm_same_answer(self, entities_system):
        config = FaultConfig(
            lp_failure=0.5, corrupt_marginal=0.5, seed=999
        )

        def run():
            with chaos(config):
                result = resilient_solve(
                    entities_system, k=5, s_hat=0.8, **_FAST_BACKOFF
                )
            prov = result.params["resilience"]
            return (
                result.set_ids,
                prov["stage"],
                [(r["stage"], r["status"]) for r in prov["stages"]],
            )

        assert run() == run()

    def test_env_var_chaos_round_trip(self, entities_system, monkeypatch):
        """The documented REPRO_CHAOS format drives the same machinery."""
        from repro.resilience import faults

        monkeypatch.setenv(
            "REPRO_CHAOS", "lp=0.5,corrupt=0.5,seed=999"
        )
        previous = faults._ACTIVE
        faults._ACTIVE = faults._UNSET
        try:
            result = resilient_solve(
                entities_system, k=5, s_hat=0.8, **_FAST_BACKOFF
            )
        finally:
            faults._ACTIVE = previous
        _assert_clean(entities_system, result)
