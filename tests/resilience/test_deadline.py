"""Deadline semantics and cooperative cancellation in every core solver."""

from __future__ import annotations

import math

import pytest

from repro.core.cmc import cmc
from repro.core.cmc_epsilon import cmc_epsilon, cmc_generalized
from repro.core.cwsc import cwsc
from repro.core.exact import brute_force, solve_exact
from repro.core.lp_rounding import lp_rounding
from repro.core.result import CoverResult
from repro.errors import DeadlineExceeded, ValidationError
from repro.resilience import Deadline


class TestDeadlineBasics:
    def test_never_does_not_expire(self):
        deadline = Deadline.never()
        assert not deadline.expired()
        assert deadline.remaining() == math.inf
        assert not deadline.poll()

    def test_after_eventually_expires(self):
        deadline = Deadline.after(0.0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_positive_budget_not_immediately_expired(self):
        deadline = Deadline.after(60.0)
        assert not deadline.expired()
        assert deadline.remaining() > 59.0

    def test_poll_is_strided_but_converges(self):
        deadline = Deadline(0.0, stride=8)
        # Within at most `stride` polls the expiry must be observed.
        assert any(deadline.poll() for _ in range(8))

    def test_require_raises_with_partial(self):
        deadline = Deadline.after(0.0)
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.require("unit-test", partial="the-partial")
        assert excinfo.value.partial == "the-partial"

    def test_sub_is_capped_by_parent(self):
        parent = Deadline.after(0.05)
        child = parent.sub(1000.0)
        assert child.remaining() <= 0.05 + 1e-6

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValidationError):
            Deadline(-1.0)
        with pytest.raises(ValidationError):
            Deadline(float("nan"))
        with pytest.raises(ValidationError):
            Deadline(1.0, stride=0)


def _expired() -> Deadline:
    return Deadline(0.0, stride=1)


class TestSolversHonorDeadlines:
    """Every solver raises DeadlineExceeded with a populated partial."""

    def _check(self, excinfo, algorithm: str | None = None):
        partial = excinfo.value.partial
        assert isinstance(partial, CoverResult)
        if algorithm is not None:
            assert partial.algorithm == algorithm

    def test_cwsc(self, random_system):
        system = random_system(n_elements=30, n_sets=20)
        with pytest.raises(DeadlineExceeded) as excinfo:
            cwsc(system, k=5, s_hat=1.0, deadline=_expired())
        self._check(excinfo, "cwsc")

    def test_cmc(self, random_system):
        system = random_system(n_elements=30, n_sets=20)
        with pytest.raises(DeadlineExceeded) as excinfo:
            cmc(system, k=5, s_hat=1.0, deadline=_expired())
        self._check(excinfo, "cmc")

    def test_cmc_epsilon(self, random_system):
        system = random_system(n_elements=30, n_sets=20)
        with pytest.raises(DeadlineExceeded) as excinfo:
            cmc_epsilon(system, k=5, s_hat=1.0, deadline=_expired())
        self._check(excinfo, "cmc_epsilon")

    def test_cmc_generalized(self, random_system):
        system = random_system(n_elements=30, n_sets=20)
        with pytest.raises(DeadlineExceeded) as excinfo:
            cmc_generalized(system, k=5, s_hat=1.0, deadline=_expired())
        self._check(excinfo, "cmc_generalized")

    def test_solve_exact(self, random_system):
        system = random_system(n_elements=30, n_sets=20)
        with pytest.raises(DeadlineExceeded) as excinfo:
            solve_exact(system, k=5, s_hat=1.0, deadline=_expired())
        self._check(excinfo)

    def test_brute_force(self, random_system):
        system = random_system(n_elements=30, n_sets=20)
        with pytest.raises(DeadlineExceeded) as excinfo:
            brute_force(system, k=5, s_hat=1.0, deadline=_expired())
        self._check(excinfo)

    def test_lp_rounding(self, random_system):
        system = random_system(n_elements=30, n_sets=20)
        with pytest.raises(DeadlineExceeded) as excinfo:
            lp_rounding(system, k=5, s_hat=1.0, deadline=_expired())
        self._check(excinfo)

    def test_generous_deadline_changes_nothing(self, random_system):
        system = random_system(n_elements=20, n_sets=12)
        plain = cwsc(system, k=4, s_hat=0.8)
        timed = cwsc(system, k=4, s_hat=0.8, deadline=Deadline.after(60.0))
        assert plain.set_ids == timed.set_ids
        assert plain.total_cost == timed.total_cost

    def test_midway_deadline_partial_carries_progress(self, random_system):
        system = random_system(n_elements=40, n_sets=30, seed=5)
        # Expire after exactly one outer-loop check: stride 1 and a
        # budget that the first iteration consumes.
        deadline = Deadline(0.0, stride=1)
        with pytest.raises(DeadlineExceeded) as excinfo:
            cwsc(system, k=6, s_hat=1.0, deadline=deadline)
        partial = excinfo.value.partial
        assert not partial.feasible
        assert partial.n_elements == system.n_elements
