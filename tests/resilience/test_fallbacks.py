"""The last-resort solutions: universal set and greedy partials."""

from __future__ import annotations

import pytest

from repro.core.fallbacks import greedy_partial, universal_result
from repro.core.setsystem import SetSystem
from repro.core.validate import verify_result
from repro.datasets.adversarial import bmc_adversarial_system
from repro.errors import InfeasibleError, ValidationError


class TestUniversalResult:
    def test_picks_cheapest_full_cover(self):
        system = SetSystem.from_iterables(
            3,
            [{0, 1, 2}, {0, 1, 2}, {0, 1}],
            [5.0, 2.0, 0.1],
        )
        result = universal_result(system, k=2, s_hat=0.5)
        assert result.set_ids == (1,)
        assert result.total_cost == 2.0
        assert result.feasible
        assert verify_result(system, result, k=2, s_hat=0.5) == []

    def test_skips_infinite_cost_full_cover(self):
        system = SetSystem.from_iterables(
            2,
            [{0, 1}, {0, 1}],
            [float("inf"), 7.0],
        )
        result = universal_result(system, k=1, s_hat=1.0)
        assert result.set_ids == (1,)

    def test_no_full_cover_raises_with_greedy_partial(self):
        system = bmc_adversarial_system(k=3, c=2, big_c=4)
        with pytest.raises(InfeasibleError) as excinfo:
            universal_result(system, k=3, s_hat=1.0)
        partial = excinfo.value.partial
        assert partial is not None
        assert partial.algorithm == "greedy_partial"
        assert len(partial.set_ids) <= 3

    def test_bad_k_rejected(self, random_system):
        with pytest.raises(ValidationError):
            universal_result(random_system(), k=0, s_hat=1.0)


class TestGreedyPartial:
    def test_respects_k_and_reports_honestly(self, random_system):
        system = random_system(n_elements=20, n_sets=12)
        result = greedy_partial(system, k=2, s_hat=1.0)
        assert len(result.set_ids) <= 2
        assert result.covered == system.coverage_of(result.set_ids)
        assert result.feasible == (
            result.covered >= system.required_coverage(1.0)
        )

    def test_feasible_when_target_reachable(self, random_system):
        # random_system always includes a full-coverage set.
        system = random_system(n_elements=10, n_sets=6)
        result = greedy_partial(system, k=6, s_hat=1.0)
        assert result.feasible

    def test_never_raises_on_unreachable_target(self):
        system = bmc_adversarial_system(k=3, c=2, big_c=4)
        result = greedy_partial(system, k=1, s_hat=1.0)
        assert not result.feasible
        assert len(result.set_ids) == 1

    def test_skips_infinite_costs(self):
        system = SetSystem.from_iterables(
            3,
            [{0, 1, 2}, {0}],
            [float("inf"), 1.0],
        )
        result = greedy_partial(system, k=2, s_hat=1.0)
        assert result.set_ids == (1,)
        assert not result.feasible

    def test_deterministic(self, random_system):
        system = random_system(n_elements=25, n_sets=15, seed=4)
        first = greedy_partial(system, k=4, s_hat=1.0)
        second = greedy_partial(system, k=4, s_hat=1.0)
        assert first.set_ids == second.set_ids
