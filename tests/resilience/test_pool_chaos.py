"""Chaos suite for the worker pool: process-level fault storms.

Marked ``chaos`` (run via ``make chaos`` or ``pytest -m chaos``). The
acceptance bar, from the resilience design: a worker SIGKILLed
mid-solve, a worker that hogs memory until its rlimit, a worker that
hangs past its hard deadline, and a worker whose result frames are
corrupted must all end with the pool returning a *verified feasible*
result — by requeue or by the parent-side universal fallback — with
provenance naming the failure. No hang, no parent crash.
"""

from __future__ import annotations

import pytest

from repro.core.validate import verify_result
from repro.resilience import faults
from repro.resilience.faults import FaultConfig, encode_env
from repro.resilience.pool import PoolConfig, SolveRequest, SolverPool

pytestmark = pytest.mark.chaos


def _assert_verified_feasible(system, outcome, k, s_hat):
    assert outcome.result is not None
    assert outcome.result.feasible
    resilience = outcome.result.params.get("resilience")
    if resilience is not None and outcome.status == "ok":
        problems = verify_result(
            system,
            outcome.result,
            k=resilience["k_bound"],
            s_hat=resilience["coverage_target"],
        )
    else:
        problems = verify_result(system, outcome.result, k=k, s_hat=s_hat)
    assert problems == [], problems


class TestWorkerKilledMidSolve:
    """Acceptance: SIGKILL a worker mid-solve; requeue must finish the job."""

    def test_injected_sigkill_is_requeued_and_answered(self, random_system):
        system = random_system(n_elements=20, n_sets=14, seed=21)
        with faults.chaos(FaultConfig(worker_kill=1.0, fault_limit=1, seed=7)):
            with SolverPool(
                PoolConfig(workers=1, request_timeout=30)
            ) as pool:
                outcome = pool.solve(
                    SolveRequest(system=system, k=4, s_hat=0.8)
                )
        assert outcome.status == "ok"
        _assert_verified_feasible(system, outcome, 4, 0.8)
        outcomes = [a["outcome"] for a in outcome.provenance["attempts"]]
        assert outcomes == ["killed", "ok"]
        assert "SIGKILL" in outcome.provenance["attempts"][0]["detail"]

    def test_child_side_self_kill_degrades_to_fallback(self, random_system):
        # Env-driven kills hit every respawned worker (each child re-reads
        # REPRO_CHAOS with a fresh budget), so the retry budget runs out
        # and the parent must answer from its own universal fallback.
        system = random_system(n_elements=16, n_sets=10, seed=22)
        with SolverPool(
            PoolConfig(
                workers=1,
                request_timeout=30,
                max_requeues=1,
                worker_env={
                    "REPRO_CHAOS": encode_env(
                        FaultConfig(worker_kill=1.0, seed=3)
                    )
                },
            )
        ) as pool:
            outcome = pool.solve(SolveRequest(system=system, k=4, s_hat=0.8))
        assert outcome.status == "fallback"
        _assert_verified_feasible(system, outcome, 4, 0.8)
        assert "worker-died" in outcome.provenance["failure"]
        assert outcome.provenance["fallback"] == "parent-universal"


class TestWorkerMemoryHog:
    """Acceptance: a memory hog dies alone; the pool still answers."""

    def test_memory_hog_hits_rlimit_and_pool_answers(self, random_system):
        system = random_system(n_elements=16, n_sets=10, seed=23)
        with SolverPool(
            PoolConfig(
                workers=1,
                request_timeout=30,
                max_requeues=1,
                memory_limit_mb=128,
                worker_env={
                    "REPRO_CHAOS": encode_env(
                        FaultConfig(
                            worker_oom=1.0,
                            oom_bytes=1024 * 1024 * 1024,
                            seed=5,
                        )
                    )
                },
            )
        ) as pool:
            outcome = pool.solve(SolveRequest(system=system, k=4, s_hat=0.8))
        assert outcome.status in ("ok", "fallback")
        _assert_verified_feasible(system, outcome, 4, 0.8)
        if outcome.status == "fallback":
            assert "MemoryError" in outcome.provenance["failure"]
        named = [
            a
            for a in outcome.provenance["attempts"]
            if "MemoryError" in a["outcome"] or "died" in a["outcome"]
        ]
        assert named, outcome.provenance["attempts"]


class TestWorkerHang:
    def test_hung_worker_is_hard_killed_and_pool_answers(self, random_system):
        system = random_system(n_elements=16, n_sets=10, seed=24)
        with SolverPool(
            PoolConfig(
                workers=1,
                request_timeout=0.5,
                grace=0.4,
                max_requeues=1,
                worker_env={
                    "REPRO_CHAOS": encode_env(
                        FaultConfig(
                            worker_hang=1.0, hang_seconds=30.0, seed=9
                        )
                    )
                },
            )
        ) as pool:
            outcome = pool.solve(SolveRequest(system=system, k=4, s_hat=0.8))
        assert outcome.status == "fallback"
        _assert_verified_feasible(system, outcome, 4, 0.8)
        assert all(
            a["outcome"] == "hard-timeout"
            for a in outcome.provenance["attempts"]
        )


class TestIpcCorruption:
    def test_corrupted_result_frames_never_crash_the_parent(
        self, random_system
    ):
        system = random_system(n_elements=16, n_sets=10, seed=25)
        with SolverPool(
            PoolConfig(
                workers=1,
                request_timeout=1.0,
                grace=0.5,
                max_requeues=2,
                worker_env={
                    "REPRO_CHAOS": encode_env(
                        FaultConfig(ipc_corrupt=1.0, seed=13)
                    )
                },
            )
        ) as pool:
            outcome = pool.solve(SolveRequest(system=system, k=4, s_hat=0.8))
        # Whatever the corruption produced — garbage (ipc-error), a
        # truncated frame (hard-timeout), or a lying-but-parseable result
        # (rejected by parent verification) — the answer is verified.
        assert outcome.status in ("ok", "fallback")
        _assert_verified_feasible(system, outcome, 4, 0.8)


class TestBreakerIntegration:
    def test_in_worker_stage_failures_open_breaker_and_route(
        self, random_system
    ):
        system = random_system(n_elements=16, n_sets=10, seed=26)
        requests = [
            SolveRequest(
                system=system,
                k=4,
                s_hat=0.8,
                chain=("lp_rounding", "universal"),
                options={"max_retries": 0},
                tag=f"r{i}",
            )
            for i in range(2)
        ]
        with SolverPool(
            PoolConfig(
                workers=1,
                request_timeout=30,
                breaker_threshold=1,
                worker_env={
                    "REPRO_CHAOS": encode_env(
                        FaultConfig(lp_failure=1.0, seed=17)
                    )
                },
            )
        ) as pool:
            first, second = pool.run(requests)
            snapshot = pool.breaker_snapshot()
        # Request 1: lp fails in-worker, universal answers; the reported
        # stage statuses trip lp_rounding's breaker in the parent.
        assert first.status == "ok"
        assert first.result.params["resilience"]["stage"] == "universal"
        assert snapshot["lp_rounding"]["times_opened"] >= 1
        # Request 2's chain was filtered before dispatch.
        assert second.status == "ok"
        assert second.provenance.get("routed_around") == ["lp_rounding"]
        stages_run = [
            record["stage"]
            for record in second.result.params["resilience"]["stages"]
        ]
        assert "lp_rounding" not in stages_run


class TestDeterministicReplay:
    def test_identical_storms_produce_identical_results(self, random_system):
        system = random_system(n_elements=18, n_sets=12, seed=27)

        def run_once():
            with faults.chaos(
                FaultConfig(worker_kill=0.7, fault_limit=2, seed=99)
            ):
                with SolverPool(
                    PoolConfig(workers=2, request_timeout=30, max_requeues=3)
                ) as pool:
                    return pool.run(
                        [
                            SolveRequest(
                                system=system,
                                k=4,
                                s_hat=0.8,
                                solver="cwsc",
                                tag=f"cell-{i}",
                            )
                            for i in range(4)
                        ]
                    )

        first = run_once()
        second = run_once()
        assert [r.status for r in first] == [r.status for r in second]
        for a, b in zip(first, second):
            assert a.result.set_ids == b.result.set_ids
            assert a.result.total_cost == b.result.total_cost
