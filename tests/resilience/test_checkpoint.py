"""Checkpointed experiments: the store itself and crash-resume semantics."""

from __future__ import annotations

import json

import pytest

from repro.core.result import CoverResult
from repro.experiments import base as exp_base
from repro.experiments import quality_grid
from repro.experiments.base import (
    CheckpointStore,
    active_checkpoint,
    checkpointing,
    run_experiment,
)


class TestCheckpointStore:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck.json")
        store.put("a", {"x": 1})
        store.put("b", [1, 2, 3])
        reloaded = CheckpointStore(tmp_path / "ck.json")
        assert len(reloaded) == 2
        assert "a" in reloaded
        assert reloaded.get("a") == {"x": 1}
        assert reloaded.get("b") == [1, 2, 3]

    def test_missing_file_means_empty_store(self, tmp_path):
        store = CheckpointStore(tmp_path / "nope.json")
        assert len(store) == 0

    def test_cell_computes_once_then_hits(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck.json")
        calls = []

        def compute():
            calls.append(1)
            return 42

        assert store.cell("k", compute) == 42
        assert store.cell("k", compute) == 42
        assert calls == [1]
        assert store.hits == 1
        assert store.misses == 1

    def test_cell_serialize_deserialize(self, tmp_path):
        path = tmp_path / "ck.json"
        store = CheckpointStore(path)
        store.cell(
            "k",
            lambda: {1, 2, 3},
            serialize=lambda value: sorted(value),
            deserialize=set,
        )
        reloaded = CheckpointStore(path)
        value = reloaded.cell(
            "k", lambda: pytest.fail("recompute"), deserialize=set
        )
        assert value == {1, 2, 3}
        assert reloaded.hits == 1

    def test_flush_is_valid_json_after_every_put(self, tmp_path):
        path = tmp_path / "ck.json"
        store = CheckpointStore(path)
        for i in range(5):
            store.put(f"cell-{i}", i)
            payload = json.loads(path.read_text())
            assert payload["version"] == exp_base._CHECKPOINT_VERSION
            assert len(payload["cells"]) == i + 1

    def test_clear_empties_disk_too(self, tmp_path):
        path = tmp_path / "ck.json"
        store = CheckpointStore(path)
        store.put("a", 1)
        store.clear()
        assert len(CheckpointStore(path)) == 0

    def test_corrupt_file_quarantined(self, tmp_path, capsys):
        path = tmp_path / "ck.json"
        path.write_text("{not json")
        store = CheckpointStore(path)
        assert len(store) == 0
        assert not path.exists()
        corrupt = tmp_path / "ck.json.corrupt"
        assert store.quarantined_from == corrupt
        assert corrupt.read_text() == "{not json"
        assert "quarantined" in capsys.readouterr().err
        # The store is fully usable after quarantine.
        store.put("a", 1)
        assert CheckpointStore(path).get("a") == 1

    def test_truncated_file_quarantined(self, tmp_path):
        path = tmp_path / "ck.json"
        store = CheckpointStore(path)
        store.put("a", {"x": 1})
        # Simulate a torn write: chop the file mid-payload.
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        reloaded = CheckpointStore(path)
        assert len(reloaded) == 0
        assert reloaded.quarantined_from is not None

    def test_empty_file_quarantined(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("")
        store = CheckpointStore(path)
        assert len(store) == 0
        assert store.quarantined_from is not None

    def test_wrong_version_quarantined(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"version": 99, "cells": {"a": 1}}))
        store = CheckpointStore(path)
        assert len(store) == 0
        assert store.quarantined_from is not None
        # The old cells are preserved in the quarantine file.
        rescued = json.loads(store.quarantined_from.read_text())
        assert rescued["cells"] == {"a": 1}

    def test_non_object_payload_quarantined(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps([1, 2, 3]))
        assert len(CheckpointStore(path)) == 0

    def test_quarantine_never_loops(self, tmp_path):
        # Opening the store twice in a row must not trip on the same bad
        # file (that is exactly the --resume retry loop scenario).
        path = tmp_path / "ck.json"
        path.write_text("garbage")
        CheckpointStore(path)
        second = CheckpointStore(path)
        assert len(second) == 0
        assert second.quarantined_from is None  # nothing left to move

    def test_undecodable_cell_dropped_and_recomputed(self, tmp_path, capsys):
        path = tmp_path / "ck.json"
        store = CheckpointStore(path)
        store.put("k", {"good": "payload"})
        reloaded = CheckpointStore(path)

        def deserialize(payload):
            raise KeyError("algorithm")

        value = reloaded.cell(
            "k", lambda: "fresh",
            serialize=lambda v: v, deserialize=deserialize,
        )
        assert value == "fresh"
        assert reloaded.bad_cells == 1
        assert reloaded.hits == 0
        assert "recomputing" in capsys.readouterr().err
        # The recomputed value replaced the bad payload on disk.
        assert CheckpointStore(path).get("k") == "fresh"

    def test_probe_reports_cache_state(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck.json")
        assert store.probe("missing") == (False, None)
        store.put("k", 5)
        assert store.probe("k") == (True, 5)

    def test_checkpointing_context_installs_and_restores(self, tmp_path):
        assert active_checkpoint() is None
        store = CheckpointStore(tmp_path / "ck.json")
        with checkpointing(store):
            assert active_checkpoint() is store
        assert active_checkpoint() is None


class TestQualityGridResume:
    """The acceptance scenario: interrupt table4, resume, recompute nothing."""

    @pytest.fixture(autouse=True)
    def _fresh_memo(self, monkeypatch):
        # The in-process memo must not mask checkpoint behaviour.
        monkeypatch.setattr(quality_grid, "_grid_cache", {})

    def _counting(self, monkeypatch):
        counts = {"cwsc": 0, "cmc_epsilon": 0}
        real_cwsc = quality_grid.cwsc
        real_cmc = quality_grid.cmc_epsilon

        def counting_cwsc(*args, **kwargs):
            counts["cwsc"] += 1
            return real_cwsc(*args, **kwargs)

        def counting_cmc(*args, **kwargs):
            counts["cmc_epsilon"] += 1
            return real_cmc(*args, **kwargs)

        monkeypatch.setattr(quality_grid, "cwsc", counting_cwsc)
        monkeypatch.setattr(quality_grid, "cmc_epsilon", counting_cmc)
        return counts

    def test_interrupted_run_resumes_without_recompute(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "table4-small.json"
        counts = self._counting(monkeypatch)

        # Full run: every cell computed, snapshotted per cell.
        store = CheckpointStore(path)
        report = run_experiment("table4", "small", checkpoint=store)
        total_cells = len(store)
        assert total_cells == store.misses > 0
        assert counts["cwsc"] + counts["cmc_epsilon"] == total_cells

        # "Crash" after some cells: keep only the first half on disk.
        payload = json.loads(path.read_text())
        kept = dict(list(payload["cells"].items())[: total_cells // 2])
        payload["cells"] = kept
        path.write_text(json.dumps(payload))

        # Resume: only the missing cells are recomputed.
        counts["cwsc"] = counts["cmc_epsilon"] = 0
        resumed_store = CheckpointStore(path)
        assert len(resumed_store) == len(kept)
        resumed = run_experiment("table4", "small", checkpoint=resumed_store)
        recomputed = counts["cwsc"] + counts["cmc_epsilon"]
        assert recomputed == total_cells - len(kept)
        assert resumed_store.hits == len(kept)
        assert resumed.data["costs"] == report.data["costs"]

    def test_complete_checkpoint_recomputes_nothing(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "table4-small.json"
        store = CheckpointStore(path)
        run_experiment("table4", "small", checkpoint=store)

        counts = self._counting(monkeypatch)
        done_store = CheckpointStore(path)
        report = run_experiment("table4", "small", checkpoint=done_store)
        assert counts["cwsc"] == counts["cmc_epsilon"] == 0
        assert done_store.hits == len(done_store)
        # Deserialized cells behave like real results downstream.
        for costs in report.data["costs"].values():
            for cost in costs.values():
                assert isinstance(cost, float)

    def test_checkpointed_run_matches_uncheckpointed(self, tmp_path):
        plain = run_experiment("table4", "small")
        store = CheckpointStore(tmp_path / "ck.json")
        checked = run_experiment("table4", "small", checkpoint=store)
        assert checked.data["costs"] == plain.data["costs"]

    def test_resume_with_corrupted_cell_recomputes_only_it(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "table4-small.json"
        store = CheckpointStore(path)
        report = run_experiment("table4", "small", checkpoint=store)
        total_cells = len(store)

        # Mangle one cell's payload (wrong shape entirely).
        payload = json.loads(path.read_text())
        bad_key = next(iter(payload["cells"]))
        payload["cells"][bad_key] = {"oops": True}
        path.write_text(json.dumps(payload))

        counts = self._counting(monkeypatch)
        resumed_store = CheckpointStore(path)
        resumed = run_experiment("table4", "small", checkpoint=resumed_store)
        assert counts["cwsc"] + counts["cmc_epsilon"] == 1
        assert resumed_store.bad_cells == 1
        assert resumed_store.hits == total_cells - 1
        assert resumed.data["costs"] == report.data["costs"]

    def test_resume_with_truncated_checkpoint_recomputes_all(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "table4-small.json"
        store = CheckpointStore(path)
        report = run_experiment("table4", "small", checkpoint=store)
        total_cells = len(store)

        # Tear the file as a crash mid-write would.
        text = path.read_text()
        path.write_text(text[: len(text) - 20])

        counts = self._counting(monkeypatch)
        resumed_store = CheckpointStore(path)
        assert resumed_store.quarantined_from is not None
        resumed = run_experiment("table4", "small", checkpoint=resumed_store)
        assert counts["cwsc"] + counts["cmc_epsilon"] == total_cells
        assert resumed.data["costs"] == report.data["costs"]


class TestResultRoundTrip:
    def test_result_from_dict_preserves_claims(self, random_system):
        from repro.core.cwsc import cwsc
        from repro.core.result import result_from_dict

        system = random_system(n_elements=15, n_sets=10)
        original = cwsc(system, 4, 0.9)
        clone = result_from_dict(original.to_dict())
        assert isinstance(clone, CoverResult)
        assert clone.set_ids == original.set_ids
        assert clone.total_cost == original.total_cost
        assert clone.covered == original.covered
        assert clone.feasible == original.feasible
        assert clone.algorithm == original.algorithm
