"""Universe-sharded pool solves: identity with the single-process
packed backend, shard planning, and failure fallback."""

from __future__ import annotations

import pytest

from repro.core.packed import HAVE_NUMPY
from repro.errors import ValidationError
from repro.resilience.pool.sharded import (
    ShardError,
    ShardSession,
    plan_shards,
    sharded_solve,
)

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="sharded solves require numpy >= 2.0"
)


class TestPlanShards:
    def test_word_aligned_partition(self):
        ranges = plan_shards(300, 3)
        assert ranges[0][0] == 0 and ranges[-1][1] == 300
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo
            assert lo % 64 == 0

    def test_more_shards_than_words_yields_empty_tails(self):
        ranges = plan_shards(100, 3)
        assert ranges == [(0, 64), (64, 100), (100, 100)]

    def test_single_shard_is_whole_universe(self):
        assert plan_shards(130, 1) == [(0, 130)]

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValidationError):
            plan_shards(100, 0)


def _solve_pair(system, algorithm, shards, workers=None, **kwargs):
    from repro.core.cmc import cmc
    from repro.core.cmc_epsilon import cmc_epsilon
    from repro.core.cwsc import cwsc

    single = {"cwsc": cwsc, "cmc": cmc, "cmc_epsilon": cmc_epsilon}[
        algorithm
    ](system, k=4, s_hat=0.8, backend="packed", **kwargs)
    sharded = sharded_solve(
        system,
        k=4,
        s_hat=0.8,
        algorithm=algorithm,
        shards=shards,
        workers=workers,
        **kwargs,
    )
    return single, sharded


def _assert_identical(single, sharded):
    assert sharded.set_ids == single.set_ids
    assert sharded.total_cost == single.total_cost
    assert sharded.covered == single.covered
    assert sharded.feasible == single.feasible
    assert sharded.metrics.selections == single.metrics.selections
    assert (
        sharded.metrics.marginal_updates
        == single.metrics.marginal_updates
    )
    assert (
        sharded.metrics.sets_considered == single.metrics.sets_considered
    )
    assert sharded.metrics.budget_rounds == single.metrics.budget_rounds


class TestShardedMatchesPacked:
    @pytest.mark.parametrize("algorithm", ["cwsc", "cmc"])
    @pytest.mark.parametrize("shards", [1, 3])
    def test_identical_selections_and_metrics(
        self, random_system, algorithm, shards
    ):
        system = random_system(n_elements=90, n_sets=14, seed=3)
        single, sharded = _solve_pair(system, algorithm, shards)
        _assert_identical(single, sharded)
        assert sharded.params["sharding"] == {
            "shards": shards,
            "workers": sharded.params["sharding"]["workers"],
        }

    def test_more_shards_than_workers(self, random_system):
        # 5 shards on 2 workers: round-robin queuing, same answer. The
        # tiny universe also makes several shards empty, and with only
        # one word every element-owning shard is the first one.
        system = random_system(n_elements=40, n_sets=10, seed=5)
        single, sharded = _solve_pair(system, "cwsc", shards=5, workers=2)
        _assert_identical(single, sharded)
        assert sharded.params["sharding"]["workers"] == 2

    def test_cmc_epsilon_sharded(self, random_system):
        system = random_system(n_elements=70, n_sets=12, seed=11)
        single, sharded = _solve_pair(system, "cmc_epsilon", 2, eps=0.5)
        _assert_identical(single, sharded)


class TestShardFailure:
    def _kill_after_first_select(self, monkeypatch):
        real_select = ShardSession.select
        calls = {"n": 0}

        def dying(self, set_id):
            calls["n"] += 1
            if calls["n"] == 2:
                # Mid-round worker death: every subsequent collect sees
                # EOF and must surface a ShardError.
                for proc in self._procs:
                    proc.kill()
            return real_select(self, set_id)

        monkeypatch.setattr(ShardSession, "select", dying)

    def test_mid_round_death_falls_back_single_process(
        self, random_system, monkeypatch
    ):
        system = random_system(n_elements=90, n_sets=14, seed=3)
        reference = _solve_pair(system, "cwsc", shards=2)[0]
        self._kill_after_first_select(monkeypatch)
        result = sharded_solve(
            system, k=4, s_hat=0.8, algorithm="cwsc", shards=2
        )
        assert result.set_ids == reference.set_ids
        assert result.total_cost == reference.total_cost
        assert "fallback" in result.params["sharding"]

    def test_no_fallback_raises_shard_error(
        self, random_system, monkeypatch
    ):
        system = random_system(n_elements=90, n_sets=14, seed=3)
        self._kill_after_first_select(monkeypatch)
        with pytest.raises(ShardError):
            sharded_solve(
                system,
                k=4,
                s_hat=0.8,
                algorithm="cwsc",
                shards=2,
                fallback=False,
            )

    def test_unknown_algorithm_rejected(self, random_system):
        with pytest.raises(ValidationError):
            sharded_solve(
                random_system(), k=4, s_hat=0.8, algorithm="greedy9000"
            )


class TestResilientSolveKnobs:
    def test_inline_sharded_matches_inline_packed(self, random_system):
        from repro.resilience import resilient_solve

        # chain=("cwsc",): the default chain's exact stage would answer
        # this small instance before the sharded stage ever runs.
        system = random_system(n_elements=90, n_sets=14, seed=3)
        plain = resilient_solve(
            system, k=4, s_hat=0.8, chain=("cwsc",), backend="packed"
        )
        sharded = resilient_solve(
            system, k=4, s_hat=0.8, chain=("cwsc",), shards=2
        )
        assert sharded.set_ids == plain.set_ids
        assert sharded.total_cost == plain.total_cost
        assert sharded.params["sharding"]["shards"] == 2

    def test_sharding_provenance_survives_result_roundtrip(
        self, random_system
    ):
        from repro.core.result import result_from_dict

        system = random_system(n_elements=90, n_sets=14, seed=3)
        result = sharded_solve(system, k=4, s_hat=0.8, shards=2)
        rebuilt = result_from_dict(result.to_dict())
        assert rebuilt.params["sharding"] == result.params["sharding"]
        assert rebuilt.params["sharding"]["shards"] == 2

    def test_inline_rejects_bad_knobs(self, random_system):
        from repro.resilience import resilient_solve

        with pytest.raises(ValidationError):
            resilient_solve(random_system(), k=4, s_hat=0.8, shards=0)
        with pytest.raises(ValidationError):
            resilient_solve(
                random_system(), k=4, s_hat=0.8, backend="gpu"
            )


class TestShardTraceCapture:
    """Worker-side span capture over shard RPCs (shard_open / select /
    reset frames), replayed into the parent's tracer under ``sh<N>.``
    prefixes — the mechanism that lets a pool worker acting as sharding
    parent ship shard spans home inside its own capture."""

    def test_shard_frames_replay_spans_into_parent_tracer(
        self, random_system
    ):
        import io as _io
        import json as _json

        from repro.obs import trace as obs_trace

        system = random_system(n_elements=140, n_sets=10, seed=3)
        buffer = _io.StringIO()
        obs_trace.configure(buffer, command="shard-capture-test")
        try:
            with ShardSession(system, shards=2, workers=1) as session:
                session.select(0)
                session.reset()
        finally:
            obs_trace.shutdown()
        records = [
            _json.loads(line) for line in buffer.getvalue().splitlines()
        ]
        spans = [r for r in records if r.get("type") == "span"]
        by_name: dict[str, list[dict]] = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        # One open/select/reset span per shard, captured in the shard
        # worker and replayed here.
        assert len(by_name.get("shard_open", [])) == 2
        assert len(by_name.get("shard_select", [])) == 2
        assert len(by_name.get("shard_reset", [])) == 2
        for span in (
            by_name["shard_open"]
            + by_name["shard_select"]
            + by_name["shard_reset"]
        ):
            assert span["span_id"].startswith("sh"), span["span_id"]
            assert span["attrs"]["shard"] in (0, 1)
        # Replayed shard spans parent onto the live span at replay time
        # (the shard_session_open span for open frames).
        open_parent_ids = {s["parent_id"] for s in by_name["shard_open"]}
        session_span = by_name["shard_session_open"][0]
        assert open_parent_ids == {session_span["span_id"]}

    def test_shard_spans_inherit_request_trace_context(self, random_system):
        """Under a bound TraceContext the whole shard subtree replays
        with the originating request's traceparent stamped on frames."""
        import io as _io
        import json as _json

        from repro.obs import trace as obs_trace

        system = random_system(n_elements=140, n_sets=10, seed=4)
        ctx = obs_trace.TraceContext.mint()
        buffer = _io.StringIO()
        obs_trace.configure(buffer, command="shard-ctx-test")
        try:
            with obs_trace.context(ctx):
                result = sharded_solve(
                    system, k=3, s_hat=0.6, algorithm="cwsc", shards=2,
                    workers=1,
                )
        finally:
            obs_trace.shutdown()
        assert result.feasible
        records = [
            _json.loads(line) for line in buffer.getvalue().splitlines()
        ]
        names = {
            r["name"] for r in records if r.get("type") == "span"
        }
        assert "shard_open" in names and "shard_select" in names

    def test_untraced_session_ships_no_trace_frames(self, random_system):
        from repro.obs import trace as obs_trace

        assert not obs_trace.enabled()
        system = random_system(n_elements=140, n_sets=10, seed=5)
        with ShardSession(system, shards=2, workers=1) as session:
            assert session._trace is False
            replies = session.select(0)
        assert all("trace" not in frame for frame in replies.values())
