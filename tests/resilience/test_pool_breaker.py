"""Circuit breakers: state machine, probe discipline, chain routing."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.resilience.pool.breaker import BreakerBoard, CircuitBreaker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self, clock):
        breaker = CircuitBreaker("exact", clock=clock)
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_opens_after_consecutive_failures(self, clock):
        breaker = CircuitBreaker("exact", failure_threshold=3, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.times_opened == 1

    def test_success_resets_the_count(self, clock):
        breaker = CircuitBreaker("exact", failure_threshold=2, clock=clock)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # non-consecutive

    def test_cooldown_half_opens_with_single_probe(self, clock):
        breaker = CircuitBreaker(
            "exact", failure_threshold=1, cooldown=30.0, clock=clock
        )
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(29.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.state == "half_open"
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # everyone else keeps waiting

    def test_probe_success_closes(self, clock):
        breaker = CircuitBreaker(
            "exact", failure_threshold=1, cooldown=1.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_for_another_cooldown(self, clock):
        breaker = CircuitBreaker(
            "exact", failure_threshold=5, cooldown=1.0, clock=clock
        )
        for _ in range(5):
            breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()  # single half-open failure re-opens
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.times_opened == 2

    def test_snapshot(self, clock):
        breaker = CircuitBreaker("cwsc", failure_threshold=1, clock=clock)
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["state"] == "open"
        assert snap["total_failures"] == 1
        assert snap["times_opened"] == 1

    def test_bad_parameters_rejected(self, clock):
        with pytest.raises(ValidationError):
            CircuitBreaker("x", failure_threshold=0, clock=clock)
        with pytest.raises(ValidationError):
            CircuitBreaker("x", cooldown=-1.0, clock=clock)


class TestBreakerBoard:
    def test_routes_around_open_stage(self, clock):
        board = BreakerBoard(failure_threshold=1, clock=clock)
        board.record_failure("exact")
        allowed, routed = board.filter_chain(("exact", "cwsc", "universal"))
        assert allowed == ("cwsc", "universal")
        assert routed == ("exact",)

    def test_universal_is_never_routed_around(self, clock):
        board = BreakerBoard(failure_threshold=1, clock=clock)
        board.record_failure("universal")  # silently ignored
        allowed, routed = board.filter_chain(("universal",))
        assert allowed == ("universal",)
        assert routed == ()

    def test_all_stages_open_falls_back_to_original_chain(self, clock):
        board = BreakerBoard(failure_threshold=1, clock=clock)
        board.record_failure("exact")
        board.record_failure("cwsc")
        allowed, routed = board.filter_chain(("exact", "cwsc"))
        assert allowed == ("exact", "cwsc")
        assert routed == ()

    def test_success_heals_the_stage(self, clock):
        board = BreakerBoard(failure_threshold=1, cooldown=1.0, clock=clock)
        board.record_failure("exact")
        clock.advance(1.0)
        assert board.filter_chain(("exact",))[0] == ("exact",)  # probe
        board.record_success("exact")
        assert board.breaker("exact").state == "closed"

    def test_record_none_is_a_no_op(self, clock):
        board = BreakerBoard(clock=clock)
        board.record_failure(None)
        board.record_success(None)
        assert board.snapshot() == {}

    def test_snapshot_is_sorted_by_name(self, clock):
        board = BreakerBoard(clock=clock)
        board.record_failure("zeta")
        board.record_failure("alpha")
        assert list(board.snapshot()) == ["alpha", "zeta"]
