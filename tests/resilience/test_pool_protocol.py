"""Pool IPC: framing, garbage tolerance, and label/system fidelity."""

from __future__ import annotations

import io
import json
import struct

import pytest

from repro.core.cwsc import cwsc
from repro.errors import ProtocolError
from repro.resilience.pool.protocol import (
    MAX_FRAME_BYTES,
    FrameReader,
    RemoteLabel,
    RemoteSortedLabel,
    SolveRequest,
    encode_frame,
    encode_request,
    read_frame,
    request_from_payload,
    system_from_payload,
    system_to_payload,
    write_frame,
)


class TestFraming:
    def test_round_trip(self):
        payload = {"kind": "ping", "n": 3, "x": [1.5, None, "text"]}
        stream = io.BytesIO(encode_frame(payload))
        assert read_frame(stream) == payload
        assert read_frame(stream) is None  # clean EOF

    def test_write_frame_flushes(self):
        class Recorder(io.BytesIO):
            flushed = False

            def flush(self):
                self.flushed = True

        stream = Recorder()
        write_frame(stream, {"kind": "pong"})
        assert stream.flushed

    def test_eof_mid_body_raises(self):
        data = encode_frame({"kind": "ready"})
        stream = io.BytesIO(data[:-3])
        with pytest.raises(ProtocolError, match="mid-frame"):
            read_frame(stream)

    def test_eof_mid_header_raises(self):
        stream = io.BytesIO(b"\x00\x00")
        with pytest.raises(ProtocolError):
            read_frame(stream)

    def test_implausible_length_rejected(self):
        header = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="exceeds"):
            read_frame(io.BytesIO(header + b"x"))

    def test_non_json_body_rejected(self):
        body = b"\x00\xff garbage"
        frame = struct.pack(">I", len(body)) + body
        with pytest.raises(ProtocolError, match="JSON"):
            read_frame(io.BytesIO(frame))

    def test_non_object_body_rejected(self):
        body = json.dumps([1, 2]).encode()
        frame = struct.pack(">I", len(body)) + body
        with pytest.raises(ProtocolError, match="object"):
            read_frame(io.BytesIO(frame))


class TestFrameReader:
    def test_byte_at_a_time(self):
        payloads = [{"kind": "ready", "i": i} for i in range(3)]
        data = b"".join(encode_frame(p) for p in payloads)
        reader = FrameReader()
        seen = []
        for i in range(len(data)):
            seen.extend(reader.feed(data[i : i + 1]))
        assert seen == payloads
        assert reader.pending_bytes == 0

    def test_many_frames_in_one_chunk(self):
        payloads = [{"kind": "stage", "stage": f"s{i}"} for i in range(5)]
        reader = FrameReader()
        assert reader.feed(
            b"".join(encode_frame(p) for p in payloads)
        ) == payloads

    def test_partial_frame_buffers(self):
        data = encode_frame({"kind": "result", "id": 7})
        reader = FrameReader()
        assert reader.feed(data[:5]) == []
        assert reader.pending_bytes == 5
        assert reader.feed(data[5:]) == [{"kind": "result", "id": 7}]

    def test_lying_length_prefix_raises(self):
        reader = FrameReader()
        with pytest.raises(ProtocolError, match="exceeds"):
            reader.feed(struct.pack(">I", MAX_FRAME_BYTES * 2) + b"xxxx")

    def test_garbage_body_raises(self):
        reader = FrameReader()
        body = b"\xde\xad\xbe\xef"
        with pytest.raises(ProtocolError):
            reader.feed(struct.pack(">I", len(body)) + body)


class TestFrameReaderAdversarial:
    """Hostile byte streams: partial writes and interleaved garbage.

    These pin the supervisor-facing contract: single-byte dribble is
    fine, any garbage raises, and the *caller* (which kills the worker
    and discards its pipe) is responsible for recovery — a reader that
    saw a lying length prefix can never resynchronize.
    """

    def test_single_byte_writes_with_trailing_partial(self):
        payloads = [{"kind": "ready", "i": i} for i in range(2)]
        trailing = encode_frame({"kind": "result", "id": 99})
        data = b"".join(encode_frame(p) for p in payloads) + trailing[:-4]
        reader = FrameReader()
        seen = []
        for i in range(len(data)):
            seen.extend(reader.feed(data[i : i + 1]))
        assert seen == payloads
        assert reader.pending_bytes == len(trailing) - 4
        # Completing the partial frame later yields it intact.
        assert reader.feed(trailing[-4:]) == [{"kind": "result", "id": 99}]
        assert reader.pending_bytes == 0

    def test_garbage_frame_between_valid_frames_across_feeds(self):
        reader = FrameReader()
        assert reader.feed(encode_frame({"kind": "a"})) == [{"kind": "a"}]
        garbage = b"\xde\xad\xbe\xef"
        with pytest.raises(ProtocolError, match="JSON"):
            reader.feed(struct.pack(">I", len(garbage)) + garbage)
        # A garbage *body* is consumed whole, so the stream position is
        # past it: a subsequent valid frame still decodes. (In
        # production the supervisor never reads on: it kills the
        # worker; this documents the reader's own state.)
        assert reader.feed(encode_frame({"kind": "b"})) == [{"kind": "b"}]

    def test_garbage_in_same_chunk_raises_and_drops_earlier_frames(self):
        reader = FrameReader()
        garbage = b"not json"
        chunk = (
            encode_frame({"kind": "early"})
            + struct.pack(">I", len(garbage))
            + garbage
            + encode_frame({"kind": "late"})
        )
        # The raise wins over partial results: frames decoded earlier in
        # the same feed() call are lost with it. Callers that care must
        # feed frame-by-frame — the supervisor instead treats any raise
        # as worker death, so nothing is silently dropped in practice.
        with pytest.raises(ProtocolError):
            reader.feed(chunk)
        assert reader.feed(b"") == [{"kind": "late"}]

    def test_garbage_body_fed_byte_by_byte_raises_on_final_byte(self):
        garbage = b"\x00\xffnope"
        data = struct.pack(">I", len(garbage)) + garbage
        reader = FrameReader()
        for i in range(len(data) - 1):
            assert reader.feed(data[i : i + 1]) == []
        with pytest.raises(ProtocolError):
            reader.feed(data[-1:])

    def test_lying_length_prefix_poisons_the_reader(self):
        reader = FrameReader()
        with pytest.raises(ProtocolError, match="exceeds"):
            reader.feed(struct.pack(">I", MAX_FRAME_BYTES + 1))
        # The prefix is unconsumed and unresynchronizable: every
        # subsequent feed raises again, valid bytes or not.
        with pytest.raises(ProtocolError, match="exceeds"):
            reader.feed(encode_frame({"kind": "fine"}))


class TestLabelShims:
    def test_remote_label_repr_fidelity(self):
        shim = RemoteLabel("Pattern('A', ALL)")
        assert repr(shim) == "Pattern('A', ALL)"

    def test_plain_shim_has_no_sort_key(self):
        # canonical_key probes getattr(label, "sort_key"); a label that
        # never had one must not grow one in transit.
        assert getattr(RemoteLabel("x"), "sort_key", None) is None

    def test_sorted_shim_round_trips_tuples(self):
        shim = RemoteSortedLabel("p", (1, (0, "A"), (1, "*")))
        assert shim.sort_key() == (1, (0, "A"), (1, "*"))

    def test_shim_equality_and_hash(self):
        assert RemoteLabel("a") == RemoteLabel("a")
        assert RemoteLabel("a") != RemoteLabel("b")
        assert hash(RemoteLabel("a")) == hash(RemoteLabel("a"))


class TestSystemPayload:
    def test_round_trip_preserves_structure(self, random_system):
        system = random_system(n_elements=15, n_sets=9, seed=3)
        clone = system_from_payload(
            json.loads(json.dumps(system_to_payload(system)))
        )
        assert clone.n_elements == system.n_elements
        assert clone.n_sets == system.n_sets
        for original, copied in zip(system.sets, clone.sets):
            assert set(copied.benefit) == set(original.benefit)
            assert copied.cost == original.cost

    def test_round_trip_preserves_greedy_selection(self, entities_system):
        # The determinism contract: a solver on the round-tripped system
        # (pattern labels with sort keys) picks exactly the same sets.
        clone = system_from_payload(
            json.loads(json.dumps(system_to_payload(entities_system)))
        )
        original = cwsc(entities_system, 3, 0.5)
        remote = cwsc(clone, 3, 0.5)
        assert remote.set_ids == original.set_ids
        assert remote.total_cost == original.total_cost
        assert [repr(label) for label in remote.labels] == [
            repr(label) for label in original.labels
        ]

    def test_malformed_payload_raises_protocol_error(self):
        with pytest.raises(ProtocolError, match="malformed"):
            system_from_payload({"n": 3})
        with pytest.raises(ProtocolError, match="malformed"):
            system_from_payload({"n": 3, "sets": [[1]]})
        with pytest.raises(ProtocolError, match="label"):
            system_from_payload(
                {"n": 3, "sets": [[[0], 1.0, {"bogus": True}]]}
            )


class TestRequestPayload:
    def test_round_trip(self, random_system):
        system = random_system()
        request = SolveRequest(
            system=system,
            k=4,
            s_hat=0.75,
            solver="resilient",
            chain=("cwsc", "universal"),
            timeout=2.5,
            stage_options={"cmc": {"b": 2.0}},
            options={"max_retries": 1},
            seed=11,
            tag="cell-1",
        )
        request_id, decoded = request_from_payload(
            json.loads(json.dumps(encode_request(request, 42)))
        )
        assert request_id == 42
        assert decoded.k == 4
        assert decoded.s_hat == 0.75
        assert decoded.chain == ("cwsc", "universal")
        assert decoded.timeout == 2.5
        assert decoded.stage_options == {"cmc": {"b": 2.0}}
        assert decoded.options == {"max_retries": 1}
        assert decoded.seed == 11
        assert decoded.system.n_sets == system.n_sets

    def test_malformed_request_raises(self):
        with pytest.raises(ProtocolError, match="malformed solve request"):
            request_from_payload({"kind": "solve", "id": 1})


class TestSystemFingerprintCache:
    """Payload/fingerprint caching on both sides of the pipe."""

    @pytest.fixture(autouse=True)
    def _fresh_worker_cache(self):
        from repro.resilience.pool import protocol

        protocol._SYSTEM_CACHE.clear()
        yield
        protocol._SYSTEM_CACHE.clear()

    def test_payload_cached_per_system(self, random_system):
        from repro.resilience.pool.protocol import (
            system_payload_and_fingerprint,
        )

        system = random_system(n_elements=10, n_sets=6, seed=1)
        first = system_payload_and_fingerprint(system)
        assert system_payload_and_fingerprint(system) is first

    def test_fingerprint_tracks_content(self, random_system):
        from repro.resilience.pool.protocol import (
            system_payload_and_fingerprint,
        )

        a = random_system(n_elements=10, n_sets=6, seed=1)
        b = random_system(n_elements=10, n_sets=6, seed=1)
        c = random_system(n_elements=10, n_sets=6, seed=2)
        assert (
            system_payload_and_fingerprint(a)[1]
            == system_payload_and_fingerprint(b)[1]
        )
        assert (
            system_payload_and_fingerprint(a)[1]
            != system_payload_and_fingerprint(c)[1]
        )

    def test_encode_request_carries_fingerprint(self, random_system):
        from repro.resilience.pool.protocol import (
            system_payload_and_fingerprint,
        )

        system = random_system()
        frame = encode_request(SolveRequest(system=system, k=2, s_hat=0.5), 7)
        assert frame["system_fp"] == system_payload_and_fingerprint(system)[1]

    def test_worker_reuses_system_for_repeated_fingerprint(
        self, random_system
    ):
        system = random_system(n_elements=12, n_sets=7, seed=5)
        frame = json.loads(
            json.dumps(
                encode_request(SolveRequest(system=system, k=2, s_hat=0.5), 1)
            )
        )
        _, first = request_from_payload(dict(frame))
        _, second = request_from_payload(dict(frame))
        assert second.system is first.system

    def test_frames_without_fingerprint_still_decode(self, random_system):
        system = random_system()
        frame = encode_request(SolveRequest(system=system, k=2, s_hat=0.5), 1)
        frame.pop("system_fp")
        _, decoded = request_from_payload(frame)
        assert decoded.system.n_sets == system.n_sets

    def test_worker_cache_is_bounded(self, random_system):
        from repro.resilience.pool import protocol

        for seed in range(protocol.SYSTEM_CACHE_SIZE + 2):
            system = random_system(n_elements=8, n_sets=4, seed=seed)
            request_from_payload(
                encode_request(SolveRequest(system=system, k=1, s_hat=0.5), seed)
            )
        assert len(protocol._SYSTEM_CACHE) == protocol.SYSTEM_CACHE_SIZE
