"""Unit tests for incremental solution maintenance."""

import pytest

from repro.datasets.lbl import lbl_trace
from repro.errors import ValidationError
from repro.extensions.incremental import IncrementalCWSC
from repro.patterns.table import PatternTable


def small_trace(n: int, seed: int) -> PatternTable:
    return lbl_trace(n, seed=seed)


class TestLifecycle:
    def test_initial_solution_feasible(self):
        maintainer = IncrementalCWSC(small_trace(300, 1), k=5, s_hat=0.4)
        result = maintainer.current_result()
        assert result.feasible
        assert result.n_sets <= 5

    def test_feasibility_maintained_across_batches(self):
        maintainer = IncrementalCWSC(small_trace(300, 1), k=5, s_hat=0.4)
        for seed in (2, 3, 4):
            result = maintainer.add_records(small_trace(150, seed))
            assert result.feasible
            assert result.n_sets <= 5
        assert maintainer.table.n_rows == 300 + 3 * 150
        assert maintainer.stats.batches == 3

    def test_kept_when_patterns_absorb_batch(self):
        base = small_trace(300, 1)
        maintainer = IncrementalCWSC(base, k=5, s_hat=0.3)
        # Re-adding records identical to the base: the selected patterns
        # match them, so coverage fraction is preserved.
        result = maintainer.add_records(base)
        assert result.feasible
        assert maintainer.stats.kept == 1
        assert maintainer.stats.recomputed == 0

    def test_eventual_repair_or_recompute(self):
        maintainer = IncrementalCWSC(small_trace(200, 1), k=6, s_hat=0.5)
        # A batch from a different seed shifts the distribution.
        maintainer.add_records(small_trace(400, 99))
        stats = maintainer.stats
        assert stats.kept + stats.repaired + stats.recomputed == 1
        assert maintainer.current_result().feasible

    def test_validation(self):
        with pytest.raises(ValidationError):
            IncrementalCWSC(small_trace(50, 1), k=0, s_hat=0.5)
        with pytest.raises(ValidationError):
            IncrementalCWSC(small_trace(50, 1), k=2, s_hat=1.5)

    def test_schema_mismatch_rejected(self):
        maintainer = IncrementalCWSC(small_trace(50, 1), k=3, s_hat=0.3)
        with pytest.raises(ValidationError):
            maintainer.add_records(PatternTable(("X",), [("v",)]))


class TestCostTracking:
    def test_costs_reflect_grown_table(self):
        # max-costs can only grow as new records match the patterns.
        maintainer = IncrementalCWSC(small_trace(300, 1), k=5, s_hat=0.3)
        before = maintainer.current_result().total_cost
        maintainer.add_records(small_trace(300, 5))
        after = maintainer.current_result().total_cost
        if maintainer.stats.kept == 1:
            assert after >= before - 1e-9
