"""Unit tests for multi-weight sets (scalarization + Pareto sweep)."""

import pytest

from repro.errors import ValidationError
from repro.extensions.multiweight import (
    MultiWeightSetSystem,
    pareto_sweep,
)


@pytest.fixture
def system() -> MultiWeightSetSystem:
    # Two ways to cover {0..3}: cheap-money/high-risk halves vs. an
    # expensive-money/low-risk full set.
    return MultiWeightSetSystem(
        n_elements=4,
        benefits=[{0, 1}, {2, 3}, {0, 1, 2, 3}],
        weight_vectors=[(1.0, 5.0), (1.0, 5.0), (4.0, 1.0)],
        weight_names=("money", "risk"),
    )


class TestScalarize:
    def test_weighted_costs(self, system):
        scalar = system.scalarize((1.0, 0.0))
        assert [ws.cost for ws in scalar.sets] == [1.0, 1.0, 4.0]
        scalar = system.scalarize((0.0, 1.0))
        assert [ws.cost for ws in scalar.sets] == [5.0, 5.0, 1.0]

    def test_mixed(self, system):
        scalar = system.scalarize((0.5, 0.5))
        assert scalar[0].cost == pytest.approx(3.0)
        assert scalar[2].cost == pytest.approx(2.5)

    def test_validation(self, system):
        with pytest.raises(ValidationError):
            system.scalarize((1.0,))
        with pytest.raises(ValidationError):
            system.scalarize((-1.0, 1.0))

    def test_construction_validation(self):
        with pytest.raises(ValidationError):
            MultiWeightSetSystem(2, [{0}], [(1.0,), (2.0,)], ("w",))
        with pytest.raises(ValidationError):
            MultiWeightSetSystem(2, [{0}], [(1.0, 2.0)], ("w",))
        with pytest.raises(ValidationError):
            MultiWeightSetSystem(2, [{0}], [(1.0,)], ())

    def test_totals(self, system):
        assert system.totals([0, 1]) == (2.0, 10.0)
        assert system.totals([2]) == (4.0, 1.0)


class TestParetoSweep:
    def test_frontier_contains_both_extremes(self, system):
        front = pareto_sweep(
            system, k=2, s_hat=1.0,
            multiplier_grid=[(1, 0), (0.5, 0.5), (0, 1)],
        )
        totals = {point.totals for point in front}
        assert (2.0, 10.0) in totals  # money-optimal: the two halves
        assert (4.0, 1.0) in totals  # risk-optimal: the full set

    def test_no_dominated_points(self, system):
        front = pareto_sweep(
            system, k=2, s_hat=1.0,
            multiplier_grid=[(1, 0), (0.7, 0.3), (0.3, 0.7), (0, 1)],
        )
        for a in front:
            for b in front:
                if a is b:
                    continue
                dominated = all(
                    bv <= av for av, bv in zip(a.totals, b.totals)
                ) and any(bv < av for av, bv in zip(a.totals, b.totals))
                assert not dominated

    def test_sorted_by_first_dimension(self, system):
        front = pareto_sweep(
            system, k=2, s_hat=1.0,
            multiplier_grid=[(1, 0), (0, 1)],
        )
        firsts = [point.totals[0] for point in front]
        assert firsts == sorted(firsts)

    def test_results_are_feasible(self, system):
        front = pareto_sweep(
            system, k=2, s_hat=1.0, multiplier_grid=[(1, 0), (0, 1)]
        )
        assert all(point.result.feasible for point in front)
