"""Unit tests for numerical-range pattern attributes."""

import pytest

from repro.errors import ValidationError
from repro.extensions.ranges import (
    bin_numeric_attribute,
    compute_bin_edges,
    interval_label,
)
from repro.patterns.optimized_cwsc import optimized_cwsc
from repro.patterns.table import PatternTable


class TestBinEdges:
    def test_equiwidth(self):
        edges = compute_bin_edges([0.0, 10.0], 4)
        assert edges == [2.5, 5.0, 7.5]

    def test_quantile_balances_counts(self):
        values = list(range(100))
        edges = compute_bin_edges(values, 4, style="quantile")
        counts = [0, 0, 0, 0]
        for value in values:
            index = sum(1 for edge in edges if value > edge)
            counts[index] += 1
        assert max(counts) - min(counts) <= 2

    def test_degenerate_values_collapse(self):
        edges = compute_bin_edges([5.0] * 10, 4)
        assert edges == []  # one bin containing everything

    def test_validation(self):
        with pytest.raises(ValidationError):
            compute_bin_edges([1.0], 1)
        with pytest.raises(ValidationError):
            compute_bin_edges([], 3)
        with pytest.raises(ValidationError):
            compute_bin_edges([1.0], 3, style="nope")


class TestIntervalLabel:
    def test_labels_and_extremes(self):
        edges = [10.0, 20.0]
        assert interval_label(edges, 5.0) == "b000:[-inf, 10)"
        assert interval_label(edges, 10.0) == "b001:[10, 20)"
        assert interval_label(edges, 15.0) == "b001:[10, 20)"
        assert interval_label(edges, 99.0) == "b002:[20, +inf)"

    def test_labels_sort_by_bin_index(self):
        edges = [float(x) for x in range(1, 12)]
        labels = [interval_label(edges, float(v)) for v in range(12)]
        assert labels == sorted(labels)


class TestBinNumericAttribute:
    @pytest.fixture
    def table(self):
        return PatternTable(
            ("kind",),
            [("a",), ("b",), ("a",), ("b",)],
            measure=[1.0, 2.0, 3.0, 4.0],
        )

    def test_adds_fine_column(self, table):
        binned = bin_numeric_attribute(
            table, [5.0, 15.0, 25.0, 35.0], "size", n_bins=2
        )
        assert binned.attributes == ("kind", "size")
        assert binned.rows[0][1].startswith("b000")
        assert binned.rows[3][1].startswith("b001")
        assert binned.measure == table.measure

    def test_coarse_column_nests_fine(self, table):
        binned = bin_numeric_attribute(
            table,
            [1.0, 2.0, 3.0, 4.0],
            "size",
            n_bins=4,
            coarse_bins=2,
        )
        assert binned.attributes == ("kind", "size_coarse", "size")
        # Rows in the same fine bin share their coarse bin.
        fine_to_coarse = {}
        for row in binned.rows:
            fine_to_coarse.setdefault(row[2], set()).add(row[1])
        assert all(len(coarse) == 1 for coarse in fine_to_coarse.values())

    def test_range_patterns_are_solvable(self, table):
        binned = bin_numeric_attribute(
            table, [1.0, 2.0, 30.0, 40.0], "size", n_bins=2
        )
        result = optimized_cwsc(binned, k=1, s_hat=0.5)
        assert result.feasible
        assert result.covered >= 2

    def test_validation(self, table):
        with pytest.raises(ValidationError):
            bin_numeric_attribute(table, [1.0], "size")
        with pytest.raises(ValidationError):
            bin_numeric_attribute(
                table, [1.0, 2.0, 3.0, 4.0], "size", n_bins=3, coarse_bins=3
            )
