"""Unit tests for attribute tree hierarchies."""

import pytest

from repro.errors import ValidationError
from repro.extensions.hierarchy import Taxonomy, flatten_hierarchy
from repro.patterns.optimized_cwsc import optimized_cwsc
from repro.patterns.pattern import ALL
from repro.patterns.table import PatternTable


@pytest.fixture
def taxonomy() -> Taxonomy:
    return Taxonomy(
        {
            "Seattle": "West", "Portland": "West",
            "Boston": "East", "NYC": "East",
            "West": "US", "East": "US",
        }
    )


@pytest.fixture
def table() -> PatternTable:
    return PatternTable(
        ("city", "kind"),
        [
            ("Seattle", "shop"), ("Portland", "shop"),
            ("Boston", "cafe"), ("NYC", "shop"),
        ],
        measure=[1.0, 2.0, 3.0, 9.0],
    )


class TestTaxonomy:
    def test_root_detection(self, taxonomy):
        assert taxonomy.root == "US"

    def test_path_to_root(self, taxonomy):
        assert taxonomy.path_to_root("Seattle") == ["Seattle", "West", "US"]

    def test_depth(self, taxonomy):
        assert taxonomy.depth() == 3

    def test_ancestor_at(self, taxonomy):
        assert taxonomy.ancestor_at("Seattle", 0) == "US"
        assert taxonomy.ancestor_at("Seattle", 1) == "West"
        assert taxonomy.ancestor_at("Seattle", 2) == "Seattle"
        assert taxonomy.ancestor_at("Seattle", 9) == "Seattle"

    def test_unknown_value(self, taxonomy):
        with pytest.raises(ValidationError):
            taxonomy.path_to_root("Mars")

    def test_multiple_roots_rejected(self):
        with pytest.raises(ValidationError):
            Taxonomy({"a": "r1", "b": "r2"})

    def test_cycle_rejected(self):
        with pytest.raises(ValidationError):
            Taxonomy({"a": "b", "b": "a", "c": "root"})


class TestFlatten:
    def test_columns_and_rows(self, table, taxonomy):
        flat = flatten_hierarchy(table, "city", taxonomy)
        assert flat.attributes == ("city_l1", "city_l2", "kind")
        assert flat.rows[0] == ("West", "Seattle", "shop")
        assert flat.measure == table.measure

    def test_custom_level_names(self, table, taxonomy):
        flat = flatten_hierarchy(
            table, "city", taxonomy, level_names=("region", "city")
        )
        assert flat.attributes == ("region", "city", "kind")

    def test_level_name_count_checked(self, table, taxonomy):
        with pytest.raises(ValidationError):
            flatten_hierarchy(table, "city", taxonomy, level_names=("one",))

    def test_unknown_attribute(self, table, taxonomy):
        with pytest.raises(ValidationError):
            flatten_hierarchy(table, "nope", taxonomy)

    def test_depth2_taxonomy_yields_one_column(self, table):
        flat = flatten_hierarchy(
            table, "kind", Taxonomy({"shop": "root", "cafe": "root"})
        )
        assert flat.attributes == ("city", "kind_l1")
        assert flat.rows[0] == ("Seattle", "shop")

    def test_hierarchical_patterns_usable(self, table, taxonomy):
        # After flattening, a region-level pattern covers both west shops
        # and the solver can exploit it.
        flat = flatten_hierarchy(table, "city", taxonomy)
        result = optimized_cwsc(flat, k=1, s_hat=0.5)
        assert result.feasible
        west = [p for p in result.labels if p.values[0] == "West"]
        assert west, f"expected a region-level pattern, got {result.labels}"
        assert west[0].values[1] is ALL
