"""Unit tests validating the paper's hardness reductions (Section IV)."""

import math

import pytest

from repro.core.exact import solve_exact
from repro.core.setsystem import SetSystem
from repro.datasets.tripartite import random_tripartite_graph, tripartite_graph
from repro.errors import ValidationError
from repro.hardness.reduction import (
    lemma1_table,
    theorem1_system,
    theorem3_reduction,
    vertex_patterns,
)
from repro.hardness.vertex_cover import min_vertex_cover_exact
from repro.patterns.index import PatternIndex
from repro.patterns.pattern import ALL, Pattern
from repro.patterns.pattern_sets import build_set_system


class TestLemma1Construction:
    def test_record_shapes(self):
        graph = tripartite_graph(
            [(("a", 0), ("b", 0)), (("a", 0), ("c", 0)), (("b", 0), ("c", 0))]
        )
        table, s_hat = lemma1_table(graph, tau=1.0, big_w=10.0)
        assert table.n_rows == 4  # 3 edges + (x, y, z)
        assert s_hat == pytest.approx(3 / 4)
        assert ("x", "y", "z") in table.rows
        assert max(table.measure) == 10.0
        assert sorted(set(table.measure)) == [1.0, 10.0]

    def test_w_must_exceed_tau(self):
        graph = tripartite_graph([(("a", 0), ("b", 0))])
        with pytest.raises(ValidationError):
            lemma1_table(graph, tau=5.0, big_w=5.0)

    def test_padding_symbols_present(self):
        graph = tripartite_graph(
            [(("a", 0), ("b", 1)), (("a", 1), ("c", 0)), (("b", 0), ("c", 1))]
        )
        table, _ = lemma1_table(graph)
        rows = set(table.rows)
        assert any(row[2] == "z" for row in rows)  # a-b edge
        assert any(row[1] == "y" for row in rows)  # a-c edge
        assert any(row[0] == "x" for row in rows)  # b-c edge


class TestLemma1Optimum:
    @pytest.mark.parametrize("seed", range(4))
    def test_min_patterns_equals_min_vertex_cover(self, seed):
        graph = random_tripartite_graph(3, 0.35, seed=seed)
        vc = min_vertex_cover_exact(graph)
        table, s_hat = lemma1_table(graph)
        system = theorem1_system(build_set_system(table, "max"), tau=1.0)
        # Minimum count = minimum total cost after the Theorem 1 gadget.
        result = solve_exact(system, k=graph.number_of_nodes(), s_hat=s_hat)
        assert result.total_cost == pytest.approx(len(vc))

    def test_vertex_patterns_form_a_solution(self):
        graph = random_tripartite_graph(3, 0.4, seed=9)
        vc = min_vertex_cover_exact(graph)
        table, s_hat = lemma1_table(graph)
        index = PatternIndex(table)
        position = {"a": 0, "b": 1, "c": 2}
        covered: set = set()
        for node in vc:
            values: list = [ALL, ALL, ALL]
            values[position[node[0]]] = node
            covered |= index.benefit(Pattern(values))
        assert len(covered) >= s_hat * table.n_rows

    def test_vertex_patterns_enumeration(self):
        graph = tripartite_graph([(("a", 0), ("b", 0))])
        patterns = vertex_patterns(graph)
        assert Pattern((("a", 0), ALL, ALL)) in patterns
        assert Pattern((ALL, ("b", 0), ALL)) in patterns
        assert len(patterns) == 2


class TestLemma1CostFunctionExtensions:
    """Lemma 1 'extends to other functions over the measure attribute,
    such as the sum or lp-norm, as long as W is sufficiently large'."""

    @pytest.mark.parametrize("cost_name", ["sum", "l2"])
    @pytest.mark.parametrize("seed", range(2))
    def test_min_patterns_equals_vc_for_sum_and_l2(self, cost_name, seed):
        graph = random_tripartite_graph(3, 0.35, seed=seed)
        vc = min_vertex_cover_exact(graph)
        m = graph.number_of_edges()
        # Any W-free pattern covers at most m edge records of measure
        # tau = 1, so its sum-cost is <= m and its l2-cost <= sqrt(m);
        # W must dominate both.
        table, s_hat = lemma1_table(graph, tau=1.0, big_w=10.0 * (m + 1))
        threshold = float(m)  # sum of m records of measure 1
        system = theorem1_system(
            build_set_system(table, cost_name), tau=threshold
        )
        result = solve_exact(system, k=graph.number_of_nodes(), s_hat=s_hat)
        assert result.total_cost == pytest.approx(len(vc))


class TestTheorem1Gadget:
    def test_costs_mapped(self, entities_system):
        gadget = theorem1_system(entities_system, tau=10.0)
        for before, after in zip(entities_system.sets, gadget.sets):
            if before.cost > 10.0:
                assert math.isinf(after.cost)
            else:
                assert after.cost == 1.0
            assert after.benefit == before.benefit


class TestTheorem3:
    def test_benefits_preserved(self, random_system):
        system = random_system(n_elements=8, n_sets=6, seed=2)
        table, mapping = theorem3_reduction(system)
        index = PatternIndex(table)
        for set_id, pattern in mapping.items():
            assert index.benefit(pattern) == system[set_id].benefit

    def test_table_is_identity_like(self):
        system = SetSystem.from_iterables(3, [{0, 2}], [1.0])
        table, mapping = theorem3_reduction(system)
        assert table.n_rows == 3
        assert table.n_attributes == 3
        assert mapping[0].values == (ALL, 0, ALL)

    def test_empty_universe_rejected(self):
        with pytest.raises(ValidationError):
            theorem3_reduction(SetSystem.from_iterables(0, [], []))
