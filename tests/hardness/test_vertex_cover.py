"""Unit tests for the vertex cover solvers."""

import networkx as nx

from repro.datasets.tripartite import random_tripartite_graph
from repro.hardness.vertex_cover import (
    greedy_matching_vertex_cover,
    is_vertex_cover,
    min_vertex_cover_exact,
)


class TestExact:
    def test_triangle_needs_two(self):
        graph = nx.Graph([(0, 1), (1, 2), (0, 2)])
        cover = min_vertex_cover_exact(graph)
        assert len(cover) == 2
        assert is_vertex_cover(graph, cover)

    def test_star_needs_one(self):
        graph = nx.star_graph(5)
        cover = min_vertex_cover_exact(graph)
        assert cover == {0}

    def test_path(self):
        graph = nx.path_graph(5)  # 4 edges, VC = 2
        cover = min_vertex_cover_exact(graph)
        assert len(cover) == 2
        assert is_vertex_cover(graph, cover)

    def test_empty_graph(self):
        assert min_vertex_cover_exact(nx.Graph()) == set()

    def test_random_tripartite_covers(self):
        for seed in range(4):
            graph = random_tripartite_graph(3, 0.4, seed=seed)
            cover = min_vertex_cover_exact(graph)
            assert is_vertex_cover(graph, cover)


class TestGreedy:
    def test_is_cover_and_within_2x(self):
        for seed in range(5):
            graph = random_tripartite_graph(3, 0.4, seed=seed)
            greedy = greedy_matching_vertex_cover(graph)
            exact = min_vertex_cover_exact(graph)
            assert is_vertex_cover(graph, greedy)
            assert len(greedy) <= 2 * len(exact)


class TestIsVertexCover:
    def test_detects_non_cover(self):
        graph = nx.path_graph(3)
        assert not is_vertex_cover(graph, {0})
        assert is_vertex_cover(graph, {1})
