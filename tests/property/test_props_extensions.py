"""Property-based tests for the extensions."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extensions.incremental import IncrementalCWSC
from repro.extensions.multiweight import MultiWeightSetSystem, pareto_sweep

from tests.property.strategies import pattern_tables


class TestIncrementalInvariant:
    @settings(max_examples=25, deadline=None)
    @given(
        pattern_tables(min_rows=3, max_rows=12, min_attrs=2, max_attrs=2),
        st.lists(
            pattern_tables(min_rows=1, max_rows=8, min_attrs=2, max_attrs=2),
            min_size=1,
            max_size=3,
        ),
        st.integers(2, 5),
        st.floats(min_value=0.1, max_value=0.9),
    )
    def test_always_feasible_and_within_k(self, base, batches, k, s_hat):
        maintainer = IncrementalCWSC(base, k=k, s_hat=s_hat)
        for batch in batches:
            result = maintainer.add_records(batch)
            assert result.feasible
            assert result.n_sets <= k
            assert (
                result.covered >= s_hat * maintainer.table.n_rows - 1e-6
            )
        accounted = (
            maintainer.stats.kept
            + maintainer.stats.repaired
            + maintainer.stats.recomputed
        )
        assert accounted == len(batches)


class TestParetoInvariant:
    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_frontier_is_mutually_nondominated(self, data):
        n = data.draw(st.integers(2, 8))
        n_sets = data.draw(st.integers(1, 5))
        benefits = [
            data.draw(st.sets(st.integers(0, n - 1), min_size=1, max_size=n))
            for _ in range(n_sets)
        ]
        benefits.append(set(range(n)))
        weights = [
            (
                data.draw(st.floats(min_value=0.1, max_value=10.0)),
                data.draw(st.floats(min_value=0.1, max_value=10.0)),
            )
            for _ in range(len(benefits))
        ]
        system = MultiWeightSetSystem(n, benefits, weights, ("a", "b"))
        frontier = pareto_sweep(
            system, k=2, s_hat=0.5,
            multiplier_grid=[(1, 0), (0.5, 0.5), (0, 1)],
        )
        assert frontier
        for left in frontier:
            for right in frontier:
                if left is right:
                    continue
                dominates = all(
                    lv <= rv for lv, rv in zip(left.totals, right.totals)
                ) and any(
                    lv < rv for lv, rv in zip(left.totals, right.totals)
                )
                assert not dominates
