"""Hypothesis strategies for random tables and set systems."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.setsystem import SetSystem
from repro.patterns.table import PatternTable

#: Small attribute values so patterns collide and lattices are dense.
attr_values = st.sampled_from(["a", "b", "c", "d"])


@st.composite
def pattern_tables(
    draw,
    min_rows: int = 1,
    max_rows: int = 16,
    min_attrs: int = 1,
    max_attrs: int = 3,
    with_measure: bool = True,
):
    """A small random :class:`PatternTable`."""
    n_attrs = draw(st.integers(min_attrs, max_attrs))
    rows = draw(
        st.lists(
            st.tuples(*([attr_values] * n_attrs)),
            min_size=min_rows,
            max_size=max_rows,
        )
    )
    measure = None
    if with_measure:
        measure = draw(
            st.lists(
                st.floats(
                    min_value=0.1,
                    max_value=100.0,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                min_size=len(rows),
                max_size=len(rows),
            )
        )
    return PatternTable(
        attributes=[f"D{i}" for i in range(n_attrs)],
        rows=rows,
        measure=measure,
    )


@st.composite
def set_systems(
    draw,
    min_elements: int = 1,
    max_elements: int = 12,
    max_sets: int = 8,
    ensure_full_cover: bool = True,
):
    """A small random :class:`SetSystem`."""
    n = draw(st.integers(min_elements, max_elements))
    n_sets = draw(st.integers(1, max_sets))
    benefits = draw(
        st.lists(
            st.sets(st.integers(0, n - 1), min_size=1, max_size=n),
            min_size=n_sets,
            max_size=n_sets,
        )
    )
    costs = draw(
        st.lists(
            st.floats(
                min_value=0.0,
                max_value=50.0,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=len(benefits),
            max_size=len(benefits),
        )
    )
    if ensure_full_cover:
        benefits.append(set(range(n)))
        costs.append(draw(st.floats(min_value=0.0, max_value=50.0)))
    return SetSystem.from_iterables(n, benefits, costs)
