"""Cross-cutting property: every algorithm's result verifies independently.

:func:`repro.core.validate.verify_result` recomputes cost and coverage
from scratch; no algorithm may ever return a result that disagrees with
its own set system.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.budgeted_max_coverage import budgeted_max_coverage
from repro.baselines.max_coverage import max_coverage
from repro.baselines.weighted_set_cover import weighted_set_cover
from repro.core.cmc import COVERAGE_DISCOUNT, cmc
from repro.core.cwsc import cwsc
from repro.core.exact import solve_exact
from repro.core.guarantees import max_sets_standard
from repro.core.lp_rounding import lp_rounding
from repro.core.validate import verify_result
from repro.errors import InfeasibleError

from tests.property.strategies import set_systems

ks = st.integers(1, 3)
fractions = st.floats(min_value=0.0, max_value=1.0)


class TestEveryAlgorithmVerifies:
    @settings(max_examples=30, deadline=None)
    @given(set_systems(max_elements=10, max_sets=6), ks, fractions)
    def test_cwsc(self, system, k, s_hat):
        result = cwsc(system, k, s_hat, on_infeasible="full_cover")
        assert verify_result(system, result, k=k, s_hat=s_hat) == []

    @settings(max_examples=30, deadline=None)
    @given(set_systems(max_elements=10, max_sets=6), ks, fractions)
    def test_cmc(self, system, k, s_hat):
        result = cmc(system, k, s_hat)
        assert verify_result(
            system,
            result,
            k=max_sets_standard(k),
            s_hat=COVERAGE_DISCOUNT * s_hat,
        ) == []

    @settings(max_examples=30, deadline=None)
    @given(set_systems(max_elements=10, max_sets=6), fractions)
    def test_weighted_set_cover(self, system, s_hat):
        result = weighted_set_cover(system, s_hat)
        assert verify_result(system, result, s_hat=s_hat) == []

    @settings(max_examples=30, deadline=None)
    @given(set_systems(max_elements=10, max_sets=6), ks)
    def test_max_coverage(self, system, k):
        result = max_coverage(system, k)
        assert verify_result(system, result, k=k) == []

    @settings(max_examples=30, deadline=None)
    @given(
        set_systems(max_elements=10, max_sets=6),
        st.floats(min_value=0.0, max_value=100.0),
    )
    def test_budgeted_max_coverage(self, system, budget):
        result = budgeted_max_coverage(system, budget)
        assert verify_result(system, result) == []
        assert result.total_cost <= budget + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(set_systems(max_elements=8, max_sets=5), ks, fractions)
    def test_exact(self, system, k, s_hat):
        result = solve_exact(system, k, s_hat)
        assert verify_result(system, result, k=k, s_hat=s_hat) == []

    @settings(max_examples=15, deadline=None)
    @given(set_systems(max_elements=8, max_sets=5), ks, fractions)
    def test_lp_rounding(self, system, k, s_hat):
        result = lp_rounding(system, k, s_hat, trials=3, seed=0)
        # No size bound: the rounding may exceed k by design.
        assert verify_result(system, result, s_hat=s_hat) == []
