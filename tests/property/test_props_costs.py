"""Property-based tests on cost functions and CSV round trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.patterns.costs import (
    COUNT_COST,
    MAX_COST,
    MEAN_COST,
    SUM_COST,
    lp_norm_cost,
)
from repro.patterns.table import PatternTable

measures = st.lists(
    st.floats(min_value=0.01, max_value=1e4, allow_nan=False),
    min_size=1,
    max_size=20,
)


def make_table(values):
    return PatternTable(
        ("a",), [("x",)] * len(values), measure=values
    )


class TestMonotonicity:
    @settings(max_examples=60)
    @given(measures, st.data())
    def test_max_sum_count_monotone_under_superset(self, values, data):
        """Adding rows to a benefit set never lowers max/sum/count cost.

        (This is the property the cheapest-pattern budget seed and the
        lattice cost intuition rely on; mean and lp-norms are NOT
        monotone in general.)
        """
        table = make_table(values)
        n = len(values)
        subset_size = data.draw(st.integers(1, n))
        subset = list(range(subset_size))
        superset = list(range(n))
        for cost in (MAX_COST, SUM_COST, COUNT_COST):
            fn = cost.bind(table)
            assert fn(superset) >= fn(subset) - 1e-12

    @settings(max_examples=60)
    @given(measures)
    def test_bounds_between_functions(self, values):
        """max <= sum, mean <= max, l2 between max and sum."""
        table = make_table(values)
        rows = list(range(len(values)))
        max_cost = MAX_COST.bind(table)(rows)
        sum_cost = SUM_COST.bind(table)(rows)
        mean_cost = MEAN_COST.bind(table)(rows)
        l2_cost = lp_norm_cost(2.0).bind(table)(rows)
        assert max_cost <= sum_cost + 1e-9
        assert mean_cost <= max_cost + 1e-9
        assert max_cost <= l2_cost * (1 + 1e-9)
        assert l2_cost <= sum_cost * (1 + 1e-9)

    @settings(max_examples=60)
    @given(measures)
    def test_lower_bound_is_a_lower_bound(self, values):
        table = make_table(values)
        rows = list(range(len(values)))
        for cost in (MAX_COST, SUM_COST, MEAN_COST):
            assert cost.lower_bound(table) <= cost.bind(table)(rows) + 1e-9


class TestCsvRoundTrip:
    @settings(max_examples=40)
    @given(
        st.lists(
            st.tuples(
                st.text(
                    alphabet=st.characters(
                        blacklist_categories=("Cs",),
                        blacklist_characters="\r\n",
                    ),
                    min_size=0,
                    max_size=12,
                ),
                st.sampled_from(["x", "y,z", 'quo"te', "  pad  "]),
            ),
            min_size=1,
            max_size=10,
        ),
        measures,
    )
    def test_string_tables_round_trip(self, tmp_path_factory, rows, values):
        if len(values) < len(rows):
            values = (values * len(rows))[: len(rows)]
        else:
            values = values[: len(rows)]
        table = PatternTable(("a", "b"), rows, measure=values)
        path = tmp_path_factory.mktemp("csv") / "t.csv"
        table.to_csv(path)
        loaded = PatternTable.from_csv(path, ("a", "b"), measure_name="measure")
        assert loaded.rows == table.rows
        assert all(
            abs(x - y) < 1e-9 for x, y in zip(loaded.measure, table.measure)
        )
