"""Property-based tests on the budget schedule and level schemes."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.budget import (
    budget_schedule,
    generalized_levels,
    merged_levels,
    standard_levels,
)

budgets = st.floats(min_value=0.01, max_value=1e6)
growths = st.floats(min_value=0.05, max_value=5.0)
ks = st.integers(1, 64)
epsilons = st.floats(min_value=0.05, max_value=4.0)


class TestSchedule:
    @settings(max_examples=80)
    @given(budgets, growths, budgets)
    def test_covers_ceiling_and_grows_geometrically(
        self, initial, growth, ceiling
    ):
        values = list(budget_schedule(initial, growth, ceiling))
        assert values[-1] >= min(ceiling, values[0])
        assert values[-1] >= ceiling or values[-1] == values[0]
        for earlier, later in zip(values, values[1:]):
            assert later == earlier * (1.0 + growth)

    @settings(max_examples=80)
    @given(budgets, growths, budgets)
    def test_no_overshoot_past_one_step(self, initial, growth, ceiling):
        values = list(budget_schedule(initial, growth, ceiling))
        # Only the last value may be >= ceiling.
        for value in values[:-1]:
            assert value < ceiling


class TestLevelSchemes:
    @settings(max_examples=80)
    @given(budgets, ks)
    def test_standard_levels_partition_affordable_costs(self, budget, k):
        scheme = standard_levels(budget, k)
        # Probe costs across the whole affordable range.
        for fraction in (0.0, 1e-6, 0.1, 0.3, 0.5, 0.9, 1.0):
            cost = budget * fraction
            level = scheme.level_of(cost)
            assert level is not None
            if cost > 0:
                assert (
                    scheme.lower_bounds[level]
                    < cost
                    <= scheme.upper_bounds[level] + 1e-12
                )
        assert scheme.level_of(budget * 1.0001 + 1e-9) is None

    @settings(max_examples=80)
    @given(budgets, ks)
    def test_standard_quota_bound(self, budget, k):
        assert standard_levels(budget, k).max_selections() <= 5 * k

    @settings(max_examples=80)
    @given(budgets, ks, epsilons)
    def test_merged_quota_bound(self, budget, k, eps):
        scheme = merged_levels(budget, k, eps)
        assert scheme.max_selections() <= (1 + eps) * k + 1e-9
        assert scheme.quotas[-1] == k

    @settings(max_examples=60)
    @given(budgets, ks, st.floats(min_value=1.1, max_value=6.0))
    def test_generalized_levels_cover_range(self, budget, k, base):
        scheme = generalized_levels(budget, k, base)
        for fraction in (0.0, 0.2, 0.7, 1.0):
            assert scheme.level_of(budget * fraction) is not None

    @settings(max_examples=60)
    @given(budgets, ks)
    def test_levels_are_sorted_descending(self, budget, k):
        scheme = standard_levels(budget, k)
        uppers = list(scheme.upper_bounds)
        assert uppers == sorted(uppers, reverse=True)
        assert math.isclose(scheme.upper_bounds[0], budget)
        assert scheme.lower_bounds[-1] == 0.0
