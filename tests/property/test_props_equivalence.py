"""Property-based optimized-vs-unoptimized equivalence (Section V-C1).

The paper states that, with consistent tie-breaking, the optimized CWSC
"chooses exactly the same patterns (and in the same order) as the
unoptimized algorithm". We assert this over random tables, coverage
fractions, sizes and cost functions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cwsc import cwsc
from repro.core.guarantees import guaranteed_coverage, max_sets_standard
from repro.patterns.optimized_cmc import optimized_cmc
from repro.patterns.optimized_cwsc import optimized_cwsc
from repro.patterns.pattern_sets import build_set_system

from tests.property.strategies import pattern_tables

ks = st.integers(1, 4)
fractions = st.floats(min_value=0.0, max_value=1.0)
costs = st.sampled_from(["max", "sum", "mean", "count"])


class TestCWSCEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(pattern_tables(min_rows=2, max_rows=14), ks, fractions, costs)
    def test_same_patterns_same_order(self, table, k, s_hat, cost):
        system = build_set_system(table, cost)
        unopt = cwsc(system, k, s_hat, on_infeasible="full_cover")
        opt = optimized_cwsc(
            table, k, s_hat, cost=cost, on_infeasible="full_cover"
        )
        assert list(opt.labels) == list(unopt.labels)
        assert abs(opt.total_cost - unopt.total_cost) < 1e-9
        assert opt.covered == unopt.covered

    @settings(max_examples=40, deadline=None)
    @given(pattern_tables(min_rows=2, max_rows=14), ks, fractions)
    def test_optimized_considers_no_more_total_work(self, table, k, s_hat):
        """The candidate pool never materializes a pattern with empty
        benefit, so 'considered' is bounded by the nonempty patterns."""
        system = build_set_system(table, "max")
        opt = optimized_cwsc(
            table, k, s_hat, on_infeasible="full_cover"
        )
        assert opt.metrics.sets_considered <= system.n_sets


class TestOptimizedCMCContract:
    @settings(max_examples=40, deadline=None)
    @given(pattern_tables(min_rows=2, max_rows=14), ks, fractions)
    def test_guarantees_on_tables(self, table, k, s_hat):
        result = optimized_cmc(table, k, s_hat)
        assert result.feasible
        assert result.n_sets <= max_sets_standard(k)
        assert result.covered >= (
            guaranteed_coverage(s_hat, table.n_rows) - 1e-6
        )

    @settings(max_examples=30, deadline=None)
    @given(pattern_tables(min_rows=2, max_rows=12), ks, fractions)
    def test_selected_patterns_are_distinct_and_match_table(
        self, table, k, s_hat
    ):
        from repro.patterns.index import PatternIndex

        result = optimized_cmc(table, k, s_hat)
        assert len(set(result.labels)) == result.n_sets
        index = PatternIndex(table)
        covered = set()
        for pattern in result.labels:
            ben = index.benefit(pattern)
            assert ben  # never selects an empty pattern
            covered |= ben
        assert len(covered) == result.covered
