"""Property-based backend equivalence across every marginal tracker.

The bitset tracker (:mod:`repro.core.bitset`,
:class:`repro.core.marginal.BitsetMarginalTracker`) and the numpy
columnar tracker (:mod:`repro.core.packed`, included automatically when
numpy >= 2.0 is importable) are pure representation changes: every
solver must select the same sets, report the same costs/coverage, and
account the same metrics counters on every backend. We assert this over
random set systems for CWSC, CMC, and the CMC-(1+eps)k variant, and
that the mask-based ``remove_dominated`` keeps exactly the survivors of
the frozenset dominance predicate.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cmc import cmc
from repro.core.cmc_epsilon import cmc_epsilon
from repro.core.cwsc import cwsc
from repro.core.marginal import BitsetMarginalTracker, MarginalTracker
from repro.core.packed import HAVE_NUMPY
from repro.core.preprocess import remove_dominated
from repro.core.result import Metrics

from tests.property.strategies import set_systems

ks = st.integers(1, 4)
fractions = st.floats(min_value=0.0, max_value=1.0)

#: Every backend the host can run; packed requires numpy >= 2.0
#: (``np.bitwise_count``), so it drops out rather than failing there.
EQUIV_BACKENDS = ("set", "bitset") + (("packed",) if HAVE_NUMPY else ())


def _run_both(fn, system, **kwargs):
    by_backend = {
        backend: fn(system, backend=backend, **kwargs)
        for backend in EQUIV_BACKENDS
    }
    return by_backend["set"], by_backend


def _assert_identical(set_result, by_backend):
    for result in by_backend.values():
        assert set_result.set_ids == result.set_ids
        assert set_result.labels == result.labels
        assert set_result.total_cost == result.total_cost
        assert set_result.covered == result.covered
        assert set_result.feasible == result.feasible
        assert set_result.metrics.selections == result.metrics.selections
        assert (
            set_result.metrics.marginal_updates
            == result.metrics.marginal_updates
        )
        assert (
            set_result.metrics.budget_rounds
            == result.metrics.budget_rounds
        )
        assert (
            set_result.metrics.sets_considered
            == result.metrics.sets_considered
        )


class TestSolverBackendEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(set_systems(), ks, fractions)
    def test_cwsc_identical(self, system, k, s_hat):
        set_result, by_backend = _run_both(
            cwsc, system, k=k, s_hat=s_hat, on_infeasible="partial"
        )
        _assert_identical(set_result, by_backend)

    @settings(max_examples=60, deadline=None)
    @given(set_systems(), ks, fractions, st.sampled_from([0.5, 1.0, 2.0]))
    def test_cmc_identical(self, system, k, s_hat, b):
        set_result, by_backend = _run_both(
            cmc, system, k=k, s_hat=s_hat, b=b, on_infeasible="partial"
        )
        _assert_identical(set_result, by_backend)
        for backend, result in by_backend.items():
            assert result.params["tracker_backend"] == backend

    @settings(max_examples=60, deadline=None)
    @given(set_systems(), ks, fractions, st.sampled_from([0.25, 1.0]))
    def test_cmc_epsilon_identical(self, system, k, s_hat, eps):
        set_result, by_backend = _run_both(
            cmc_epsilon,
            system,
            k=k,
            s_hat=s_hat,
            eps=eps,
            on_infeasible="partial",
        )
        _assert_identical(set_result, by_backend)


class TestTrackerStepEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(set_systems(), st.randoms(use_true_random=False))
    def test_same_state_after_any_selection_sequence(self, system, rng):
        """Selecting an arbitrary id sequence (including repeats and
        already-evicted sets) leaves every tracker in the same state
        with the same counters."""
        set_metrics = Metrics()
        set_tracker = MarginalTracker(system, metrics=set_metrics)
        others = [BitsetMarginalTracker(system, metrics=Metrics())]
        if HAVE_NUMPY:
            from repro.core.packed import PackedMarginalTracker

            others.append(PackedMarginalTracker(system, metrics=Metrics()))
        ids = [rng.randrange(system.n_sets) for _ in range(6)]
        for set_id in ids:
            newly = set_tracker.select(set_id)
            for other in others:
                assert newly == other.select(set_id)
                assert dict(set_tracker.live_items()) == dict(
                    other.live_items()
                )
                assert set_tracker.covered == other.covered
                assert set_tracker.covered_count == other.covered_count
        for other in others:
            assert set_metrics.selections == other.metrics.selections
            assert (
                set_metrics.marginal_updates
                == other.metrics.marginal_updates
            )


class TestRemoveDominatedEquivalence:
    @settings(max_examples=100, deadline=None)
    @given(set_systems(ensure_full_cover=False))
    def test_same_survivors_as_frozenset_reference(self, system):
        """The bitmask + cost-pruned scan keeps exactly the sets the
        naive frozenset dominance predicate would keep."""
        reduced = remove_dominated(system)

        reference = []
        order = sorted(
            system.sets, key=lambda ws: (-ws.size, ws.cost, ws.set_id)
        )
        for ws in order:
            if not ws.benefit:
                continue
            if any(
                ws.benefit <= kept.benefit and kept.cost <= ws.cost
                for kept in reference
            ):
                continue
            reference.append(ws)
        reference.sort(key=lambda ws: ws.set_id)
        assert [(ws.benefit, ws.cost) for ws in reduced.sets] == [
            (ws.benefit, ws.cost) for ws in reference
        ]
