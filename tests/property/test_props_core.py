"""Property-based tests on the core algorithms' contracts."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cmc import cmc
from repro.core.cmc_epsilon import cmc_epsilon
from repro.core.cwsc import cwsc
from repro.core.exact import brute_force, solve_exact
from repro.core.guarantees import guaranteed_coverage, max_sets_standard
from repro.core.marginal import MarginalTracker

from tests.property.strategies import set_systems

ks = st.integers(1, 4)
fractions = st.floats(min_value=0.0, max_value=1.0)


class TestCWSCContract:
    @settings(max_examples=60, deadline=None)
    @given(set_systems(), ks, fractions)
    def test_respects_k_and_coverage(self, system, k, s_hat):
        result = cwsc(system, k, s_hat, on_infeasible="partial")
        assert result.n_sets <= k
        if result.feasible:
            assert result.covered >= s_hat * system.n_elements - 1e-6

    @settings(max_examples=60, deadline=None)
    @given(set_systems(), ks, fractions)
    def test_no_duplicate_selections(self, system, k, s_hat):
        result = cwsc(system, k, s_hat, on_infeasible="partial")
        assert len(set(result.set_ids)) == result.n_sets

    @settings(max_examples=60, deadline=None)
    @given(set_systems(), ks)
    def test_full_cover_fallback_always_feasible(self, system, k):
        result = cwsc(system, k, 1.0, on_infeasible="full_cover")
        assert result.feasible
        assert result.covered == system.n_elements or result.n_sets <= k


class TestCMCContract:
    @settings(max_examples=40, deadline=None)
    @given(set_systems(), ks, fractions)
    def test_size_and_coverage_guarantees(self, system, k, s_hat):
        result = cmc(system, k, s_hat)
        assert result.feasible
        assert result.n_sets <= max_sets_standard(k)
        assert result.covered >= (
            guaranteed_coverage(s_hat, system.n_elements) - 1e-6
        )

    @settings(max_examples=40, deadline=None)
    @given(
        set_systems(),
        ks,
        fractions,
        st.floats(min_value=0.25, max_value=2.0),
    )
    def test_epsilon_size_bound(self, system, k, s_hat, eps):
        result = cmc_epsilon(system, k, s_hat, eps=eps)
        assert result.feasible
        assert result.n_sets <= math.floor((1 + eps) * k + 1e-9)


class TestExactContract:
    @settings(max_examples=30, deadline=None)
    @given(set_systems(max_elements=8, max_sets=5), st.integers(1, 3), fractions)
    def test_branch_and_bound_equals_brute_force(self, system, k, s_hat):
        bb = solve_exact(system, k, s_hat)
        bf = brute_force(system, k, s_hat)
        assert abs(bb.total_cost - bf.total_cost) < 1e-9

    @settings(max_examples=30, deadline=None)
    @given(set_systems(max_elements=8, max_sets=5), st.integers(1, 3), fractions)
    def test_greedy_never_beats_exact(self, system, k, s_hat):
        opt = solve_exact(system, k, s_hat)
        greedy = cwsc(system, k, s_hat, on_infeasible="partial")
        if greedy.feasible:
            assert greedy.total_cost >= opt.total_cost - 1e-9


class TestMarginalTrackerInvariants:
    @settings(max_examples=40, deadline=None)
    @given(set_systems(), st.data())
    def test_counts_match_recomputation(self, system, data):
        """After arbitrary selections, every tracked count equals
        ``|Ben(s) - covered|`` recomputed from scratch."""
        tracker = MarginalTracker(system)
        candidates = tracker.live_ids
        n_steps = data.draw(st.integers(0, min(4, len(candidates))))
        for _ in range(n_steps):
            live = tracker.live_ids
            if not live:
                break
            choice = data.draw(st.sampled_from(live))
            tracker.select(choice)
        covered = tracker.covered
        for ws in system.sets:
            expected = len(ws.benefit - covered)
            actual = tracker.marginal_size(ws.set_id)
            if ws.set_id in tracker:
                assert actual == expected
            else:
                # Evicted or selected sets must truly have nothing new,
                # unless they were never tracked (empty benefit).
                assert expected == 0 or actual == 0
