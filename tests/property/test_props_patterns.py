"""Property-based tests on the pattern substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.patterns.enumerate import enumerate_nonempty_patterns
from repro.patterns.index import PatternIndex
from repro.patterns.pattern import ALL, Pattern, values_sort_key

from tests.property.strategies import attr_values, pattern_tables


@st.composite
def patterns(draw, min_attrs=1, max_attrs=4):
    n = draw(st.integers(min_attrs, max_attrs))
    values = draw(
        st.tuples(*([st.one_of(st.just(ALL), attr_values)] * n))
    )
    return Pattern(values)


class TestPatternAlgebra:
    @given(patterns())
    def test_parents_cover_child(self, pattern):
        for parent in pattern.parents():
            assert pattern.is_specialization_of(parent)
            assert parent.n_constants == pattern.n_constants - 1

    @given(patterns())
    def test_sort_key_matches_values_sort_key(self, pattern):
        assert pattern.sort_key() == values_sort_key(pattern.values)

    @given(patterns(), patterns())
    def test_ordering_consistent_with_keys(self, left, right):
        if left.n_attributes != right.n_attributes:
            return
        assert (left < right) == (left.sort_key() < right.sort_key())

    @given(patterns())
    def test_generalize_specialize_round_trip(self, pattern):
        for position in pattern.constant_positions():
            value = pattern.values[position]
            parent = pattern.generalize(position)
            assert parent.specialize(position, value) == pattern


class TestIndexProperties:
    @settings(max_examples=40)
    @given(pattern_tables(with_measure=False))
    def test_benefit_matches_matching_semantics(self, table):
        index = PatternIndex(table)
        pattern = Pattern.all_pattern(table.n_attributes)
        assert index.benefit(pattern) == frozenset(range(table.n_rows))
        # Spot-check a depth-1 pattern from each attribute.
        for position in range(table.n_attributes):
            value = table.rows[0][position]
            values = [ALL] * table.n_attributes
            values[position] = value
            child = Pattern(values)
            expected = {
                row_id
                for row_id, row in enumerate(table.rows)
                if child.matches(row)
            }
            assert index.benefit(child) == expected

    @settings(max_examples=40)
    @given(pattern_tables(with_measure=False))
    def test_children_monotone(self, table):
        """Every child's benefit is contained in its parent's."""
        index = PatternIndex(table)
        parent = Pattern.all_pattern(table.n_attributes)
        parent_ben = index.benefit(parent)
        for child, ben in index.children_of(parent, parent_ben):
            assert ben <= parent_ben
            assert len(ben) >= 1
            for grandchild, grand_ben in index.children_of(child, ben):
                assert grand_ben <= ben

    @settings(max_examples=40)
    @given(pattern_tables(with_measure=False))
    def test_enumeration_agrees_with_index(self, table):
        patterns = enumerate_nonempty_patterns(table)
        index = PatternIndex(table)
        for pattern, ben in patterns.items():
            assert index.benefit(pattern) == ben

    @settings(max_examples=40)
    @given(pattern_tables(with_measure=False))
    def test_children_partition_per_attribute(self, table):
        """For one wildcard attribute, children partition the parent."""
        index = PatternIndex(table)
        parent = Pattern.all_pattern(table.n_attributes)
        by_position: dict[int, set] = {}
        for position, child, rows in index.children_values(
            parent.values, range(table.n_rows)
        ):
            bucket = by_position.setdefault(position, set())
            assert not (bucket & set(rows))  # disjoint within an attribute
            bucket |= set(rows)
        for covered in by_position.values():
            assert covered == set(range(table.n_rows))
