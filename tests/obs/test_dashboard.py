"""Dashboard rendering: stable panel shape, escaping, history loading."""

from __future__ import annotations

import json

from repro.obs.dashboard import load_history, render_dashboard
from repro.obs.trace import SCHEMA

PANEL_IDS = (
    'id="waterfall"',
    'id="self-time"',
    'id="quality"',
    'id="profile"',
    'id="bench-trends"',
)


def _span(name, span_id, parent_id=None, t_start=0.0, duration=1.0, **attrs):
    return {
        "type": "span", "name": name, "span_id": span_id,
        "parent_id": parent_id, "t_start": t_start,
        "t_end": t_start + duration, "duration": duration, "attrs": attrs,
    }


def _full_trace():
    return [
        {"type": "meta", "schema": SCHEMA, "wall_time_unix": 1.0,
         "t": 0.0, "attrs": {"command": "solve"}},
        _span("solve", "s1", duration=1.0, backend="bitset"),
        _span("select", "s2", parent_id="s1", t_start=0.1, duration=0.2),
        {"type": "event", "name": "tracker_update", "t": 0.3, "attrs": {}},
        {"type": "quality", "t": 0.9, "algorithm": "cwsc",
         "quality": {"total_cost": 6.0, "lp_bound": 4.0,
                     "approx_ratio": 1.5, "coverage_slack": 0.05,
                     "sets_used": 3, "sets_budget": 5, "feasible": True}},
        {"type": "profile", "profile_kind": "cprofile", "scope": "solve",
         "t": 1.0, "data": {"functions": [
             {"func": "core.py:1:greedy", "ncalls": 3, "tottime": 0.4,
              "cumtime": 0.8}], "n_functions": 1}},
        {"type": "profile", "profile_kind": "memory", "scope": "solve",
         "t": 1.0, "data": {"samples": 1, "alloc_bytes": 2048,
                            "peak_bytes": 4096}},
        {"type": "profile", "profile_kind": "rss", "scope": "process",
         "t": 1.0, "data": {"peak_rss_bytes": 1 << 24,
                            "process": "parent"}},
    ]


def _history_entry(seconds, ratio):
    return {
        "schema": "scwsc-bench-history/1", "wall_time_unix": 0.0,
        "cells": [{"bench_id": "bench_fig5_datasize[cwsc-n600-bitset]",
                   "median_seconds": seconds, "approx_ratio": ratio,
                   "coverage_slack": 0.0, "feasible": True}],
    }


class TestRenderDashboard:
    def test_all_panels_present_even_when_empty(self):
        page = render_dashboard([], [])
        for panel in PANEL_IDS:
            assert panel in page
        assert "no spans in trace" in page
        assert "no quality records" in page
        assert "--profile" in page
        assert "no bench history" in page

    def test_self_contained_html(self):
        page = render_dashboard(_full_trace(), [_history_entry(0.01, 1.5)])
        assert page.startswith("<!DOCTYPE html>")
        assert "<style>" in page
        for marker in ("http://", "https://", "<script", "src="):
            assert marker not in page

    def test_waterfall_bars_and_depth(self):
        page = render_dashboard(_full_trace())
        assert '<div class="bar d0"' in page
        assert '<div class="bar d1"' in page
        assert "2 spans over" in page

    def test_quality_panel_values(self):
        page = render_dashboard(_full_trace())
        assert "1.5000" in page  # approx ratio
        assert "cwsc" in page
        assert 'class="spark"' in page  # ratio bar

    def test_profile_panel_sections(self):
        page = render_dashboard(_full_trace())
        assert "cpu: solve" in page
        assert "core.py:1:greedy" in page
        assert "mem: solve" in page
        assert "rss: process" in page

    def test_bench_trends_sparkline(self):
        history = [_history_entry(0.010, 1.2), _history_entry(0.012, 1.3)]
        page = render_dashboard([], history)
        assert "2 bench run(s) in history" in page
        assert "bench_fig5_datasize[cwsc-n600-bitset]" in page
        assert "<polyline" in page

    def test_html_escaping_of_attacker_controlled_names(self):
        records = [
            _span("<script>alert(1)</script>", "s1"),
            {"type": "quality", "t": 0.1,
             "algorithm": "<img onerror=x>",
             "quality": {"approx_ratio": None, "feasible": True}},
        ]
        page = render_dashboard(records, [])
        assert "<script>alert(1)</script>" not in page
        assert "&lt;script&gt;" in page
        assert "<img onerror=x>" not in page

    def test_title_escaped_and_shown(self):
        page = render_dashboard([], [], title="run <#42>")
        assert "run &lt;#42&gt;" in page

    def test_waterfall_clips_to_longest_spans(self):
        records = [
            _span("select", f"s{i}", t_start=i * 0.001, duration=0.001)
            for i in range(500)
        ]
        page = render_dashboard(records)
        assert "showing the 400 longest spans" in page
        assert page.count('<div class="lane">') == 400


class TestLoadHistory:
    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_history(str(tmp_path / "nope.jsonl")) == []

    def test_reads_jsonl_lines(self, tmp_path):
        path = tmp_path / "h.jsonl"
        entries = [_history_entry(0.01, 1.1), _history_entry(0.02, 1.2)]
        path.write_text(
            "".join(json.dumps(e) + "\n" for e in entries)
        )
        loaded = load_history(str(path))
        assert len(loaded) == 2
        assert loaded[0]["cells"][0]["median_seconds"] == 0.01

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text("\n" + json.dumps(_history_entry(0.01, 1.0)) + "\n\n")
        assert len(load_history(str(path))) == 1
