"""Flight recorder: ring semantics, trace teeing, and the hard invariant
that arming the recorder never flips ``trace.enabled()``."""

from __future__ import annotations

import threading

import pytest

from repro.obs import flightrec, stacks
from repro.obs import trace as obs_trace
from repro.obs.flightrec import FlightRecorder, RingBuffer


class TestRingBuffer:
    def test_keeps_most_recent_and_counts_drops(self):
        ring = RingBuffer(3)
        for value in range(5):
            ring.append(value)
        assert ring.snapshot() == [2, 3, 4]
        assert ring.stats() == {
            "capacity": 3,
            "total": 5,
            "dropped": 2,
            "kept": 3,
        }

    def test_clear_resets_counters(self):
        ring = RingBuffer(2)
        ring.append("a")
        ring.clear()
        assert len(ring) == 0
        assert ring.stats()["total"] == 0

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(0)

    def test_concurrent_appends_never_lose_count(self):
        ring = RingBuffer(16)
        n_threads, per_thread = 8, 500

        def hammer():
            for i in range(per_thread):
                ring.append(i)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = ring.stats()
        assert stats["total"] == n_threads * per_thread
        assert stats["kept"] == 16


class TestFlightRecorderRouting:
    def test_routes_records_by_type(self):
        rec = FlightRecorder()
        rec.write({"type": "span", "name": "s"})
        rec.write({"type": "event", "name": "e"})
        rec.write({"type": "metrics", "t": 0.0, "metrics": {}})
        rec.write({"type": "quality", "algorithm": "greedy"})
        assert len(rec.spans) == 1
        assert len(rec.metrics) == 1
        # events ring catches events plus anything unrecognized
        assert len(rec.events) == 2

    def test_on_event_fires_and_is_exception_isolated(self):
        rec = FlightRecorder()
        seen = []

        def boom(record):
            seen.append(record["name"])
            raise RuntimeError("trigger bug")

        rec.on_event = boom
        rec.write({"type": "event", "name": "worker_death"})
        rec.write({"type": "span", "name": "not-an-event"})
        assert seen == ["worker_death"]

    def test_worker_rings_are_copied_out(self):
        rec = FlightRecorder()
        ring = [{"type": "event", "name": "worker_stage"}]
        rec.note_worker_ring(3, ring)
        out = rec.worker_rings()
        assert out == {3: ring}
        out[3].append("mutation")
        assert rec.worker_rings() == {3: ring[:1]}

    def test_snapshot_shape(self):
        rec = FlightRecorder(span_capacity=4)
        rec.write({"type": "span", "name": "s"})
        snap = rec.snapshot()
        assert set(snap) == {"spans", "events", "access", "metrics"}
        assert snap["spans"]["capacity"] == 4
        assert [r["name"] for r in snap["spans"]["records"]] == ["s"]

    def test_metrics_poll_rings_immediately_and_on_tick(self):
        rec = FlightRecorder(metrics_capacity=8)
        ticks = threading.Event()
        rec.on_poll = ticks.set
        rec.start_metrics_poll(lambda: {"x": 1}, interval=0.01)
        try:
            assert ticks.wait(5.0), "poll tick never fired"
        finally:
            rec.stop_metrics_poll()
        # one immediate snapshot plus >=1 from ticks
        assert len(rec.metrics) >= 2
        assert rec.metrics.snapshot()[0]["metrics"] == {"x": 1}


class TestInstallWiring:
    def test_install_arms_ring_without_flipping_enabled(self):
        rec = flightrec.install(span_capacity=8)
        assert flightrec.get_recorder() is rec
        assert obs_trace.ring_active()
        assert obs_trace.recording()
        # THE invariant the overhead budget rests on:
        assert not obs_trace.enabled()

    def test_coarse_span_and_event_fall_back_to_ring(self):
        rec = flightrec.install()
        with obs_trace.span("request", endpoint="/solve"):
            obs_trace.event("dispatch", worker=0)
        names = [r["name"] for r in rec.spans.snapshot()]
        assert names == ["request"]
        events = [r["name"] for r in rec.events.snapshot()]
        assert events == ["dispatch"]

    def test_full_tracer_tees_into_ring(self, tmp_path):
        rec = flightrec.install()
        obs_trace.configure(str(tmp_path / "trace.jsonl"))
        assert obs_trace.enabled()
        with obs_trace.span("solve"):
            pass
        obs_trace.shutdown()
        assert [r["name"] for r in rec.spans.snapshot()] == ["solve"]

    def test_ring_spans_not_double_written(self):
        rec = flightrec.install()
        with obs_trace.span("only-once"):
            pass
        assert len(rec.spans) == 1

    def test_uninstall_disarms(self):
        flightrec.install()
        flightrec.uninstall()
        assert flightrec.get_recorder() is None
        assert not obs_trace.recording()
        with obs_trace.span("dropped"):
            pass  # goes to NULL_SPAN, nowhere to land — must not raise


class TestStacks:
    def test_sample_once_sees_this_thread(self):
        sample = stacks.sample_once()
        me = [t for t in sample["threads"] if t["is_sampler"]]
        assert len(me) == 1
        assert any("test_sample_once" in f for f in me[0]["frames"])

    def test_burst_returns_count_samples(self):
        samples = stacks.burst(3, interval=0.001)
        assert len(samples) == 3

    def test_collapse_excludes_sampler_and_counts(self):
        sample = {
            "threads": [
                {"is_sampler": True, "frames": ["a.py:1:f"]},
                {"is_sampler": False, "frames": ["/x/b.py:2:g", "b.py:3:h"]},
            ]
        }
        collapsed = stacks.collapse_samples([sample, sample])
        assert collapsed == ["b.py:2:g;b.py:3:h 2"]

    def test_sampler_idle_at_zero_hz(self):
        sampler = stacks.StackSampler(hz=0.0)
        sampler.start()
        assert not sampler.running
        sampler.stop()

    def test_sampler_fills_ring_when_armed(self):
        sampler = stacks.StackSampler(hz=200.0, capacity=8)
        sampler.start()
        try:
            deadline = threading.Event()
            for _ in range(100):
                if len(sampler.ring) >= 2:
                    break
                deadline.wait(0.05)
        finally:
            sampler.stop()
        assert len(sampler.ring) >= 2
        assert not sampler.running

    def test_negative_hz_rejected(self):
        with pytest.raises(ValueError):
            stacks.StackSampler(hz=-1.0)
