"""Observability must be near-free when switched off.

The tracker ``select`` hot loops carry one ``obs_trace.enabled()`` guard
per selection. This test pins that cost: a full greedy sweep through the
instrumented trackers (tracing disabled — the default production state)
may not be more than a fixed factor slower than the same sweep with the
guard physically removed. The uninstrumented baselines below are literal
copies of the ``select`` bodies minus the observability block; if the
tracker internals change shape, update the copies alongside.

The factor is deliberately generous (the loops run microseconds, CI
machines are noisy) — the test exists to catch accidental per-iteration
instrumentation (spans or attr dicts built inside the loop), which shows
up as 10-100x, not 1.2x.
"""

from __future__ import annotations

import random
import time

from repro.core.bitset import iter_bits
from repro.core.marginal import BitsetMarginalTracker, MarginalTracker
from repro.core.setsystem import SetSystem
from repro.obs import trace as obs_trace

#: Instrumented / uninstrumented budget. Anything honest sits near 1x;
#: per-selection span creation blows well past this.
MAX_SLOWDOWN = 5.0

N_ELEMENTS = 512
N_SETS = 160
BEST_OF = 5


def _system() -> SetSystem:
    rng = random.Random(20260805)
    benefits = [
        set(rng.sample(range(N_ELEMENTS), rng.randint(4, 40)))
        for _ in range(N_SETS)
    ]
    costs = [1.0 + rng.random() for _ in range(N_SETS)]
    return SetSystem.from_iterables(N_ELEMENTS, benefits, costs)


def _greedy_order(tracker) -> list[int]:
    """The selection order a greedy sweep visits; fixed up front so the
    timed loops do identical work."""
    order = []
    while len(tracker):
        best = max(tracker.live_items(), key=lambda kv: (kv[1], -kv[0]))[0]
        tracker.select(best)
        order.append(best)
    return order


def _select_set_baseline(tracker: MarginalTracker, set_id: int) -> int:
    # MarginalTracker.select without the obs_trace block.
    tracker._mben_count.pop(set_id, None)
    tracker._metrics.selections += 1
    newly = [
        element
        for element in tracker._system[set_id].benefit
        if element not in tracker._covered
    ]
    counts = tracker._mben_count
    updates = 0
    for element in newly:
        tracker._covered.add(element)
        for other in tracker._element_to_sets.get(element, ()):
            remaining = counts.get(other)
            if remaining is None:
                continue
            updates += 1
            if remaining == 1:
                del counts[other]
            else:
                counts[other] = remaining - 1
    tracker._metrics.marginal_updates += updates
    return len(newly)


def _select_bitset_baseline(tracker: BitsetMarginalTracker, set_id: int) -> int:
    # BitsetMarginalTracker.select without the obs_trace block.
    counts = tracker._mben_count
    counts.pop(set_id, None)
    tracker._metrics.selections += 1
    newly_mask = tracker._masks[set_id] & ~tracker._covered_mask
    newly = newly_mask.bit_count()
    if not newly:
        return 0
    tracker._covered_mask |= newly_mask
    updates = 0
    if tracker._table.full_union() & ~tracker._covered_mask == 0:
        updates = sum(counts.values())
        counts.clear()
    elif newly * tracker._avg_owners <= len(counts) * tracker._sweep_step:
        owners = tracker._owners
        for element in iter_bits(newly_mask):
            for other in owners[element]:
                remaining = counts.get(other)
                if remaining is None:
                    continue
                updates += 1
                if remaining == 1:
                    del counts[other]
                else:
                    counts[other] = remaining - 1
    else:
        masks = tracker._masks
        evicted = []
        for other, remaining in counts.items():
            overlap = (masks[other] & newly_mask).bit_count()
            if not overlap:
                continue
            updates += overlap
            if overlap == remaining:
                evicted.append(other)
            else:
                counts[other] = remaining - overlap
        for other in evicted:
            del counts[other]
    tracker._metrics.marginal_updates += updates
    return newly


def _best_of(make_tracker, order, select):
    best = float("inf")
    for _ in range(BEST_OF):
        tracker = make_tracker()
        t0 = time.perf_counter()
        for set_id in order:
            select(tracker, set_id)
        best = min(best, time.perf_counter() - t0)
    return best


def _assert_within_budget(make_tracker, baseline_select):
    assert not obs_trace.enabled()
    order = _greedy_order(make_tracker())
    assert len(order) > 20  # the loop is actually hot
    # Interleave-free warmup of both paths, then best-of-N each.
    instrumented = _best_of(
        make_tracker, order, lambda t, s: t.select(s)
    )
    baseline = _best_of(make_tracker, order, baseline_select)
    slowdown = instrumented / max(baseline, 1e-9)
    assert slowdown <= MAX_SLOWDOWN, (
        f"disabled-tracing tracker loop is {slowdown:.2f}x the "
        f"uninstrumented baseline (budget {MAX_SLOWDOWN}x): "
        f"{instrumented * 1e6:.0f}us vs {baseline * 1e6:.0f}us"
    )


class TestDisabledTracingOverhead:
    def test_set_backend_within_budget(self):
        system = _system()
        _assert_within_budget(
            lambda: MarginalTracker(system), _select_set_baseline
        )

    def test_bitset_backend_within_budget(self):
        system = _system()
        _assert_within_budget(
            lambda: BitsetMarginalTracker(system), _select_bitset_baseline
        )

    def test_baselines_match_instrumented_semantics(self):
        """The copies above must do the same work, or the timing ratio is
        meaningless: equal counts, coverage, and metrics on a full sweep."""
        system = _system()
        for make, select in (
            (lambda: MarginalTracker(system), _select_set_baseline),
            (lambda: BitsetMarginalTracker(system), _select_bitset_baseline),
        ):
            real, copy = make(), make()
            order = _greedy_order(make())
            for set_id in order:
                real.select(set_id)
                select(copy, set_id)
            assert real.covered == copy.covered
            assert real.live_items() == copy.live_items()
            assert (
                real.metrics.marginal_updates == copy.metrics.marginal_updates
            )
