"""Trace rollups and the summary renderer."""

from __future__ import annotations

import json

import pytest

from repro.obs.report import (
    event_counts,
    phase_rollups,
    render_summary,
    summarize_file,
)
from repro.obs.trace import SCHEMA


def _span(name, duration, span_id="s1", parent_id=None, **attrs):
    return {
        "type": "span", "name": name, "span_id": span_id,
        "parent_id": parent_id, "t_start": 0.0, "t_end": duration,
        "duration": duration, "attrs": attrs,
    }


def _event(name):
    return {"type": "event", "name": name, "t": 0.1, "attrs": {}}


class TestRollups:
    def test_phase_rollups_aggregate_by_name(self):
        records = [
            _span("select", 0.2),
            _span("select", 0.4),
            _span("solve", 1.0),
            _event("dispatch"),
        ]
        rollups = phase_rollups(records)
        assert rollups["select"]["count"] == 2
        assert rollups["select"]["total"] == 0.6000000000000001
        assert rollups["select"]["max"] == 0.4
        assert abs(rollups["select"]["mean"] - 0.3) < 1e-12
        assert rollups["solve"]["count"] == 1

    def test_event_counts(self):
        records = [_event("dispatch"), _event("dispatch"), _event("requeue")]
        assert event_counts(records) == {"dispatch": 2, "requeue": 1}

    def test_self_time_subtracts_direct_children(self):
        records = [
            _span("solve", 1.0, span_id="s1"),
            _span("select", 0.2, span_id="s2", parent_id="s1"),
            _span("select", 0.3, span_id="s3", parent_id="s1"),
            # Grandchild: charged to its select parent, not to solve.
            _span("scan", 0.1, span_id="s4", parent_id="s3"),
        ]
        rollups = phase_rollups(records)
        assert abs(rollups["solve"]["self"] - 0.5) < 1e-12
        assert abs(rollups["select"]["self"] - 0.4) < 1e-12
        assert abs(rollups["scan"]["self"] - 0.1) < 1e-12
        # Totals stay inclusive.
        assert rollups["solve"]["total"] == 1.0

    def test_self_time_clamped_at_zero(self):
        records = [
            _span("solve", 0.1, span_id="s1"),
            # Clock jitter: children sum past the parent.
            _span("select", 0.2, span_id="s2", parent_id="s1"),
        ]
        assert phase_rollups(records)["solve"]["self"] == 0.0

    def test_root_spans_keep_full_duration_as_self(self):
        records = [_span("solve", 0.7, span_id="s1")]
        assert phase_rollups(records)["solve"]["self"] == 0.7


class TestRenderSummary:
    def test_contains_phase_table_events_and_metrics(self):
        records = [
            {"type": "meta", "schema": SCHEMA, "wall_time_unix": 1.0,
             "t": 0.0, "attrs": {"command": "solve"}},
            _span("solve", 1.0),
            _span("select", 0.25),
            _event("tracker_update"),
            {"type": "metrics", "t": 2.0, "metrics": {
                "scwsc_solves_total": {
                    "kind": "counter",
                    "values": [
                        {"labels": {"algorithm": "cwsc"}, "value": 3},
                    ],
                },
            }},
        ]
        text = render_summary(records)
        assert "phase rollup" in text
        assert "self_s" in text
        assert "solve" in text and "select" in text
        assert "tracker_update" in text
        assert "scwsc_solves_total{algorithm=cwsc} 3" in text
        assert "command=solve" in text

    def test_budget_round_chart_when_multiple_rounds(self):
        records = [
            _span("budget_round", 0.1, round=0),
            _span("budget_round", 0.3, round=1),
            _span("budget_round", 0.2, round=2),
        ]
        text = render_summary(records)
        assert "budget round" in text

    def test_empty_trace_renders(self):
        assert "no spans" in render_summary([])


class TestSummarizeFile:
    def test_roundtrip_through_disk(self, tmp_path):
        path = tmp_path / "t.jsonl"
        records = [
            {"type": "meta", "schema": SCHEMA, "wall_time_unix": 1.0,
             "t": 0.0, "attrs": {}},
            _span("solve", 0.5),
        ]
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        assert "solve" in summarize_file(str(path))

    def test_json_output_parses_and_matches_rollups(self, tmp_path):
        path = tmp_path / "t.jsonl"
        records = [
            {"type": "meta", "schema": SCHEMA, "wall_time_unix": 1.0,
             "t": 0.0, "attrs": {"command": "solve"}},
            _span("solve", 0.5),
            _span("select", 0.1, span_id="s2", parent_id="s1"),
            _event("tracker_update"),
        ]
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        out = summarize_file(str(path), as_json=True)
        data = json.loads(out)  # must be valid JSON, not the text table
        assert data["schema"] == SCHEMA
        assert data["records"] == 4
        assert data["meta"]["command"] == "solve"
        assert data["phases"]["solve"]["total"] == pytest.approx(0.5)
        assert data["events"] == {"tracker_update": 1}
