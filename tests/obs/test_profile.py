"""ProfileSession aggregation, records, and collapsed-stack export."""

from __future__ import annotations

import pytest

from repro.obs import profile as obs_profile
from repro.obs import trace as obs_trace
from repro.obs.profile import (
    PHASE_SPANS,
    ProfileSession,
    collapsed_stacks,
    peak_rss_bytes,
    profile_records,
)
from repro.obs.schema import validate_record


def _burn(n: int = 20_000) -> int:
    return sum(i * i for i in range(n))


@pytest.fixture
def traced():
    """Hooks only fire on real spans, so give each test a live tracer."""
    with obs_trace.capture():
        yield


class TestProfileSession:
    def test_cprofile_record_per_outermost_phase(self, traced):
        session = ProfileSession()
        session.start()
        try:
            with obs_trace.span("solve"):
                with obs_trace.span("select"):  # not a phase span
                    _burn()
                _burn()
        finally:
            records = session.stop()
        cpu = [r for r in records if r["profile_kind"] == "cprofile"]
        assert [r["scope"] for r in cpu] == ["solve"]
        functions = cpu[0]["data"]["functions"]
        assert functions and cpu[0]["data"]["n_functions"] >= len(functions)
        assert all(
            set(f) == {"func", "ncalls", "tottime", "cumtime"}
            for f in functions
        )

    def test_nested_phase_spans_fold_into_root(self, traced):
        """budget_round inside solve must NOT toggle the profiler: one
        cprofile scope, the outermost one."""
        session = ProfileSession()
        session.start()
        try:
            with obs_trace.span("solve"):
                with obs_trace.span("budget_round"):
                    _burn()
                with obs_trace.span("budget_round"):
                    _burn()
        finally:
            records = session.stop()
        cpu_scopes = [
            r["scope"] for r in records if r["profile_kind"] == "cprofile"
        ]
        assert cpu_scopes == ["solve"]
        # Memory deltas still attribute per phase name.
        mem_scopes = {
            r["scope"] for r in records if r["profile_kind"] == "memory"
        }
        assert mem_scopes == {"solve", "budget_round"}
        rounds = next(
            r for r in records
            if r["profile_kind"] == "memory"
            and r["scope"] == "budget_round"
        )
        assert rounds["data"]["samples"] == 2

    def test_non_phase_spans_ignored(self, traced):
        session = ProfileSession()
        session.start()
        try:
            with obs_trace.span("select"):
                _burn()
        finally:
            records = session.stop()
        assert "select" not in PHASE_SPANS
        assert all(r["scope"] != "select" for r in records)

    def test_records_validate_against_schema(self, traced):
        session = ProfileSession()
        session.start()
        try:
            with obs_trace.span("solve"):
                _burn()
        finally:
            records = session.stop()
        assert records
        for record in records:
            assert validate_record(record) == []

    def test_top_n_caps_function_list(self, traced):
        session = ProfileSession(top_n=2)
        session.start()
        try:
            with obs_trace.span("solve"):
                _burn()
                sorted(range(1000), key=lambda x: -x)
        finally:
            records = session.stop()
        cpu = next(r for r in records if r["profile_kind"] == "cprofile")
        assert len(cpu["data"]["functions"]) <= 2
        # tottime-descending order.
        times = [f["tottime"] for f in cpu["data"]["functions"]]
        assert times == sorted(times, reverse=True)

    def test_stop_emits_into_configured_tracer(self, tmp_path):
        import json

        path = tmp_path / "t.jsonl"
        obs_trace.configure(str(path), command="test")
        session = ProfileSession()
        session.start()
        try:
            with obs_trace.span("solve"):
                _burn()
        finally:
            session.stop()
            obs_trace.shutdown()
        records = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line
        ]
        assert any(r["type"] == "profile" for r in records)

    def test_stop_without_spans_still_reports_rss(self):
        session = ProfileSession()
        session.start()
        records = session.stop()
        kinds = {r["profile_kind"] for r in records}
        assert kinds <= {"rss"}


class TestModuleApi:
    def test_start_stop_lifecycle(self, traced):
        assert not obs_profile.enabled()
        obs_profile.start()
        try:
            assert obs_profile.enabled()
            with obs_trace.span("solve"):
                _burn()
        finally:
            records = obs_profile.stop()
        assert not obs_profile.enabled()
        assert any(r["profile_kind"] == "cprofile" for r in records)
        # Second stop is a no-op.
        assert obs_profile.stop() == []

    def test_start_replaces_previous_session(self):
        first = obs_profile.start()
        second = obs_profile.start()
        try:
            assert first is not second
            assert obs_profile.enabled()
        finally:
            obs_profile.stop()


class TestPeakRss:
    def test_positive_on_posix(self):
        rss = peak_rss_bytes()
        assert rss is None or rss > 1024 * 1024


def _span(name, span_id, parent_id=None, duration=1.0):
    return {
        "type": "span", "name": name, "span_id": span_id,
        "parent_id": parent_id, "t_start": 0.0, "t_end": duration,
        "duration": duration, "attrs": {},
    }


class TestCollapsedStacks:
    def test_self_time_per_path_in_micros(self):
        records = [
            _span("solve", "s1", duration=1.0),
            _span("select", "s2", parent_id="s1", duration=0.25),
            _span("select", "s3", parent_id="s1", duration=0.25),
        ]
        lines = collapsed_stacks(records)
        assert "solve 500000" in lines
        assert "solve;select 500000" in lines

    def test_cprofile_lines_namespaced(self):
        records = [
            _span("solve", "s1", duration=0.5),
            {
                "type": "profile", "profile_kind": "cprofile",
                "scope": "solve", "t": 1.0,
                "data": {"functions": [
                    {"func": "core.py:10:greedy", "ncalls": 5,
                     "tottime": 0.2, "cumtime": 0.4},
                ], "n_functions": 1},
            },
        ]
        lines = collapsed_stacks(records)
        assert "cpu:solve;core.py:10:greedy 200000" in lines
        assert collapsed_stacks(records, include_cprofile=False) == [
            "solve 500000"
        ]

    def test_zero_self_time_paths_dropped(self):
        records = [
            _span("solve", "s1", duration=0.5),
            _span("select", "s2", parent_id="s1", duration=0.5),
        ]
        lines = collapsed_stacks(records)
        assert lines == ["solve;select 500000"]

    def test_profile_records_filter(self):
        records = [
            _span("solve", "s1"),
            {"type": "profile", "profile_kind": "rss", "scope": "process",
             "t": 1.0, "data": {"peak_rss_bytes": 1}},
        ]
        assert len(profile_records(records)) == 1


class TestDegradation:
    def test_concurrent_profiler_degrades_to_memory_only(
        self, traced, monkeypatch
    ):
        """When another profiler owns the hook (enable() raises), the
        session must not propagate — it keeps memory snapshots and
        simply skips CPU stats."""
        import cProfile

        def refuse(self):
            raise ValueError("Another profiling tool is already active")

        monkeypatch.setattr(cProfile.Profile, "enable", refuse)
        session = ProfileSession()
        session.start()
        try:
            with obs_trace.span("solve"):
                _burn()
        finally:
            records = session.stop()
        assert all(r["profile_kind"] != "cprofile" for r in records)
        assert any(r["profile_kind"] == "memory" for r in records)
