"""Property test: metrics exposition → console parse is lossless.

``scwsc top`` trusts that whatever label values the serve layer puts in
the registry (tenant names, endpoint paths, error strings) come back
byte-identical after a trip through the Prometheus text format. The
escaping lives in ``repro.obs.metrics._escape_label_value`` and its
inverse in ``repro.obs.console._parse_labels``; this test hammers the
pair with adversarial values — backslashes, quotes, embedded newlines,
braces, the escape sequences themselves — in both hand-picked and
seeded-random form.
"""

from __future__ import annotations

import random

from repro.obs.console import MetricsSnapshot, _parse_labels, parse_exposition
from repro.obs.metrics import MetricsRegistry, _escape_label_value

#: Every character class that has ever broken a hand-rolled parser.
_ADVERSARIAL = [
    "\\",
    '"',
    "\n",
    "\\n",
    '\\"',
    "\\\\",
    "{",
    "}",
    ",",
    "=",
    " ",
    "a",
    "ü",
    "0",
]

_NASTY_VALUES = [
    "plain",
    "back\\slash",
    'quo"te',
    "new\nline",
    "trailing\\",
    '\\"',
    "\\n",
    'a="b",c="d"',
    "{}",
    "} 42",
    "",
    " leading and trailing ",
    'all\\of"it\ntogether\\"',
]


def _random_value(rng: random.Random) -> str:
    return "".join(
        rng.choice(_ADVERSARIAL) for _ in range(rng.randint(0, 12))
    )


def _roundtrip_one(value: str, extra: str = "ok") -> None:
    registry = MetricsRegistry()
    counter = registry.counter("rt_total", "round trip")
    counter.inc(2.5, tenant=value, other=extra)
    samples = parse_exposition(registry.exposition())
    matching = [s for s in samples if s.name == "rt_total"]
    assert len(matching) == 1, f"value {value!r} produced {matching}"
    assert matching[0].labels == {"tenant": value, "other": extra}
    assert matching[0].value == 2.5


class TestLabelEscapingRoundTrip:
    def test_hand_picked_nasty_values(self):
        for value in _NASTY_VALUES:
            _roundtrip_one(value)

    def test_seeded_random_values(self):
        rng = random.Random(20260807)
        for trial in range(200):
            _roundtrip_one(_random_value(rng), extra=_random_value(rng))

    def test_escape_parse_inverse_directly(self):
        rng = random.Random(99)
        for _ in range(200):
            value = _random_value(rng)
            line = f'k="{_escape_label_value(value)}"'
            assert _parse_labels(line) == {"k": value}

    def test_multi_metric_page_with_hostile_labels(self):
        """A whole page — counter + gauge + histogram — survives, and the
        snapshot query API finds the hostile label set."""
        registry = MetricsRegistry()
        hostile = 'ten"ant\\with\neverything'
        registry.counter("req_total", "requests").inc(3, tenant=hostile)
        registry.gauge("depth", "queue depth").set(7, tenant=hostile)
        registry.histogram("lat_seconds", "latency").observe(
            0.25, tenant=hostile
        )
        snapshot = MetricsSnapshot.parse(registry.exposition())
        assert snapshot.value("req_total", tenant=hostile) == 3
        assert snapshot.value("depth", tenant=hostile) == 7
        count = [
            s
            for s in snapshot.get("lat_seconds_count")
            if s.labels.get("tenant") == hostile
        ]
        assert len(count) == 1 and count[0].value == 1
