"""SLO tracker: objectives validation, windowed burn rates, metrics."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import GLOBAL_SCOPE, SLOT_SECONDS, SloObjectives, SloTracker


def make_tracker(clock, **kwargs):
    kwargs.setdefault(
        "objectives",
        SloObjectives(
            latency_threshold=0.5,
            latency_objective=0.9,
            error_objective=0.99,
        ),
    )
    kwargs.setdefault("registry", MetricsRegistry())
    return SloTracker(clock=clock, **kwargs)


class TestObjectives:
    def test_rejects_bad_threshold_and_fractions(self):
        with pytest.raises(ValidationError):
            SloObjectives(0.0, 0.9, 0.99)
        with pytest.raises(ValidationError):
            SloObjectives(1.0, 1.0, 0.99)
        with pytest.raises(ValidationError):
            SloObjectives(1.0, 0.9, 0.0)

    def test_override_merges_and_rejects_unknown_keys(self):
        base = SloObjectives(1.0, 0.9, 0.99)
        tightened = base.override({"latency_threshold": 0.25})
        assert tightened.latency_threshold == 0.25
        assert tightened.latency_objective == base.latency_objective
        with pytest.raises(ValidationError):
            base.override({"latency_thresold": 0.25})


class TestTracker:
    def test_rejects_empty_or_negative_windows(self):
        with pytest.raises(ValidationError):
            make_tracker(lambda: 0.0, windows=())
        with pytest.raises(ValidationError):
            make_tracker(lambda: 0.0, windows=(60.0, -1.0))

    def test_counts_good_and_bad_per_objective(self):
        t = [100.0]
        tracker = make_tracker(lambda: t[0])
        tracker.observe("acme", 0.1, 200)   # good on both
        tracker.observe("acme", 0.9, 200)   # slow, not an error
        tracker.observe("acme", 0.1, 503)   # error, fast
        snap = tracker.snapshot()
        for scope in (GLOBAL_SCOPE, "acme"):
            window = snap[scope]["5m"]
            assert window["slow_fraction"] == pytest.approx(1 / 3)
            assert window["error_fraction"] == pytest.approx(1 / 3)

    def test_sheds_and_client_errors_do_not_burn_error_budget(self):
        t = [100.0]
        tracker = make_tracker(lambda: t[0])
        tracker.observe("acme", 0.1, 429)
        tracker.observe("acme", 0.1, 400)
        window = tracker.snapshot()[GLOBAL_SCOPE]["5m"]
        assert window["error_fraction"] == 0.0

    def test_burn_rate_is_fraction_over_budget(self):
        t = [100.0]
        tracker = make_tracker(lambda: t[0])
        # 1 bad of 2 -> 50% slow against a 10% latency budget: burn 5.
        tracker.observe("acme", 0.9, 200)
        tracker.observe("acme", 0.1, 200)
        window = tracker.snapshot()[GLOBAL_SCOPE]["5m"]
        assert window["latency_burn"] == pytest.approx(5.0)

    def test_old_slots_age_out_of_the_window(self):
        t = [100.0]
        tracker = make_tracker(lambda: t[0], windows=(60.0,))
        tracker.observe("acme", 0.9, 500)
        t[0] += 60.0 + 2 * SLOT_SECONDS
        tracker.observe("acme", 0.1, 200)
        window = tracker.snapshot()[GLOBAL_SCOPE]["1m"]
        assert window["slow_fraction"] == 0.0
        assert window["error_fraction"] == 0.0

    def test_tenant_override_changes_that_scope_only(self):
        t = [100.0]
        tracker = make_tracker(
            lambda: t[0],
            tenant_overrides={"gold": {"latency_threshold": 0.05}},
        )
        tracker.observe("gold", 0.1, 200)  # slow for gold, fast globally
        snap = tracker.snapshot()
        assert snap["gold"]["5m"]["slow_fraction"] == 1.0
        assert snap[GLOBAL_SCOPE]["5m"]["slow_fraction"] == 0.0

    def test_publish_exposes_burn_gauges(self):
        t = [100.0]
        registry = MetricsRegistry()
        tracker = make_tracker(lambda: t[0], registry=registry)
        tracker.observe("acme", 0.9, 500)
        tracker.publish()
        text = registry.exposition()
        assert 'scwsc_slo_burn_rate{' in text
        assert 'scope="_global"' in text
        assert 'window="5m"' in text and 'window="1h"' in text
        assert 'scwsc_slo_objective_ratio{' in text

    def test_window_labels(self):
        t = [0.0]
        tracker = make_tracker(lambda: t[0], windows=(45.0, 300.0, 7200.0))
        assert [tracker._label_for(w) for w in tracker.windows] == [
            "45s",
            "5m",
            "2h",
        ]
