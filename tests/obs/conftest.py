"""Isolation for observability tests: no tracer or metrics leak between
tests (both are process-global by design)."""

from __future__ import annotations

import pytest

from repro.obs import flightrec as obs_flightrec
from repro.obs import trace as obs_trace
from repro.obs.metrics import get_registry


@pytest.fixture(autouse=True)
def clean_observability():
    obs_trace.shutdown()
    obs_flightrec.uninstall()
    get_registry().reset()
    yield
    obs_trace.shutdown()
    obs_flightrec.uninstall()
    get_registry().reset()
