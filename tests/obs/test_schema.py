"""Trace schema validation: records and whole files."""

from __future__ import annotations

from repro.obs.schema import (
    find_orphan_spans,
    main,
    validate_record,
    validate_trace_file,
)
from repro.obs.trace import SCHEMA


def _meta():
    return {"type": "meta", "schema": SCHEMA, "wall_time_unix": 1.0,
            "t": 0.0, "attrs": {}}


def _span(**overrides):
    record = {
        "type": "span", "name": "solve", "span_id": "s1",
        "parent_id": None, "t_start": 0.0, "t_end": 1.0,
        "duration": 1.0, "attrs": {},
    }
    record.update(overrides)
    return record


class TestValidateRecord:
    def test_valid_records_pass(self):
        assert validate_record(_meta()) == []
        assert validate_record(_span()) == []
        assert validate_record(
            {"type": "event", "name": "dispatch", "t": 0.5, "attrs": {}}
        ) == []
        assert validate_record(
            {"type": "metrics", "t": 1.0, "metrics": {}}
        ) == []

    def test_non_object_rejected(self):
        assert validate_record([1, 2]) != []
        assert validate_record("span") != []

    def test_unknown_type_rejected(self):
        assert validate_record({"type": "wat"}) != []

    def test_wrong_schema_rejected(self):
        bad = _meta()
        bad["schema"] = "other/9"
        assert any("schema" in p for p in validate_record(bad))

    def test_span_time_ordering_enforced(self):
        bad = _span(t_start=2.0, t_end=1.0)
        assert any("t_end" in p for p in validate_record(bad))

    def test_span_missing_fields(self):
        bad = _span()
        del bad["span_id"]
        assert any("span_id" in p for p in validate_record(bad))
        bad = _span(attrs="nope")
        assert any("attrs" in p for p in validate_record(bad))

    def test_event_requires_name_and_time(self):
        assert validate_record({"type": "event", "name": "", "t": 0.0,
                                "attrs": {}}) != []
        assert validate_record({"type": "event", "name": "x", "t": "soon",
                                "attrs": {}}) != []


def _profile(**overrides):
    record = {
        "type": "profile", "profile_kind": "cprofile", "scope": "solve",
        "t": 1.0, "data": {"functions": []},
    }
    record.update(overrides)
    return record


def _quality(**overrides):
    record = {
        "type": "quality", "t": 1.0, "algorithm": "cwsc",
        "quality": {"approx_ratio": 1.25, "coverage_slack": 0.1,
                    "sets_used": 3, "lp_bound": None, "feasible": True},
    }
    record.update(overrides)
    return record


class TestProfileRecords:
    def test_valid_profile_kinds_pass(self):
        assert validate_record(_profile()) == []
        assert validate_record(
            _profile(profile_kind="memory",
                     data={"alloc_bytes": 10, "peak_bytes": 20})
        ) == []
        assert validate_record(
            _profile(profile_kind="rss", scope="process",
                     data={"peak_rss_bytes": 1}, span_id="s1")
        ) == []

    def test_unknown_kind_rejected(self):
        bad = _profile(profile_kind="flame")
        assert any("profile_kind" in p for p in validate_record(bad))

    def test_missing_scope_and_data_rejected(self):
        assert any(
            "scope" in p for p in validate_record(_profile(scope=""))
        )
        assert any(
            "data" in p for p in validate_record(_profile(data=[1, 2]))
        )

    def test_bad_time_and_span_id_rejected(self):
        assert any("t" in p for p in validate_record(_profile(t="later")))
        assert any(
            "span_id" in p
            for p in validate_record(_profile(span_id={"no": 1}))
        )


class TestQualityRecords:
    def test_valid_quality_passes(self):
        assert validate_record(_quality()) == []

    def test_algorithm_required(self):
        assert any(
            "algorithm" in p
            for p in validate_record(_quality(algorithm=""))
        )

    def test_quality_must_be_numeric_object(self):
        assert any(
            "quality" in p
            for p in validate_record(_quality(quality="good"))
        )
        bad = _quality(quality={"approx_ratio": "about one"})
        assert any("approx_ratio" in p for p in validate_record(bad))

    def test_null_fields_allowed(self):
        record = _quality(
            quality={"approx_ratio": None, "lp_bound": None}
        )
        assert validate_record(record) == []


class TestCaptureReplayRoundTrip:
    def test_profiled_capture_replays_with_prefixes(self, tmp_path):
        """A worker-style MemorySink capture, replayed into a file trace
        under a request/attempt prefix, must validate end to end with
        every span id prefixed."""
        import json

        from repro.obs import profile as obs_profile
        from repro.obs import trace as obs_trace

        session = obs_profile.ProfileSession()
        session.start()
        try:
            with obs_trace.capture() as captured:
                with obs_trace.span("solve", backend="set"):
                    with obs_trace.span("select"):
                        sum(range(2000))
                    obs_trace.event("tracker_update", remaining=3)
        finally:
            profile_recs = session.stop()
        captured = list(captured) + profile_recs

        path = tmp_path / "replayed.jsonl"
        obs_trace.configure(str(path), command="test")
        try:
            obs_trace.replay(captured, prefix="r7a2.", request_id=7)
        finally:
            obs_trace.shutdown()

        problems = validate_trace_file(str(path))
        assert problems == []
        records = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line
        ]
        spans = [r for r in records if r["type"] == "span"]
        assert spans and all(
            str(r["span_id"]).startswith("r7a2.") for r in spans
        )
        assert any(r["type"] == "profile" for r in records)
        assert {r["name"] for r in spans if True} >= {"solve", "select"}


class TestValidateTraceFile:
    def test_valid_file(self, tmp_path):
        import json

        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps(_meta()) + "\n" + json.dumps(_span()) + "\n"
        )
        assert validate_trace_file(str(path)) == []

    def test_first_record_must_be_meta(self, tmp_path):
        import json

        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps(_span()) + "\n")
        problems = validate_trace_file(str(path))
        assert any("meta" in p for p in problems)

    def test_empty_file_is_a_problem(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        assert validate_trace_file(str(path)) != []

    def test_invalid_json_line_reported_with_lineno(self, tmp_path):
        import json

        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps(_meta()) + "\n{nope\n")
        problems = validate_trace_file(str(path))
        assert any(p.startswith("line 2:") for p in problems)


class TestOrphanSpans:
    def test_well_formed_tree_has_no_orphans(self):
        records = [
            _meta(),
            _span(span_id="root", parent_id=None),
            _span(span_id="child", parent_id="root"),
        ]
        assert find_orphan_spans(records) == []

    def test_dangling_parent_reported_once_in_order(self):
        records = [
            _span(span_id="a", parent_id="ghost"),
            _span(span_id="b", parent_id="a"),
            _span(span_id="c", parent_id="ghost2"),
        ]
        orphans = find_orphan_spans(records)
        assert len(orphans) == 2
        assert "'a'" in orphans[0] and "'ghost'" in orphans[0]
        assert "'c'" in orphans[1]

    def test_non_span_records_ignored(self):
        records = [
            {"type": "event", "name": "e", "t": 0.0, "attrs": {},
             "parent_id": "ghost"},
            "not even a dict",
        ]
        assert find_orphan_spans(records) == []

    def test_strict_file_validation_flags_orphans(self, tmp_path):
        import json

        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps(_meta()) + "\n"
            + json.dumps(_span(span_id="a", parent_id="ghost")) + "\n"
        )
        assert validate_trace_file(str(path)) == []
        problems = validate_trace_file(str(path), strict=True)
        assert len(problems) == 1
        assert problems[0].startswith("orphan:")


class TestCli:
    def test_main_ok_and_failure(self, tmp_path, capsys):
        import json

        good = tmp_path / "good.jsonl"
        good.write_text(json.dumps(_meta()) + "\n")
        assert main([str(good)]) == 0
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{}\n")
        assert main([str(bad)]) == 1
        assert main([]) == 2

    def test_strict_flag_changes_verdict(self, tmp_path, capsys):
        import json

        path = tmp_path / "orphaned.jsonl"
        path.write_text(
            json.dumps(_meta()) + "\n"
            + json.dumps(_span(span_id="a", parent_id="ghost")) + "\n"
        )
        assert main([str(path)]) == 0
        assert main(["--strict", str(path)]) == 1
