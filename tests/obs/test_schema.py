"""Trace schema validation: records and whole files."""

from __future__ import annotations

from repro.obs.schema import main, validate_record, validate_trace_file
from repro.obs.trace import SCHEMA


def _meta():
    return {"type": "meta", "schema": SCHEMA, "wall_time_unix": 1.0,
            "t": 0.0, "attrs": {}}


def _span(**overrides):
    record = {
        "type": "span", "name": "solve", "span_id": "s1",
        "parent_id": None, "t_start": 0.0, "t_end": 1.0,
        "duration": 1.0, "attrs": {},
    }
    record.update(overrides)
    return record


class TestValidateRecord:
    def test_valid_records_pass(self):
        assert validate_record(_meta()) == []
        assert validate_record(_span()) == []
        assert validate_record(
            {"type": "event", "name": "dispatch", "t": 0.5, "attrs": {}}
        ) == []
        assert validate_record(
            {"type": "metrics", "t": 1.0, "metrics": {}}
        ) == []

    def test_non_object_rejected(self):
        assert validate_record([1, 2]) != []
        assert validate_record("span") != []

    def test_unknown_type_rejected(self):
        assert validate_record({"type": "wat"}) != []

    def test_wrong_schema_rejected(self):
        bad = _meta()
        bad["schema"] = "other/9"
        assert any("schema" in p for p in validate_record(bad))

    def test_span_time_ordering_enforced(self):
        bad = _span(t_start=2.0, t_end=1.0)
        assert any("t_end" in p for p in validate_record(bad))

    def test_span_missing_fields(self):
        bad = _span()
        del bad["span_id"]
        assert any("span_id" in p for p in validate_record(bad))
        bad = _span(attrs="nope")
        assert any("attrs" in p for p in validate_record(bad))

    def test_event_requires_name_and_time(self):
        assert validate_record({"type": "event", "name": "", "t": 0.0,
                                "attrs": {}}) != []
        assert validate_record({"type": "event", "name": "x", "t": "soon",
                                "attrs": {}}) != []


class TestValidateTraceFile:
    def test_valid_file(self, tmp_path):
        import json

        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps(_meta()) + "\n" + json.dumps(_span()) + "\n"
        )
        assert validate_trace_file(str(path)) == []

    def test_first_record_must_be_meta(self, tmp_path):
        import json

        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps(_span()) + "\n")
        problems = validate_trace_file(str(path))
        assert any("meta" in p for p in problems)

    def test_empty_file_is_a_problem(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        assert validate_trace_file(str(path)) != []

    def test_invalid_json_line_reported_with_lineno(self, tmp_path):
        import json

        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps(_meta()) + "\n{nope\n")
        problems = validate_trace_file(str(path))
        assert any(p.startswith("line 2:") for p in problems)


class TestCli:
    def test_main_ok_and_failure(self, tmp_path, capsys):
        import json

        good = tmp_path / "good.jsonl"
        good.write_text(json.dumps(_meta()) + "\n")
        assert main([str(good)]) == 0
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{}\n")
        assert main([str(bad)]) == 1
        assert main([]) == 2
