"""Package logger conventions: NullHandler, get_logger, console_logging."""

from __future__ import annotations

import logging

from repro.obs import log as obs_log


class TestGetLogger:
    def test_prefixes_outside_names(self):
        assert obs_log.get_logger("thing").name == "repro.thing"

    def test_keeps_repro_module_names(self):
        logger = obs_log.get_logger("repro.resilience.debug")
        assert logger.name == "repro.resilience.debug"

    def test_import_attaches_null_handler(self):
        import repro  # noqa: F401  (side effect under test)

        root = logging.getLogger("repro")
        assert any(
            isinstance(handler, logging.NullHandler)
            for handler in root.handlers
        )


class TestConsoleLogging:
    def test_repeat_calls_do_not_stack_handlers(self):
        first = obs_log.console_logging("WARNING")
        before = list(logging.getLogger("repro").handlers)
        second = obs_log.console_logging("INFO")
        after = list(logging.getLogger("repro").handlers)
        assert first is second
        assert before == after
        assert second.level == logging.INFO

    def test_env_level(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "DEBUG")
        handler = obs_log.console_logging()
        assert handler.level == logging.DEBUG

    def test_unknown_level_falls_back_to_warning(self):
        handler = obs_log.console_logging("NOT_A_LEVEL")
        assert handler.level == logging.WARNING
