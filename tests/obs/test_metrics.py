"""Metrics registry: counters, gauges, histograms, exposition."""

from __future__ import annotations

import pytest

from repro.core.result import METRIC_FIELDS, Metrics, make_result
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    record_cover_result,
)


class TestCounter:
    def test_inc_and_value_with_labels(self):
        counter = Counter("c", "help")
        counter.inc(algorithm="cwsc")
        counter.inc(2.0, algorithm="cwsc")
        counter.inc(algorithm="cmc")
        assert counter.value(algorithm="cwsc") == 3.0
        assert counter.value(algorithm="cmc") == 1.0
        assert counter.value(algorithm="missing") == 0.0

    def test_rejects_negative_increment(self):
        counter = Counter("c", "")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_samples_format(self):
        counter = Counter("scwsc_solves_total", "")
        counter.inc(algorithm="cwsc")
        counter.inc(5, kind="x", algorithm="cmc")
        assert list(counter.samples()) == [
            'scwsc_solves_total{algorithm="cmc",kind="x"} 5',
            'scwsc_solves_total{algorithm="cwsc"} 1',
        ]


class TestGauge:
    def test_goes_up_and_down(self):
        gauge = Gauge("g", "")
        gauge.inc(3)
        gauge.dec(1)
        assert gauge.value() == 2.0
        gauge.set(10)
        assert gauge.value() == 10.0


class TestHistogram:
    def test_observe_buckets_and_sum(self):
        histogram = Histogram("h", "", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        assert histogram.count() == 3
        assert histogram.sum() == pytest.approx(5.55)
        samples = list(histogram.samples())
        assert 'h_bucket{le="0.1"} 1' in samples
        assert 'h_bucket{le="1"} 2' in samples
        assert 'h_bucket{le="+Inf"} 3' in samples
        assert "h_count 3" in samples

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", "", buckets=(1.0, 0.1))

    def test_default_buckets_are_sorted(self):
        assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS


class TestRegistry:
    def test_create_or_get_same_instance(self):
        registry = MetricsRegistry()
        a = registry.counter("c")
        b = registry.counter("c")
        assert a is b

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ValueError):
            registry.gauge("m")
        with pytest.raises(ValueError):
            registry.histogram("m")

    def test_gauge_counter_conflict_both_directions(self):
        registry = MetricsRegistry()
        registry.gauge("g")
        with pytest.raises(ValueError):
            registry.counter("g")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c", "help me").inc(2, algorithm="cwsc")
        snapshot = registry.snapshot()
        assert snapshot["c"]["kind"] == "counter"
        assert snapshot["c"]["values"] == [
            {"labels": {"algorithm": "cwsc"}, "value": 2.0}
        ]

    def test_exposition_has_type_and_help(self):
        registry = MetricsRegistry()
        registry.counter("c", "the help").inc()
        registry.histogram("h").observe(0.2)
        text = registry.exposition()
        assert "# HELP c the help" in text
        assert "# TYPE c counter" in text
        assert "# TYPE h histogram" in text
        assert text.endswith("\n")

    def test_reset_clears(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot() == {}


class TestRecordCoverResult:
    def _result(self):
        return make_result(
            algorithm="cwsc",
            chosen=[0],
            labels=[None],
            total_cost=1.0,
            covered=2,
            n_elements=4,
            feasible=True,
            params={},
            metrics=Metrics(
                sets_considered=5,
                marginal_updates=9,
                selections=1,
                runtime_seconds=0.02,
            ),
        )

    def test_publishes_every_metric_field(self):
        registry = MetricsRegistry()
        record_cover_result(self._result(), registry)
        record_cover_result(self._result(), registry)
        assert registry.counter("scwsc_solves_total").value(
            algorithm="cwsc"
        ) == 2
        for name, _, _ in METRIC_FIELDS:
            if name == "runtime_seconds":
                continue
            counter = registry.counter(f"scwsc_{name}_total")
            assert counter.value(algorithm="cwsc") >= 0
        assert registry.counter("scwsc_sets_considered_total").value(
            algorithm="cwsc"
        ) == 10
        histogram = registry.histogram("scwsc_solve_runtime_seconds")
        assert histogram.count(algorithm="cwsc") == 2
        assert histogram.sum(algorithm="cwsc") == pytest.approx(0.04)


class TestBuildInfo:
    def _labels(self, backend: str = "auto") -> dict:
        import platform

        from repro import __version__

        return {
            "version": __version__,
            "python": platform.python_version(),
            "backend": backend,
        }

    def test_publishes_identity_gauge(self, monkeypatch):
        from repro.core.marginal import BACKEND_ENV_VAR
        from repro.obs.metrics import publish_build_info

        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        registry = MetricsRegistry()
        publish_build_info(registry)
        assert registry.gauge("scwsc_build_info").value(**self._labels()) == 1

    def test_backend_label_tracks_env(self, monkeypatch):
        from repro.core.marginal import BACKEND_ENV_VAR
        from repro.obs.metrics import publish_build_info

        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        registry = MetricsRegistry()
        publish_build_info(registry)
        assert registry.gauge("scwsc_build_info").value(
            **self._labels("python")
        ) == 1

    def test_idempotent_single_sample(self, monkeypatch):
        from repro.core.marginal import BACKEND_ENV_VAR
        from repro.obs.metrics import publish_build_info

        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        registry = MetricsRegistry()
        publish_build_info(registry)
        publish_build_info(registry)
        samples = list(registry.gauge("scwsc_build_info").samples())
        assert len(samples) == 1
        assert samples[0].endswith(" 1")


class TestExpositionEscaping:
    def test_label_values_escape_backslash_quote_newline(self):
        registry = MetricsRegistry()
        registry.counter("t_total", "h").inc(
            1, path='a\\b', name='say "hi"', multi="one\ntwo"
        )
        text = registry.exposition()
        line = next(l for l in text.splitlines() if l.startswith("t_total{"))
        assert '\\\\b' in line          # backslash doubled
        assert '\\"hi\\"' in line       # quotes escaped
        assert "\\ntwo" in line         # newline escaped, not literal
        assert "\n" not in line          # the sample stays on one line

    def test_backslash_escaped_before_other_sequences(self):
        # A literal backslash-n must not collapse into an escaped
        # newline (escape ordering: backslashes first).
        registry = MetricsRegistry()
        registry.counter("t_total", "h").inc(1, v="\\n")
        line = next(
            l
            for l in registry.exposition().splitlines()
            if l.startswith("t_total{")
        )
        assert 'v="\\\\n"' in line

    def test_help_text_escapes_newline_and_backslash(self):
        registry = MetricsRegistry()
        registry.counter("t_total", "line one\nline two \\ slash")
        help_line = next(
            l
            for l in registry.exposition().splitlines()
            if l.startswith("# HELP t_total")
        )
        assert "\\n" in help_line and "\\\\" in help_line


class TestHistogramExpositionConsistency:
    def test_inf_bucket_always_emitted_and_equals_count(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", "h")
        histogram.observe(0.02, endpoint="/solve")
        histogram.observe(5000.0, endpoint="/solve")  # beyond top bucket
        lines = registry.exposition().splitlines()
        inf = next(l for l in lines if 'le="+Inf"' in l)
        count = next(l for l in lines if l.startswith("h_seconds_count"))
        assert inf.rsplit(" ", 1)[1] == count.rsplit(" ", 1)[1] == "2"

    def test_count_consistent_with_top_bucket_under_concurrency(self):
        import threading

        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", "h")
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                histogram.observe(0.01, endpoint="/solve")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(50):
                lines = registry.exposition().splitlines()
                inf = next(
                    (l for l in lines if 'le="+Inf"' in l), None
                )
                if inf is None:
                    continue
                count = next(
                    l for l in lines if l.startswith("h_seconds_count")
                )
                # Snapshot is taken under the lock: the +Inf bucket and
                # _count must agree even while writers hammer away.
                assert (
                    inf.rsplit(" ", 1)[1] == count.rsplit(" ", 1)[1]
                ), (inf, count)
        finally:
            stop.set()
            for t in threads:
                t.join()
