"""Postmortem bundles: build/validate/redact, spool caps, trigger policy.

The load-bearing claims: a bundle that validates is trustworthy all the
way down (ring records re-checked against their own schemas), and a
crash-looping trigger source can never fill the disk — the spool's byte
and count caps hold no matter how often ``fire`` is called.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.errors import ValidationError
from repro.obs import postmortem
from repro.obs.flightrec import FlightRecorder
from repro.obs.postmortem import (
    POSTMORTEM_SCHEMA,
    BundleSpool,
    TriggerEngine,
    build_bundle,
    redact_bundle,
    validate_bundle,
    validate_bundle_file,
)


def loaded_recorder() -> FlightRecorder:
    rec = FlightRecorder()
    rec.write({"type": "span", "name": "request", "span_id": "a1",
               "parent_id": None, "t_start": 0.0, "t_end": 0.1,
               "duration": 0.1, "attrs": {}})
    rec.write({"type": "event", "name": "worker_death", "t": 0.05,
               "attrs": {"worker": 0}})
    rec.record_access({
        "schema": "scwsc-access/1", "ts": 1.0, "trace_id": "ab" * 16,
        "method": "POST", "endpoint": "/solve", "status": 200,
        "duration_seconds": 0.1,
    })
    rec.record_metrics({"scwsc_requests_total": 1})
    rec.note_worker_ring(0, [{"type": "event", "name": "worker_stage",
                              "t": 0.01, "attrs": {}}])
    return rec


def make_bundle(**overrides):
    bundle = build_bundle(
        loaded_recorder(),
        trigger="manual",
        reason="test",
        stack_samples=1,
        stack_interval=0.0,
    )
    bundle.update(overrides)
    return bundle


class TestBuildAndValidate:
    def test_built_bundle_is_valid(self):
        bundle = make_bundle()
        assert bundle["schema"] == POSTMORTEM_SCHEMA
        assert validate_bundle(bundle) == []

    def test_bundle_carries_all_rings_and_workers(self):
        bundle = make_bundle()
        assert len(bundle["rings"]["spans"]["records"]) == 1
        assert len(bundle["rings"]["events"]["records"]) == 1
        assert len(bundle["rings"]["access"]["records"]) == 1
        assert len(bundle["rings"]["metrics"]["records"]) == 1
        assert list(bundle["workers"]) == ["0"]
        assert bundle["stacks"]["samples"]
        assert isinstance(bundle["metrics"], dict)
        assert all(isinstance(v, str)
                   for v in bundle["build"].values())

    def test_validate_rejects_wrong_schema_and_trigger(self):
        assert validate_bundle(make_bundle(schema="nope"))
        assert validate_bundle(make_bundle(trigger="nope"))
        assert validate_bundle("not a dict")

    def test_validate_recurses_into_ring_records(self):
        bundle = make_bundle()
        bundle["rings"]["spans"]["records"].append({"type": "span"})
        problems = validate_bundle(bundle)
        assert any("rings.spans[1]" in p for p in problems)

    def test_validate_recurses_into_access_records(self):
        bundle = make_bundle()
        bundle["rings"]["access"]["records"].append({"bogus": True})
        problems = validate_bundle(bundle)
        assert any("rings.access[1]" in p for p in problems)

    def test_missing_section_reported(self):
        bundle = make_bundle()
        del bundle["stacks"]
        assert any("stacks" in p for p in validate_bundle(bundle))

    def test_validate_bundle_file_round_trip(self, tmp_path):
        path = tmp_path / "bundle.json"
        path.write_text(json.dumps(make_bundle()), encoding="utf-8")
        loaded = validate_bundle_file(str(path))
        assert loaded["trigger"] == "manual"

    def test_validate_bundle_file_raises_on_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{", encoding="utf-8")
        with pytest.raises(ValidationError):
            validate_bundle_file(str(path))


class TestRedact:
    def test_scrubs_sensitive_keys_anywhere(self):
        bundle = make_bundle(context={
            "authorization": "Bearer abc",
            "nested": {"api_token": "xyz", "note": "keep"},
            "status": 500,
        })
        red = redact_bundle(bundle)
        assert red["context"]["authorization"] == "[redacted]"
        assert red["context"]["nested"]["api_token"] == "[redacted]"
        assert red["context"]["nested"]["note"] == "keep"
        assert red["context"]["status"] == 500
        # original untouched
        assert bundle["context"]["authorization"] == "Bearer abc"


class TestBundleSpool:
    def test_write_names_by_timestamp_and_trigger(self, tmp_path):
        spool = BundleSpool(str(tmp_path))
        path = spool.write(make_bundle())
        name = os.path.basename(path)
        assert name.startswith("postmortem-") and name.endswith("-manual.json")

    def test_count_cap_deletes_oldest(self, tmp_path):
        spool = BundleSpool(str(tmp_path), max_bundles=2)
        paths = [
            spool.write(make_bundle(created_unix=float(i)))
            for i in range(4)
        ]
        kept = spool.paths()
        assert len(kept) == 2
        assert kept == sorted(paths[-2:])

    def test_byte_cap_never_exceeded_but_newest_survives(self, tmp_path):
        bundle = make_bundle()
        size = len(json.dumps(bundle, separators=(",", ":")))
        spool = BundleSpool(str(tmp_path), max_bytes=int(size * 2.5))
        for i in range(6):
            spool.write(make_bundle(created_unix=float(i)))
            assert spool.total_bytes() <= spool.max_bytes
        assert len(spool.paths()) >= 1

    def test_name_collision_gets_suffix(self, tmp_path):
        spool = BundleSpool(str(tmp_path))
        a = spool.write(make_bundle(created_unix=1.0))
        b = spool.write(make_bundle(created_unix=1.0))
        assert a != b and os.path.exists(a) and os.path.exists(b)


class TestTriggerEngine:
    def engine(self, tmp_path, **kwargs):
        kwargs.setdefault("min_interval", 60.0)
        spool = BundleSpool(str(tmp_path))
        return TriggerEngine(loaded_recorder(), spool,
                             stack_samples=1, stack_interval=0.0, **kwargs)

    def test_fire_writes_valid_bundle(self, tmp_path):
        eng = self.engine(tmp_path)
        assert eng.fire("worker_death", reason="worker 0 died", sync=True)
        assert len(eng.written) == 1
        bundle = validate_bundle_file(eng.written[0])
        assert bundle["trigger"] == "worker_death"
        assert bundle["reason"] == "worker 0 died"

    def test_unknown_trigger_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            self.engine(tmp_path).fire("meteor", reason="x")

    def test_rate_limit_bounds_a_crash_loop(self, tmp_path):
        """Satellite: a crash-looping worker is one incident, not one
        bundle per restart — and the spool byte cap holds throughout."""
        eng = self.engine(tmp_path, min_interval=60.0)
        fired = sum(
            eng.fire("worker_death", reason=f"restart {i}", sync=True)
            for i in range(50)
        )
        assert fired == 1
        assert len(eng.written) == 1
        stats = eng.stats()
        assert stats["counts"]["worker_death"]["fired"] == 1
        assert stats["counts"]["worker_death"]["rate_limited"] == 49
        assert eng.spool.total_bytes() <= eng.spool.max_bytes

    def test_rate_limit_window_reopens(self, tmp_path):
        eng = self.engine(tmp_path, min_interval=0.05)
        assert eng.fire("hard_timeout", reason="a", sync=True)
        assert not eng.fire("hard_timeout", reason="b", sync=True)
        time.sleep(0.06)
        assert eng.fire("hard_timeout", reason="c", sync=True)
        assert len(eng.written) == 2

    def test_rate_limit_is_per_kind(self, tmp_path):
        eng = self.engine(tmp_path)
        assert eng.fire("worker_death", reason="a", sync=True)
        assert eng.fire("breaker_open", reason="b", sync=True)

    def test_dedup_key_until_reset(self, tmp_path):
        eng = self.engine(tmp_path, min_interval=0.0)
        assert eng.fire("breaker_open", reason="open", key="pool", sync=True)
        assert not eng.fire("breaker_open", reason="open", key="pool",
                            sync=True)
        assert eng.stats()["counts"]["breaker_open"]["deduped"] == 1
        eng.reset_dedup("breaker_open", "pool")
        assert eng.fire("breaker_open", reason="re-open", key="pool",
                        sync=True)

    def test_racing_triggers_collapse_to_one_bundle(self, tmp_path):
        eng = self.engine(tmp_path, min_interval=60.0)
        results = []
        barrier = threading.Barrier(8)

        def racer():
            barrier.wait()
            results.append(
                eng.fire("worker_death", reason="race", sync=True)
            )

        threads = [threading.Thread(target=racer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(results) == 1
        assert len(eng.written) == 1

    def test_async_fire_drains(self, tmp_path):
        eng = self.engine(tmp_path)
        eng.settle_seconds = 0.0
        assert eng.fire("server_5xx", reason="500 on /solve")
        eng.drain(10.0)
        assert len(eng.written) == 1
        validate_bundle_file(eng.written[0])

    def test_failed_build_never_raises(self, tmp_path):
        eng = self.engine(tmp_path)
        eng.recorder = None  # force the build to blow up internally
        assert eng.fire("manual", reason="broken", sync=True)
        assert eng.written == []
        assert eng.stats()["pending"] == 0


class TestModuleCli:
    def test_main_validates_and_reports(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(make_bundle()), encoding="utf-8")
        bad = tmp_path / "bad.json"
        bad.write_text("{}", encoding="utf-8")
        assert postmortem.main([str(good)]) == 0
        assert postmortem.main([str(good), str(bad)]) == 1
        assert postmortem.main([]) == 2
