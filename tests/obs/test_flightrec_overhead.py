"""The flight recorder must be invisible to the solver hot loops.

Arming the recorder installs a ring channel but leaves
``trace.enabled()`` False, so the per-selection guard in the tracker
``select`` loops reads the same global and takes the same branch — the
loop is byte-identical with the recorder on or off. This test enforces
the <2% budget from the flight-recorder design note by timing the same
instrumented sweep in both global states (best-of-N, plus a small
absolute floor so a microsecond-scale loop on a noisy CI box cannot
flake the ratio).

The companion serve-side budget (recorder work per request vs. request
p50) lives in ``tests/serve/test_debug_endpoints.py``.
"""

from __future__ import annotations

import random
import time

from repro.core.marginal import BitsetMarginalTracker, MarginalTracker
from repro.core.setsystem import SetSystem
from repro.obs import flightrec
from repro.obs import trace as obs_trace

#: The budget: armed may cost at most 2% over off, plus an absolute
#: floor absorbing scheduler jitter on sub-millisecond loops.
MAX_REGRESSION = 1.02
ABSOLUTE_SLACK = 2e-4

N_ELEMENTS = 512
N_SETS = 160
BEST_OF = 7


def _system() -> SetSystem:
    rng = random.Random(20260807)
    benefits = [
        set(rng.sample(range(N_ELEMENTS), rng.randint(4, 40)))
        for _ in range(N_SETS)
    ]
    costs = [1.0 + rng.random() for _ in range(N_SETS)]
    return SetSystem.from_iterables(N_ELEMENTS, benefits, costs)


def _greedy_order(tracker) -> list[int]:
    order = []
    while len(tracker):
        best = max(tracker.live_items(), key=lambda kv: (kv[1], -kv[0]))[0]
        tracker.select(best)
        order.append(best)
    return order


def _best_of(make_tracker, order) -> float:
    best = float("inf")
    for _ in range(BEST_OF):
        tracker = make_tracker()
        t0 = time.perf_counter()
        for set_id in order:
            tracker.select(set_id)
        best = min(best, time.perf_counter() - t0)
    return best


def _assert_armed_within_budget(make_tracker):
    order = _greedy_order(make_tracker())
    assert len(order) > 20
    # Warm both states once so neither timed pass pays first-run costs.
    _best_of(make_tracker, order)

    assert not obs_trace.recording()
    baseline = _best_of(make_tracker, order)

    flightrec.install()
    try:
        assert obs_trace.recording() and not obs_trace.enabled()
        armed = _best_of(make_tracker, order)
    finally:
        flightrec.uninstall()

    budget = baseline * MAX_REGRESSION + ABSOLUTE_SLACK
    assert armed <= budget, (
        f"tracker loop with recorder armed took {armed * 1e6:.0f}us vs "
        f"{baseline * 1e6:.0f}us off (budget {budget * 1e6:.0f}us = "
        f"{MAX_REGRESSION}x + {ABSOLUTE_SLACK * 1e6:.0f}us slack)"
    )


class TestArmedRecorderOverhead:
    def test_set_backend_unchanged_when_armed(self):
        system = _system()
        _assert_armed_within_budget(lambda: MarginalTracker(system))

    def test_bitset_backend_unchanged_when_armed(self):
        system = _system()
        _assert_armed_within_budget(lambda: BitsetMarginalTracker(system))

    def test_armed_sweep_rings_no_per_selection_spans(self):
        """The mechanism behind the budget: a full sweep with the
        recorder armed must land zero per-selection records in the ring
        — only guard-protected call sites may fire, and they key on
        ``enabled()``, which stays False."""
        system = _system()
        rec = flightrec.install()
        try:
            tracker = MarginalTracker(system)
            for set_id in _greedy_order(MarginalTracker(system)):
                tracker.select(set_id)
            assert len(rec.spans) == 0
            assert len(rec.events) == 0
        finally:
            flightrec.uninstall()
