"""Quality telemetry: compute_quality math and record_quality plumbing."""

from __future__ import annotations

import json
import math

import pytest

from repro.core.result import CoverResult
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.quality import (
    RATIO_BUCKETS,
    compute_quality,
    quality_records,
    record_quality,
)
from repro.obs.schema import validate_record


def _result(
    total_cost=6.0,
    covered=90,
    n_elements=100,
    n_sets=3,
    feasible=True,
    params=None,
):
    ids = tuple(range(n_sets))
    return CoverResult(
        algorithm="cwsc",
        set_ids=ids,
        labels=tuple(f"s{i}" for i in ids),
        total_cost=total_cost,
        covered=covered,
        n_elements=n_elements,
        feasible=feasible,
        params={} if params is None else params,
    )


class TestComputeQuality:
    def test_full_quality_dict(self):
        quality = compute_quality(
            _result(), k=5, s_hat=0.85, lp_bound=4.0
        )
        assert quality["total_cost"] == 6.0
        assert quality["lp_bound"] == 4.0
        assert quality["approx_ratio"] == pytest.approx(1.5)
        assert quality["coverage_fraction"] == pytest.approx(0.9)
        assert quality["coverage_target"] == 0.85
        assert quality["coverage_slack"] == pytest.approx(0.05)
        assert quality["sets_used"] == 3
        assert quality["sets_budget"] == 5
        assert quality["sets_slack"] == 2
        assert quality["feasible"] is True

    def test_defaults_pulled_from_result_params(self):
        result = _result(params={"k": 4, "s_hat": 0.95})
        quality = compute_quality(result)
        assert quality["sets_budget"] == 4
        assert quality["coverage_target"] == 0.95
        assert quality["coverage_slack"] == pytest.approx(0.9 - 0.95)

    def test_missing_bound_and_target_yield_nones(self):
        quality = compute_quality(_result())
        assert quality["approx_ratio"] is None
        assert quality["lp_bound"] is None
        assert quality["coverage_slack"] is None
        assert quality["coverage_target"] is None
        assert quality["sets_budget"] is None
        assert quality["sets_slack"] is None

    def test_degenerate_bounds_never_divide(self):
        assert compute_quality(_result(), lp_bound=0.0)["approx_ratio"] is None
        assert (
            compute_quality(_result(), lp_bound=-1.0)["approx_ratio"] is None
        )
        quality = compute_quality(_result(), lp_bound=math.inf)
        assert quality["approx_ratio"] is None
        assert quality["lp_bound"] is None

    def test_infinite_cost_serializes_as_null(self):
        quality = compute_quality(_result(total_cost=math.inf), lp_bound=2.0)
        assert quality["total_cost"] is None
        assert quality["approx_ratio"] is None

    def test_negative_sets_slack_for_cmc_overshoot(self):
        quality = compute_quality(_result(n_sets=3), k=2)
        assert quality["sets_slack"] == -1

    def test_json_ready(self):
        quality = compute_quality(_result(), k=5, s_hat=0.9, lp_bound=3.0)
        json.dumps(quality)  # no exotic types


class TestRecordQuality:
    def test_publishes_registry_metrics(self):
        registry = MetricsRegistry()
        record_quality(
            _result(), k=5, s_hat=0.85, lp_bound=4.0, registry=registry
        )
        snapshot = registry.snapshot()
        ratio = snapshot["scwsc_approx_ratio"]
        assert ratio["kind"] == "histogram"
        [series] = ratio["values"]
        assert series["labels"] == {"algorithm": "cwsc"}
        assert series["count"] == 1
        slack = snapshot["scwsc_coverage_slack"]["values"][0]
        assert slack["value"] == pytest.approx(0.05)
        used = snapshot["scwsc_sets_used"]["values"][0]
        assert used["value"] == 3
        assert "scwsc_infeasible_results_total" not in snapshot

    def test_no_bound_skips_ratio_histogram(self):
        registry = MetricsRegistry()
        record_quality(_result(), registry=registry)
        assert "scwsc_approx_ratio" not in registry.snapshot()

    def test_infeasible_counter(self):
        registry = MetricsRegistry()
        record_quality(_result(feasible=False), registry=registry)
        record_quality(_result(feasible=False), registry=registry)
        snapshot = registry.snapshot()
        [series] = snapshot["scwsc_infeasible_results_total"]["values"]
        assert series["value"] == 2

    def test_writes_trace_record_when_tracing(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs_trace.configure(str(path), command="test")
        try:
            record_quality(
                _result(),
                k=5,
                s_hat=0.85,
                lp_bound=4.0,
                registry=MetricsRegistry(),
            )
        finally:
            obs_trace.shutdown()
        records = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line
        ]
        found = quality_records(records)
        assert len(found) == 1
        assert validate_record(found[0]) == []
        assert found[0]["algorithm"] == "cwsc"
        assert found[0]["quality"]["approx_ratio"] == pytest.approx(1.5)

    def test_no_tracer_no_error(self):
        quality = record_quality(_result(), registry=MetricsRegistry())
        assert quality["sets_used"] == 3

    def test_ratio_buckets_sorted_and_start_at_one(self):
        assert RATIO_BUCKETS[0] == 1.0
        assert list(RATIO_BUCKETS) == sorted(RATIO_BUCKETS)


class TestRecordCoverResultIntegration:
    def test_record_cover_result_publishes_quality(self):
        from repro.obs.metrics import record_cover_result

        registry = MetricsRegistry()
        record_cover_result(_result(), registry=registry, lp_bound=4.0)
        snapshot = registry.snapshot()
        assert "scwsc_solves_total" in snapshot
        assert "scwsc_approx_ratio" in snapshot
        assert "scwsc_sets_used" in snapshot
