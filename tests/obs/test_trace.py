"""Span tracer: nesting, null-span fast path, capture/replay."""

from __future__ import annotations

import io
import json

from repro.obs import trace as obs_trace
from repro.obs.schema import validate_record


def _records(buffer: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in buffer.getvalue().splitlines()]


class TestDisabledPath:
    def test_disabled_by_default(self):
        assert not obs_trace.enabled()
        assert obs_trace.get_tracer() is None

    def test_span_returns_shared_null_span(self):
        span = obs_trace.span("solve", k=3)
        assert span is obs_trace.NULL_SPAN
        assert not span.enabled
        with span as inner:
            inner.set(anything=1)
            inner.event("noop")

    def test_event_and_write_raw_are_noops(self):
        obs_trace.event("worker_spawn", worker=0)
        obs_trace.write_raw({"type": "event", "name": "x", "t": 0.0})


class TestConfiguredTracer:
    def test_meta_record_comes_first_with_attrs(self):
        buffer = io.StringIO()
        obs_trace.configure(buffer, command="test", dataset="lbl")
        obs_trace.shutdown()
        records = _records(buffer)
        assert records[0]["type"] == "meta"
        assert records[0]["schema"] == obs_trace.SCHEMA
        assert records[0]["attrs"] == {"command": "test", "dataset": "lbl"}

    def test_spans_nest_via_parent_id(self):
        buffer = io.StringIO()
        obs_trace.configure(buffer)
        with obs_trace.span("solve") as outer:
            with obs_trace.span("select") as inner:
                pass
        obs_trace.shutdown()
        records = _records(buffer)
        spans = {r["name"]: r for r in records if r["type"] == "span"}
        assert spans["select"]["parent_id"] == outer.span_id
        assert spans["solve"]["parent_id"] is None
        assert inner.span_id != outer.span_id
        # Spans close inner-first, so select is written before solve.
        names = [r["name"] for r in records if r["type"] == "span"]
        assert names == ["select", "solve"]

    def test_span_attrs_and_late_set(self):
        buffer = io.StringIO()
        obs_trace.configure(buffer)
        with obs_trace.span("solve", k=3) as span:
            assert span.enabled
            span.set(covered=7)
        obs_trace.shutdown()
        (span_record,) = [
            r for r in _records(buffer) if r["type"] == "span"
        ]
        assert span_record["attrs"] == {"k": 3, "covered": 7}
        assert span_record["t_end"] >= span_record["t_start"]

    def test_exception_is_recorded_and_propagates(self):
        buffer = io.StringIO()
        obs_trace.configure(buffer)
        try:
            with obs_trace.span("solve"):
                raise ValueError("boom")
        except ValueError:
            pass
        obs_trace.shutdown()
        (span_record,) = [
            r for r in _records(buffer) if r["type"] == "span"
        ]
        assert span_record["attrs"]["error"] == "ValueError"

    def test_shutdown_writes_final_metrics_record(self):
        buffer = io.StringIO()
        obs_trace.configure(buffer)
        obs_trace.shutdown(metrics_snapshot={"m": {"kind": "counter"}})
        records = _records(buffer)
        assert records[-1]["type"] == "metrics"
        assert records[-1]["metrics"] == {"m": {"kind": "counter"}}
        assert not obs_trace.enabled()

    def test_all_records_validate(self):
        buffer = io.StringIO()
        obs_trace.configure(buffer, command="t")
        with obs_trace.span("solve", k=1):
            obs_trace.event("tracker_update", backend="set")
        obs_trace.shutdown(metrics_snapshot={})
        for record in _records(buffer):
            assert validate_record(record) == []


class TestCaptureAndReplay:
    def test_capture_collects_and_restores(self):
        buffer = io.StringIO()
        obs_trace.configure(buffer)
        with obs_trace.capture() as records:
            assert obs_trace.enabled()
            with obs_trace.span("solve"):
                pass
        # Back on the outer tracer after capture.
        assert obs_trace.get_tracer() is not None
        assert [r["name"] for r in records] == ["solve"]
        assert all(r["type"] != "meta" for r in records)

    def test_capture_works_without_outer_tracer(self):
        with obs_trace.capture() as records:
            with obs_trace.span("solve"):
                pass
        assert not obs_trace.enabled()
        assert len(records) == 1

    def test_replay_prefixes_ids_and_merges_attrs(self):
        with obs_trace.capture() as records:
            with obs_trace.span("solve"):
                with obs_trace.span("select"):
                    pass
            obs_trace.event("tracker_update", updates=3)
        buffer = io.StringIO()
        obs_trace.configure(buffer)
        obs_trace.replay(records, prefix="r7a1.", request_id=7, worker=0)
        obs_trace.shutdown()
        out = [r for r in _records(buffer) if r["type"] != "meta"]
        spans = {r["name"]: r for r in out if r["type"] == "span"}
        assert spans["solve"]["span_id"].startswith("r7a1.")
        assert spans["select"]["parent_id"] == spans["solve"]["span_id"]
        for record in out:
            assert record["attrs"]["request_id"] == 7
            assert record["attrs"]["worker"] == 0

    def test_replay_skips_meta_records(self):
        buffer = io.StringIO()
        obs_trace.configure(buffer)
        obs_trace.replay(
            [{"type": "meta", "schema": obs_trace.SCHEMA, "t": 0.0}]
        )
        obs_trace.shutdown()
        assert [r["type"] for r in _records(buffer)] == ["meta"]


class TestJsonlSink:
    def test_file_target_is_owned_and_flushed(self, tmp_path):
        path = tmp_path / "out.jsonl"
        obs_trace.configure(str(path), command="t")
        with obs_trace.span("solve"):
            # Flushed per record: the meta line is on disk already.
            assert path.read_text().count("\n") >= 1
        obs_trace.shutdown()
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["type"] == "meta"
        assert json.loads(lines[1])["name"] == "solve"


class TestTraceContext:
    def test_mint_and_roundtrip(self):
        ctx = obs_trace.TraceContext.mint()
        assert len(ctx.trace_id) == 32 and len(ctx.span_id) == 16
        parsed = obs_trace.parse_traceparent(ctx.to_traceparent())
        assert parsed == ctx

    def test_child_keeps_trace_id_fresh_span_id(self):
        ctx = obs_trace.TraceContext.mint()
        child = ctx.child()
        assert child.trace_id == ctx.trace_id
        assert child.span_id != ctx.span_id

    def test_parse_rejects_invalid_headers(self):
        assert obs_trace.parse_traceparent(None) is None
        assert obs_trace.parse_traceparent("") is None
        assert obs_trace.parse_traceparent("garbage") is None
        # version ff is reserved-invalid
        assert (
            obs_trace.parse_traceparent(
                "ff-" + "a" * 32 + "-" + "b" * 16 + "-01"
            )
            is None
        )
        # all-zero trace or span id is invalid
        assert (
            obs_trace.parse_traceparent(
                "00-" + "0" * 32 + "-" + "b" * 16 + "-01"
            )
            is None
        )
        assert (
            obs_trace.parse_traceparent(
                "00-" + "a" * 32 + "-" + "0" * 16 + "-01"
            )
            is None
        )
        # uppercase hex is normalized, not rejected (lenient parse: a
        # malformed-but-recoverable upstream header keeps its trace id)
        parsed = obs_trace.parse_traceparent(
            "00-" + "A" * 32 + "-" + "b" * 16 + "-01"
        )
        assert parsed is not None and parsed.trace_id == "a" * 32

    def test_context_var_set_and_reset(self):
        assert obs_trace.get_context() is None
        ctx = obs_trace.TraceContext.mint()
        with obs_trace.context(ctx):
            assert obs_trace.get_context() == ctx
        assert obs_trace.get_context() is None
        # None context is a no-op wrapper
        with obs_trace.context(None):
            assert obs_trace.get_context() is None

    def test_replay_root_parent_reparents_top_spans_only(self):
        with obs_trace.capture() as records:
            with obs_trace.span("solve"):
                with obs_trace.span("select"):
                    pass
            obs_trace.event("tracker_update", updates=1)
        buffer = io.StringIO()
        obs_trace.configure(buffer)
        obs_trace.replay(records, prefix="t1.a1.", root_parent="edgespan01")
        obs_trace.shutdown()
        out = [r for r in _records(buffer) if r["type"] != "meta"]
        spans = {r["name"]: r for r in out if r["type"] == "span"}
        # The worker's root span hangs off the request's edge span ...
        assert spans["solve"]["parent_id"] == "edgespan01"
        # ... while nested spans keep their prefixed worker-side parent.
        assert spans["select"]["parent_id"] == spans["solve"]["span_id"]
        # Events have no span ids and are never reparented.
        events = [r for r in out if r["type"] == "event"]
        assert all("parent_id" not in r for r in events)
