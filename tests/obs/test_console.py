"""``scwsc top`` console: exposition parsing, quantiles, frame render."""

from __future__ import annotations

import pytest

from repro.obs.console import (
    MetricsSnapshot,
    histogram_quantile,
    parse_exposition,
    render_frame,
)
from repro.obs.metrics import MetricsRegistry


class TestParseExposition:
    def test_skips_comments_and_parses_values(self):
        text = (
            "# HELP x_total help\n"
            "# TYPE x_total counter\n"
            "x_total 3\n"
            'y_total{a="1",b="two"} 4.5\n'
        )
        samples = parse_exposition(text)
        assert [(s.name, s.labels, s.value) for s in samples] == [
            ("x_total", {}, 3.0),
            ("y_total", {"a": "1", "b": "two"}, 4.5),
        ]

    def test_unescapes_label_values(self):
        registry = MetricsRegistry()
        hostile = 'back\\slash "quote"\nnewline'
        registry.counter("t_total", "h").inc(1, path=hostile)
        samples = parse_exposition(registry.exposition())
        sample = next(s for s in samples if s.name == "t_total")
        assert sample.labels["path"] == hostile

    def test_inf_bucket_parses(self):
        text = 'h_bucket{le="+Inf"} 7\n'
        (sample,) = parse_exposition(text)
        assert sample.labels["le"] == "+Inf"


class TestHistogramQuantile:
    def test_interpolates_inside_bucket(self):
        buckets = [(0.1, 0.0), (0.2, 10.0), (float("inf"), 10.0)]
        # Rank 5 of 10, all inside (0.1, 0.2]: midpoint.
        assert histogram_quantile(buckets, 0.5) == pytest.approx(0.15)

    def test_open_top_bucket_returns_lower_bound(self):
        buckets = [(1.0, 1.0), (float("inf"), 10.0)]
        assert histogram_quantile(buckets, 0.99) == 1.0

    def test_empty_returns_none(self):
        assert histogram_quantile([], 0.5) is None
        assert histogram_quantile([(1.0, 0.0)], 0.5) is None

    def test_fresh_daemon_zero_observations_returns_none(self):
        # All-zero cumulative buckets: a daemon that has served nothing.
        buckets = [(0.1, 0.0), (1.0, 0.0), (float("inf"), 0.0)]
        assert histogram_quantile(buckets, 0.5) is None
        assert histogram_quantile(buckets, 0.99) is None

    def test_non_finite_counts_return_none(self):
        nan = float("nan")
        assert histogram_quantile([(1.0, nan), (float("inf"), nan)], 0.5) is None
        assert (
            histogram_quantile(
                [(1.0, float("inf")), (float("inf"), float("inf"))], 0.5
            )
            is None
        )
        # NaN total with a finite-looking earlier bucket
        assert histogram_quantile([(1.0, 3.0), (float("inf"), nan)], 0.5) is None


class TestSnapshotQueries:
    def make(self):
        registry = MetricsRegistry()
        registry.counter("scwsc_server_requests_total", "h").inc(
            8, endpoint="/solve", code="200"
        )
        registry.counter("scwsc_server_requests_total", "h").inc(
            2, endpoint="/solve", code="429"
        )
        registry.gauge("scwsc_server_inflight", "h").set(3)
        return MetricsSnapshot.parse(registry.exposition(), ts=10.0)

    def test_total_and_group(self):
        snap = self.make()
        assert snap.total("scwsc_server_requests_total") == 10.0
        assert snap.group("scwsc_server_requests_total", "code") == {
            "200": 8.0,
            "429": 2.0,
        }
        assert snap.value("scwsc_server_inflight") == 3.0


class TestRenderFrame:
    def test_renders_panels_from_empty_snapshot(self):
        frame = render_frame(MetricsSnapshot.parse("", ts=1.0))
        for panel in ("serve", "latency", "slo burn", "sheds", "breakers"):
            assert panel in frame

    def test_qps_from_two_snapshots(self):
        registry = MetricsRegistry()
        counter = registry.counter("scwsc_server_requests_total", "h")
        counter.inc(10, endpoint="/solve", code="200")
        prev = MetricsSnapshot.parse(registry.exposition(), ts=0.0)
        counter.inc(20, endpoint="/solve", code="200")
        now = MetricsSnapshot.parse(registry.exposition(), ts=2.0)
        frame = render_frame(now, prev)
        assert "qps   10.0" in frame

    def test_breaker_states_and_sheds_render(self):
        registry = MetricsRegistry()
        registry.gauge("scwsc_breaker_state", "h").set(2, breaker="exact")
        registry.counter("scwsc_server_shed_total", "h").inc(
            4, reason="max_inflight"
        )
        frame = render_frame(
            MetricsSnapshot.parse(registry.exposition(), ts=0.0)
        )
        assert "exact:OPEN" in frame
        assert "max_inflight=4" in frame

    def test_fresh_daemon_latency_renders_dashes_not_nan(self):
        """Satellite regression: a just-started daemon has registered
        its histograms but observed nothing — the latency panel must
        render placeholders, never ``nan`` or a crash."""
        registry = MetricsRegistry()
        registry.histogram("scwsc_server_request_seconds", "h")
        frame = render_frame(MetricsSnapshot.parse(registry.exposition(), ts=0.0))
        assert "nan" not in frame.lower()
        assert "-" in frame


class TestWorkersPanel:
    def test_rss_values_render_when_reported(self):
        registry = MetricsRegistry()
        registry.gauge("scwsc_worker_peak_rss_bytes", "h").set(
            64 * 1024 * 1024, worker="0"
        )
        frame = render_frame(
            MetricsSnapshot.parse(registry.exposition(), ts=0.0)
        )
        assert "worker peak rss" in frame
        assert "w0=64.0MiB" in frame

    def test_zero_values_are_not_rendered_as_zero_bytes(self):
        registry = MetricsRegistry()
        registry.gauge("scwsc_worker_peak_rss_bytes", "h").set(0, worker="0")
        frame = render_frame(
            MetricsSnapshot.parse(registry.exposition(), ts=0.0)
        )
        assert "w0=" not in frame

    def test_panel_hidden_when_rss_unmeasurable(self, monkeypatch):
        """Satellite: on a platform where ``peak_rss_bytes()`` is None
        (no ``resource`` module) the panel disappears entirely instead
        of showing fictitious zeros."""
        from repro.obs import profile as obs_profile

        monkeypatch.setattr(obs_profile, "peak_rss_bytes", lambda: None)
        frame = render_frame(MetricsSnapshot.parse("", ts=0.0))
        assert "worker peak rss" not in frame
        assert "no worker rss yet" not in frame

    def test_placeholder_when_measurable_but_unreported(self, monkeypatch):
        from repro.obs import profile as obs_profile

        monkeypatch.setattr(
            obs_profile, "peak_rss_bytes", lambda: 123 * 1024
        )
        frame = render_frame(MetricsSnapshot.parse("", ts=0.0))
        assert "worker peak rss" in frame
        assert "(no worker rss yet)" in frame
