"""The acceptance scenario: overload, deadlines, and graceful drain.

The load-shed test pins down the ISSUE's headline numbers: a 2-worker
pool with an admission cap of 4 takes 16 concurrent requests and
answers exactly 4×200 + 12×429 — no 500s, no hangs — with every 200
body verifying against the system the client sent and every deadline
honored within the hard-timeout tolerance.

Worker hangs are forced with the chaos layer (``REPRO_CHAOS=hang=1``)
so the admitted requests *must* travel the whole degradation ladder:
dispatch → SIGKILL at deadline+grace → requeue → budget exhausted →
parent-side verified universal fallback.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time

from repro.core.result import result_from_dict
from repro.core.validate import verify_result
from repro.obs.metrics import get_registry
from repro.resilience.pool.protocol import system_from_payload

#: Every admitted request hangs in the worker until killed.
HANG_ENV = {"REPRO_CHAOS": "hang=1.0,hang_seconds=120,fault_limit=1000000"}

DEADLINE = 2.0
GRACE = 0.5
#: Slack over deadline+grace for poll slices, respawns, and HTTP
#: overhead on a loaded CI box.
TOLERANCE = 2.5


class TestOverload:
    def test_sixteen_concurrent_yield_only_200_and_429(
        self, make_server, solve_body
    ):
        server = make_server(
            worker_env=HANG_ENV,
            workers=2,
            max_inflight=4,
            grace=GRACE,
            max_requeues=1,
            default_deadline=DEADLINE,
        )
        body = solve_body(seed=9, deadline=DEADLINE)
        system = system_from_payload(body["system"])
        barrier = threading.Barrier(16)
        outcomes: list[tuple[int, dict, dict, float]] = []
        lock = threading.Lock()

        def fire() -> None:
            barrier.wait()
            started = time.monotonic()
            code, response, headers = server.post(
                "/solve", body, timeout=DEADLINE + GRACE + 30
            )
            elapsed = time.monotonic() - started
            with lock:
                outcomes.append((code, response, headers, elapsed))

        threads = [threading.Thread(target=fire) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(DEADLINE + GRACE + 60)
            assert not thread.is_alive(), "request thread hung"

        codes = sorted(code for code, _, _, _ in outcomes)
        assert codes == [200] * 4 + [429] * 12, codes

        for code, response, headers, elapsed in outcomes:
            if code == 429:
                assert response["reason"] == "inflight"
                assert int(headers["Retry-After"]) >= 1
                continue
            # Hung workers force the full degradation ladder; the
            # answer is still a *verified* universal fallback.
            assert response["status"] == "fallback"
            problems = verify_result(
                system,
                result_from_dict(response["result"]),
                k=body["k"],
                s_hat=body["s"],
            )
            assert problems == []
            assert elapsed <= DEADLINE + GRACE + TOLERANCE, elapsed
            outcomes_seen = [
                attempt["outcome"]
                for attempt in response["pool"]["attempts"]
            ]
            assert outcomes_seen, "no attempt provenance"

        # The registry saw exactly the sheds the clients saw.
        shed = get_registry().counter("scwsc_server_shed_total")
        assert shed.value(reason="inflight") == 12
        admitted = get_registry().counter("scwsc_server_admitted_total")
        assert admitted.value(tenant="default") == 4

    def test_deadline_exhaustion_provenance(self, make_server, solve_body):
        # One hanging request end to end: the provenance must show the
        # hard-kill and the budget-exhausted fallback, not a 500.
        server = make_server(
            worker_env=HANG_ENV,
            workers=1,
            grace=GRACE,
            max_requeues=1,
            default_deadline=DEADLINE,
        )
        started = time.monotonic()
        code, response, _ = server.post(
            "/solve",
            solve_body(seed=3, deadline=1.5),
            timeout=DEADLINE + GRACE + 30,
        )
        elapsed = time.monotonic() - started
        assert code == 200
        assert response["status"] == "fallback"
        assert elapsed <= 1.5 + GRACE + TOLERANCE
        outcomes = [
            attempt["outcome"] for attempt in response["pool"]["attempts"]
        ]
        assert "deadline-exhausted" in outcomes or "hard-timeout" in outcomes


class TestSigtermDrain:
    def test_sigterm_under_load_drains_and_exits_zero(
        self, solve_body, tmp_path
    ):
        """Boot the real CLI daemon, load it, SIGTERM it mid-flight.

        In-flight requests must complete (the hang chaos makes them
        take their full deadline, so the drain is genuinely exercised)
        and the process must exit 0.
        """
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        env.update(HANG_ENV)
        trace_path = tmp_path / "serve.jsonl"
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                "--workers",
                "2",
                "--default-deadline",
                str(DEADLINE),
                "--grace",
                str(GRACE),
                "--trace",
                str(trace_path),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            boot = json.loads(proc.stdout.readline())
            assert boot["event"] == "listening"
            port = boot["port"]
            base = f"http://127.0.0.1:{port}"
            body = solve_body(seed=5, deadline=DEADLINE)
            results: list[int] = []

            def fire() -> None:
                import urllib.request

                request = urllib.request.Request(
                    base + "/solve", data=json.dumps(body).encode()
                )
                with urllib.request.urlopen(
                    request, timeout=DEADLINE + GRACE + 30
                ) as response:
                    results.append(response.status)

            threads = [threading.Thread(target=fire) for _ in range(2)]
            for thread in threads:
                thread.start()
            time.sleep(0.5)  # both requests are in flight now
            proc.send_signal(signal.SIGTERM)
            for thread in threads:
                thread.join(DEADLINE + GRACE + 60)
                assert not thread.is_alive()
            assert results == [200, 200]
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        # The trace the daemon wrote is schema-valid and records the
        # server lifecycle events.
        from repro.obs.schema import validate_trace_file

        assert validate_trace_file(str(trace_path)) == []
        events = set()
        with open(trace_path) as handle:
            for line in handle:
                record = json.loads(line)
                if record.get("type") == "event":
                    events.add(record["name"])
        assert {"server_start", "server_drain_begin", "server_drained",
                "server_stop"} <= events
