"""Serve-test fixtures: an in-process daemon and an HTTP micro-client.

Tests here boot the real stack — ``ServeEngine`` (dispatcher thread +
worker processes) behind a real ``SolverServer`` on an ephemeral port —
because the robustness claims under test (shedding under concurrency,
drain under signal, surviving hostile clients) only exist with real
sockets and real processes. Pools are kept at 1–2 workers to bound
spawn cost.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import get_registry
from repro.resilience.pool.protocol import system_to_payload
from repro.serve import (
    AdmissionController,
    ServeConfig,
    ServeEngine,
    SolverServer,
)


class LiveServer:
    """One in-process daemon plus a blocking JSON client for it."""

    def __init__(self, config: ServeConfig, worker_env: dict | None = None):
        self.config = config
        self.engine = ServeEngine(config, worker_env=worker_env)
        self.admission = AdmissionController(config)
        self.engine.start()
        assert self.engine.wait_warm(60.0), "pool failed to warm"
        self.httpd = SolverServer(config, self.engine, self.admission)
        self.port = self.httpd.server_address[1]
        self.base = f"http://127.0.0.1:{self.port}"
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._thread.start()
        self._stopped = False

    def request(
        self,
        method: str,
        path: str,
        body=None,
        headers: dict | None = None,
        timeout: float = 60.0,
    ):
        """Returns ``(status_code, decoded_body, response_headers)``."""
        data = None
        if isinstance(body, (dict, list)):
            data = json.dumps(body).encode("utf-8")
        elif body is not None:
            data = body
        request = urllib.request.Request(
            self.base + path, data=data, method=method, headers=headers or {}
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                raw, code = response.read(), response.status
                response_headers = dict(response.headers)
        except urllib.error.HTTPError as error:
            raw, code = error.read(), error.code
            response_headers = dict(error.headers)
        try:
            decoded = json.loads(raw)
        except (ValueError, UnicodeDecodeError):
            decoded = raw.decode("utf-8", errors="replace")
        return code, decoded, response_headers

    def get(self, path: str, timeout: float = 60.0):
        return self.request("GET", path, timeout=timeout)

    def post(self, path: str, body, headers=None, timeout: float = 60.0):
        return self.request("POST", path, body, headers=headers, timeout=timeout)

    def stop(self, drain: bool = True) -> None:
        if self._stopped:
            return
        self._stopped = True
        self.httpd.begin_drain()
        self.httpd.shutdown()
        self._thread.join(10.0)
        self.engine.stop(drain=drain)
        self.httpd.server_close()


@pytest.fixture
def make_server():
    """Factory for :class:`LiveServer`\\ s, stopped at teardown.

    Resets the global metrics registry first so per-test assertions on
    ``scwsc_server_*`` values see only this test's traffic.
    """
    get_registry().reset()
    servers: list[LiveServer] = []

    def _make(worker_env: dict | None = None, **overrides) -> LiveServer:
        overrides.setdefault("port", 0)
        overrides.setdefault("workers", 1)
        config = ServeConfig(**overrides)
        server = LiveServer(config, worker_env=worker_env)
        servers.append(server)
        return server

    yield _make
    for server in servers:
        server.stop()
    get_registry().reset()


@pytest.fixture
def solve_body(random_system):
    """A valid ``POST /solve`` JSON body over a small random system."""

    def _body(seed: int = 0, **overrides) -> dict:
        system = random_system(n_elements=12, n_sets=8, seed=seed)
        body = {
            "system": system_to_payload(system),
            "k": 3,
            "s": 0.5,
        }
        body.update(overrides)
        return body

    return _body
