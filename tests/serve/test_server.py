"""HTTP surface: routes, malformed frames, schema validation, metrics."""

from __future__ import annotations

import pytest

from repro.core.validate import verify_result
from repro.errors import ProtocolError, ValidationError
from repro.resilience.pool.protocol import system_to_payload
from repro.serve import ServeConfig, build_solve_request
from repro.serve.server import _TICKET_SLACK  # noqa: F401  (import check)


class TestBuildSolveRequest:
    def config(self, **overrides) -> ServeConfig:
        overrides.setdefault("port", 0)
        return ServeConfig(**overrides)

    def payload(self, random_system, **overrides) -> dict:
        body = {
            "system": system_to_payload(random_system()),
            "k": 3,
            "s": 0.5,
        }
        body.update(overrides)
        return body

    def test_minimal_body(self, random_system):
        request = build_solve_request(
            self.payload(random_system), self.config()
        )
        assert request.k == 3
        assert request.s_hat == 0.5
        assert request.solver == "resilient"
        assert request.timeout == self.config().default_deadline

    def test_deadline_clamped_to_max(self, random_system):
        config = self.config(max_deadline=10.0, default_deadline=5.0)
        request = build_solve_request(
            self.payload(random_system, deadline=9999.0), config
        )
        assert request.timeout == 10.0

    def test_all_fields_pass_through(self, random_system):
        request = build_solve_request(
            self.payload(
                random_system,
                solver="cwsc",
                chain=["cwsc", "universal"],
                deadline=2.0,
                seed=7,
                tag="t1",
                options={"x": 1},
                stage_options={"cmc": {"b": 2.0}},
            ),
            self.config(),
        )
        assert request.solver == "cwsc"
        assert request.chain == ("cwsc", "universal")
        assert request.timeout == 2.0
        assert request.seed == 7
        assert request.tag == "t1"
        assert request.options == {"x": 1}
        assert request.stage_options == {"cmc": {"b": 2.0}}

    @pytest.mark.parametrize(
        "mutation",
        [
            {"k": "three"},
            {"k": True},
            {"s": "half"},
            {"deadline": 0},
            {"deadline": "soon"},
            {"solver": 7},
            {"chain": "cwsc"},
            {"chain": [1, 2]},
            {"seed": 1.5},
            {"tag": 9},
            {"options": []},
        ],
    )
    def test_bad_fields_raise_validation(self, random_system, mutation):
        body = self.payload(random_system, **mutation)
        with pytest.raises(ValidationError):
            build_solve_request(body, self.config())

    def test_missing_system_raises(self):
        with pytest.raises(ValidationError, match="system"):
            build_solve_request({"k": 1, "s": 0.5}, self.config())

    def test_bad_system_payload_raises_protocol_error(self):
        with pytest.raises(ProtocolError):
            build_solve_request(
                {"system": {"n": 3}, "k": 1, "s": 0.5}, self.config()
            )


class TestBackendAndShardKnobs(TestBuildSolveRequest):
    """Top-level ``backend``/``shards`` request fields flow into solver
    options (and validate before any solve starts)."""

    def test_backend_lands_in_options(self, random_system):
        request = build_solve_request(
            self.payload(random_system, backend="packed"), self.config()
        )
        assert request.options == {"backend": "packed"}

    def test_shards_lands_in_options(self, random_system):
        request = build_solve_request(
            self.payload(random_system, backend="packed", shards=2),
            self.config(),
        )
        assert request.options == {"backend": "packed", "shards": 2}

    def test_explicit_options_win_over_top_level(self, random_system):
        request = build_solve_request(
            self.payload(
                random_system,
                backend="packed",
                options={"backend": "bitset"},
            ),
            self.config(),
        )
        assert request.options["backend"] == "bitset"

    def test_unknown_backend_rejected(self, random_system):
        with pytest.raises(ValidationError):
            build_solve_request(
                self.payload(random_system, backend="gpu"), self.config()
            )

    @pytest.mark.parametrize("shards", [0, -1, 1.5, "two"])
    def test_bad_shards_rejected(self, random_system, shards):
        with pytest.raises(ValidationError):
            build_solve_request(
                self.payload(random_system, shards=shards), self.config()
            )

    def test_shards_requires_resilient_solver(self, random_system):
        with pytest.raises(ValidationError):
            build_solve_request(
                self.payload(random_system, solver="cwsc", shards=2),
                self.config(),
            )


class TestEndpoints:
    def test_healthz(self, make_server):
        server = make_server()
        code, body, _ = server.get("/healthz")
        assert (code, body) == (200, {"ok": True})

    def test_readyz_after_warm(self, make_server):
        server = make_server()
        code, body, _ = server.get("/readyz")
        assert code == 200
        assert body["ready"] is True
        assert body["warm"] is True
        assert body["open_breakers"] == []

    def test_unknown_route_404(self, make_server):
        server = make_server()
        code, body, _ = server.get("/nope")
        assert code == 404
        code, _, _ = server.post("/healthz", {})
        assert code == 404

    def test_solve_round_trip_verifies(
        self, make_server, solve_body, random_system
    ):
        server = make_server()
        body = solve_body(seed=4)
        code, response, _ = server.post("/solve", body)
        assert code == 200
        assert response["status"] in ("ok", "fallback")
        result = response["result"]
        # Recompute the claims locally: the served result must verify
        # against the system the client actually sent.
        from repro.core.result import result_from_dict
        from repro.resilience.pool.protocol import system_from_payload

        system = system_from_payload(body["system"])
        problems = verify_result(
            system, result_from_dict(result), k=body["k"], s_hat=body["s"]
        )
        assert problems == []
        assert response["pool"]["attempts"]

    def test_batch_shares_one_system(self, make_server, solve_body):
        server = make_server()
        body = solve_body(seed=2)
        code, response, _ = server.post(
            "/batch",
            {
                "system": body["system"],
                "requests": [
                    {"k": 3, "s": 0.5, "tag": "a"},
                    {"k": 2, "s": 0.4, "tag": "b"},
                ],
            },
        )
        assert code == 200
        assert response["count"] == 2
        assert [entry["tag"] for entry in response["results"]] == ["a", "b"]
        assert all(
            entry["status"] in ("ok", "fallback")
            for entry in response["results"]
        )

    def test_malformed_json_400_and_server_survives(
        self, make_server, solve_body
    ):
        server = make_server()
        code, body, _ = server.post("/solve", b"{not json", timeout=10)
        assert code == 400
        assert "malformed JSON" in body["error"]
        # The accept loop is untouched: a healthy request still works.
        code, _, _ = server.post("/solve", solve_body())
        assert code == 200

    def test_bad_schema_400(self, make_server, solve_body):
        server = make_server()
        code, body, _ = server.post(
            "/solve", {"system": {"n": 3}, "k": 1, "s": 0.5}, timeout=10
        )
        assert code == 400

    def test_oversized_body_413(self, make_server):
        server = make_server(max_body_bytes=128)
        code, body, _ = server.post("/solve", {"pad": "x" * 1024}, timeout=10)
        assert code == 413

    def test_batch_size_cap_400(self, make_server, solve_body):
        server = make_server(max_batch=2)
        body = solve_body()
        code, response, _ = server.post(
            "/batch",
            {
                "system": body["system"],
                "requests": [{"k": 1, "s": 0.1}] * 3,
            },
            timeout=10,
        )
        assert code == 400
        assert "batch too large" in response["error"]

    def test_tenant_concurrency_shed_with_retry_after(
        self, make_server, solve_body
    ):
        server = make_server(tenant_max_inflight=1, max_inflight=8)
        # Saturate tenant "a" synthetically, then observe the shed.
        server.admission.try_admit("a")
        code, body, headers = server.post(
            "/solve", solve_body(), headers={"X-Scwsc-Tenant": "a"}, timeout=10
        )
        assert code == 429
        assert body["reason"] == "tenant_concurrency"
        assert int(headers["Retry-After"]) >= 1
        # Other tenants are unaffected.
        code, _, _ = server.post(
            "/solve", solve_body(), headers={"X-Scwsc-Tenant": "b"}
        )
        assert code == 200
        server.admission.release("a")

    def test_metrics_page_exposes_server_series(self, make_server, solve_body):
        server = make_server()
        assert server.post("/solve", solve_body())[0] == 200
        code, page, _ = server.get("/metrics")
        assert code == 200
        assert 'scwsc_server_requests_total{code="200",endpoint="/solve"} 1' in page
        assert "scwsc_server_request_seconds_bucket" in page
        assert "scwsc_build_info{" in page
        assert "scwsc_server_queue_depth" in page
        # The pool's own solve counters flow through the same registry.
        assert "scwsc_solves_total" in page

    def test_readyz_flips_with_breaker_state(self, make_server):
        server = make_server(breaker_threshold=2, breaker_cooldown=60.0)
        board = server.engine.pool.board
        for _ in range(2):
            board.record_failure("exact")
        deadline_poll = 100
        code = None
        for _ in range(deadline_poll):
            code, body, _ = server.get("/readyz")
            if code == 503:
                break
            import time

            time.sleep(0.05)
        assert code == 503
        assert "exact" in body["open_breakers"]
        # Recovery: a success closes the breaker and readiness returns.
        board.record_success("exact")
        for _ in range(deadline_poll):
            code, body, _ = server.get("/readyz")
            if code == 200:
                break
            import time

            time.sleep(0.05)
        assert code == 200
