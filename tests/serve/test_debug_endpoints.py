"""The /debug surface, postmortem triggers, and the serve-side overhead
budget — all against live daemons.

The acceptance scenario from the flight-recorder design note lives here:
killing a pool worker during serve traffic must produce exactly one
schema-valid ``scwsc-postmortem/1`` bundle carrying ring-buffer spans,
pool events, sampled stacks, and a metrics snapshot.
"""

from __future__ import annotations

import io
import os
import signal
import time

import pytest

from repro.obs import postmortem
from repro.obs.console import run_top


def _wait_for_bundles(directory: str, count: int = 1, timeout: float = 30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        names = sorted(
            n
            for n in os.listdir(directory)
            if n.startswith("postmortem-") and n.endswith(".json")
        )
        if len(names) >= count:
            return names
        time.sleep(0.1)
    return sorted(os.listdir(directory))


def _worker_pid(server) -> int:
    return server.engine.pool._workers[0].proc.pid


class TestDebugRoutes:
    def test_all_three_pages_answer_on_loopback(self, make_server):
        server = make_server()
        code, vars_, _ = server.get("/debug/vars")
        assert code == 200
        assert vars_["build"]["version"]
        assert vars_["flightrec"]["rings"]["spans"]["capacity"] > 0
        assert vars_["config"]["workers"] == 1
        assert vars_["uptime_seconds"] >= 0

        code, stacks, _ = server.get("/debug/stacks")
        assert code == 200
        assert stacks["sample"]["threads"]
        assert stacks["sampler"] == {
            "hz": 0.0,
            "running": False,
            "ring_samples": 0,
        }

        code, flightrec, _ = server.get("/debug/flightrec")
        assert code == 200
        assert flightrec["armed"] is True
        # no postmortem dir configured -> no trigger engine, no spool
        assert flightrec["triggers"] is None
        assert "spool" not in flightrec

    def test_rings_fill_with_traffic(self, make_server, solve_body):
        server = make_server()
        code, _, _ = server.post("/solve", solve_body())
        assert code == 200
        code, flightrec, _ = server.get("/debug/flightrec")
        stats = flightrec["stats"]["rings"]
        assert stats["spans"]["total"] >= 1
        assert stats["access"]["total"] >= 1
        event_names = {e["name"] for e in flightrec["recent_events"]}
        assert "dispatch" in event_names

    def test_disabled_endpoints_answer_403(self, make_server):
        server = make_server(debug_endpoints=False)
        for path in ("/debug/vars", "/debug/stacks", "/debug/flightrec"):
            code, body, _ = server.get(path)
            assert code == 403, path
            assert "disabled" in body["error"]
        # the rest of the API is unaffected
        assert server.get("/healthz")[0] == 200

    def test_flightrec_off_still_serves(self, make_server, solve_body):
        server = make_server(flightrec=False)
        assert server.post("/solve", solve_body())[0] == 200
        code, flightrec, _ = server.get("/debug/flightrec")
        assert code == 200
        assert flightrec["armed"] is False
        assert flightrec["stats"] is None

    def test_sampler_armed_fills_ring(self, make_server):
        server = make_server(sampler_hz=100.0)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            _, stacks, _ = server.get("/debug/stacks")
            if stacks["sampler"]["ring_samples"] >= 2:
                break
            time.sleep(0.05)
        assert stacks["sampler"]["running"] is True
        assert stacks["sampler"]["hz"] == 100.0
        assert stacks["sampler"]["ring_samples"] >= 2


class TestFreshDaemonConsole:
    def test_top_once_against_just_started_server(self, make_server):
        """Satellite regression: ``scwsc top --once`` against a daemon
        that has served zero requests must exit 0 and render placeholders,
        not NaN or a ZeroDivisionError."""
        server = make_server()
        out = io.StringIO()
        assert run_top(server.base, once=True, out=out) == 0
        frame = out.getvalue()
        assert "serve" in frame
        assert "nan" not in frame.lower()
        # zero-traffic quantiles render as placeholders, not numbers
        assert "qps -" in frame


class TestWorkerDeathBundle:
    def test_killing_a_worker_writes_exactly_one_valid_bundle(
        self, make_server, solve_body, tmp_path
    ):
        """The acceptance scenario: healthy traffic, SIGKILL the pool
        worker, one schema-valid bundle with spans + pool events +
        stacks + metrics appears in the spool — and only one."""
        spool_dir = str(tmp_path / "postmortems")
        server = make_server(postmortem_dir=spool_dir)
        for seed in range(3):
            assert server.post("/solve", solve_body(seed=seed))[0] == 200

        os.kill(_worker_pid(server), signal.SIGKILL)
        # Traffic forces the supervisor to notice the death now.
        server.post("/solve", solve_body())

        names = _wait_for_bundles(spool_dir, count=1)
        assert names, "no bundle appeared after worker kill"
        server.httpd.triggers.drain(10.0)

        death_bundles = [n for n in names if "worker_death" in n]
        assert len(death_bundles) == 1, names
        bundle = postmortem.validate_bundle_file(
            os.path.join(spool_dir, death_bundles[0])
        )
        assert bundle["trigger"] == "worker_death"
        assert len(bundle["rings"]["spans"]["records"]) >= 1
        event_names = {
            r["name"] for r in bundle["rings"]["events"]["records"]
        }
        assert "worker_death" in event_names
        assert len(bundle["stacks"]["samples"]) >= 1
        assert bundle["stacks"]["collapsed"]
        assert isinstance(bundle["metrics"], dict) and bundle["metrics"]
        assert len(bundle["rings"]["metrics"]["records"]) >= 1
        assert bundle["config"]["workers"] == 1
        # the worker's own ring survived its death (shipped on earlier
        # result frames, retained by the supervisor)
        assert bundle["workers"], "worker ring missing from bundle"

        code, flightrec, _ = server.get("/debug/flightrec")
        assert flightrec["triggers"]["counts"]["worker_death"]["fired"] == 1
        assert death_bundles[0] in flightrec["spool"]["bundles"]


class TestServerErrorTriggers:
    def test_5xx_on_solve_fires_bundle(self, make_server, tmp_path):
        spool_dir = str(tmp_path / "postmortems")
        server = make_server(postmortem_dir=spool_dir)
        server.httpd.triggers.settle_seconds = 0.0
        server.httpd.observe_request("/solve", 500, 0.01)
        server.httpd.triggers.drain(10.0)
        names = [n for n in os.listdir(spool_dir) if "server_5xx" in n]
        assert len(names) == 1
        bundle = postmortem.validate_bundle_file(
            os.path.join(spool_dir, names[0])
        )
        assert bundle["context"]["code"] == 500

    def test_healthz_5xx_does_not_fire(self, make_server, tmp_path):
        spool_dir = str(tmp_path / "postmortems")
        server = make_server(postmortem_dir=spool_dir)
        server.httpd.observe_request("/healthz", 500, 0.01)
        server.httpd.triggers.drain(5.0)
        assert not os.listdir(spool_dir)

    def test_slo_fast_burn_fires_on_error_storm(self, make_server, tmp_path):
        spool_dir = str(tmp_path / "postmortems")
        server = make_server(postmortem_dir=spool_dir)
        server.httpd.triggers.settle_seconds = 0.0
        # Rate-limit would otherwise collapse the 5xx bundles with the
        # burn bundle check below; only the counter matters here.
        for _ in range(20):
            server.httpd.observe_request("/solve", 500, 0.01)
        # /metrics is a deterministic fast-burn evaluation point.
        assert server.get("/metrics")[0] == 200
        server.httpd.triggers.drain(10.0)
        counts = server.httpd.triggers.stats()["counts"]
        assert counts["slo_fast_burn"]["fired"] == 1


@pytest.mark.chaos
class TestCrashLoopBounded:
    def test_crash_loop_writes_bounded_bundles(
        self, make_server, solve_body, tmp_path
    ):
        """Satellite: a worker crash-looping under ``REPRO_CHAOS`` is one
        incident — bundle output stays rate-limited and the spool never
        exceeds its byte cap."""
        spool_dir = str(tmp_path / "postmortems")
        server = make_server(
            worker_env={"REPRO_CHAOS": "kill=1,limit=1000000"},
            postmortem_dir=spool_dir,
            postmortem_max_bytes=512 * 1024,
        )
        for seed in range(6):
            code, _, _ = server.post("/solve", solve_body(seed=seed))
            assert code == 200  # fallback still answers
        server.httpd.triggers.drain(15.0)

        stats = server.httpd.triggers.stats()["counts"]["worker_death"]
        assert stats["fired"] == 1
        assert stats["fired"] + stats["rate_limited"] >= 1
        spool = server.httpd.triggers.spool
        assert spool.total_bytes() <= spool.max_bytes
        # worker_death is rate-limited to one bundle; breaker_open may
        # legitimately add its own. Nothing else should be here.
        names = os.listdir(spool_dir)
        assert 1 <= len([n for n in names if "worker_death" in n]) <= 1
        assert len(names) <= 3


class TestServeOverheadBudget:
    def test_recorder_request_work_under_2_percent_of_p50(
        self, make_server, solve_body
    ):
        """The serve-side <2% budget, measured without comparing two
        noisy HTTP medians: time the recorder's actual per-request work
        (one access-record ring + one span tee + one event ring) and
        hold it under 2% of a measured request p50."""
        server = make_server()
        # a real p50 over the cheapest endpoint (most adverse baseline:
        # /solve would only make the denominator bigger)
        for _ in range(5):
            server.get("/healthz")  # warm
        samples = []
        for _ in range(60):
            t0 = time.perf_counter()
            assert server.get("/healthz")[0] == 200
            samples.append(time.perf_counter() - t0)
        samples.sort()
        p50 = samples[len(samples) // 2]

        recorder = server.httpd.recorder
        from repro.obs import trace as obs_trace

        def recorder_work(n: int) -> float:
            t0 = time.perf_counter()
            for _ in range(n):
                recorder.record_access(
                    {
                        "schema": "scwsc-access/1",
                        "ts": 0.0,
                        "trace_id": "ab" * 16,
                        "method": "GET",
                        "endpoint": "/healthz",
                        "status": 200,
                        "duration_seconds": 0.001,
                    }
                )
                with obs_trace.span("request", endpoint="/healthz"):
                    pass
                obs_trace.event("request_complete", code=200)
            return (time.perf_counter() - t0) / n

        # Min over repeats: the cheapest pass is the one with the least
        # scheduler/GC interference, i.e. the recorder's actual cost.
        recorder_work(200)  # warm
        per_request = min(recorder_work(400) for _ in range(5))

        assert per_request < 0.02 * p50, (
            f"recorder work {per_request * 1e6:.1f}us/request is over 2% "
            f"of the measured p50 {p50 * 1e6:.0f}us"
        )
