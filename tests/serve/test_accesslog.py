"""Access-log schema: write-time validation, file validation, round trip."""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import ValidationError
from repro.serve.accesslog import (
    ACCESS_SCHEMA,
    AccessLog,
    iter_access_records,
    validate_access_file,
    validate_access_record,
)

VALID = {
    "schema": ACCESS_SCHEMA,
    "ts": 1700000000.0,
    "trace_id": "ab" * 16,
    "method": "POST",
    "endpoint": "/solve",
    "status": 200,
    "duration_seconds": 0.125,
}


class TestValidateRecord:
    def test_valid_record_passes(self):
        assert validate_access_record(VALID) == []

    def test_missing_required_field(self):
        record = dict(VALID)
        del record["trace_id"]
        assert any("trace_id" in p for p in validate_access_record(record))

    def test_wrong_schema_value(self):
        record = dict(VALID, schema="nope/9")
        assert any("schema" in p for p in validate_access_record(record))

    def test_bad_trace_id(self):
        record = dict(VALID, trace_id="XYZ")
        assert any("trace_id" in p for p in validate_access_record(record))

    def test_unknown_field_rejected(self):
        record = dict(VALID, surprise=1)
        assert any("surprise" in p for p in validate_access_record(record))

    def test_bool_is_not_a_number(self):
        record = dict(VALID, duration_seconds=True)
        assert any(
            "duration_seconds" in p for p in validate_access_record(record)
        )

    def test_non_dict_rejected(self):
        assert validate_access_record([1, 2]) != []


class TestAccessLog:
    def test_log_writes_validated_jsonl(self, tmp_path):
        path = tmp_path / "access.jsonl"
        log = AccessLog(str(path))
        record = log.log(
            trace_id="cd" * 16,
            method="GET",
            endpoint="/metrics",
            status=200,
            duration_seconds=0.001,
            tenant=None,  # None values are dropped, not written
        )
        log.close()
        assert record["schema"] == ACCESS_SCHEMA
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        parsed = json.loads(lines[0])
        assert "tenant" not in parsed
        assert validate_access_file(str(path)) == 1

    def test_malformed_record_refused_before_write(self, tmp_path):
        path = tmp_path / "access.jsonl"
        log = AccessLog(str(path))
        with pytest.raises(ValidationError):
            log.log(method="GET", endpoint="/x")  # no trace_id/duration
        log.close()
        assert path.read_text() == ""

    def test_concurrent_writers_never_interleave(self, tmp_path):
        path = tmp_path / "access.jsonl"
        log = AccessLog(str(path))

        def write(worker: int) -> None:
            for i in range(50):
                log.log(
                    trace_id=f"{worker:02x}{i:02x}" * 8,
                    method="POST",
                    endpoint="/solve",
                    status=200,
                    duration_seconds=0.01,
                )

        threads = [
            threading.Thread(target=write, args=(w,)) for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        log.close()
        assert validate_access_file(str(path)) == 200
        assert len(list(iter_access_records(str(path)))) == 200

    def test_validate_file_reports_line_number(self, tmp_path):
        path = tmp_path / "access.jsonl"
        path.write_text(
            json.dumps(VALID) + "\n" + '{"schema": "scwsc-access/1"}\n'
        )
        with pytest.raises(ValidationError, match=":2"):
            validate_access_file(str(path))
