"""Admission control in isolation: buckets, caps, shed reasons."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.serve import ServeConfig
from repro.serve.admission import AdmissionController, TokenBucket


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_empty(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert [bucket.try_take() for _ in range(4)] == [
            True,
            True,
            True,
            False,
        ]

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        assert bucket.try_take(2)
        assert not bucket.try_take()
        clock.advance(0.5)  # 1 token back
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_retry_after_names_the_deficit(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.try_take()
        assert bucket.retry_after() == pytest.approx(0.5)
        assert bucket.retry_after(0.0) == 0.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=-1.0)


def make_controller(clock=None, **overrides) -> AdmissionController:
    overrides.setdefault("port", 0)
    config = ServeConfig(**overrides)
    kwargs = {"clock": clock} if clock is not None else {}
    return AdmissionController(config, **kwargs)


class TestAdmissionController:
    def test_admits_within_all_caps(self):
        controller = make_controller()
        decision = controller.try_admit("a")
        assert decision.admitted
        assert decision.reason is None
        assert controller.inflight == 1

    def test_global_inflight_cap_sheds(self):
        controller = make_controller(max_inflight=2, tenant_max_inflight=8)
        assert controller.try_admit("a").admitted
        assert controller.try_admit("a").admitted
        decision = controller.try_admit("a")
        assert not decision.admitted
        assert decision.reason == "inflight"
        assert decision.retry_after > 0

    def test_release_restores_capacity(self):
        controller = make_controller(max_inflight=1)
        assert controller.try_admit("a").admitted
        assert not controller.try_admit("a").admitted
        controller.release("a")
        assert controller.try_admit("a").admitted

    def test_tenant_concurrency_cap_is_per_tenant(self):
        controller = make_controller(max_inflight=16, tenant_max_inflight=1)
        assert controller.try_admit("a").admitted
        blocked = controller.try_admit("a")
        assert blocked.reason == "tenant_concurrency"
        # Another tenant is unaffected.
        assert controller.try_admit("b").admitted

    def test_tenant_rate_limit_sheds_with_honest_retry_after(self):
        clock = FakeClock()
        controller = make_controller(
            clock=clock,
            tenant_rate=1.0,
            tenant_burst=2.0,
            tenant_max_inflight=8,
            max_inflight=100,
        )
        for _ in range(2):
            decision = controller.try_admit("a")
            assert decision.admitted
            controller.release("a")
        shed = controller.try_admit("a")
        assert shed.reason == "tenant_rate"
        assert shed.retry_after >= 1.0
        clock.advance(1.5)
        assert controller.try_admit("a").admitted

    def test_queue_depth_cap_sheds(self):
        controller = make_controller(max_queue_depth=2)
        decision = controller.try_admit("a", queue_depth=2)
        assert not decision.admitted
        assert decision.reason == "queue"

    def test_global_shed_refunds_tenant_bucket(self):
        # A tenant shed by the *global* cap should not also lose rate
        # budget: once capacity frees up it can come straight back.
        clock = FakeClock()
        controller = make_controller(
            clock=clock,
            max_inflight=1,
            tenant_rate=0.001,
            tenant_burst=1.0,
        )
        assert controller.try_admit("greedy").admitted
        assert controller.try_admit("patient").reason == "inflight"
        controller.release("greedy")
        assert controller.try_admit("patient").admitted

    def test_draining_sheds_everything(self):
        controller = make_controller()
        controller.start_draining()
        decision = controller.try_admit("a")
        assert decision.reason == "draining"

    def test_batch_admission_is_all_or_nothing(self):
        controller = make_controller(max_inflight=4, tenant_max_inflight=8)
        assert controller.try_admit("a", n=3).admitted
        assert controller.try_admit("a", n=2).reason == "inflight"
        assert controller.try_admit("a", n=1).admitted
        controller.release("a", n=3)
        controller.release("a", n=1)
        assert controller.inflight == 0

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            make_controller().try_admit("a", n=0)

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            ServeConfig(port=0, max_inflight=0)
        with pytest.raises(ValidationError):
            ServeConfig(port=0, default_deadline=10.0, max_deadline=5.0)
        with pytest.raises(ValidationError):
            ServeConfig(port=0, tenant_rate=0.0)
        with pytest.raises(ValidationError):
            ServeConfig(port=0, read_timeout=0.0)
