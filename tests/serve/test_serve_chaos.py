"""Server-facing chaos: hostile clients against a live daemon.

The chaos layer's new client-side faults (``slow_client``,
``malformed_request``, ``conn_reset``) drive a misbehaving client at a
real server while healthy traffic runs beside it. The invariant in
every test: the daemon answers the healthy requests normally and keeps
accepting connections — a hostile client costs at most its own
connection.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.resilience.faults import FaultConfig, FaultInjector

pytestmark = pytest.mark.chaos


def raw_request(body: bytes, port: int) -> bytes:
    return (
        f"POST /solve HTTP/1.1\r\n"
        f"Host: 127.0.0.1:{port}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode() + body


class HealthyTraffic:
    """Background healthy requests; join() asserts they all succeeded."""

    def __init__(self, server, solve_body, count: int = 3):
        self.server = server
        self.codes: list[int] = []
        self._lock = threading.Lock()
        self._threads = [
            threading.Thread(target=self._fire, args=(solve_body(seed=i),))
            for i in range(count)
        ]
        for thread in self._threads:
            thread.start()

    def _fire(self, body: dict) -> None:
        code, _, _ = self.server.post("/solve", body, timeout=120)
        with self._lock:
            self.codes.append(code)

    def assert_all_ok(self) -> None:
        for thread in self._threads:
            thread.join(120)
            assert not thread.is_alive(), "healthy request hung"
        assert self.codes == [200] * len(self._threads), self.codes


class TestSlowClient:
    def test_slow_client_is_dropped_not_waited_on(
        self, make_server, solve_body
    ):
        server = make_server(workers=1, read_timeout=0.5)
        injector = FaultInjector(
            FaultConfig(seed=7, slow_client=1.0, slow_client_seconds=5.0)
        )
        healthy = HealthyTraffic(server, solve_body)

        stall = injector.slow_client()
        assert stall == 5.0
        body = json.dumps(solve_body(seed=20)).encode()
        with socket.create_connection(("127.0.0.1", server.port), 10) as sock:
            frame = raw_request(body, server.port)
            sock.sendall(frame[: len(frame) // 2])
            started = time.monotonic()
            sock.settimeout(min(stall, 10.0))
            # The server hangs up once read_timeout expires — long
            # before the client's intended stall is over.
            tail = b""
            try:
                while True:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    tail += chunk
            except (socket.timeout, ConnectionResetError):
                pytest.fail("server kept the slow client alive past stall")
            waited = time.monotonic() - started
            assert waited < stall, "server waited out the slow client"

        healthy.assert_all_ok()
        assert server.get("/healthz")[0] == 200
        assert injector.stats.slow_clients == 1

    def test_behaving_rate_zero_never_stalls(self):
        injector = FaultInjector(FaultConfig(seed=1, slow_client=0.0))
        assert all(injector.slow_client() == 0.0 for _ in range(50))


class TestMalformedRequest:
    def test_garbled_bodies_get_400_and_accept_loop_survives(
        self, make_server, solve_body
    ):
        server = make_server(workers=1)
        injector = FaultInjector(FaultConfig(seed=11, malformed_request=1.0))
        healthy = HealthyTraffic(server, solve_body)

        clean = json.dumps(solve_body(seed=21)).encode()
        for _ in range(6):
            garbled = injector.malformed_request(clean)
            assert garbled != clean
            code, response, _ = server.post("/solve", garbled, timeout=30)
            assert code == 400, (code, response)

        healthy.assert_all_ok()
        # And the daemon still solves for clients who behave.
        assert server.post("/solve", solve_body(seed=22))[0] == 200
        assert injector.stats.malformed_requests == 6

    def test_interleaved_garbage_between_valid_requests(
        self, make_server, solve_body
    ):
        # valid → garbage → valid on fresh connections: each malformed
        # frame is rejected in isolation.
        server = make_server(workers=1)
        injector = FaultInjector(FaultConfig(seed=3, malformed_request=1.0))
        clean = json.dumps(solve_body(seed=23)).encode()
        assert server.post("/solve", clean)[0] == 200
        assert server.post(
            "/solve", injector.malformed_request(clean), timeout=30
        )[0] == 400
        assert server.post("/solve", clean)[0] == 200


class TestConnReset:
    def test_mid_request_resets_do_not_drop_healthy_traffic(
        self, make_server, solve_body
    ):
        server = make_server(workers=1)
        injector = FaultInjector(FaultConfig(seed=5, conn_reset=1.0))
        healthy = HealthyTraffic(server, solve_body)

        body = json.dumps(solve_body(seed=24)).encode()
        resets = 0
        for _ in range(4):
            assert injector.conn_reset()
            resets += 1
            sock = socket.create_connection(("127.0.0.1", server.port), 10)
            try:
                frame = raw_request(body, server.port)
                sock.sendall(frame[: max(1, len(frame) // 3)])
                # SO_LINGER(1, 0): close sends RST, not FIN.
                sock.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_LINGER,
                    __import__("struct").pack("ii", 1, 0),
                )
            finally:
                sock.close()

        healthy.assert_all_ok()
        assert server.get("/healthz")[0] == 200
        assert server.post("/solve", solve_body(seed=25))[0] == 200
        assert injector.stats.conn_resets == resets
