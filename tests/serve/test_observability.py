"""Acceptance: end-to-end request tracing, access log, SLO, and console.

Drives a mix of requests — concurrent solves, a rate-limited shed, a
chaos-forced pool requeue, and a sharded solve — through a live daemon
and asserts the observability contract: every HTTP request yields
exactly one schema-valid access-log record, every traced request's
worker (and shard) spans replay under the originating trace id in one
schema-valid tree, and ``scwsc top`` renders a frame from the scraped
``/metrics`` page without a TTY.
"""

from __future__ import annotations

import io
import json
import threading

from repro.obs import trace as obs_trace
from repro.obs.console import MetricsSnapshot, render_frame, run_top
from repro.obs.report import load_trace
from repro.obs.schema import validate_trace_file
from repro.resilience import faults
from repro.resilience.faults import FaultConfig
from repro.serve.accesslog import iter_access_records, validate_access_file


def traceparent(tid: str) -> str:
    return f"00-{tid}-{'cd' * 8}-01"


def spans_for(records: list[dict], tid: str) -> list[dict]:
    return [
        r
        for r in records
        if r.get("type") == "span"
        and str(r.get("span_id", "")).startswith(tid)
    ]


class TestObservabilityAcceptance:
    def test_trace_access_log_and_console(
        self, make_server, solve_body, tmp_path
    ):
        trace_path = tmp_path / "trace.jsonl"
        access_path = tmp_path / "access.jsonl"
        obs_trace.configure(str(trace_path), command="observability-test")
        try:
            server = make_server(
                workers=1,
                access_log=str(access_path),
                max_requeues=1,
                # One token, refilled glacially: the second request from
                # tenant "limited" deterministically sheds tenant_rate.
                tenant_rate=0.0001,
                tenant_burst=1.0,
            )
            sent: list[str] = []  # trace ids we handed the server

            # -- three concurrent plain solves (distinct tenants so the
            # -- one-token bucket is not consumed) ----------------------
            tids = [f"{i:02x}" * 16 for i in (0xA1, 0xA2, 0xA3)]
            outcomes: dict[str, tuple[int, dict]] = {}
            lock = threading.Lock()

            def fire(tid: str, tenant: str) -> None:
                code, decoded, _ = server.post(
                    "/solve",
                    solve_body(seed=1),
                    headers={
                        "traceparent": traceparent(tid),
                        "X-Scwsc-Tenant": tenant,
                    },
                )
                with lock:
                    outcomes[tid] = (code, decoded)

            threads = [
                threading.Thread(target=fire, args=(tid, f"t{i}"))
                for i, tid in enumerate(tids)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(120)
                assert not thread.is_alive(), "request hung"
            sent += tids
            for tid in tids:
                code, decoded = outcomes[tid]
                assert code == 200, decoded
                assert decoded["trace_id"] == tid

            # -- one sharded solve ------------------------------------
            shard_tid = "b1" * 16
            code, decoded, _ = server.post(
                "/solve",
                solve_body(seed=2, shards=2, chain=["cwsc"]),
                headers={
                    "traceparent": traceparent(shard_tid),
                    "X-Scwsc-Tenant": "sharder",
                },
            )
            sent.append(shard_tid)
            assert code == 200, decoded
            assert decoded["status"] == "ok"

            # -- one chaos-forced pool requeue ------------------------
            # The supervisor SIGKILLs the worker 50ms after dispatch; a
            # sharded solve spends far longer than that spawning its
            # shard session, so the kill always lands mid-attempt.
            requeue_tid = "c1" * 16
            with faults.chaos(
                FaultConfig(worker_kill=1.0, fault_limit=1, seed=7)
            ):
                code, decoded, _ = server.post(
                    "/solve",
                    solve_body(seed=3, shards=2, chain=["cwsc"]),
                    headers={
                        "traceparent": traceparent(requeue_tid),
                        "X-Scwsc-Tenant": "requeuer",
                    },
                )
            sent.append(requeue_tid)
            assert code == 200, decoded
            assert decoded["pool"]["requeues"] == 1, decoded["pool"]

            # -- one shed 429 (second hit on the one-token bucket) ----
            shed_ok_tid = "d1" * 16
            shed_tid = "d2" * 16
            code, _, _ = server.post(
                "/solve",
                solve_body(seed=4),
                headers={
                    "traceparent": traceparent(shed_ok_tid),
                    "X-Scwsc-Tenant": "limited",
                },
            )
            sent.append(shed_ok_tid)
            assert code == 200
            code, decoded, _ = server.post(
                "/solve",
                solve_body(seed=4),
                headers={
                    "traceparent": traceparent(shed_tid),
                    "X-Scwsc-Tenant": "limited",
                },
            )
            sent.append(shed_tid)
            assert code == 429, decoded
            assert decoded["reason"] == "tenant_rate"

            # -- console: one frame from the scraped /metrics ----------
            _, metrics_text, _ = server.get("/metrics")
            frame = render_frame(MetricsSnapshot.parse(metrics_text))
            assert "inflight" in frame and "p99" in frame
            assert "tenant_rate=1" in frame  # the shed panel saw the 429
            assert "_global" in frame  # SLO burn rows
            out = io.StringIO()
            assert run_top(server.base, once=True, out=out) == 0
            assert "slo burn" in out.getvalue()
            server.stop()
        finally:
            obs_trace.shutdown()

        # -- access log: exactly one record per request ----------------
        # 7 solves + 1 /metrics scrape + run_top's scrape = 9 records.
        assert validate_access_file(str(access_path)) == 9
        by_tid: dict[str, list[dict]] = {}
        for record in iter_access_records(str(access_path)):
            by_tid.setdefault(record["trace_id"], []).append(record)
        for tid in sent:
            assert len(by_tid[tid]) == 1, f"{tid}: {by_tid.get(tid)}"
        shed_record = by_tid[shed_tid][0]
        assert shed_record["status"] == 429
        assert shed_record["shed_reason"] == "tenant_rate"
        assert shed_record["tenant"] == "limited"
        assert "solve_seconds" not in shed_record
        requeue_record = by_tid[requeue_tid][0]
        assert requeue_record["requeues"] == 1
        assert requeue_record["solve_seconds"] > 0
        assert requeue_record["queue_seconds"] >= 0
        ok_record = by_tid[tids[0]][0]
        assert ok_record["status"] == 200
        assert ok_record["solve_status"] == "ok"
        assert ok_record["deadline"] > 0

        # -- trace: schema-valid, one tree per request -----------------
        assert validate_trace_file(str(trace_path)) == []
        records = load_trace(str(trace_path))
        span_ids = {
            r.get("span_id") for r in records if r.get("type") == "span"
        }
        for tid in sent:
            edge = [
                r
                for r in records
                if r.get("type") == "span"
                and r.get("name") == "server_request"
                and r.get("attrs", {}).get("trace_id") == tid
            ]
            assert len(edge) == 1, f"expected one edge span for {tid}"
            # The edge span carries the context's span id, so worker
            # subtrees (prefixed with the trace id) parent onto it.
            assert edge[0]["span_id"] in span_ids
        # Worker spans replay under the request's trace id...
        for tid in (tids[0], shard_tid, requeue_tid):
            worker_spans = spans_for(records, tid)
            assert worker_spans, f"no worker spans under {tid}"
            for span in worker_spans:
                parent = span.get("parent_id")
                assert parent in span_ids, (span["name"], parent)
        # ...including the shard subtree for the sharded solve.
        shard_names = {s["name"] for s in spans_for(records, shard_tid)}
        assert "shard_open" in shard_names
        assert "shard_select" in shard_names
        # The killed first attempt never ships its spans home (SIGKILL
        # takes the capture buffer with it); the surviving spans are all
        # attempt 2, and the requeue itself is an annotated event.
        requeue_spans = spans_for(records, requeue_tid)
        attempts = {s["span_id"].split(".")[1] for s in requeue_spans}
        assert attempts == {"a2"}, attempts
        requeue_events = [
            r
            for r in records
            if r.get("type") == "event"
            and r.get("name") == "requeue"
            and r.get("attrs", {}).get("trace_id") == requeue_tid
        ]
        assert len(requeue_events) == 1
        shed_events = [
            r
            for r in records
            if r.get("type") == "event"
            and r.get("name") == "server_shed"
            and r.get("attrs", {}).get("trace_id") == shed_tid
        ]
        assert len(shed_events) == 1

    def test_batch_shares_one_trace_and_one_access_record(
        self, make_server, solve_body, tmp_path
    ):
        trace_path = tmp_path / "trace.jsonl"
        access_path = tmp_path / "access.jsonl"
        obs_trace.configure(str(trace_path), command="observability-batch")
        tid = "e1" * 16
        try:
            server = make_server(workers=1, access_log=str(access_path))
            entries = [dict(solve_body(seed=i), tag=f"r{i}") for i in range(2)]
            code, decoded, _ = server.post(
                "/batch",
                {"requests": entries},
                headers={"traceparent": traceparent(tid)},
            )
            assert code == 200, decoded
            assert decoded["count"] == 2
            assert decoded["trace_id"] == tid
            server.stop()
        finally:
            obs_trace.shutdown()
        assert validate_access_file(str(access_path)) == 1
        (record,) = iter_access_records(str(access_path))
        assert record["trace_id"] == tid
        assert record["endpoint"] == "/batch"
        # Timings accumulate across the batch's tickets.
        assert record["solve_seconds"] > 0
        records = load_trace(str(trace_path))
        # Both pool requests' worker spans land under the one trace id.
        solve_spans = [
            s for s in spans_for(records, tid) if s["name"] == "solve"
        ]
        assert len(solve_spans) == 2
        assert validate_trace_file(str(trace_path)) == []

    def test_minted_context_when_no_traceparent(
        self, make_server, solve_body, tmp_path
    ):
        access_path = tmp_path / "access.jsonl"
        server = make_server(workers=1, access_log=str(access_path))
        code, decoded, headers = server.post("/solve", solve_body(seed=5))
        assert code == 200
        minted = decoded["trace_id"]
        assert len(minted) == 32
        echoed = headers.get("Traceparent")
        assert echoed is not None and echoed.split("-")[1] == minted
        server.stop()
        (record,) = iter_access_records(str(access_path))
        assert record["trace_id"] == minted
