"""Unit tests for the Section VI-B perturbations."""

import numpy as np
import pytest

from repro.datasets.perturb import lognormal_rerank, uniform_perturb
from repro.errors import ValidationError
from repro.patterns.table import PatternTable


@pytest.fixture
def table() -> PatternTable:
    return PatternTable(
        ("A",),
        [("x",)] * 6,
        measure=[1.0, 5.0, 2.0, 8.0, 3.0, 8.0],
    )


class TestUniformPerturb:
    def test_within_delta_band(self, table):
        perturbed = uniform_perturb(table, delta=0.5, seed=1)
        for old, new in zip(table.measure, perturbed.measure):
            assert 0.5 * old <= new <= 1.5 * old

    def test_delta_zero_identity(self, table):
        perturbed = uniform_perturb(table, delta=0.0, seed=1)
        assert perturbed.measure == pytest.approx(table.measure)

    def test_rows_untouched(self, table):
        assert uniform_perturb(table, 0.3, seed=2).rows == table.rows

    def test_deterministic(self, table):
        a = uniform_perturb(table, 0.3, seed=3)
        b = uniform_perturb(table, 0.3, seed=3)
        assert a.measure == b.measure

    def test_validation(self, table):
        with pytest.raises(ValidationError):
            uniform_perturb(table, delta=1.5)
        with pytest.raises(ValidationError):
            uniform_perturb(PatternTable(("A",), [("x",)]), 0.5)


class TestLognormalRerank:
    def test_preserves_rank_order(self, table):
        perturbed = lognormal_rerank(table, sigma=2.0, seed=4)
        old = np.asarray(table.measure)
        new = np.asarray(perturbed.measure)
        # Stable ranks: sorting by old must leave new sorted.
        order = np.argsort(old, kind="stable")
        assert list(new[order]) == sorted(new)

    def test_values_are_lognormal_scale(self, table):
        perturbed = lognormal_rerank(table, sigma=1.0, seed=5, mean_log=2.0)
        assert all(value > 0 for value in perturbed.measure)

    def test_validation(self, table):
        with pytest.raises(ValidationError):
            lognormal_rerank(table, sigma=0.0)
        with pytest.raises(ValidationError):
            lognormal_rerank(PatternTable(("A",), [("x",)]), 1.0)
