"""Unit tests for the synthetic census generator."""

import numpy as np
import pytest

from repro.datasets.census import CENSUS_ATTRIBUTES, census_table
from repro.errors import ValidationError


class TestShape:
    def test_schema(self):
        table = census_table(400, seed=1)
        assert table.attributes == CENSUS_ATTRIBUTES
        assert table.n_rows == 400
        assert table.measure_name == "income"
        assert all(value > 0 for value in table.measure)

    def test_deterministic(self):
        assert census_table(200, seed=5).rows == census_table(200, seed=5).rows

    def test_validation(self):
        with pytest.raises(ValidationError):
            census_table(0)


class TestStructure:
    def test_income_correlates_with_education(self):
        table = census_table(4000, seed=2)
        by_education: dict = {}
        for row, income in zip(table.rows, table.measure):
            by_education.setdefault(row[1], []).append(income)
        assert np.median(by_education["doctorate"]) > np.median(
            by_education["hs"]
        )

    def test_age_distribution_skewed(self):
        table = census_table(4000, seed=3)
        counts: dict = {}
        for row in table.rows:
            counts[row[0]] = counts.get(row[0], 0) + 1
        assert counts["26-35"] > counts["66+"]

    def test_solvable(self):
        from repro.patterns.optimized_cwsc import optimized_cwsc

        table = census_table(800, seed=4)
        result = optimized_cwsc(table, k=6, s_hat=0.5)
        assert result.feasible
        assert result.n_sets <= 6
