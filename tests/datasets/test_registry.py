"""Unit tests for the named dataset registry."""

import pytest

from repro.datasets.registry import available_datasets, load_dataset
from repro.errors import ValidationError


class TestSpecs:
    def test_names_listed(self):
        assert available_datasets() == ["census", "entities", "lbl"]

    def test_default_sizes(self):
        assert load_dataset("entities").n_rows == 16
        assert load_dataset("census").n_rows == 5_000

    def test_sized_spec(self):
        assert load_dataset("lbl:250").n_rows == 250

    def test_seeded_spec_changes_data(self):
        a = load_dataset("lbl:200@1")
        b = load_dataset("lbl:200@2")
        assert a.rows != b.rows

    def test_seeded_spec_deterministic(self):
        assert load_dataset("census:100@9").rows == load_dataset(
            "census:100@9"
        ).rows

    def test_unknown_name(self):
        with pytest.raises(ValidationError):
            load_dataset("nope")

    def test_bad_rows(self):
        with pytest.raises(ValidationError):
            load_dataset("lbl:abc")
        with pytest.raises(ValidationError):
            load_dataset("lbl:0")

    def test_fixed_size_dataset_rejects_rows(self):
        with pytest.raises(ValidationError):
            load_dataset("entities:50")
