"""Unit tests for the Table I dataset."""

from repro.datasets.entities import ENTITY_ROWS, entities_table


class TestEntities:
    def test_sixteen_rows(self, entities):
        assert entities.n_rows == 16
        assert entities.attributes == ("Type", "Location")
        assert entities.measure_name == "Cost"

    def test_specific_rows_match_table1(self, entities):
        assert entities.rows[0] == ("A", "West")
        assert entities.measure[0] == 10.0
        assert entities.rows[15] == ("A", "South")
        assert entities.measure[15] == 96.0
        assert entities.rows[12] == ("B", "South")
        assert entities.measure[12] == 1.0

    def test_type_split(self, entities):
        types = [row[0] for row in entities.rows]
        assert types.count("A") == 8
        assert types.count("B") == 8

    def test_rows_constant_matches_table(self):
        assert len(ENTITY_ROWS) == 16
        table = entities_table()
        assert all(
            table.rows[i] == ENTITY_ROWS[i][:2] for i in range(16)
        )
