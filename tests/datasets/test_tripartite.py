"""Unit tests for tripartite graph generation."""

import pytest

from repro.datasets.tripartite import random_tripartite_graph, tripartite_graph
from repro.errors import ValidationError


class TestTripartiteGraph:
    def test_basic_build(self):
        graph = tripartite_graph([(("a", 0), ("b", 0)), (("b", 0), ("c", 1))])
        assert graph.number_of_edges() == 2
        assert graph.nodes[("a", 0)]["part"] == "a"

    def test_intra_part_edge_rejected(self):
        with pytest.raises(ValidationError):
            tripartite_graph([(("a", 0), ("a", 1))])

    def test_unknown_part_rejected(self):
        with pytest.raises(ValidationError):
            tripartite_graph([(("x", 0), ("b", 0))])


class TestRandomTripartite:
    def test_deterministic(self):
        a = random_tripartite_graph(4, 0.3, seed=1)
        b = random_tripartite_graph(4, 0.3, seed=1)
        assert sorted(a.edges) == sorted(b.edges)

    def test_always_has_an_edge(self):
        graph = random_tripartite_graph(1, 0.0001, seed=2)
        assert graph.number_of_edges() >= 1

    def test_all_edges_cross_part(self):
        graph = random_tripartite_graph(5, 0.5, seed=3)
        assert all(u[0] != v[0] for u, v in graph.edges)

    def test_validation(self):
        with pytest.raises(ValidationError):
            random_tripartite_graph(0, 0.5)
        with pytest.raises(ValidationError):
            random_tripartite_graph(3, 0.0)
