"""Unit tests for the synthetic LBL trace generator."""

import numpy as np
import pytest

from repro.datasets.lbl import LBL_ATTRIBUTES, lbl_trace
from repro.errors import ValidationError


class TestShape:
    def test_schema(self):
        table = lbl_trace(500, seed=1)
        assert table.attributes == LBL_ATTRIBUTES
        assert table.n_rows == 500
        assert table.measure_name == "duration"
        assert all(value > 0 for value in table.measure)

    def test_deterministic(self):
        a = lbl_trace(300, seed=9)
        b = lbl_trace(300, seed=9)
        assert a.rows == b.rows
        assert a.measure == b.measure

    def test_different_seeds_differ(self):
        a = lbl_trace(300, seed=1)
        b = lbl_trace(300, seed=2)
        assert a.rows != b.rows

    def test_domain_sizes_bounded(self):
        table = lbl_trace(2000, seed=3, n_localhosts=50, n_remotehosts=80)
        assert len(table.active_domain(1)) <= 50
        assert len(table.active_domain(2)) <= 80

    def test_validation(self):
        with pytest.raises(ValidationError):
            lbl_trace(0)
        with pytest.raises(ValidationError):
            lbl_trace(10, n_localhosts=0)


class TestStructure:
    def test_zipf_skew(self):
        # The most common protocol should dominate: with exponent 1.3
        # over 12 values the head carries ~28% of the mass.
        table = lbl_trace(5000, seed=4)
        protocols = [row[0] for row in table.rows]
        top_share = max(protocols.count(p) for p in set(protocols)) / 5000
        assert top_share > 0.2

    def test_protocol_caps_hold(self):
        # Durations never exceed the per-protocol cap (the SF end state
        # has factor 1.0, others only shrink durations).
        from repro.datasets.lbl import _PROTOCOL_DURATION_CAP

        table = lbl_trace(3000, seed=5)
        for row, duration in zip(table.rows, table.measure):
            assert duration <= _PROTOCOL_DURATION_CAP[row[0]] + 1e-6

    def test_failed_states_are_short(self):
        table = lbl_trace(5000, seed=6)
        rej = [
            m for row, m in zip(table.rows, table.measure) if row[3] == "REJ"
        ]
        sf = [
            m for row, m in zip(table.rows, table.measure) if row[3] == "SF"
        ]
        assert np.median(rej) < np.median(sf)

    def test_heavy_tail(self):
        table = lbl_trace(5000, seed=7)
        measure = np.asarray(table.measure)
        assert measure.max() > 20 * np.median(measure)


class TestDrift:
    def test_zero_drift_is_identity(self):
        assert lbl_trace(300, seed=1, drift=0.0).rows == lbl_trace(
            300, seed=1
        ).rows

    def test_drift_changes_protocol_mix(self):
        calm = lbl_trace(3000, seed=2, drift=0.0)
        shifted = lbl_trace(3000, seed=2, drift=0.5)

        def top_protocol(table):
            counts: dict = {}
            for row in table.rows:
                counts[row[0]] = counts.get(row[0], 0) + 1
            return max(counts, key=counts.get)

        assert top_protocol(calm) != top_protocol(shifted)

    def test_full_rotation_wraps(self):
        assert lbl_trace(300, seed=3, drift=1.0).rows == lbl_trace(
            300, seed=3, drift=0.0
        ).rows

    def test_drift_validation(self):
        with pytest.raises(ValidationError):
            lbl_trace(10, drift=1.5)

    def test_drifted_stream_forces_maintenance_work(self):
        from repro.extensions.incremental import IncrementalCWSC

        maintainer = IncrementalCWSC(
            lbl_trace(800, seed=4, drift=0.0), k=6, s_hat=0.5
        )
        for step in range(1, 4):
            result = maintainer.add_records(
                lbl_trace(800, seed=4 + step, drift=step * 0.3)
            )
            assert result.feasible
        stats = maintainer.stats
        # A drifting mix cannot be absorbed by keeping the old patterns
        # every single time.
        assert stats.repaired + stats.recomputed >= 1
