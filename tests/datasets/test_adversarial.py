"""Unit tests for the Section III adversarial instance."""

import pytest

from repro.datasets.adversarial import (
    bmc_adversarial_system,
    bmc_optimal_budget,
)
from repro.errors import ValidationError


class TestConstruction:
    def test_counts(self):
        system = bmc_adversarial_system(k=3, c=2, big_c=10)
        assert system.n_elements == 30
        assert system.n_sets == 2 * 3 + 3

    def test_singletons(self):
        system = bmc_adversarial_system(k=2, c=2, big_c=5)
        singles = [ws for ws in system.sets if ws.label[0] == "singleton"]
        assert len(singles) == 4
        assert all(ws.size == 1 and ws.cost == 1.0 for ws in singles)

    def test_blocks_partition_universe(self):
        system = bmc_adversarial_system(k=3, c=1, big_c=7)
        blocks = [ws for ws in system.sets if ws.label[0] == "block"]
        assert len(blocks) == 3
        union = set()
        for ws in blocks:
            assert ws.size == 7
            assert ws.cost == 8.0
            assert not (union & ws.benefit)
            union |= ws.benefit
        assert len(union) == system.n_elements

    def test_optimal_budget(self):
        assert bmc_optimal_budget(3, 10) == 33.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            bmc_adversarial_system(0, 1, 5)
        with pytest.raises(ValidationError):
            bmc_adversarial_system(2, 6, 5)  # c > C
