"""Unit tests for CLI argument parsing (no execution)."""

import pytest

from repro.cli import build_parser


@pytest.fixture(scope="module")
def parser():
    return build_parser()


class TestSolveParsing:
    def test_defaults(self, parser):
        args = parser.parse_args(
            ["solve", "f.csv", "--attributes", "a,b", "-k", "3", "-s", "0.5"]
        )
        assert args.algorithm == "cwsc"
        assert args.b == 1.0
        assert args.eps == 1.0
        assert args.measure is None
        assert not args.json
        assert not args.sql

    def test_all_flags(self, parser):
        args = parser.parse_args(
            [
                "solve", "f.csv", "--attributes", "a", "-k", "2",
                "--coverage", "0.7", "--algorithm", "cmc", "-b", "0.5",
                "--eps", "2", "--measure", "m", "--cost", "sum",
                "--json", "--sql",
            ]
        )
        assert args.coverage == 0.7
        assert args.algorithm == "cmc"
        assert args.cost == "sum"
        assert args.json and args.sql

    def test_bad_algorithm_rejected(self, parser):
        with pytest.raises(SystemExit):
            parser.parse_args(
                ["solve", "f.csv", "--attributes", "a", "-k", "1",
                 "-s", "0.5", "--algorithm", "nope"]
            )

    def test_k_required(self, parser):
        with pytest.raises(SystemExit):
            parser.parse_args(
                ["solve", "f.csv", "--attributes", "a", "-s", "0.5"]
            )


class TestRunParsing:
    def test_defaults(self, parser):
        args = parser.parse_args(["run", "fig5"])
        assert args.scale == "full"
        assert args.out is None

    def test_bad_scale(self, parser):
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "fig5", "--scale", "huge"])


class TestDemoParsing:
    def test_defaults(self, parser):
        args = parser.parse_args(["demo"])
        assert args.dataset == "lbl:5000"
        assert args.k == 8
        assert args.coverage == 0.4
        assert not args.unoptimized


class TestTopLevel:
    def test_command_required(self, parser):
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_prog_name(self, parser):
        assert parser.prog == "scwsc"
