"""Structural assertions on every experiment's data payload (small scale).

Beyond "it runs" (test_experiments.py), these verify the data dictionaries
that EXPERIMENTS.md and the benchmark assertions consume: expected keys,
consistent lengths, and basic semantic relations.
"""

import pytest

from repro.experiments import run_experiment
from repro.experiments.sweeps import ALGORITHMS


@pytest.fixture(scope="module")
def reports():
    ids = [
        "fig5", "fig6", "fig7", "fig8", "fig9", "table4", "table5",
        "table6", "sec3", "sec6b", "sec6c", "sec6d", "running-example",
        "crossdata", "ext-incremental", "ext-seeds",
    ]
    return {
        experiment_id: run_experiment(experiment_id, scale="small")
        for experiment_id in ids
    }


class TestSweepData:
    @pytest.mark.parametrize("experiment_id", ["fig5", "fig6"])
    def test_size_sweep_rows(self, reports, experiment_id):
        report = reports[experiment_id]
        config = report.data["config"]
        rows = report.data["rows"]
        assert [row["x"] for row in rows] == list(config["sizes"])
        for row in rows:
            for name in ALGORITHMS:
                for key in ("runtime", "considered", "cost", "n_sets",
                            "covered", "rounds"):
                    assert key in row[name]

    def test_fig7_rows(self, reports):
        report = reports["fig7"]
        rows = report.data["rows"]
        assert [row["x"] for row in rows] == list(
            report.data["config"]["attribute_counts"]
        )

    def test_fig8_rows(self, reports):
        report = reports["fig8"]
        assert [row["x"] for row in report.data["rows"]] == list(
            report.data["config"]["k_values"]
        )
        for row in report.data["rows"]:
            assert row["cwsc"]["n_sets"] <= row["x"]

    def test_fig9_rows(self, reports):
        report = reports["fig9"]
        assert [row["x"] for row in report.data["rows"]] == list(
            report.data["config"]["s_values"]
        )


class TestGridData:
    def test_table4_and_table5_share_grid(self, reports):
        costs = reports["table4"].data["costs"]
        runtimes = reports["table5"].data["runtimes"]
        assert set(costs) == set(runtimes)
        for label in costs:
            assert set(costs[label]) == set(runtimes[label])

    def test_table4_has_cwsc_and_cmc_rows(self, reports):
        costs = reports["table4"].data["costs"]
        assert "CWSC" in costs
        assert any(label.startswith("CMC") for label in costs)

    def test_table6_counts_and_costs_align(self, reports):
        data = reports["table6"].data
        assert set(data["counts"]) == set(data["costs"])


class TestScenarioData:
    def test_sec6b_records_cover_all_variants(self, reports):
        config = reports["sec6b"].data["config"]
        records = reports["sec6b"].data["records"]
        assert len(records) == len(config["deltas"]) + len(config["sigmas"])

    def test_sec6c_ratio_consistency(self, reports):
        data = reports["sec6c"].data
        for s, ratio in data["ratios"].items():
            expected = data["max_coverage"][s] / data["cwsc"][s]
            assert ratio == pytest.approx(expected)

    def test_sec6d_record_count(self, reports):
        config = reports["sec6d"].data["config"]
        records = reports["sec6d"].data["records"]
        assert len(records) == config["samples"] * len(config["s_values"])

    def test_sec3_identity(self, reports):
        data = reports["sec3"].data
        config = data["config"]
        assert data["n_elements"] == config["big_c"] * config["k"]

    def test_ext_incremental_work_comparison(self, reports):
        data = reports["ext-incremental"].data
        assert data["incremental_considered"] <= data["recompute_considered"]

    def test_ext_seeds_records(self, reports):
        data = reports["ext-seeds"].data
        assert len(data["records"]) == len(data["config"]["seeds"])
        for record in data["records"]:
            assert record["ratio"] == pytest.approx(
                record["cwsc"] / record["cmc"]
            )

    def test_crossdata_records(self, reports):
        data = reports["crossdata"].data
        assert len(data["records"]) == len(data["config"]["s_values"])
