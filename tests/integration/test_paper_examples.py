"""Integration tests replaying every worked example in the paper."""

import math

import pytest

from repro.baselines.budgeted_max_coverage import budgeted_max_coverage
from repro.baselines.weighted_set_cover import weighted_set_cover
from repro.core.cmc import cmc
from repro.core.cwsc import cwsc
from repro.core.exact import solve_exact
from repro.datasets.adversarial import (
    bmc_adversarial_system,
    bmc_optimal_budget,
)
from repro.patterns.optimized_cwsc import optimized_cwsc
from repro.patterns.pattern import ALL, Pattern


class TestSection1Motivation:
    """The Introduction's three-way comparison on Table I."""

    def test_partial_wsc_gives_7_sets_cost_24(self, entities_system):
        result = weighted_set_cover(entities_system, 9 / 16)
        assert result.n_sets == 7
        assert result.total_cost == pytest.approx(24.0)

    def test_optimal_k2_is_p6_p16_cost_27(self, entities, entities_system):
        result = solve_exact(entities_system, k=2, s_hat=9 / 16)
        assert result.total_cost == pytest.approx(27.0)
        assert set(result.labels) == {
            Pattern(("A", "East")),  # P6
            Pattern(("B", ALL)),  # P16
        }

    def test_unconstrained_k2_covers_only_3_of_16(self, entities_system):
        # "if we wanted the cheapest solution with k = 2 sets, without a
        # constraint on the number of entities covered ... P6 and P8,
        # which cover only 3/16."
        cheap_pair_coverage = entities_system.coverage_of(
            [
                ws.set_id
                for ws in entities_system.sets
                if ws.label in (Pattern(("A", "East")), Pattern(("B", "South")))
            ]
        )
        assert cheap_pair_coverage == 3

    def test_p11_p15_is_feasible_but_expensive(self, entities_system):
        # "the solution returned (e.g., P11 and P15) has a high cost (of
        # 120)" — any solution, ignoring cost.
        chosen = [
            ws.set_id
            for ws in entities_system.sets
            if ws.label
            in (Pattern(("B", "Southwest")), Pattern(("A", ALL)))
        ]
        assert entities_system.coverage_of(chosen) >= 9
        assert entities_system.cost_of(chosen) == pytest.approx(120.0)


class TestSection5ACMCWalkthrough:
    """The CMC example: k=2, (1 - 1/e)s = 9/16, b=1."""

    @pytest.fixture
    def result(self, entities_system):
        s_hat = (9 / 16) / (1 - 1 / math.e)
        return cmc(entities_system, k=2, s_hat=s_hat, b=1.0)

    def test_three_budget_rounds(self, result):
        # B = 5 (the two cheapest patterns cost 2 + 3), then 10, then 20.
        assert result.metrics.budget_rounds == 3

    def test_covers_exactly_nine(self, result):
        assert result.covered == 9

    def test_final_round_selections(self, result):
        # Third round: P17 (ALL, North), P23 (ALL, Northwest) from H1,
        # then two of {P8, P19, P20} from H2.
        labels = list(result.labels)
        assert labels[0] == Pattern((ALL, "North"))
        assert labels[1] == Pattern((ALL, "Northwest"))
        h2_choices = {
            Pattern(("B", "South")),
            Pattern((ALL, "East")),
            Pattern((ALL, "West")),
        }
        assert set(labels[2:]) <= h2_choices
        assert len(labels) == 4


class TestSection5BCWSCWalkthrough:
    """The CWSC example: k=2, s=9/16 -> P16 then P3."""

    def test_selection_order(self, entities_system):
        result = cwsc(entities_system, k=2, s_hat=9 / 16)
        assert list(result.labels) == [
            Pattern(("B", ALL)),  # P16: gain 8/24
            Pattern(("A", "North")),  # P3: gain 2/4
        ]

    def test_first_iteration_candidates(self, entities_system):
        # Only P15, P16, P24 cover >= 4.5 records; P16 wins on gain.
        from repro.core.marginal import MarginalTracker

        tracker = MarginalTracker(entities_system)
        eligible = [
            entities_system[set_id].label
            for set_id, size in tracker.live_items()
            if size >= 4.5
        ]
        assert set(eligible) == {
            Pattern(("A", ALL)),
            Pattern(("B", ALL)),
            Pattern((ALL, ALL)),
        }


class TestSection5C1OptimizedCWSCWalkthrough:
    """The optimized CWSC walkthrough materializes candidates lazily."""

    def test_same_answer_with_fewer_or_equal_patterns(self, entities):
        result = optimized_cwsc(entities, k=2, s_hat=9 / 16)
        assert list(result.labels) == [
            Pattern(("B", ALL)),
            Pattern(("A", "North")),
        ]
        # The walkthrough examines P24, P15, P16 in round one and the
        # children of P24/P15 in round two; never more than all 24.
        assert result.metrics.sets_considered <= 24


class TestSection3Adversarial:
    def test_greedy_bmc_coverage_is_ck(self):
        k, c, big_c = 5, 3, 40
        system = bmc_adversarial_system(k, c, big_c)
        result = budgeted_max_coverage(
            system, budget=bmc_optimal_budget(k, big_c), max_sets=c * k
        )
        assert result.covered == c * k
        assert result.covered / system.n_elements == pytest.approx(
            c / big_c
        )
