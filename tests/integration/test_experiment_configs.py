"""Meta-tests: experiment configurations are complete and consistent.

The ``full`` configs never run in CI, so these structural checks catch
drift (a renamed key, a scale missing) without paying for a full run.
"""

import importlib

import pytest

EXPERIMENT_MODULES = [
    "repro.experiments.fig5_datasize",
    "repro.experiments.fig7_attributes",
    "repro.experiments.fig8_k",
    "repro.experiments.fig9_coverage",
    "repro.experiments.table6_wsc_size",
    "repro.experiments.sec6b_robustness",
    "repro.experiments.sec6c_max_coverage",
    "repro.experiments.sec6d_optimal",
    "repro.experiments.sec3_adversarial",
    "repro.experiments.quality_grid",
    "repro.experiments.crossdata",
    "repro.experiments.ext_incremental",
    "repro.experiments.ext_seeds",
]


class TestConfigs:
    @pytest.mark.parametrize("module_name", EXPERIMENT_MODULES)
    def test_both_scales_defined(self, module_name):
        module = importlib.import_module(module_name)
        assert set(module.CONFIG) == {"small", "full"}

    @pytest.mark.parametrize("module_name", EXPERIMENT_MODULES)
    def test_scales_share_keys(self, module_name):
        module = importlib.import_module(module_name)
        assert set(module.CONFIG["small"]) == set(module.CONFIG["full"])

    def test_small_scale_is_actually_smaller(self):
        for module_name in EXPERIMENT_MODULES:
            module = importlib.import_module(module_name)
            small, full = module.CONFIG["small"], module.CONFIG["full"]
            for key in ("n_rows", "master_rows", "base_rows"):
                if key in small:
                    assert small[key] <= full[key], (module_name, key)

    def test_fig5_sizes_within_master(self):
        from repro.experiments.fig5_datasize import CONFIG

        for scale in ("small", "full"):
            config = CONFIG[scale]
            assert max(config["sizes"]) <= config["master_rows"]

    def test_fig7_attribute_counts_valid(self):
        from repro.datasets.lbl import LBL_ATTRIBUTES
        from repro.experiments.fig7_attributes import CONFIG

        for scale in ("small", "full"):
            assert max(CONFIG[scale]["attribute_counts"]) <= len(
                LBL_ATTRIBUTES
            )

    def test_coverage_fractions_in_range(self):
        for module_name in EXPERIMENT_MODULES:
            module = importlib.import_module(module_name)
            for scale in ("small", "full"):
                config = module.CONFIG[scale]
                for key in ("s_hat",):
                    if key in config:
                        assert 0.0 < config[key] <= 1.0
                if "s_values" in config:
                    assert all(0.0 < s <= 1.0 for s in config["s_values"])
