"""Unit tests for the ASCII chart renderer."""

import pytest

from repro.errors import ValidationError
from repro.experiments.ascii_chart import MARKS, render_chart


class TestRenderChart:
    def test_basic_structure(self):
        chart = render_chart(
            [1, 2, 3],
            {"up": [1.0, 2.0, 3.0], "down": [3.0, 2.0, 1.0]},
            width=20,
            height=6,
            y_label="seconds",
            x_label="n",
        )
        lines = chart.splitlines()
        assert "seconds" in lines[0]
        assert lines[-1].strip().startswith("o=up")
        assert "x=down" in lines[-1]
        assert any(line.lstrip().startswith("3|") for line in lines)
        assert any(line.lstrip().startswith("1|") for line in lines)

    def test_marks_present(self):
        chart = render_chart([0, 1], {"a": [0.0, 1.0]}, width=10, height=4)
        assert chart.count("o") >= 2

    def test_extremes_plotted_at_corners(self):
        chart = render_chart([0, 10], {"a": [0.0, 5.0]}, width=11, height=5)
        rows = [
            line.split("|", 1)[1]
            for line in chart.splitlines()
            if "|" in line
        ]
        assert rows[0][-1] == "o"  # max y at max x -> top right
        assert rows[-1][0] == "o"  # min y at min x -> bottom left

    def test_flat_series_allowed(self):
        chart = render_chart([1, 2], {"flat": [5.0, 5.0]})
        assert "5" in chart

    def test_single_point(self):
        chart = render_chart([3], {"a": [7.0]})
        assert "o" in chart

    def test_validation(self):
        with pytest.raises(ValidationError):
            render_chart([], {"a": []})
        with pytest.raises(ValidationError):
            render_chart([1], {"a": [1.0, 2.0]})
        too_many = {f"s{i}": [1.0] for i in range(len(MARKS) + 1)}
        with pytest.raises(ValidationError):
            render_chart([1], too_many)

    def test_deterministic(self):
        args = ([1, 2, 3], {"a": [1.0, 4.0, 2.0], "b": [2.0, 2.0, 2.0]})
        assert render_chart(*args) == render_chart(*args)

    def test_fig_experiments_embed_chart(self):
        from repro.experiments import run_experiment

        report = run_experiment("fig5", scale="small")
        assert "o=cmc" in report.text
        assert "+" in report.text  # the x-axis line / marks