"""Unit tests for report rendering and the experiment registry glue."""

import pytest

from repro.errors import ValidationError
from repro.experiments.base import ExperimentReport, experiment
from repro.experiments.reporting import format_series_table, format_table


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(
            ["name", "value"],
            [["a", 1], ["longer", 2.5]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_float_formatting(self):
        text = format_table(["x"], [[0.000123], [1234.5], [1.25], [0.0]])
        assert "0.000123" in text
        assert "1.23e+03" in text
        assert "1.25" in text
        assert "\n0" in text

    def test_trailing_zero_trimming(self):
        text = format_table(["x"], [[2.0]])
        assert "2\n" in text + "\n"


class TestFormatSeriesTable:
    def test_shape(self):
        text = format_series_table(
            "n",
            [10, 20],
            {"fast": [1.0, 2.0], "slow": [3.0, 4.0]},
        )
        lines = text.splitlines()
        assert lines[0].split() == ["n", "fast", "slow"]
        assert lines[2].split() == ["10", "1", "3"]
        assert lines[3].split() == ["20", "2", "4"]


class TestRegistry:
    def test_duplicate_registration_rejected(self):
        from repro.experiments import base

        @experiment("test-dup-xyz", "first")
        def first(scale):  # pragma: no cover - never run
            return ExperimentReport("test-dup-xyz", "t", "t")

        try:
            with pytest.raises(ValidationError):
                @experiment("test-dup-xyz", "second")
                def second(scale):  # pragma: no cover - never run
                    return ExperimentReport("test-dup-xyz", "t", "t")
        finally:
            # Keep the registry clean for the other tests in this session.
            base._REGISTRY.pop("test-dup-xyz", None)
            base._DESCRIPTIONS.pop("test-dup-xyz", None)

    def test_report_str_is_text(self):
        report = ExperimentReport("id", "title", "the text")
        assert str(report) == "the text"
