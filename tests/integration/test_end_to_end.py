"""End-to-end flows a downstream user would run."""

import pytest

from repro import (
    SetSystem,
    build_set_system,
    cwsc,
    lp_lower_bound,
    optimized_cmc,
    optimized_cwsc,
    solve_exact,
)
from repro.datasets.lbl import lbl_trace
from repro.extensions.incremental import IncrementalCWSC
from repro.patterns.table import PatternTable


class TestReadmeQuickstart:
    def test_module_docstring_example(self):
        system = SetSystem.from_iterables(
            n_elements=4,
            benefits=[{0, 1}, {2, 3}, {0, 1, 2, 3}],
            costs=[1.0, 1.0, 5.0],
        )
        result = cwsc(system, k=2, s_hat=1.0)
        assert result.total_cost == 2.0


class TestFullPipelineOnTrace:
    def test_pattern_summarization_flow(self):
        trace = lbl_trace(800, seed=33)
        result = optimized_cwsc(trace, k=8, s_hat=0.5)
        assert result.feasible
        assert result.n_sets <= 8
        assert result.coverage_fraction >= 0.5
        assert result.metrics.runtime_seconds > 0
        # Every selected pattern is expressible over the trace schema.
        for pattern in result.labels:
            assert pattern.n_attributes == trace.n_attributes

    def test_cmc_vs_cwsc_cost_sandwich(self):
        trace = lbl_trace(500, seed=34)
        system = build_set_system(trace, "max")
        lower = lp_lower_bound(system, 6, 0.3)
        ours = cwsc(system, 6, 0.3, on_infeasible="full_cover")
        also = optimized_cmc(trace, 6, 0.3)
        assert ours.total_cost >= lower - 1e-6
        assert also.total_cost >= 0
        # every solver populates wall-clock runtime in its metrics
        assert ours.metrics.runtime_seconds > 0
        assert also.metrics.runtime_seconds > 0

    def test_exact_on_tiny_sample(self):
        trace = lbl_trace(600, seed=35).project(
            ("protocol", "endstate")
        ).sample(25, seed=1)
        system = build_set_system(trace, "max")
        opt = solve_exact(system, k=3, s_hat=0.5)
        greedy = cwsc(system, k=3, s_hat=0.5, on_infeasible="full_cover")
        assert greedy.total_cost >= opt.total_cost - 1e-9
        assert opt.metrics.runtime_seconds > 0
        assert greedy.metrics.runtime_seconds > 0


class TestStreamingFlow:
    def test_incremental_stays_feasible_over_many_batches(self):
        maintainer = IncrementalCWSC(lbl_trace(200, 40), k=6, s_hat=0.4)
        for seed in range(41, 46):
            result = maintainer.add_records(lbl_trace(100, seed))
            assert result.feasible
            assert result.n_sets <= 6
        stats = maintainer.stats
        assert stats.batches == 5
        assert stats.kept + stats.repaired + stats.recomputed == 5


class TestCSVRoundTrip:
    def test_solve_from_disk(self, tmp_path):
        trace = lbl_trace(300, seed=50)
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        loaded = PatternTable.from_csv(
            path,
            trace.attributes,
            measure_name="duration",
        )
        direct = optimized_cwsc(trace, 5, 0.3)
        from_disk = optimized_cwsc(loaded, 5, 0.3)
        assert [p.values for p in direct.labels] == [
            p.values for p in from_disk.labels
        ]
