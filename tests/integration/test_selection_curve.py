"""Unit tests for the selection-curve analysis helper."""

import pytest

from repro.analysis import selection_curve
from repro.core.cwsc import cwsc
from repro.core.result import Metrics, make_result
from repro.core.setsystem import SetSystem


class TestSelectionCurve:
    @pytest.fixture
    def system(self):
        return SetSystem.from_iterables(
            6,
            benefits=[{0, 1, 2}, {2, 3}, {4, 5}],
            costs=[3.0, 2.0, 1.0],
            labels=["a", "b", "c"],
        )

    def test_cumulative_values(self, system):
        result = make_result(
            "manual", [0, 1, 2], ["a", "b", "c"], 6.0, 6, 6, True, {},
            Metrics(),
        )
        curve = selection_curve(system, result)
        assert [step["marginal_covered"] for step in curve] == [3, 1, 2]
        assert [step["covered"] for step in curve] == [3, 4, 6]
        assert [step["cost"] for step in curve] == [3.0, 5.0, 6.0]
        assert curve[-1]["coverage_fraction"] == 1.0
        assert curve[0]["label"] == "a"

    def test_matches_result_totals(self, random_system):
        system = random_system(seed=5)
        result = cwsc(system, 3, 0.8, on_infeasible="full_cover")
        curve = selection_curve(system, result)
        assert len(curve) == result.n_sets
        if curve:
            assert curve[-1]["covered"] == result.covered
            assert curve[-1]["cost"] == pytest.approx(result.total_cost)

    def test_empty_solution(self, system):
        result = make_result(
            "manual", [], [], 0.0, 0, 6, True, {}, Metrics()
        )
        assert selection_curve(system, result) == []

    def test_marginals_are_nonincreasing_for_greedy(self, random_system):
        # Greedy max-gain does not guarantee monotone marginal *sizes*,
        # but every marginal must be positive (no useless selections).
        system = random_system(seed=7)
        result = cwsc(system, 4, 0.9, on_infeasible="full_cover")
        for step in selection_curve(system, result):
            assert step["marginal_covered"] > 0
