"""Every experiment runs at small scale and its shape assertions hold.

These are the reproduction's executable claims: each test checks the
qualitative *shape* the paper reports, on the small-scale workload (the
full-scale equivalents live in benchmarks/ and EXPERIMENTS.md).
"""

import pytest

from repro.experiments import available_experiments, run_experiment
from repro.experiments.sweeps import ALGORITHMS


class TestRegistry:
    def test_all_experiments_registered(self):
        # 13 paper artifacts + 3 extension experiments.
        assert len(available_experiments()) == 16

    def test_unknown_id_rejected(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            run_experiment("nope")

    def test_bad_scale_rejected(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            run_experiment("fig5", scale="huge")


class TestEveryExperimentRuns:
    @pytest.mark.parametrize("experiment_id", sorted(
        ["fig5", "fig6", "fig7", "fig8", "fig9", "table4", "table5",
         "table6", "sec3", "sec6b", "sec6c", "sec6d", "running-example",
         "crossdata", "ext-incremental", "ext-seeds"]
    ))
    def test_runs_and_renders(self, experiment_id):
        report = run_experiment(experiment_id, scale="small")
        assert report.experiment_id == experiment_id
        assert report.text.strip()
        assert report.data


class TestShapes:
    def test_fig6_optimized_considers_fewer(self):
        report = run_experiment("fig6", scale="small")
        for row in report.data["rows"]:
            assert (
                row["optimized_cwsc"]["considered"]
                <= row["cwsc"]["considered"]
            )
            assert (
                row["optimized_cmc"]["considered"]
                < row["cmc"]["considered"]
            )

    def test_fig5_all_algorithms_present(self):
        report = run_experiment("fig5", scale="small")
        for row in report.data["rows"]:
            for name in ALGORITHMS:
                assert row[name]["runtime"] >= 0
                assert row[name]["cost"] > 0

    def test_table4_cwsc_competitive(self):
        report = run_experiment("table4", scale="small")
        costs = report.data["costs"]
        cmc_labels = [label for label in costs if label.startswith("CMC")]
        for s, cwsc_cost in costs["CWSC"].items():
            best_cmc = min(costs[label][s] for label in cmc_labels)
            # CWSC is competitive: within a constant factor of the best
            # CMC configuration despite targeting ~1.6x the coverage.
            assert cwsc_cost <= 25 * best_cmc

    def test_table6_pattern_count_grows_with_coverage(self):
        report = run_experiment("table6", scale="small")
        counts = report.data["counts"]
        s_values = sorted(counts)
        assert counts[s_values[-1]] >= counts[s_values[0]]

    def test_sec3_bmc_poor_coverage(self):
        report = run_experiment("sec3", scale="small")
        assert report.data["bmc_covered"] < report.data["n_elements"] / 2
        assert report.data["cwsc_covered"] == report.data["n_elements"]

    def test_sec6c_max_coverage_never_cheaper(self):
        report = run_experiment("sec6c", scale="small")
        for s, ratio in report.data["ratios"].items():
            assert ratio >= 1.0 - 1e-9

    def test_sec6d_bounds_sandwich(self):
        report = run_experiment("sec6d", scale="small")
        for record in report.data["records"]:
            assert record["lp_bound"] <= record["optimal"] + 1e-6
            # CWSC covers the full target, so OPT lower-bounds it. CMC
            # targets only (1 - 1/e) of the coverage and may be cheaper
            # than the full-target optimum.
            assert record["cwsc"] >= record["optimal"] - 1e-9
            assert record["cmc"] > 0

    def test_running_example_matches_paper(self):
        report = run_experiment("running-example", scale="small")
        assert report.data["n_patterns"] == 24
        assert report.data["wsc"] == {"n_sets": 7, "cost": 24.0}
        assert report.data["optimal_cost"] == 27.0
        assert report.data["cwsc_cost"] == 28.0
        assert report.data["cmc_covered"] == 9
        assert report.data["cmc_rounds"] == 3
