"""Integration tests for the comparison helper."""

import pytest

from repro.analysis import compare_algorithms
from repro.datasets import entities_table, lbl_trace


class TestCompareAlgorithms:
    def test_on_entities(self, entities):
        comparison = compare_algorithms(entities, k=2, s_hat=9 / 16)
        assert set(comparison.results) == {
            "cwsc", "cmc", "optimized_cwsc", "optimized_cmc",
        }
        assert comparison.lp_bound is not None
        # Every algorithm's cost respects the LP bound as applicable:
        # CWSC variants cover the full target.
        for name in ("cwsc", "optimized_cwsc"):
            assert (
                comparison.results[name].total_cost
                >= comparison.lp_bound - 1e-6
            )

    def test_optimized_only(self):
        trace = lbl_trace(400, seed=71)
        comparison = compare_algorithms(
            trace, k=5, s_hat=0.3, include_unoptimized=False
        )
        assert set(comparison.results) == {
            "optimized_cwsc", "optimized_cmc",
        }
        assert comparison.lp_bound is None

    def test_render_contains_all_rows(self, entities):
        comparison = compare_algorithms(entities, k=2, s_hat=0.5)
        text = comparison.render()
        for name in comparison.results:
            assert name in text
        assert "LP lower bound" in text

    def test_equivalence_visible_in_comparison(self, entities):
        comparison = compare_algorithms(entities, k=2, s_hat=9 / 16)
        assert comparison.results["cwsc"].total_cost == pytest.approx(
            comparison.results["optimized_cwsc"].total_cost
        )
