"""Optimized vs. unoptimized equivalence on realistic data (Section V-C)."""

import pytest

from repro.core.cmc_epsilon import cmc_epsilon
from repro.core.cwsc import cwsc
from repro.core.guarantees import guaranteed_coverage
from repro.datasets.lbl import lbl_trace
from repro.patterns.optimized_cmc import optimized_cmc
from repro.patterns.optimized_cwsc import optimized_cwsc
from repro.patterns.pattern_sets import build_set_system


@pytest.fixture(scope="module")
def trace():
    return lbl_trace(1_500, seed=21)


@pytest.fixture(scope="module")
def trace_system(trace):
    return build_set_system(trace, "max")


class TestCWSCEquivalenceOnTrace:
    @pytest.mark.parametrize("k,s_hat", [(5, 0.3), (10, 0.5), (3, 0.2)])
    def test_identical_solutions(self, trace, trace_system, k, s_hat):
        unopt = cwsc(trace_system, k, s_hat, on_infeasible="full_cover")
        opt = optimized_cwsc(
            trace, k, s_hat, on_infeasible="full_cover"
        )
        assert list(opt.labels) == list(unopt.labels)
        assert opt.total_cost == pytest.approx(unopt.total_cost)

    def test_optimized_considers_fewer(self, trace, trace_system):
        opt = optimized_cwsc(trace, 10, 0.3, on_infeasible="full_cover")
        unopt = cwsc(trace_system, 10, 0.3, on_infeasible="full_cover")
        assert opt.metrics.sets_considered < unopt.metrics.sets_considered


class TestCMCComparabilityOnTrace:
    """Optimized CMC explores in a different order than Fig. 1 (global
    max-benefit vs. level-by-level), so solutions may differ; both must
    satisfy the same guarantees and comparable costs."""

    @pytest.mark.parametrize("k,s_hat", [(5, 0.3), (10, 0.5)])
    def test_both_meet_guarantees(self, trace, trace_system, k, s_hat):
        unopt = cmc_epsilon(trace_system, k, s_hat, b=1.0, eps=1.0)
        opt = optimized_cmc(trace, k, s_hat, b=1.0, eps=1.0)
        floor = guaranteed_coverage(s_hat, trace.n_rows) - 1e-9
        for result in (unopt, opt):
            assert result.feasible
            assert result.covered >= floor
            assert result.n_sets <= 2 * k

    def test_costs_within_small_factor(self, trace, trace_system):
        unopt = cmc_epsilon(trace_system, 10, 0.4, b=1.0, eps=1.0)
        opt = optimized_cmc(trace, 10, 0.4, b=1.0, eps=1.0)
        ratio = max(unopt.total_cost, opt.total_cost) / max(
            1e-12, min(unopt.total_cost, opt.total_cost)
        )
        assert ratio < 10.0

    def test_optimized_considers_fewer(self, trace, trace_system):
        unopt = cmc_epsilon(trace_system, 10, 0.3, b=1.0, eps=1.0)
        opt = optimized_cmc(trace, 10, 0.3, b=1.0, eps=1.0)
        assert (
            opt.metrics.sets_considered < unopt.metrics.sets_considered
        )
