"""End-to-end tests for `--trace` on the CLI and the `trace` subcommand."""

import json
from html.parser import HTMLParser

import pytest

from repro.cli import main
from repro.datasets.entities import entities_table
from repro.obs.schema import validate_trace_file


@pytest.fixture
def csv_path(tmp_path):
    path = tmp_path / "entities.csv"
    entities_table().to_csv(path)
    return str(path)


def _solve_args(csv_path):
    return [
        "solve", csv_path,
        "--attributes", "Type,Location",
        "--measure", "Cost",
        "-k", "2", "-s", "0.5625",
    ]


class TestSolveTrace:
    def test_solve_writes_valid_trace(self, csv_path, tmp_path, capsys):
        trace = tmp_path / "solve.jsonl"
        assert main(_solve_args(csv_path) + ["--trace", str(trace)]) == 0
        assert validate_trace_file(str(trace)) == []

        records = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        assert records[0]["type"] == "meta"
        assert records[0]["attrs"]["command"] == "solve"
        spans = {r["name"] for r in records if r["type"] == "span"}
        assert {"solve", "preprocess", "select"} <= spans
        # shutdown appends the registry snapshot
        final = records[-1]
        assert final["type"] == "metrics"
        assert "scwsc_solves_total" in final["metrics"]

    def test_cmc_trace_covers_every_budget_round(
        self, csv_path, tmp_path, capsys
    ):
        trace = tmp_path / "cmc.jsonl"
        code = main(
            _solve_args(csv_path)
            + ["--algorithm", "cmc", "--trace", str(trace)]
        )
        assert code == 0
        assert validate_trace_file(str(trace)) == []
        records = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        rounds = [
            r for r in records
            if r["type"] == "span" and r["name"] == "budget_round"
        ]
        selections = [
            r for r in records
            if r["type"] == "span" and r["name"] == "select"
        ]
        assert rounds and selections
        # one span per budget round, numbered from 1
        assert [r["attrs"]["round"] for r in rounds] == list(
            range(1, len(rounds) + 1)
        )

    def test_trace_written_even_on_error(self, tmp_path, capsys):
        trace = tmp_path / "err.jsonl"
        code = main(
            ["solve", str(tmp_path / "missing.csv"),
             "--attributes", "Type", "-k", "2", "-s", "0.5",
             "--trace", str(trace)]
        )
        assert code != 0
        # file is still a self-contained, valid trace
        assert validate_trace_file(str(trace)) == []

    def test_no_trace_file_without_flag(self, csv_path, tmp_path, capsys):
        assert main(_solve_args(csv_path)) == 0
        assert list(tmp_path.glob("*.jsonl")) == []


class TestSolveProfile:
    @pytest.fixture
    def profiled_trace(self, csv_path, tmp_path, capsys):
        path = tmp_path / "profiled.jsonl"
        code = main(
            _solve_args(csv_path) + ["--trace", str(path), "--profile"]
        )
        assert code == 0
        capsys.readouterr()
        return str(path)

    def test_profile_records_are_schema_valid(self, profiled_trace):
        assert validate_trace_file(profiled_trace) == []
        records = [
            json.loads(line)
            for line in open(profiled_trace).read().splitlines()
        ]
        kinds = {
            (r["profile_kind"], r["scope"])
            for r in records
            if r["type"] == "profile"
        }
        assert ("cprofile", "solve") in kinds
        assert ("memory", "solve") in kinds
        assert ("rss", "process") in kinds
        # Quality telemetry rides the same trace.
        quality = [r for r in records if r["type"] == "quality"]
        assert quality and quality[0]["quality"]["sets_used"] >= 1

    def test_flamegraph_export(self, profiled_trace, tmp_path, capsys):
        assert main(["trace", "flamegraph", profiled_trace]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line]
        assert lines
        assert all(line.rsplit(" ", 1)[1].isdigit() for line in lines)
        assert any(line.startswith("solve") for line in lines)
        assert any(line.startswith("cpu:solve;") for line in lines)

        out_path = tmp_path / "stacks.txt"
        assert main(
            ["trace", "flamegraph", profiled_trace, "-o", str(out_path)]
        ) == 0
        assert out_path.read_text().splitlines() == lines

    def test_no_profile_records_without_flag(self, csv_path, tmp_path,
                                             capsys):
        path = tmp_path / "plain.jsonl"
        assert main(_solve_args(csv_path) + ["--trace", str(path)]) == 0
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert all(r["type"] != "profile" for r in records)


class _PanelParser(HTMLParser):
    """Collects div ids and any external references in the page."""

    def __init__(self):
        super().__init__()
        self.div_ids = set()
        self.external = []
        self.title_chunks = []
        self._in_title = False

    def handle_starttag(self, tag, attrs):
        attrs = dict(attrs)
        if tag == "div" and "id" in attrs:
            self.div_ids.add(attrs["id"])
        if tag == "title":
            self._in_title = True
        for key in ("src", "href"):
            if attrs.get(key):
                self.external.append(attrs[key])

    def handle_endtag(self, tag):
        if tag == "title":
            self._in_title = False

    def handle_data(self, data):
        if self._in_title:
            self.title_chunks.append(data)


class TestReportDashboard:
    @pytest.fixture
    def profiled_trace(self, csv_path, tmp_path, capsys):
        path = tmp_path / "profiled.jsonl"
        code = main(
            _solve_args(csv_path) + ["--trace", str(path), "--profile"]
        )
        assert code == 0
        capsys.readouterr()
        return str(path)

    def test_report_renders_self_contained_dashboard(
        self, profiled_trace, tmp_path, capsys
    ):
        out = tmp_path / "report.html"
        code = main(
            ["report", profiled_trace, "-o", str(out),
             "--title", "acceptance run"]
        )
        assert code == 0
        page = out.read_text()
        parser = _PanelParser()
        parser.feed(page)
        assert parser.div_ids >= {
            "waterfall", "self-time", "quality", "profile", "bench-trends"
        }
        assert parser.external == []  # self-contained: no src/href at all
        assert "acceptance run" in "".join(parser.title_chunks)
        # The run's data actually landed in the panels.
        assert "cpu: solve" in page
        assert 'class="bar' in page

    def test_report_includes_bench_history(
        self, profiled_trace, tmp_path, capsys
    ):
        history = tmp_path / "history.jsonl"
        history.write_text(
            json.dumps(
                {"schema": "scwsc-bench-history/1", "wall_time_unix": 0.0,
                 "cells": [{"bench_id": "cell-a", "median_seconds": 0.01,
                            "approx_ratio": 1.2, "coverage_slack": 0.0,
                            "feasible": True}]}
            ) + "\n"
        )
        out = tmp_path / "report.html"
        code = main(
            ["report", profiled_trace, "-o", str(out),
             "--history", str(history)]
        )
        assert code == 0
        page = out.read_text()
        assert "cell-a" in page
        assert "1 bench run(s) in history" in page

    def test_report_missing_trace_is_an_error(self, tmp_path, capsys):
        code = main(
            ["report", str(tmp_path / "missing.jsonl"),
             "-o", str(tmp_path / "r.html")]
        )
        assert code != 0


class TestTraceSubcommand:
    @pytest.fixture
    def trace_path(self, csv_path, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        assert main(_solve_args(csv_path) + ["--trace", str(path)]) == 0
        capsys.readouterr()  # drop the solve output
        return str(path)

    def test_summarize(self, trace_path, capsys):
        assert main(["trace", "summarize", trace_path]) == 0
        out = capsys.readouterr().out
        assert "phase rollup" in out
        assert "self_s" in out
        assert "solve" in out
        assert "select" in out

    def test_validate_ok(self, trace_path, capsys):
        assert main(["trace", "validate", trace_path]) == 0
        assert "ok" in capsys.readouterr().out

    def test_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "wat"}\n')
        assert main(["trace", "validate", str(bad)]) != 0
        assert capsys.readouterr().err != ""

    def test_validate_missing_file(self, tmp_path, capsys):
        assert main(
            ["trace", "validate", str(tmp_path / "missing.jsonl")]
        ) != 0
