"""End-to-end tests for `--trace` on the CLI and the `trace` subcommand."""

import json

import pytest

from repro.cli import main
from repro.datasets.entities import entities_table
from repro.obs.schema import validate_trace_file


@pytest.fixture
def csv_path(tmp_path):
    path = tmp_path / "entities.csv"
    entities_table().to_csv(path)
    return str(path)


def _solve_args(csv_path):
    return [
        "solve", csv_path,
        "--attributes", "Type,Location",
        "--measure", "Cost",
        "-k", "2", "-s", "0.5625",
    ]


class TestSolveTrace:
    def test_solve_writes_valid_trace(self, csv_path, tmp_path, capsys):
        trace = tmp_path / "solve.jsonl"
        assert main(_solve_args(csv_path) + ["--trace", str(trace)]) == 0
        assert validate_trace_file(str(trace)) == []

        records = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        assert records[0]["type"] == "meta"
        assert records[0]["attrs"]["command"] == "solve"
        spans = {r["name"] for r in records if r["type"] == "span"}
        assert {"solve", "preprocess", "select"} <= spans
        # shutdown appends the registry snapshot
        final = records[-1]
        assert final["type"] == "metrics"
        assert "scwsc_solves_total" in final["metrics"]

    def test_cmc_trace_covers_every_budget_round(
        self, csv_path, tmp_path, capsys
    ):
        trace = tmp_path / "cmc.jsonl"
        code = main(
            _solve_args(csv_path)
            + ["--algorithm", "cmc", "--trace", str(trace)]
        )
        assert code == 0
        assert validate_trace_file(str(trace)) == []
        records = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        rounds = [
            r for r in records
            if r["type"] == "span" and r["name"] == "budget_round"
        ]
        selections = [
            r for r in records
            if r["type"] == "span" and r["name"] == "select"
        ]
        assert rounds and selections
        # one span per budget round, numbered from 1
        assert [r["attrs"]["round"] for r in rounds] == list(
            range(1, len(rounds) + 1)
        )

    def test_trace_written_even_on_error(self, tmp_path, capsys):
        trace = tmp_path / "err.jsonl"
        code = main(
            ["solve", str(tmp_path / "missing.csv"),
             "--attributes", "Type", "-k", "2", "-s", "0.5",
             "--trace", str(trace)]
        )
        assert code != 0
        # file is still a self-contained, valid trace
        assert validate_trace_file(str(trace)) == []

    def test_no_trace_file_without_flag(self, csv_path, tmp_path, capsys):
        assert main(_solve_args(csv_path)) == 0
        assert list(tmp_path.glob("*.jsonl")) == []


class TestTraceSubcommand:
    @pytest.fixture
    def trace_path(self, csv_path, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        assert main(_solve_args(csv_path) + ["--trace", str(path)]) == 0
        capsys.readouterr()  # drop the solve output
        return str(path)

    def test_summarize(self, trace_path, capsys):
        assert main(["trace", "summarize", trace_path]) == 0
        out = capsys.readouterr().out
        assert "phase rollup" in out
        assert "solve" in out
        assert "select" in out

    def test_validate_ok(self, trace_path, capsys):
        assert main(["trace", "validate", trace_path]) == 0
        assert "ok" in capsys.readouterr().out

    def test_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "wat"}\n')
        assert main(["trace", "validate", str(bad)]) != 0
        assert capsys.readouterr().err != ""

    def test_validate_missing_file(self, tmp_path, capsys):
        assert main(
            ["trace", "validate", str(tmp_path / "missing.jsonl")]
        ) != 0
