"""Integration tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.datasets.entities import entities_table


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in (
            "fig5", "fig6", "fig7", "fig8", "fig9",
            "table4", "table5", "table6",
            "sec3", "sec6b", "sec6c", "sec6d", "running-example",
        ):
            assert experiment_id in out


class TestRun:
    def test_running_example(self, capsys):
        assert main(["run", "running-example", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "cost 27" in out  # the optimal solution

    def test_unknown_experiment_fails_cleanly(self, capsys):
        # bad input -> exit code 2 (see repro.errors)
        assert main(["run", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_out_file(self, tmp_path, capsys):
        path = tmp_path / "report.txt"
        assert main(
            ["run", "sec3", "--scale", "small", "--out", str(path)]
        ) == 0
        assert "adversarial" in path.read_text()


class TestSolve:
    @pytest.fixture
    def csv_path(self, tmp_path):
        path = tmp_path / "entities.csv"
        entities_table().to_csv(path)
        return str(path)

    def test_cwsc_on_entities_csv(self, csv_path, capsys):
        code = main(
            [
                "solve", csv_path,
                "--attributes", "Type,Location",
                "--measure", "Cost",
                "-k", "2", "-s", "0.5625",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cost=28" in out
        assert "Type='B', Location=ALL" in out

    def test_cmc_on_entities_csv(self, csv_path, capsys):
        code = main(
            [
                "solve", csv_path,
                "--attributes", "Type,Location",
                "--measure", "Cost",
                "-k", "2", "-s", "0.5625",
                "--algorithm", "cmc",
            ]
        )
        assert code == 0
        assert "optimized_cmc" in capsys.readouterr().out

    def test_count_cost_without_measure(self, csv_path, capsys):
        code = main(
            [
                "solve", csv_path,
                "--attributes", "Type,Location",
                "-k", "3", "-s", "0.5",
            ]
        )
        assert code == 0
        assert "feasible=True" in capsys.readouterr().out

    def test_sql_output(self, csv_path, capsys):
        code = main(
            [
                "solve", csv_path,
                "--attributes", "Type,Location",
                "--measure", "Cost",
                "-k", "2", "-s", "0.5625",
                "--sql",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FROM records" in out
        assert "(Type = 'B')" in out

    def test_exact_algorithm(self, csv_path, capsys):
        code = main(
            [
                "solve", csv_path,
                "--attributes", "Type,Location",
                "--measure", "Cost",
                "-k", "2", "-s", "0.5625",
                "--algorithm", "exact",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cost=27" in out  # the paper's optimal k=2 solution

    def test_json_output(self, csv_path, capsys):
        import json

        code = main(
            [
                "solve", csv_path,
                "--attributes", "Type,Location",
                "--measure", "Cost",
                "-k", "2", "-s", "0.5625",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "optimized_cwsc"
        assert payload["total_cost"] == 28.0
        assert payload["feasible"] is True


class TestInfo:
    @pytest.fixture
    def csv_path(self, tmp_path):
        path = tmp_path / "entities.csv"
        entities_table().to_csv(path)
        return str(path)

    def test_profile_output(self, csv_path, capsys):
        code = main(
            [
                "info", csv_path,
                "--attributes", "Type,Location",
                "--measure", "Cost",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rows: 16" in out
        assert "Type: 2 values" in out
        assert "measure Cost" in out

    def test_profile_without_measure(self, csv_path, capsys):
        code = main(["info", csv_path, "--attributes", "Type"])
        assert code == 0
        assert "measure: none" in capsys.readouterr().out


class TestDemo:
    def test_entities_demo(self, capsys):
        code = main(["demo", "--dataset", "entities", "-k", "2", "-s", "0.5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rows: 16" in out
        assert "optimized_cwsc" in out
        assert "optimized_cmc" in out

    def test_unknown_dataset_fails_cleanly(self, capsys):
        # bad input -> exit code 2 (see repro.errors)
        assert main(["demo", "--dataset", "nope"]) == 2
        assert "unknown dataset" in capsys.readouterr().err

    def test_unoptimized_flag_adds_rows(self, capsys):
        code = main(
            ["demo", "--dataset", "lbl:150", "-k", "3", "-s", "0.3",
             "--unoptimized"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "\ncwsc" in out
        assert "LP lower bound" in out


class TestReport:
    def test_markdown_report_small(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        code = main(["report", "--scale", "small", "--out", str(path)])
        assert code == 0
        text = path.read_text()
        assert text.startswith("# Size-Constrained Weighted Set Cover")
        # One section per registered experiment.
        assert text.count("## ") == 16
        assert "Table IV" in text
