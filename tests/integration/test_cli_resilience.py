"""CLI failure semantics: exit codes, --timeout/--fallback, run --resume."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.datasets.entities import entities_table
from repro.experiments import quality_grid
from repro.resilience import FaultConfig, chaos


@pytest.fixture
def csv_path(tmp_path):
    path = tmp_path / "entities.csv"
    entities_table().to_csv(path)
    return str(path)


def _solve_args(csv_path, *extra):
    return [
        "solve", csv_path,
        "--attributes", "Type,Location",
        "--measure", "Cost",
        "-k", "3", "-s", "0.5",
        *extra,
    ]


class TestSolveTimeout:
    def test_timeout_flag_routes_through_resilience(self, csv_path, capsys):
        assert main(_solve_args(csv_path, "--timeout", "30")) == 0
        out = capsys.readouterr().out
        assert "resilience: answered by stage" in out

    def test_tiny_timeout_still_answers(self, csv_path, capsys):
        # Pattern systems always contain the all-wildcards full cover,
        # so even a spent deadline degrades to a feasible answer.
        assert main(_solve_args(csv_path, "--timeout", "0.000001")) == 0
        out = capsys.readouterr().out
        assert "resilience: answered by stage" in out


class TestSolveFallback:
    def test_bare_fallback_uses_default_chain(self, csv_path, capsys):
        assert main(_solve_args(csv_path, "--fallback")) == 0
        assert "resilience:" in capsys.readouterr().out

    def test_explicit_chain(self, csv_path, capsys):
        code = main(
            _solve_args(csv_path, "--fallback", "cwsc,universal")
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "answered by stage 'cwsc'" in out

    def test_json_payload_carries_provenance(self, csv_path, capsys):
        code = main(
            _solve_args(csv_path, "--fallback", "cwsc,universal", "--json")
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["feasible"] is True
        prov = payload["resilience"]
        assert prov["stage"] == "cwsc"
        assert [r["stage"] for r in prov["stages"]] == ["cwsc"]

    def test_unknown_stage_is_bad_input_exit_2(self, csv_path, capsys):
        code = main(_solve_args(csv_path, "--fallback", "warp-drive"))
        assert code == 2
        assert "unknown chain stage" in capsys.readouterr().err

    def test_survives_injected_lp_failures(self, csv_path, capsys):
        with chaos(FaultConfig(lp_failure=1.0, seed=5)):
            code = main(
                _solve_args(
                    csv_path, "--fallback", "lp_rounding,cwsc,universal"
                )
            )
        assert code == 0
        out = capsys.readouterr().out
        assert "lp_rounding" in out
        assert "transient_exhausted" in out


class TestSolveErrorReporting:
    def test_bad_csv_path_exits_nonzero_with_stderr(self, capsys):
        code = main(_solve_args("/nonexistent/file.csv"))
        captured = capsys.readouterr()
        assert code != 0
        assert captured.err != ""

    def test_bad_coverage_is_bad_input(self, csv_path, capsys):
        code = main(
            [
                "solve", csv_path,
                "--attributes", "Type,Location",
                "-k", "3", "-s", "2.5",
            ]
        )
        assert code == 2
        assert capsys.readouterr().err != ""


class TestRunResume:
    @pytest.fixture(autouse=True)
    def _fresh_memo(self, monkeypatch):
        monkeypatch.setattr(quality_grid, "_grid_cache", {})

    def test_resume_skips_completed_cells(
        self, tmp_path, capsys, monkeypatch
    ):
        ckdir = str(tmp_path / "checkpoints")
        args = ["run", "table4", "--scale", "small", "--checkpoint-dir", ckdir]
        assert main(args) == 0
        capsys.readouterr()

        calls = []
        real_cwsc = quality_grid.cwsc
        monkeypatch.setattr(
            quality_grid,
            "cwsc",
            lambda *a, **kw: calls.append(1) or real_cwsc(*a, **kw),
        )
        real_cmc = quality_grid.cmc_epsilon
        monkeypatch.setattr(
            quality_grid,
            "cmc_epsilon",
            lambda *a, **kw: calls.append(1) or real_cmc(*a, **kw),
        )
        assert main([*args, "--resume"]) == 0
        captured = capsys.readouterr()
        assert "resuming table4" in captured.err
        assert "cell(s) done" in captured.err
        assert calls == []  # nothing recomputed
        assert "Table IV" in captured.out

    def test_without_resume_checkpoint_starts_fresh(
        self, tmp_path, capsys
    ):
        ckdir = tmp_path / "checkpoints"
        args = [
            "run", "table4", "--scale", "small",
            "--checkpoint-dir", str(ckdir),
        ]
        assert main(args) == 0
        path = ckdir / "table4-small.json"
        assert path.exists()
        first = json.loads(path.read_text())
        assert len(first["cells"]) > 0

        # A non-resumed rerun clears the store before computing.
        assert main(args) == 0
        second = json.loads(path.read_text())
        assert second["cells"].keys() == first["cells"].keys()

    def test_no_checkpoint_flag_writes_nothing(self, tmp_path, capsys):
        ckdir = tmp_path / "checkpoints"
        assert main(
            [
                "run", "table4", "--scale", "small",
                "--checkpoint-dir", str(ckdir), "--no-checkpoint",
            ]
        ) == 0
        assert not ckdir.exists()
