"""CLI failure semantics: exit codes, --timeout/--fallback, run --resume."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.datasets.entities import entities_table
from repro.experiments import quality_grid
from repro.resilience import FaultConfig, chaos


@pytest.fixture
def csv_path(tmp_path):
    path = tmp_path / "entities.csv"
    entities_table().to_csv(path)
    return str(path)


def _solve_args(csv_path, *extra):
    return [
        "solve", csv_path,
        "--attributes", "Type,Location",
        "--measure", "Cost",
        "-k", "3", "-s", "0.5",
        *extra,
    ]


class TestSolveTimeout:
    def test_timeout_flag_routes_through_resilience(self, csv_path, capsys):
        assert main(_solve_args(csv_path, "--timeout", "30")) == 0
        out = capsys.readouterr().out
        assert "resilience: answered by stage" in out

    def test_tiny_timeout_still_answers(self, csv_path, capsys):
        # Pattern systems always contain the all-wildcards full cover,
        # so even a spent deadline degrades to a feasible answer.
        assert main(_solve_args(csv_path, "--timeout", "0.000001")) == 0
        out = capsys.readouterr().out
        assert "resilience: answered by stage" in out


class TestSolveFallback:
    def test_bare_fallback_uses_default_chain(self, csv_path, capsys):
        assert main(_solve_args(csv_path, "--fallback")) == 0
        assert "resilience:" in capsys.readouterr().out

    def test_explicit_chain(self, csv_path, capsys):
        code = main(
            _solve_args(csv_path, "--fallback", "cwsc,universal")
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "answered by stage 'cwsc'" in out

    def test_json_payload_carries_provenance(self, csv_path, capsys):
        code = main(
            _solve_args(csv_path, "--fallback", "cwsc,universal", "--json")
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["feasible"] is True
        prov = payload["resilience"]
        assert prov["stage"] == "cwsc"
        assert [r["stage"] for r in prov["stages"]] == ["cwsc"]

    def test_unknown_stage_is_bad_input_exit_2(self, csv_path, capsys):
        code = main(_solve_args(csv_path, "--fallback", "warp-drive"))
        assert code == 2
        assert "unknown chain stage" in capsys.readouterr().err

    def test_survives_injected_lp_failures(self, csv_path, capsys):
        with chaos(FaultConfig(lp_failure=1.0, seed=5)):
            code = main(
                _solve_args(
                    csv_path, "--fallback", "lp_rounding,cwsc,universal"
                )
            )
        assert code == 0
        out = capsys.readouterr().out
        assert "lp_rounding" in out
        assert "transient_exhausted" in out


class TestSolveErrorReporting:
    def test_bad_csv_path_exits_nonzero_with_stderr(self, capsys):
        code = main(_solve_args("/nonexistent/file.csv"))
        captured = capsys.readouterr()
        assert code != 0
        assert captured.err != ""

    def test_bad_coverage_is_bad_input(self, csv_path, capsys):
        code = main(
            [
                "solve", csv_path,
                "--attributes", "Type,Location",
                "-k", "3", "-s", "2.5",
            ]
        )
        assert code == 2
        assert capsys.readouterr().err != ""


class TestRunResume:
    @pytest.fixture(autouse=True)
    def _fresh_memo(self, monkeypatch):
        monkeypatch.setattr(quality_grid, "_grid_cache", {})

    def test_resume_skips_completed_cells(
        self, tmp_path, capsys, monkeypatch
    ):
        ckdir = str(tmp_path / "checkpoints")
        args = ["run", "table4", "--scale", "small", "--checkpoint-dir", ckdir]
        assert main(args) == 0
        capsys.readouterr()

        calls = []
        real_cwsc = quality_grid.cwsc
        monkeypatch.setattr(
            quality_grid,
            "cwsc",
            lambda *a, **kw: calls.append(1) or real_cwsc(*a, **kw),
        )
        real_cmc = quality_grid.cmc_epsilon
        monkeypatch.setattr(
            quality_grid,
            "cmc_epsilon",
            lambda *a, **kw: calls.append(1) or real_cmc(*a, **kw),
        )
        assert main([*args, "--resume"]) == 0
        captured = capsys.readouterr()
        assert "resuming table4" in captured.err
        assert "cell(s) done" in captured.err
        assert calls == []  # nothing recomputed
        assert "Table IV" in captured.out

    def test_without_resume_checkpoint_starts_fresh(
        self, tmp_path, capsys
    ):
        ckdir = tmp_path / "checkpoints"
        args = [
            "run", "table4", "--scale", "small",
            "--checkpoint-dir", str(ckdir),
        ]
        assert main(args) == 0
        path = ckdir / "table4-small.json"
        assert path.exists()
        first = json.loads(path.read_text())
        assert len(first["cells"]) > 0

        # A non-resumed rerun clears the store before computing.
        assert main(args) == 0
        second = json.loads(path.read_text())
        assert second["cells"].keys() == first["cells"].keys()

    def test_no_checkpoint_flag_writes_nothing(self, tmp_path, capsys):
        ckdir = tmp_path / "checkpoints"
        assert main(
            [
                "run", "table4", "--scale", "small",
                "--checkpoint-dir", str(ckdir), "--no-checkpoint",
            ]
        ) == 0
        assert not ckdir.exists()


class TestSolveIsolate:
    def test_isolated_solve_matches_inline(self, csv_path, capsys):
        assert main(_solve_args(csv_path, "--timeout", "30")) == 0
        inline_out = capsys.readouterr().out

        assert main(
            _solve_args(
                csv_path, "--timeout", "30",
                "--isolate", "--memory-limit", "512",
            )
        ) == 0
        isolated_out = capsys.readouterr().out
        assert "pool: 1 attempt(s), 0 requeue(s)" in isolated_out
        assert "attempt 1 (worker 0): ok" in isolated_out

        def result_block(text):
            lines = []
            for line in text.splitlines():
                if line.startswith(("pool:", "resilience:")):
                    break
                lines.append(line)
            return lines

        assert result_block(isolated_out) == result_block(inline_out)

    def test_isolate_json_payload_carries_pool_provenance(
        self, csv_path, capsys
    ):
        code = main(_solve_args(csv_path, "--isolate", "--json"))
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["feasible"] is True
        assert payload["pool"]["attempts"][0]["outcome"] == "ok"
        assert payload["resilience"]["stage"]

    def test_memory_limit_without_isolate_is_bad_input(
        self, csv_path, capsys
    ):
        code = main(_solve_args(csv_path, "--memory-limit", "512"))
        assert code == 2
        assert "--memory-limit requires --isolate" in capsys.readouterr().err


class TestBatch:
    def _batch_args(self, requests_path, csv_path, out_path, *extra):
        return [
            "batch", str(requests_path),
            "--csv", csv_path,
            "--attributes", "Type,Location",
            "--measure", "Cost",
            "--out", str(out_path),
            "--workers", "2",
            *extra,
        ]

    def test_jsonl_in_jsonl_out(self, tmp_path, csv_path, capsys):
        requests_path = tmp_path / "requests.jsonl"
        requests_path.write_text(
            "\n".join(
                [
                    '{"k": 3, "s": 0.5, "tag": "a"}',
                    "# a comment line",
                    '{"k": 4, "s": 0.7, "solver": "cwsc", "tag": "b"}',
                    "",
                ]
            )
        )
        out_path = tmp_path / "results.jsonl"
        code = main(self._batch_args(requests_path, csv_path, out_path))
        assert code == 0
        lines = [
            json.loads(line)
            for line in out_path.read_text().splitlines()
        ]
        assert sorted(entry["tag"] for entry in lines) == ["a", "b"]
        for entry in lines:
            assert entry["status"] == "ok"
            assert entry["result"]["feasible"] is True
            assert entry["pool"]["attempts"][0]["outcome"] == "ok"
        assert "2 request(s) run, 0 failed" in capsys.readouterr().err

    def test_invalid_line_reported_and_exit_3(
        self, tmp_path, csv_path, capsys
    ):
        requests_path = tmp_path / "requests.jsonl"
        requests_path.write_text(
            '{"k": 3, "s": 0.5, "tag": "good"}\n'
            "this is not json\n"
            '{"s": 0.5, "tag": "missing-k"}\n'
        )
        out_path = tmp_path / "results.jsonl"
        code = main(self._batch_args(requests_path, csv_path, out_path))
        assert code == 3
        lines = [
            json.loads(line)
            for line in out_path.read_text().splitlines()
        ]
        by_status = {}
        for entry in lines:
            by_status.setdefault(entry["status"], []).append(entry)
        assert len(by_status["invalid"]) == 2
        assert all("error" in e for e in by_status["invalid"])
        assert [e["tag"] for e in by_status["ok"]] == ["good"]

    def test_missing_requests_file_is_an_io_error(
        self, tmp_path, csv_path, capsys
    ):
        code = main(
            self._batch_args(
                tmp_path / "nope.jsonl", csv_path, tmp_path / "out.jsonl"
            )
        )
        assert code != 0
        assert capsys.readouterr().err != ""


class TestKeyboardInterrupt:
    def test_ctrl_c_exits_130(self, csv_path, capsys, monkeypatch):
        from repro import cli as cli_module

        def boom(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli_module, "_cmd_solve", boom)
        assert main(_solve_args(csv_path)) == 130
        assert "interrupted" in capsys.readouterr().err


class TestRunWorkers:
    @pytest.fixture(autouse=True)
    def _fresh_memo(self, monkeypatch):
        monkeypatch.setattr(quality_grid, "_grid_cache", {})

    def test_pooled_run_matches_sequential(self, tmp_path, capsys):
        assert main(["run", "table4", "--scale", "small"]) == 0
        sequential = capsys.readouterr().out

        assert main(
            ["run", "table4", "--scale", "small", "--workers", "2"]
        ) == 0
        pooled = capsys.readouterr().out
        assert pooled == sequential

    def test_pooled_run_resumes_from_checkpoint(self, tmp_path, capsys):
        ckdir = str(tmp_path / "checkpoints")
        args = [
            "run", "table4", "--scale", "small",
            "--checkpoint-dir", ckdir, "--workers", "2",
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main([*args, "--resume"]) == 0
        captured = capsys.readouterr()
        assert "cell(s) done" in captured.err
        assert "Table IV" in captured.out
