"""Unit tests for the shared experiment sweeps (tiny workloads)."""

from repro.experiments.sweeps import (
    ALGORITHMS,
    attribute_sweep,
    coverage_sweep,
    k_sweep,
    master_trace,
    run_four,
    size_sweep,
)


class TestMasterTrace:
    def test_cached(self):
        assert master_trace(120, 3) is master_trace(120, 3)

    def test_distinct_keys(self):
        assert master_trace(120, 3) is not master_trace(120, 4)


class TestRunFour:
    def test_stats_shape(self):
        stats = run_four(master_trace(150, 5), k=3, s_hat=0.3)
        assert set(stats) == set(ALGORITHMS)
        for name in ALGORITHMS:
            entry = stats[name]
            assert entry["runtime"] >= 0
            assert entry["cost"] > 0
            assert entry["covered"] > 0
            assert entry["considered"] > 0
            assert entry["n_sets"] >= 1

    def test_unoptimized_charged_for_enumeration(self):
        stats = run_four(master_trace(150, 5), k=3, s_hat=0.3)
        # The unoptimized runtimes include the build; they can never be
        # below the raw algorithm loop alone, which for this tiny table
        # still means a strictly positive runtime.
        assert stats["cwsc"]["runtime"] > 0
        assert stats["cmc"]["runtime"] > 0


class TestSweeps:
    def test_size_sweep_caches(self):
        first = size_sweep((40, 80), 80, 6, 2, 0.3)
        second = size_sweep((40, 80), 80, 6, 2, 0.3)
        assert first is second
        assert [row["x"] for row in first] == [40, 80]

    def test_attribute_sweep_projects(self):
        rows = attribute_sweep((1, 2), 60, 6, 2, 0.3)
        assert [row["x"] for row in rows] == [1, 2]
        # More attributes -> more patterns to consider.
        assert (
            rows[1]["cwsc"]["considered"] >= rows[0]["cwsc"]["considered"]
        )

    def test_k_sweep(self):
        rows = k_sweep((1, 2), 60, 6, 0.3)
        assert [row["x"] for row in rows] == [1, 2]

    def test_coverage_sweep(self):
        rows = coverage_sweep((0.2, 0.5), 60, 6, 2)
        assert [row["x"] for row in rows] == [0.2, 0.5]
        for row in rows:
            assert row["cwsc"]["covered"] >= row["x"] * 60 - 1e-6
