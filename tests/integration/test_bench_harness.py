"""Integration tests for the benchmark regression harness."""

import json

import pytest

from repro.bench import (
    BACKENDS,
    HISTORY_SCHEMA,
    SCHEMA,
    BenchCase,
    compare_reports,
    default_cases,
    history_entry,
    main,
    render_report,
    run_benchmarks,
)
from repro.errors import ValidationError

#: Tiny workload so the whole matrix runs in well under a second.
TINY = (40,)


@pytest.fixture(scope="module")
def tiny_report() -> dict:
    return run_benchmarks(scale="quick", repeat=2, warmup=1, sizes=TINY)


class TestMatrix:
    def test_default_cases_cover_both_workloads_and_backends(self):
        cases = default_cases("quick")
        workloads = {case.workload for case in cases}
        assert workloads == {
            "bench_table5_runtime",
            "bench_fig5_datasize",
        }
        assert {case.backend for case in cases} == set(BACKENDS)

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValidationError):
            default_cases("galactic")

    def test_bench_ids_unique_per_measurement(self):
        cases = default_cases("full")
        table5 = [
            c for c in cases if c.workload == "bench_table5_runtime"
        ]
        assert len({c.bench_id for c in table5}) == len(table5)


class TestRunBenchmarks:
    def test_report_shape(self, tiny_report):
        assert tiny_report["schema"] == SCHEMA
        assert tiny_report["benchmarks"]
        for entry in tiny_report["benchmarks"].values():
            assert entry["median_seconds"] >= 0.0
            assert len(entry["runs"]) == 2
            assert entry["shape"]["n_elements"] == TINY[0]
            assert entry["result"]["feasible"]
            assert entry["metrics"]["selections"] >= 1

    def test_speedups_present_for_each_workload(self, tiny_report):
        case = BenchCase("bench_table5_runtime", "cwsc", TINY[0], "set")
        assert case.speedup_id in tiny_report["speedups"]
        assert tiny_report["speedups"][case.speedup_id] > 0.0

    def test_backend_pair_selects_identically(self, tiny_report):
        """The report itself witnesses backend equivalence: same
        solution cost/coverage from both backends on every workload."""
        for case in default_cases("quick", sizes=TINY):
            if case.backend != "bitset":
                continue
            twin = BenchCase(case.workload, case.solver, case.n_rows, "set")
            fast = tiny_report["benchmarks"][case.bench_id]
            slow = tiny_report["benchmarks"][twin.bench_id]
            assert fast["result"] == slow["result"]
            assert fast["metrics"] == slow["metrics"]

    def test_filter_restricts_cases(self):
        report = run_benchmarks(
            scale="quick",
            repeat=1,
            warmup=0,
            sizes=TINY,
            name_filter="cwsc",
            backends=("bitset",),
        )
        assert report["benchmarks"]
        for bench_id in report["benchmarks"]:
            assert "cwsc" in bench_id and "bitset" in bench_id

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValidationError):
            run_benchmarks(repeat=0)
        with pytest.raises(ValidationError):
            run_benchmarks(warmup=-1)
        with pytest.raises(ValidationError):
            run_benchmarks(backends=("frozenset",))

    def test_render_report_mentions_every_benchmark(self, tiny_report):
        text = render_report(tiny_report)
        for bench_id in tiny_report["benchmarks"]:
            assert bench_id in text

    def test_every_cell_carries_quality(self, tiny_report):
        for bench_id, entry in tiny_report["benchmarks"].items():
            quality = entry["quality"]
            assert quality["feasible"] is True
            assert quality["sets_used"] == entry["result"]["n_sets"]
            assert quality["coverage_slack"] is not None
            if "[cwsc" in bench_id:
                # CWSC must meet the target outright; CMC's relaxation
                # may legitimately land just under it — and its cost may
                # then undercut the full-target LP bound (ratio < 1).
                assert quality["coverage_slack"] >= 0.0
                if quality["approx_ratio"] is not None:
                    assert quality["approx_ratio"] >= 1.0 - 1e-9

    def test_history_entry_condenses_report(self, tiny_report):
        entry = history_entry(tiny_report, wall_time_unix=123.0)
        assert entry["schema"] == HISTORY_SCHEMA
        assert entry["wall_time_unix"] == 123.0
        assert len(entry["cells"]) == len(tiny_report["benchmarks"])
        by_id = {cell["bench_id"]: cell for cell in entry["cells"]}
        for bench_id, bench in tiny_report["benchmarks"].items():
            assert by_id[bench_id]["median_seconds"] == (
                bench["median_seconds"]
            )


class TestCompareReports:
    def _report(self, medians: dict) -> dict:
        return {
            "schema": SCHEMA,
            "benchmarks": {
                bench_id: {"median_seconds": median}
                for bench_id, median in medians.items()
            },
        }

    def test_within_tolerance_passes(self):
        current = self._report({"a": 0.029, "b": 0.010})
        baseline = self._report({"a": 0.010, "b": 0.010})
        regressions, missing = compare_reports(
            current, baseline, tolerance=3.0
        )
        assert regressions == [] and missing == []

    def test_regression_detected_with_ratio(self):
        current = self._report({"a": 0.031})
        baseline = self._report({"a": 0.010})
        regressions, _ = compare_reports(current, baseline, tolerance=3.0)
        assert len(regressions) == 1
        assert regressions[0]["bench_id"] == "a"
        assert regressions[0]["ratio"] == pytest.approx(3.1)

    def test_missing_benchmarks_reported_not_failed(self):
        current = self._report({})
        baseline = self._report({"gone": 0.010})
        regressions, missing = compare_reports(current, baseline)
        assert regressions == [] and missing == ["gone"]

    def test_zero_baseline_never_divides(self):
        current = self._report({"a": 1.0})
        baseline = self._report({"a": 0.0})
        regressions, _ = compare_reports(current, baseline)
        assert regressions == []

    def test_tolerance_must_exceed_one(self):
        with pytest.raises(ValidationError):
            compare_reports(self._report({}), self._report({}), tolerance=1.0)

    def _quality_report(self, cells: dict) -> dict:
        return {
            "schema": SCHEMA,
            "benchmarks": {
                bench_id: {
                    "median_seconds": 0.01,
                    "quality": quality,
                }
                for bench_id, quality in cells.items()
            },
        }

    def test_quality_regression_detected(self):
        baseline = self._quality_report(
            {"a": {"approx_ratio": 1.2, "feasible": True}}
        )
        current = self._quality_report(
            {"a": {"approx_ratio": 1.4, "feasible": True}}
        )
        regressions, _ = compare_reports(
            current, baseline, quality_tolerance=1.1
        )
        assert len(regressions) == 1
        assert regressions[0]["kind"] == "quality"
        assert regressions[0]["ratio"] == pytest.approx(1.4 / 1.2)

    def test_quality_within_tolerance_passes(self):
        baseline = self._quality_report(
            {"a": {"approx_ratio": 1.2, "feasible": True}}
        )
        current = self._quality_report(
            {"a": {"approx_ratio": 1.25, "feasible": True}}
        )
        regressions, _ = compare_reports(
            current, baseline, quality_tolerance=1.1
        )
        assert regressions == []

    def test_turning_infeasible_always_regresses(self):
        baseline = self._quality_report(
            {"a": {"approx_ratio": 1.2, "feasible": True}}
        )
        current = self._quality_report(
            {"a": {"approx_ratio": 1.2, "feasible": False}}
        )
        regressions, _ = compare_reports(current, baseline)
        assert [r["kind"] for r in regressions] == ["feasibility"]

    def test_baseline_without_quality_gates_runtime_only(self):
        baseline = self._report({"a": 0.010})
        current = self._quality_report(
            {"a": {"approx_ratio": 99.0, "feasible": False}}
        )
        current["benchmarks"]["a"]["median_seconds"] = 0.010
        regressions, _ = compare_reports(current, baseline)
        assert regressions == []

    def test_quality_tolerance_must_exceed_one(self):
        with pytest.raises(ValidationError):
            compare_reports(
                self._report({}), self._report({}), quality_tolerance=0.9
            )


class TestQualityGate:
    """``scwsc bench --check`` fails on a worsened answer, not just a
    slower one: the acceptance scenario from the observability PR."""

    ARGV = [
        "--quick",
        "--repeat",
        "1",
        "--warmup",
        "0",
        "--filter",
        "cwsc-n600-bitset",
        "--no-history",
        "--tolerance",
        "1000",
    ]

    def test_injected_quality_regression_fails_check(
        self, tmp_path, monkeypatch, capsys
    ):
        import dataclasses

        import repro.bench as bench_module

        baseline = tmp_path / "baseline.json"
        assert main(self.ARGV + ["--out", str(baseline)]) == 0
        base_quality = json.loads(baseline.read_text())["benchmarks"][
            "bench_fig5_datasize[cwsc-n600-bitset]"
        ]["quality"]
        if base_quality["approx_ratio"] is None:
            pytest.skip("LP lower bound unavailable (no scipy)")

        real_cwsc = bench_module._SOLVERS["cwsc"]

        def worsened(system, backend):
            result = real_cwsc(system, backend)
            # A deliberately worse answer: triple the cost, same cover.
            return dataclasses.replace(
                result, total_cost=result.total_cost * 3.0
            )

        monkeypatch.setitem(bench_module._SOLVERS, "cwsc", worsened)
        code = main(
            self.ARGV
            + ["--out", "-", "--check", "--baseline", str(baseline)]
        )
        assert code == 1
        assert "[quality]" in capsys.readouterr().err

    def test_unchanged_solver_passes_check(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        assert main(self.ARGV + ["--out", str(baseline)]) == 0
        code = main(
            self.ARGV
            + ["--out", "-", "--check", "--baseline", str(baseline)]
        )
        assert code == 0


class TestCli:
    def test_writes_report_and_checks_baseline(self, tmp_path):
        out = tmp_path / "BENCH_micro.json"
        baseline = tmp_path / "baseline.json"
        history = tmp_path / "history.jsonl"
        argv = [
            "--quick",
            "--repeat",
            "1",
            "--warmup",
            "0",
            "--filter",
            "cwsc-n600-bitset",
            "--history",
            str(history),
            "--out",
            str(baseline),
        ]
        assert main(argv) == 0
        assert json.loads(baseline.read_text())["schema"] == SCHEMA

        argv = argv[:-1] + [
            str(out),
            "--baseline",
            str(baseline),
            "--check",
            "--tolerance",
            "100",
        ]
        assert main(argv) == 0
        assert out.exists()
        # Both runs appended one trend line each.
        lines = [
            json.loads(line)
            for line in history.read_text().splitlines()
            if line
        ]
        assert len(lines) == 2
        assert all(line["schema"] == HISTORY_SCHEMA for line in lines)
        assert lines[0]["cells"][0]["median_seconds"] > 0

    def test_check_without_baseline_is_an_input_error(self, tmp_path):
        code = main(
            [
                "--quick",
                "--repeat",
                "1",
                "--warmup",
                "0",
                "--filter",
                "cwsc-n600-bitset",
                "--out",
                "-",
                "--no-history",
                "--check",
                "--baseline",
                str(tmp_path / "nope.json"),
            ]
        )
        assert code == ValidationError.exit_code

    def test_scwsc_bench_subcommand_wired(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        out = tmp_path / "report.json"
        code = cli_main(
            [
                "bench",
                "--quick",
                "--repeat",
                "1",
                "--warmup",
                "0",
                "--filter",
                "cwsc-n600-bitset",
                "--history",
                str(tmp_path / "history.jsonl"),
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert "bench_fig5_datasize" in capsys.readouterr().out
        assert out.exists()
