"""Cross-module interplay: chaining the library's pieces like a user would."""

import pytest

from repro.core.cwsc import cwsc
from repro.core.postprocess import prune_redundant
from repro.core.preprocess import remove_dominated
from repro.core.validate import verify_result
from repro.datasets.census import census_table
from repro.extensions.hierarchy import Taxonomy, flatten_hierarchy
from repro.extensions.ranges import bin_numeric_attribute
from repro.patterns.optimized_cwsc import optimized_cwsc
from repro.patterns.pattern_sets import build_set_system
from repro.patterns.sql import solution_to_sql


class TestRangePlusHierarchyChain:
    def test_bin_income_then_solve(self):
        # Add the measure itself as a two-level range attribute, then
        # summarize: patterns may now constrain the income range.
        table = census_table(600, seed=31)
        enriched = bin_numeric_attribute(
            table, table.measure, "income_band", n_bins=6, coarse_bins=3,
            style="quantile",
        )
        assert enriched.n_attributes == table.n_attributes + 2
        result = optimized_cwsc(enriched, k=5, s_hat=0.5)
        assert result.feasible
        assert result.n_sets <= 5

    def test_hierarchy_on_binned_attribute(self):
        # Coarse range bins act as parents of fine bins via a taxonomy.
        table = census_table(300, seed=32)
        enriched = bin_numeric_attribute(
            table, table.measure, "band", n_bins=4, coarse_bins=2
        )
        fine_position = enriched.attributes.index("band")
        coarse_position = enriched.attributes.index("band_coarse")
        parent_of = {}
        for row in enriched.rows:
            parent_of[row[fine_position]] = row[coarse_position]
        for coarse in {row[coarse_position] for row in enriched.rows}:
            parent_of[coarse] = "all-incomes"
        taxonomy = Taxonomy(parent_of)
        assert taxonomy.depth() == 3


class TestPreprocessSolvePostprocessChain:
    @pytest.mark.parametrize("seed", range(4))
    def test_full_pipeline_verifies(self, random_system, seed):
        system = random_system(n_elements=15, n_sets=12, seed=seed)
        reduced = remove_dominated(system)
        result = cwsc(reduced, 4, 0.7, on_infeasible="full_cover")
        pruned = prune_redundant(reduced, result, 0.7)
        assert verify_result(reduced, pruned, k=4, s_hat=0.7) == []

    def test_sql_of_pruned_pattern_solution(self, entities):
        system = build_set_system(entities, "max")
        result = cwsc(system, 3, 0.75, on_infeasible="full_cover")
        pruned = prune_redundant(system, result, 0.75)
        query = solution_to_sql(pruned, entities.attributes, "entities")
        assert query.count("(") >= pruned.n_sets


class TestDominanceVsOptimizedEquivalence:
    def test_reduced_system_may_change_greedy_but_stays_feasible(
        self, random_table
    ):
        # Documented behaviour: preprocessing can change greedy picks
        # (fewer tie candidates) but never feasibility or the k bound.
        table = random_table(n_rows=25, seed=11)
        system = build_set_system(table, "max")
        reduced = remove_dominated(system)
        full_run = cwsc(system, 3, 0.6, on_infeasible="full_cover")
        reduced_run = cwsc(reduced, 3, 0.6, on_infeasible="full_cover")
        assert full_run.feasible and reduced_run.feasible
        assert reduced_run.n_sets <= 3
        assert reduced_run.covered >= 0.6 * 25 - 1e-9
