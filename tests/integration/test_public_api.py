"""The public API surface stays importable and consistent."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.patterns",
    "repro.baselines",
    "repro.datasets",
    "repro.hardness",
    "repro.extensions",
    "repro.experiments",
    "repro.analysis",
    "repro.cli",
]


class TestImports:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_module_imports(self, name):
        importlib.import_module(name)

    @pytest.mark.parametrize(
        "name",
        ["repro", "repro.core", "repro.patterns", "repro.baselines",
         "repro.datasets", "repro.hardness", "repro.extensions"],
    )
    def test_all_entries_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in module.__all__:
            assert hasattr(module, symbol), f"{name}.{symbol} missing"

    def test_all_is_sorted(self):
        import repro

        # Keep the top-level __all__ alphabetized for readability
        # (ASCII order: classes first, then dunders, then functions).
        assert list(repro.__all__) == sorted(repro.__all__)

    def test_version(self):
        import repro

        assert repro.__version__.count(".") == 2


class TestDocstrings:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_every_module_documented(self, name):
        module = importlib.import_module(name)
        assert module.__doc__ and module.__doc__.strip()

    def test_public_callables_documented(self):
        import repro

        undocumented = [
            symbol
            for symbol in repro.__all__
            if callable(getattr(repro, symbol, None))
            and not (getattr(repro, symbol).__doc__ or "").strip()
        ]
        assert undocumented == []
