"""Unit tests for the LP-relaxation lower bound."""

import math

import pytest

from repro.core.exact import solve_exact
from repro.core.lp_bound import lp_lower_bound
from repro.core.setsystem import SetSystem
from repro.errors import InfeasibleError, ValidationError


class TestBoundProperty:
    def test_never_exceeds_optimum(self, random_system):
        for seed in range(10):
            system = random_system(n_elements=10, n_sets=8, seed=seed)
            for k, s_hat in ((2, 0.5), (3, 0.9)):
                opt = solve_exact(system, k, s_hat)
                bound = lp_lower_bound(system, k, s_hat)
                assert bound <= opt.total_cost + 1e-6

    def test_paper_example(self, entities_system):
        bound = lp_lower_bound(entities_system, k=2, s_hat=9 / 16)
        assert bound <= 27.0 + 1e-6
        assert bound > 0

    def test_tight_when_lp_integral(self):
        # Two disjoint halves: the LP optimum is integral.
        system = SetSystem.from_iterables(
            4, [{0, 1}, {2, 3}], [1.0, 2.0]
        )
        bound = lp_lower_bound(system, k=2, s_hat=1.0)
        assert bound == pytest.approx(3.0, abs=1e-6)

    def test_full_coverage_k1_is_tight(self):
        # k=1, full coverage: fractional halves cannot push every y_e to
        # 1 with x-mass 1, so the LP is forced onto the full set too.
        system = SetSystem.from_iterables(
            4, [{0, 1}, {2, 3}, {0, 1, 2, 3}], [1.0, 1.0, 10.0]
        )
        bound = lp_lower_bound(system, k=1, s_hat=1.0)
        assert bound == pytest.approx(10.0, abs=1e-6)

    def test_fractional_relaxation_can_beat_integral(self):
        # k=1, 3-of-4 coverage: integrally only the full set works (cost
        # 10), but the LP mixes the cheap halves with half of the full
        # set: cost 1 + 9a at a = 1/2 gives 5.5 < 10.
        system = SetSystem.from_iterables(
            4, [{0, 1}, {2, 3}, {0, 1, 2, 3}], [1.0, 1.0, 10.0]
        )
        bound = lp_lower_bound(system, k=1, s_hat=0.75)
        opt = solve_exact(system, k=1, s_hat=0.75)
        assert opt.total_cost == pytest.approx(10.0)
        assert bound < 10.0


class TestEdges:
    def test_zero_required_coverage(self, random_system):
        assert lp_lower_bound(random_system(seed=0), 2, 0.0) == 0.0

    def test_infeasible_lp_raises(self):
        system = SetSystem.from_iterables(4, [{0}, {1}], [1.0, 1.0])
        with pytest.raises(InfeasibleError):
            lp_lower_bound(system, k=2, s_hat=1.0)

    def test_infinite_costs_excluded(self):
        system = SetSystem.from_iterables(
            2, [{0, 1}, {0, 1}], [math.inf, 4.0]
        )
        assert lp_lower_bound(system, 1, 1.0) == pytest.approx(4.0, abs=1e-6)

    def test_no_usable_sets_raises(self):
        system = SetSystem.from_iterables(2, [{0, 1}], [math.inf])
        with pytest.raises(InfeasibleError):
            lp_lower_bound(system, 1, 0.5)

    def test_validation(self, random_system):
        with pytest.raises(ValidationError):
            lp_lower_bound(random_system(), 0, 0.5)
