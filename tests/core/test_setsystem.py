"""Unit tests for the weighted set system model."""

import math

import pytest

from repro.core.setsystem import SetSystem, WeightedSet
from repro.errors import ValidationError


def make_simple() -> SetSystem:
    return SetSystem.from_iterables(
        4,
        benefits=[{0, 1}, {2, 3}, {0, 1, 2, 3}, set()],
        costs=[1.0, 2.0, 5.0, 0.5],
        labels=["left", "right", "all", "empty"],
    )


class TestWeightedSet:
    def test_size_and_gain(self):
        ws = WeightedSet(0, frozenset({1, 2, 3}), 6.0)
        assert ws.size == 3
        assert ws.gain == pytest.approx(0.5)

    def test_zero_cost_gain_is_infinite(self):
        ws = WeightedSet(0, frozenset({1}), 0.0)
        assert ws.gain == math.inf

    def test_zero_cost_empty_benefit_gain_is_zero(self):
        ws = WeightedSet(0, frozenset(), 0.0)
        assert ws.gain == 0.0

    def test_negative_cost_rejected(self):
        with pytest.raises(ValidationError):
            WeightedSet(0, frozenset({1}), -1.0)

    def test_nan_cost_rejected(self):
        with pytest.raises(ValidationError):
            WeightedSet(0, frozenset({1}), math.nan)

    def test_infinite_cost_allowed(self):
        ws = WeightedSet(0, frozenset({1}), math.inf)
        assert ws.cost == math.inf


class TestSetSystem:
    def test_basic_properties(self):
        system = make_simple()
        assert system.n_elements == 4
        assert system.n_sets == 4
        assert len(system) == 4
        assert system.has_full_cover

    def test_iteration_in_id_order(self):
        system = make_simple()
        assert [ws.set_id for ws in system] == [0, 1, 2, 3]

    def test_getitem(self):
        system = make_simple()
        assert system[2].label == "all"

    def test_total_cost_excludes_infinite(self):
        system = SetSystem.from_iterables(
            2, [{0}, {1}], [1.0, math.inf]
        )
        assert system.total_cost == 1.0

    def test_coverage_of_union(self):
        system = make_simple()
        assert system.coverage_of([0, 1]) == 4
        assert system.coverage_of([0, 0]) == 2
        assert system.coverage_of([]) == 0

    def test_cost_of(self):
        system = make_simple()
        assert system.cost_of([0, 1]) == pytest.approx(3.0)

    def test_cheapest_costs(self):
        system = make_simple()
        assert system.cheapest_costs(2) == [0.5, 1.0]
        assert system.cheapest_costs(10) == [0.5, 1.0, 2.0, 5.0]

    def test_cheapest_costs_negative_k_rejected(self):
        with pytest.raises(ValidationError):
            make_simple().cheapest_costs(-1)

    def test_required_coverage_rounding(self):
        system = make_simple()
        assert system.required_coverage(0.5) == 2
        assert system.required_coverage(0.51) == 3
        assert system.required_coverage(0.0) == 0
        assert system.required_coverage(1.0) == 4

    def test_required_coverage_float_fuzz(self):
        system = SetSystem.from_iterables(10, [set(range(10))], [1.0])
        # 0.3 * 10 is 3.0000000000000004 in floats; must still require 3.
        assert system.required_coverage(0.3) == 3

    def test_required_coverage_out_of_range(self):
        with pytest.raises(ValidationError):
            make_simple().required_coverage(1.5)

    def test_element_out_of_universe_rejected(self):
        with pytest.raises(ValidationError):
            SetSystem.from_iterables(2, [{0, 5}], [1.0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValidationError):
            SetSystem.from_iterables(2, [{0}], [1.0, 2.0])
        with pytest.raises(ValidationError):
            SetSystem.from_iterables(2, [{0}], [1.0], labels=["a", "b"])

    def test_negative_universe_rejected(self):
        with pytest.raises(ValidationError):
            SetSystem(-1, [])

    def test_from_mapping_is_order_independent(self):
        spec_a = {"x": ({0}, 1.0), "y": ({1}, 2.0)}
        spec_b = {"y": ({1}, 2.0), "x": ({0}, 1.0)}
        sys_a = SetSystem.from_mapping(2, spec_a)
        sys_b = SetSystem.from_mapping(2, spec_b)
        assert [ws.label for ws in sys_a] == [ws.label for ws in sys_b]
        assert [ws.cost for ws in sys_a] == [ws.cost for ws in sys_b]

    def test_no_full_cover_flagged(self):
        system = SetSystem.from_iterables(3, [{0}, {1}], [1.0, 1.0])
        assert not system.has_full_cover

    def test_empty_universe(self):
        system = SetSystem.from_iterables(0, [], [])
        assert system.n_elements == 0
        assert system.required_coverage(1.0) == 0
