"""Unit tests for deterministic tie-breaking."""

from repro.core.greedy_common import argbest, benefit_key, canonical_key, gain_key
from repro.patterns.pattern import ALL, Pattern, values_sort_key


class TestArgbest:
    def test_empty_returns_none(self):
        assert argbest([], key=lambda x: (x,)) is None

    def test_max_by_key(self):
        assert argbest([3, 1, 2], key=lambda x: (x,)) == 3

    def test_first_wins_on_total_tie(self):
        items = [("a", 1), ("b", 1)]
        assert argbest(items, key=lambda item: (item[1],)) == ("a", 1)


class TestBenefitKey:
    def test_larger_benefit_wins(self):
        a = benefit_key(5, 10.0, "x", 0)
        b = benefit_key(4, 1.0, "y", 1)
        assert a > b

    def test_cheaper_cost_breaks_benefit_ties(self):
        cheap = benefit_key(5, 1.0, "x", 0)
        pricey = benefit_key(5, 2.0, "y", 1)
        assert cheap > pricey

    def test_label_breaks_full_ties(self):
        first = benefit_key(5, 1.0, "a", 0)
        second = benefit_key(5, 1.0, "b", 1)
        assert first > second


class TestGainKey:
    def test_higher_gain_wins(self):
        assert gain_key(2.0, 2, 1.0, "x", 0) > gain_key(1.0, 9, 1.0, "y", 1)

    def test_benefit_breaks_gain_ties(self):
        assert gain_key(1.0, 5, 5.0, "x", 0) > gain_key(1.0, 3, 3.0, "y", 1)

    def test_cost_breaks_gain_and_benefit_ties(self):
        assert gain_key(1.0, 4, 4.0, "x", 1) < gain_key(1.0, 4, 3.9, "y", 0)


class TestCanonicalKey:
    def test_plain_labels_use_repr(self):
        assert canonical_key("abc", 3) == ("abc", 3)[0:0] + ("'abc'", 3)

    def test_pattern_labels_use_sort_key(self):
        pattern = Pattern(("A", ALL))
        assert canonical_key(pattern, 2) == (pattern.sort_key(), 2)

    def test_pattern_and_tuple_order_agree(self):
        # The optimized algorithms order raw value tuples; the core
        # algorithms order Pattern labels. Both must sort identically.
        raw = [("A", ALL), (ALL, "B"), ("A", "B"), (ALL, ALL)]
        by_values = sorted(raw, key=values_sort_key)
        by_pattern = [
            p.values for p in sorted(Pattern(v) for v in raw)
        ]
        assert by_values == by_pattern
