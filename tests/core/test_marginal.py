"""Unit tests for the marginal-benefit tracker."""

import pytest

from repro.core.marginal import MarginalTracker
from repro.core.result import Metrics
from repro.core.setsystem import SetSystem


@pytest.fixture
def system() -> SetSystem:
    return SetSystem.from_iterables(
        5,
        benefits=[{0, 1, 2}, {2, 3}, {3, 4}, set(), {0, 1, 2, 3, 4}],
        costs=[3.0, 2.0, 2.0, 1.0, 10.0],
    )


class TestInitialState:
    def test_initial_marginals_equal_benefits(self, system):
        tracker = MarginalTracker(system)
        assert tracker.marginal_size(0) == 3
        assert tracker.marginal_size(1) == 2
        assert tracker.marginal_size(4) == 5

    def test_empty_sets_never_live(self, system):
        tracker = MarginalTracker(system)
        assert 3 not in tracker
        assert tracker.marginal_size(3) == 0

    def test_live_ids_sorted(self, system):
        tracker = MarginalTracker(system)
        assert tracker.live_ids == [0, 1, 2, 4]

    def test_restrict_to(self, system):
        tracker = MarginalTracker(system, restrict_to=[0, 1])
        assert tracker.live_ids == [0, 1]

    def test_initial_gain(self, system):
        tracker = MarginalTracker(system)
        assert tracker.marginal_gain(0) == pytest.approx(1.0)
        assert tracker.marginal_gain(1) == pytest.approx(1.0)


class TestSelection:
    def test_select_returns_newly_covered(self, system):
        tracker = MarginalTracker(system)
        assert tracker.select(0) == 3
        assert tracker.covered == frozenset({0, 1, 2})

    def test_select_updates_intersecting_sets(self, system):
        tracker = MarginalTracker(system)
        tracker.select(0)
        assert tracker.marginal_size(1) == 1  # lost element 2
        assert tracker.marginal_size(2) == 2  # untouched
        assert tracker.marginal_size(4) == 2

    def test_select_evicts_emptied_sets(self, system):
        tracker = MarginalTracker(system)
        tracker.select(4)  # covers everything
        assert len(tracker) == 0
        assert tracker.covered_count == 5

    def test_double_selection_covers_nothing_new(self, system):
        tracker = MarginalTracker(system)
        assert tracker.select(1) == 2
        assert tracker.select(1) == 0

    def test_marginal_benefit_snapshot(self, system):
        tracker = MarginalTracker(system)
        tracker.select(1)  # covers {2, 3}
        assert tracker.marginal_benefit(0) == frozenset({0, 1})
        assert tracker.marginal_benefit(3) == frozenset()

    def test_drop_removes_without_covering(self, system):
        tracker = MarginalTracker(system)
        tracker.drop(0)
        assert 0 not in tracker
        assert tracker.covered_count == 0

    def test_zero_cost_gain(self):
        system = SetSystem.from_iterables(2, [{0, 1}], [0.0])
        tracker = MarginalTracker(system)
        assert tracker.marginal_gain(0) == float("inf")
        tracker.select(0)
        assert tracker.marginal_gain(0) == 0.0


class TestReset:
    def test_reset_restores_marginals(self, system):
        tracker = MarginalTracker(system)
        tracker.select(4)
        tracker.reset()
        assert tracker.marginal_size(0) == 3
        assert tracker.covered_count == 0
        assert tracker.live_ids == [0, 1, 2, 4]

    def test_reset_accumulates_considered(self, system):
        metrics = Metrics()
        tracker = MarginalTracker(system, metrics=metrics)
        considered_once = metrics.sets_considered
        tracker.reset()
        assert metrics.sets_considered == 2 * considered_once


class TestMetrics:
    def test_selection_and_update_counters(self, system):
        metrics = Metrics()
        tracker = MarginalTracker(system, metrics=metrics)
        tracker.select(0)
        assert metrics.selections == 1
        assert metrics.marginal_updates > 0
