"""Unit tests for dominance and budget preprocessing."""

import pytest

from repro.core.exact import solve_exact
from repro.core.lp_bound import lp_lower_bound
from repro.core.preprocess import remove_dominated, restrict_to_budget
from repro.core.setsystem import SetSystem


class TestRemoveDominated:
    def test_subset_with_higher_cost_dropped(self):
        system = SetSystem.from_iterables(
            4,
            benefits=[{0, 1}, {0, 1, 2}, {3}],
            costs=[5.0, 3.0, 1.0],
            labels=["dominated", "dominator", "lone"],
        )
        reduced = remove_dominated(system)
        labels = [ws.label for ws in reduced.sets]
        assert "dominated" not in labels
        assert set(labels) == {"dominator", "lone"}

    def test_equal_sets_keep_one(self):
        system = SetSystem.from_iterables(
            2, [{0, 1}, {0, 1}], [2.0, 2.0], labels=["first", "second"]
        )
        reduced = remove_dominated(system)
        assert reduced.n_sets == 1

    def test_empty_sets_dropped(self):
        system = SetSystem.from_iterables(2, [set(), {0}], [0.0, 1.0])
        reduced = remove_dominated(system)
        assert reduced.n_sets == 1

    def test_cheaper_subset_survives(self):
        # A strictly smaller but cheaper set is NOT dominated.
        system = SetSystem.from_iterables(
            3, [{0}, {0, 1, 2}], [1.0, 10.0]
        )
        assert remove_dominated(system).n_sets == 2

    def test_ids_redensified(self, entities_system):
        reduced = remove_dominated(entities_system)
        assert [ws.set_id for ws in reduced.sets] == list(
            range(reduced.n_sets)
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_optimal_cost_preserved(self, random_system, seed):
        system = random_system(n_elements=10, n_sets=9, seed=seed)
        reduced = remove_dominated(system)
        for k, s_hat in ((2, 0.6), (3, 1.0)):
            original = solve_exact(system, k, s_hat).total_cost
            after = solve_exact(reduced, k, s_hat).total_cost
            assert after == pytest.approx(original)

    def test_lp_bound_preserved_or_tightened(self, random_system):
        system = random_system(n_elements=10, n_sets=9, seed=3)
        reduced = remove_dominated(system)
        original = lp_lower_bound(system, 3, 0.8)
        after = lp_lower_bound(reduced, 3, 0.8)
        assert after >= original - 1e-6

    def test_entities_reduction_nontrivial(self, entities_system):
        # Table II contains dominated patterns (e.g. (A, West) covers a
        # subset of (ALL, West) at equal cost).
        reduced = remove_dominated(entities_system)
        assert reduced.n_sets < entities_system.n_sets


class TestRestrictToBudget:
    def test_filters_expensive(self, entities_system):
        cheap = restrict_to_budget(entities_system, 10.0)
        assert all(ws.cost <= 10.0 for ws in cheap.sets)
        assert cheap.n_sets < entities_system.n_sets

    def test_labels_preserved(self, entities_system):
        cheap = restrict_to_budget(entities_system, 10.0)
        originals = {
            ws.label for ws in entities_system.sets if ws.cost <= 10.0
        }
        assert {ws.label for ws in cheap.sets} == originals

    def test_empty_result_allowed(self, entities_system):
        none = restrict_to_budget(entities_system, 0.0)
        assert none.n_sets == 0
