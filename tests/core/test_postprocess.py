"""Unit tests for redundancy pruning."""

import pytest

from repro.core.cwsc import cwsc
from repro.core.postprocess import prune_redundant
from repro.core.setsystem import SetSystem
from repro.errors import ValidationError


class TestPruneRedundant:
    def test_removes_redundant_set(self):
        # Selecting A then B makes A redundant once C arrives.
        system = SetSystem.from_iterables(
            4,
            benefits=[{0, 1}, {1, 2}, {0, 1, 2, 3}],
            costs=[5.0, 1.0, 6.0],
        )
        from repro.core.result import Metrics, make_result

        result = make_result(
            "manual", [0, 1, 2], [None] * 3, 12.0, 4, 4, True, {}, Metrics()
        )
        pruned = prune_redundant(system, result, s_hat=1.0)
        assert 2 in pruned.set_ids  # the full set stays
        assert pruned.total_cost < result.total_cost
        assert pruned.covered == 4
        assert pruned.algorithm == "manual+prune"
        assert pruned.params["pruned_from"] == 3

    def test_keeps_minimal_solutions_intact(self):
        system = SetSystem.from_iterables(
            4, [{0, 1}, {2, 3}], [1.0, 1.0]
        )
        result = cwsc(system, 2, 1.0)
        pruned = prune_redundant(system, result, 1.0)
        assert sorted(pruned.set_ids) == sorted(result.set_ids)

    def test_partial_coverage_target(self):
        system = SetSystem.from_iterables(
            6,
            benefits=[{0, 1, 2}, {3, 4, 5}, {0, 3}],
            costs=[1.0, 1.0, 0.5],
        )
        from repro.core.result import Metrics, make_result

        result = make_result(
            "manual", [0, 1, 2], [None] * 3, 2.5, 6, 6, True, {}, Metrics()
        )
        # Only half the elements required: one of the big halves plus
        # anything redundant can go.
        pruned = prune_redundant(system, result, s_hat=0.5)
        assert pruned.covered >= 3
        assert pruned.n_sets < 3

    def test_infeasible_input_rejected(self, random_system):
        system = random_system(seed=1)
        result = cwsc(system, 2, 0.3, on_infeasible="full_cover")
        with pytest.raises(ValidationError):
            prune_redundant(system, result, s_hat=1.01)

    @pytest.mark.parametrize("seed", range(5))
    def test_never_worse_and_always_feasible(self, random_system, seed):
        system = random_system(n_elements=15, n_sets=12, seed=seed)
        result = cwsc(system, 4, 0.7, on_infeasible="full_cover")
        pruned = prune_redundant(system, result, 0.7)
        assert pruned.total_cost <= result.total_cost + 1e-9
        assert pruned.covered >= system.required_coverage(0.7)
        assert set(pruned.set_ids) <= set(result.set_ids)
