"""Edge cases across the core algorithms.

Small, degenerate, and adversarial inputs that unit tests of the happy
path miss: single-element universes, k larger than the number of sets,
uniform costs, infinite costs, zero costs, and one-row pattern tables.
"""

import math

import pytest

from repro.core.cmc import cmc
from repro.core.cmc_epsilon import cmc_epsilon
from repro.core.cwsc import cwsc
from repro.core.exact import solve_exact
from repro.core.setsystem import SetSystem
from repro.patterns.optimized_cmc import optimized_cmc
from repro.patterns.optimized_cwsc import optimized_cwsc
from repro.patterns.table import PatternTable


class TestDegenerateUniverses:
    def test_single_element(self):
        system = SetSystem.from_iterables(1, [{0}], [2.0])
        for solver in (cwsc, cmc):
            result = solver(system, 1, 1.0)
            assert result.feasible
        assert solve_exact(system, 1, 1.0).total_cost == 2.0

    def test_k_exceeds_set_count(self):
        system = SetSystem.from_iterables(
            4, [{0, 1}, {2, 3}], [1.0, 1.0]
        )
        result = cwsc(system, k=10, s_hat=1.0)
        assert result.feasible
        assert result.n_sets == 2

    def test_single_set_system(self):
        system = SetSystem.from_iterables(5, [set(range(5))], [3.0])
        assert cwsc(system, 3, 0.8).total_cost == 3.0
        assert cmc(system, 3, 0.8).total_cost == 3.0

    def test_tiny_coverage_fraction(self, random_system):
        system = random_system(seed=1)
        result = cwsc(system, 2, 1e-9)
        # ceil(1e-9 * 12) = 1 element required.
        assert result.covered >= 1


class TestDegenerateCosts:
    def test_all_costs_equal(self):
        # With uniform costs CWSC degenerates to max-benefit selection.
        system = SetSystem.from_iterables(
            6,
            benefits=[{0, 1, 2, 3}, {3, 4}, {5}, set(range(6))],
            costs=[1.0, 1.0, 1.0, 1.0],
        )
        result = cwsc(system, 1, 1.0)
        assert list(result.set_ids) == [3]

    def test_all_costs_zero(self):
        system = SetSystem.from_iterables(
            4, [{0, 1}, {2, 3}, {0, 1, 2, 3}], [0.0, 0.0, 0.0]
        )
        for solver in (cwsc, cmc):
            result = solver(system, 2, 1.0)
            assert result.feasible
            assert result.total_cost == 0.0

    def test_only_infinite_alternatives(self):
        system = SetSystem.from_iterables(
            3,
            benefits=[{0, 1, 2}, {0, 1, 2}],
            costs=[math.inf, 7.0],
        )
        result = cwsc(system, 1, 1.0)
        assert result.total_cost == 7.0
        # CMC excludes infinite costs from every budget level too.
        result = cmc(system, 1, 1.0)
        assert result.total_cost == 7.0

    def test_mixed_zero_and_positive_costs_budget_schedule(self):
        # k cheapest sum to zero -> the schedule must still make progress.
        system = SetSystem.from_iterables(
            4,
            benefits=[{0}, {1}, {0, 1, 2, 3}],
            costs=[0.0, 0.0, 8.0],
        )
        result = cmc(system, 2, 1.0)
        assert result.feasible


class TestDegenerateTables:
    def test_single_row_table(self):
        table = PatternTable(("a", "b"), [("x", "y")], measure=[5.0])
        for solver in (optimized_cwsc, optimized_cmc):
            result = solver(table, 1, 1.0)
            assert result.feasible
            assert result.covered == 1

    def test_single_attribute_table(self):
        table = PatternTable(
            ("a",), [("x",), ("y",), ("x",)], measure=[1.0, 2.0, 3.0]
        )
        result = optimized_cwsc(table, 2, 1.0)
        assert result.feasible
        assert result.covered == 3

    def test_all_rows_identical(self):
        table = PatternTable(
            ("a", "b"), [("x", "y")] * 5, measure=[2.0] * 5
        )
        result = optimized_cwsc(table, 1, 1.0)
        assert result.covered == 5
        # Most specific and most general patterns tie on everything;
        # the deterministic tie-break favors wildcards-first sort keys.
        assert result.n_sets == 1

    def test_epsilon_variant_on_tiny_table(self):
        table = PatternTable(
            ("a",), [("x",), ("y",)], measure=[1.0, 2.0]
        )
        result = optimized_cmc(table, 1, 1.0, eps=0.5)
        assert result.feasible


class TestBoundaryFractions:
    @pytest.mark.parametrize("s_hat", [0.0, 1.0])
    def test_extreme_fractions_everywhere(self, random_system, s_hat):
        system = random_system(seed=3)
        for solver in (cwsc, cmc):
            result = solver(system, 2, s_hat)
            assert result.feasible
        result = cmc_epsilon(system, 2, s_hat, eps=1.0)
        assert result.feasible

    def test_fraction_requiring_rounding(self):
        # 7 elements at s = 0.5 -> must cover ceil(3.5) = 4.
        system = SetSystem.from_iterables(
            7,
            benefits=[{0, 1, 2}, {3, 4, 5}, {6}, set(range(7))],
            costs=[1.0, 1.0, 1.0, 10.0],
        )
        result = cwsc(system, 2, 0.5)
        assert result.covered >= 4
