"""Unit tests for the (1+eps)k and generalized CMC variants."""

import math

import pytest

from repro.core.cmc import cmc
from repro.core.cmc_epsilon import cmc_epsilon, cmc_generalized
from repro.core.guarantees import guaranteed_coverage
from repro.errors import ValidationError


class TestEpsilonVariant:
    def test_size_within_1_plus_eps_k(self, random_system):
        for seed in range(8):
            system = random_system(n_elements=24, n_sets=18, seed=seed)
            for k, eps in ((2, 1.0), (4, 0.5), (6, 2.0)):
                result = cmc_epsilon(system, k=k, s_hat=0.8, eps=eps)
                assert result.n_sets <= math.floor((1 + eps) * k + 1e-9)

    def test_coverage_guarantee(self, random_system):
        for seed in range(8):
            system = random_system(n_elements=24, n_sets=18, seed=seed)
            result = cmc_epsilon(system, k=3, s_hat=0.6, eps=1.0)
            assert result.covered >= guaranteed_coverage(0.6, 24) - 1e-9

    def test_smaller_eps_not_larger_solution(self, random_system):
        system = random_system(n_elements=30, n_sets=25, seed=5)
        tight = cmc_epsilon(system, k=6, s_hat=0.9, eps=0.25)
        loose = cmc_epsilon(system, k=6, s_hat=0.9, eps=2.0)
        assert tight.n_sets <= math.floor(1.25 * 6 + 1e-9)
        assert loose.n_sets <= math.floor(3.0 * 6 + 1e-9)

    def test_eps_validation(self, random_system):
        with pytest.raises(ValidationError):
            cmc_epsilon(random_system(), k=2, s_hat=0.5, eps=0.0)

    def test_worked_example_feasible(self, entities_system):
        result = cmc_epsilon(entities_system, k=2, s_hat=0.9, eps=1.0)
        assert result.feasible


class TestGeneralizedVariant:
    def test_l1_behaves_like_standard(self, random_system):
        # Same level boundaries as the standard scheme; selections may
        # still differ on the bridging quota, so compare guarantees.
        system = random_system(n_elements=20, n_sets=16, seed=2)
        standard = cmc(system, k=4, s_hat=0.7)
        general = cmc_generalized(system, k=4, s_hat=0.7, l=1.0)
        assert general.feasible and standard.feasible
        assert general.covered >= guaranteed_coverage(0.7, 20) - 1e-9

    def test_larger_l_coarser_levels(self, random_system):
        system = random_system(n_elements=20, n_sets=16, seed=3)
        result = cmc_generalized(system, k=8, s_hat=0.8, l=3.0)
        assert result.feasible
        # k (1 + (1+l)^2 / l) with l=3 allows ~6.3k sets.
        assert result.n_sets <= math.ceil(8 * (1 + 16 / 3))

    def test_l_validation(self, random_system):
        with pytest.raises(ValidationError):
            cmc_generalized(random_system(), k=2, s_hat=0.5, l=0.0)


class TestParams:
    def test_algorithm_names(self, random_system):
        system = random_system(seed=0)
        assert cmc_epsilon(system, 2, 0.5).algorithm == "cmc_epsilon"
        assert cmc_generalized(system, 2, 0.5).algorithm == "cmc_generalized"

    def test_params_recorded(self, random_system):
        result = cmc_epsilon(random_system(seed=0), 2, 0.5, b=0.5, eps=2.0)
        assert result.params["b"] == 0.5
        assert result.params["eps"] == 2.0
        assert result.params["variant"] == "epsilon"
