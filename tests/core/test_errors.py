"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    DeadlineExceeded,
    InfeasibleError,
    PatternSpaceError,
    ReproError,
    TransientSolverError,
    ValidationError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in (
            InfeasibleError,
            PatternSpaceError,
            ValidationError,
            DeadlineExceeded,
            TransientSolverError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_validation_error_is_value_error(self):
        # Callers using plain `except ValueError` still catch bad inputs.
        assert issubclass(ValidationError, ValueError)

    def test_infeasible_carries_partial(self):
        error = InfeasibleError("nope", partial="the-partial")
        assert error.partial == "the-partial"
        assert "nope" in str(error)

    def test_infeasible_partial_defaults_to_none(self):
        assert InfeasibleError("nope").partial is None

    def test_single_except_catches_everything(self):
        caught = []
        for exc_type in (InfeasibleError, PatternSpaceError, ValidationError):
            try:
                raise exc_type("boom")
            except ReproError as error:
                caught.append(error)
        assert len(caught) == 3

    def test_deadline_carries_partial(self):
        error = DeadlineExceeded("too slow", partial="the-partial")
        assert error.partial == "the-partial"
        assert DeadlineExceeded("too slow").partial is None


class TestExitCodes:
    """The documented CLI exit-code contract (see repro.cli docstring)."""

    def test_distinct_nonzero_codes(self):
        classes = (
            ReproError,
            ValidationError,
            InfeasibleError,
            DeadlineExceeded,
            PatternSpaceError,
            TransientSolverError,
        )
        codes = [exc_type.exit_code for exc_type in classes]
        assert all(code > 0 for code in codes)
        assert len(set(codes)) == len(codes)

    def test_stable_mapping(self):
        assert ReproError.exit_code == 1
        assert ValidationError.exit_code == 2
        assert InfeasibleError.exit_code == 3
        assert DeadlineExceeded.exit_code == 4
        assert PatternSpaceError.exit_code == 5
        assert TransientSolverError.exit_code == 6

    def test_instances_inherit_their_class_code(self):
        assert InfeasibleError("x").exit_code == 3
        assert DeadlineExceeded("x").exit_code == 4
