"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    InfeasibleError,
    PatternSpaceError,
    ReproError,
    ValidationError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in (InfeasibleError, PatternSpaceError, ValidationError):
            assert issubclass(exc_type, ReproError)

    def test_validation_error_is_value_error(self):
        # Callers using plain `except ValueError` still catch bad inputs.
        assert issubclass(ValidationError, ValueError)

    def test_infeasible_carries_partial(self):
        error = InfeasibleError("nope", partial="the-partial")
        assert error.partial == "the-partial"
        assert "nope" in str(error)

    def test_infeasible_partial_defaults_to_none(self):
        assert InfeasibleError("nope").partial is None

    def test_single_except_catches_everything(self):
        caught = []
        for exc_type in (InfeasibleError, PatternSpaceError, ValidationError):
            try:
                raise exc_type("boom")
            except ReproError as error:
                caught.append(error)
        assert len(caught) == 3
