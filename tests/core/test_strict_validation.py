"""Opt-in strict SetSystem validation (permissive defaults unchanged)."""

from __future__ import annotations

import pytest

from repro.core.setsystem import SetSystem
from repro.errors import ValidationError


def _good_args():
    return 3, [{0, 1}, {2}, {0, 1, 2}], [1.0, 2.0, 9.0]


class TestStrictRejects:
    def test_empty_universe(self):
        with pytest.raises(ValidationError, match="empty element universe"):
            SetSystem.from_iterables(0, [], [], strict=True)

    def test_no_sets(self):
        with pytest.raises(ValidationError, match="no candidate sets"):
            SetSystem.from_iterables(4, [], [], strict=True)

    def test_infinite_cost(self):
        with pytest.raises(ValidationError, match="non-finite cost"):
            SetSystem.from_iterables(
                2, [{0}, {0, 1}], [1.0, float("inf")], strict=True
            )

    def test_constructor_strict_flag(self):
        n, benefits, costs = _good_args()
        system = SetSystem.from_iterables(n, benefits, costs)
        with pytest.raises(ValidationError):
            SetSystem(0, [], strict=True)
        assert SetSystem(n, list(system.sets), strict=True).n_elements == n


class TestStrictAccepts:
    def test_clean_system_passes_and_chains(self):
        system = SetSystem.from_iterables(*_good_args(), strict=True)
        assert system.validate_strict() is system


class TestPermissiveDefaultUnchanged:
    """The research workflows depend on these staying legal by default."""

    def test_empty_universe_still_legal(self):
        system = SetSystem.from_iterables(0, [], [])
        assert system.n_elements == 0

    def test_infinite_cost_still_legal(self):
        system = SetSystem.from_iterables(1, [{0}], [float("inf")])
        assert system[0].cost == float("inf")

    def test_nan_cost_rejected_even_permissively(self):
        with pytest.raises(ValidationError):
            SetSystem.from_iterables(1, [{0}], [float("nan")])

    def test_negative_cost_rejected_even_permissively(self):
        with pytest.raises(ValidationError):
            SetSystem.from_iterables(1, [{0}], [-1.0])
