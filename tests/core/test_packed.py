"""Unit tests for the packed columnar kernel (:mod:`repro.core.packed`)
and the three-way backend registry in :mod:`repro.core.marginal`."""

import random

import pytest

from repro.core.bitset import mask_table
from repro.core.marginal import (
    AUTO_BITSET_MIN_CELLS,
    AUTO_PACKED_MIN_CELLS,
    BACKEND_ENV_VAR,
    make_tracker,
    resolve_backend,
)
from repro.core.packed import HAVE_NUMPY
from repro.core.result import Metrics
from repro.core.setsystem import SetSystem
from repro.errors import ValidationError

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="packed backend requires numpy >= 2.0"
)

if HAVE_NUMPY:
    import numpy as np

    from repro.core.budget import standard_levels
    from repro.core.packed import (
        PackedLayout,
        PackedMarginalTracker,
        assign_levels,
        cached_layout,
        packed_layout,
        shard_layout,
    )


def random_system(rng: random.Random, n_elements: int = 130) -> SetSystem:
    benefits = [
        {rng.randrange(n_elements) for _ in range(rng.randrange(1, 25))}
        for _ in range(rng.randrange(3, 30))
    ]
    benefits.append(set())  # an always-dead set
    costs = [round(rng.uniform(0.5, 9.0), 2) for _ in benefits]
    return SetSystem.from_iterables(n_elements, benefits, costs)


@pytest.fixture
def system() -> SetSystem:
    return SetSystem.from_iterables(
        130,
        benefits=[
            {0, 1, 2, 64, 65},
            {2, 3, 127, 128, 129},
            set(range(60, 70)),
            set(),
            set(range(130)),
        ],
        costs=[3.0, 2.0, 2.0, 1.0, 10.0],
    )


class TestPackedLayout:
    def test_coverage_matches_mask_table(self, system):
        layout = PackedLayout.build(system)
        table = mask_table(system)
        for ids in ([], [0], [0, 1], [0, 1, 2, 4], [3]):
            assert layout.coverage_of(ids) == table.coverage_of(ids)

    def test_elements_roundtrip(self, system):
        layout = PackedLayout.build(system)
        for ws in system.sets:
            got = set(int(e) for e in layout.elements_of(ws.set_id))
            assert got == set(ws.benefit)

    def test_dense_and_csr_forms_agree(self, system):
        dense = PackedLayout.build(system, dense_byte_cap=1 << 30)
        csr = PackedLayout.build(system, dense_byte_cap=0)
        assert dense.dense is not None and csr.dense is None
        for ws in system.sets:
            assert np.array_equal(
                dense.row_words(ws.set_id), csr.row_words(ws.set_id)
            )
        assert np.array_equal(dense.sizes, csr.sizes)

    def test_dense_and_csr_trackers_agree_on_random_systems(self):
        rng = random.Random(20)
        for _ in range(15):
            system = random_system(rng)
            dense = PackedMarginalTracker(
                system, layout=PackedLayout.build(system, 1 << 30)
            )
            csr = PackedMarginalTracker(
                system, layout=PackedLayout.build(system, 0)
            )
            for _ in range(4):
                live = dense.live_ids
                if not live:
                    break
                set_id = rng.choice(live)
                assert dense.select(set_id) == csr.select(set_id)
                assert dense.live_items() == csr.live_items()

    def test_layout_cache_reused_and_lazy(self, system):
        assert cached_layout(system) is None  # no build on probe
        layout = packed_layout(system)
        assert packed_layout(system) is layout
        assert cached_layout(system) is layout


class TestShardLayout:
    def test_shards_partition_sizes(self, system):
        full = packed_layout(system)
        parts = [shard_layout(system, 0, 64), shard_layout(system, 64, 130)]
        summed = sum(part.sizes for part in parts)
        assert np.array_equal(summed, full.sizes)

    def test_word_interior_boundary_masks(self, system):
        # A boundary inside a word must mask, not duplicate, elements.
        lo_part = shard_layout(system, 0, 100)
        hi_part = shard_layout(system, 100, 130)
        full = packed_layout(system)
        assert np.array_equal(
            lo_part.sizes + hi_part.sizes, full.sizes
        )
        for ws in system.sets:
            lo_els = {int(e) for e in lo_part.elements_of(ws.set_id)}
            assert lo_els == {e for e in ws.benefit if e < 100}

    def test_empty_shard_is_legal_and_exhausted(self, system):
        empty = shard_layout(system, 130, 130)
        assert int(empty.sizes.sum()) == 0
        tracker = PackedMarginalTracker(system, layout=empty)
        assert tracker.live_ids == []

    def test_shard_with_no_owning_sets(self):
        # Elements 200..255 appear in no set: that shard starts fully
        # dead but must still answer selects with zero deltas.
        system = SetSystem.from_iterables(
            256, benefits=[{0, 1}, {2}], costs=[1.0, 1.0]
        )
        shard = shard_layout(system, 192, 256)
        tracker = PackedMarginalTracker(system, layout=shard)
        assert tracker.live_ids == []
        newly, ids, overlaps = tracker.select_with_deltas(0)
        assert newly == 0 and ids == [] and overlaps == []


class TestAssignLevels:
    def test_matches_level_of_reference(self):
        rng = random.Random(7)
        scheme = standard_levels(budget=64.0, k=8)
        costs = np.array(
            [rng.uniform(0.01, 80.0) for _ in range(300)] + [64.0, 0.01]
        )
        levels = assign_levels(costs, scheme)
        for cost, level in zip(costs, levels):
            expected = scheme.level_of(float(cost))
            assert level == (-1 if expected is None else expected)


class TestSelectWithDeltas:
    def test_deltas_mirror_tracker_state(self, system):
        tracker = PackedMarginalTracker(system)
        before = dict(tracker.live_items())
        newly, ids, overlaps = tracker.select_with_deltas(0)
        assert newly == 5
        after = dict(tracker.live_items())
        for set_id, overlap in zip(ids, overlaps):
            assert before[set_id] - overlap == after.get(set_id, 0)


class TestResolveBackend:
    def _sized_system(self, cells_target: int) -> SetSystem:
        # n_elements * n_sets >= cells_target with tiny actual content.
        n_sets = cells_target // 1024 + 1
        return SetSystem.from_iterables(
            1024,
            benefits=[{i % 1024} for i in range(n_sets)],
            costs=[1.0] * n_sets,
        )

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "set")
        system = self._sized_system(1)
        assert resolve_backend(system, "packed") == "packed"

    def test_env_wins_over_auto(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "packed")
        system = self._sized_system(1)  # auto would say "set"
        assert resolve_backend(system) == "packed"
        tracker = make_tracker(system, metrics=Metrics())
        assert tracker.backend_name == "packed"

    def test_auto_small_picks_set(self):
        system = SetSystem.from_iterables(
            4, benefits=[{0, 1}, {2, 3}], costs=[1.0, 1.0]
        )
        assert resolve_backend(system) == "set"

    def test_auto_mid_picks_bitset(self):
        system = self._sized_system(AUTO_BITSET_MIN_CELLS)
        assert system.n_elements * system.n_sets < AUTO_PACKED_MIN_CELLS
        assert resolve_backend(system) == "bitset"

    def test_auto_large_picks_packed(self):
        system = self._sized_system(AUTO_PACKED_MIN_CELLS)
        assert resolve_backend(system) == "packed"

    def test_auto_large_respects_memory_budget(self, monkeypatch):
        import repro.core.marginal as marginal

        system = self._sized_system(AUTO_PACKED_MIN_CELLS)
        monkeypatch.setattr(
            marginal, "_available_memory_bytes", lambda: 1024
        )
        assert resolve_backend(system) == "bitset"

    def test_unknown_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "gpu")
        with pytest.raises(ValidationError):
            resolve_backend(self._sized_system(1))

    def test_packed_without_numpy_is_an_error(self, monkeypatch):
        import repro.core.packed as packed

        monkeypatch.setattr(packed, "HAVE_NUMPY", False)
        with pytest.raises(ValidationError):
            resolve_backend(self._sized_system(1), "packed")
