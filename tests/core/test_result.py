"""Unit tests for results and metrics."""

import pytest

from repro.core.result import METRIC_FIELDS, CoverResult, Metrics, make_result


class TestMetrics:
    def test_merge_sums_counters(self):
        a = Metrics(sets_considered=3, marginal_updates=1, selections=2,
                    budget_rounds=2, runtime_seconds=0.5)
        b = Metrics(sets_considered=4, marginal_updates=2, selections=1,
                    budget_rounds=1, runtime_seconds=0.25)
        merged = a.merge(b)
        assert merged.sets_considered == 7
        assert merged.marginal_updates == 3
        assert merged.selections == 3
        assert merged.budget_rounds == 3
        assert merged.runtime_seconds == pytest.approx(0.75)


class TestMetricsSchema:
    """The dict form is the wire format shared by the result payload and
    the pool IPC frames — one schema, one (de)serializer."""

    def test_round_trip(self):
        original = Metrics(sets_considered=7, marginal_updates=11,
                           selections=3, budget_rounds=2,
                           runtime_seconds=0.125)
        assert Metrics.from_dict(original.to_dict()) == original

    def test_to_dict_covers_exactly_the_schema(self):
        assert set(Metrics().to_dict()) == {name for name, _, _ in
                                            METRIC_FIELDS}

    def test_from_dict_fills_missing_keys_with_defaults(self):
        metrics = Metrics.from_dict({"selections": 4})
        assert metrics.selections == 4
        assert metrics.sets_considered == 0
        assert metrics.budget_rounds == 1  # schema default, not zero
        assert metrics.runtime_seconds == 0.0

    def test_from_dict_ignores_unknown_keys(self):
        metrics = Metrics.from_dict({"selections": 1, "novel_counter": 9})
        assert metrics.selections == 1
        assert not hasattr(metrics, "novel_counter")

    def test_from_dict_coerces_types(self):
        metrics = Metrics.from_dict(
            {"sets_considered": 3.0, "runtime_seconds": 1}
        )
        assert metrics.sets_considered == 3
        assert isinstance(metrics.sets_considered, int)
        assert metrics.runtime_seconds == 1.0
        assert isinstance(metrics.runtime_seconds, float)


class TestCoverResult:
    def make(self, covered=3, n=10, feasible=True) -> CoverResult:
        return make_result(
            algorithm="test",
            chosen=[2, 0],
            labels=["b", "a"],
            total_cost=4.5,
            covered=covered,
            n_elements=n,
            feasible=feasible,
            params={"k": 2},
            metrics=Metrics(),
        )

    def test_basic_fields(self):
        result = self.make()
        assert result.n_sets == 2
        assert result.set_ids == (2, 0)
        assert result.labels == ("b", "a")
        assert result.params == {"k": 2}

    def test_coverage_fraction(self):
        assert self.make(covered=5, n=10).coverage_fraction == 0.5

    def test_empty_universe_fraction(self):
        assert self.make(covered=0, n=0).coverage_fraction == 0.0

    def test_summary_mentions_key_facts(self):
        summary = self.make().summary()
        assert "test" in summary
        assert "2 sets" in summary
        assert "4.5" in summary

    def test_infeasible_summary(self):
        assert "feasible=False" in self.make(feasible=False).summary()

    def test_to_dict_round_trips_through_json(self):
        import json

        payload = json.loads(json.dumps(self.make().to_dict()))
        assert payload["algorithm"] == "test"
        assert payload["set_ids"] == [2, 0]
        assert payload["labels"] == ["'b'", "'a'"]
        assert payload["total_cost"] == 4.5
        assert payload["coverage_fraction"] == 0.3
        assert payload["params"] == {"k": 2}
        assert payload["metrics"]["sets_considered"] == 0

    def test_to_dict_drops_non_scalar_params(self):
        result = self.make()
        result.params["weird"] = object()
        payload = result.to_dict()
        assert "weird" not in payload["params"]
        assert payload["params"]["k"] == 2

    def test_to_dict_keeps_flat_scalar_dicts(self):
        result = self.make()
        result.params["sharding"] = {"shards": 3, "workers": 2}
        result.params["nested"] = {"deep": {"too": 1}}
        result.params["odd_keys"] = {7: "seven"}
        payload = result.to_dict()
        assert payload["params"]["sharding"] == {"shards": 3, "workers": 2}
        assert "nested" not in payload["params"]
        assert "odd_keys" not in payload["params"]
