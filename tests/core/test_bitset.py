"""Unit tests for the packed-bitset coverage kernel."""

import pytest

from repro.core.bitset import (
    Bitset,
    BitsetUniverse,
    iter_bits,
    mask_table,
    owners_index,
    pack_elements,
)
from repro.core.marginal import (
    AUTO_BITSET_MIN_CELLS,
    BACKEND_ENV_VAR,
    BitsetMarginalTracker,
    MarginalTracker,
    make_tracker,
    resolve_backend,
)
from repro.core.result import Metrics
from repro.core.setsystem import SetSystem
from repro.errors import ValidationError


@pytest.fixture
def system() -> SetSystem:
    return SetSystem.from_iterables(
        5,
        benefits=[{0, 1, 2}, {2, 3}, {3, 4}, set(), {0, 1, 2, 3, 4}],
        costs=[3.0, 2.0, 2.0, 1.0, 10.0],
    )


class TestPacking:
    def test_pack_round_trips(self):
        mask = pack_elements(10, [0, 3, 9])
        assert mask == (1 << 0) | (1 << 3) | (1 << 9)
        assert list(iter_bits(mask)) == [0, 3, 9]

    def test_pack_empty(self):
        assert pack_elements(8, []) == 0
        assert pack_elements(0, []) == 0

    def test_pack_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            pack_elements(4, [4])
        with pytest.raises(ValidationError):
            pack_elements(4, [-1])

    def test_iter_bits_ascending(self):
        assert list(iter_bits(0)) == []
        assert list(iter_bits(0b1011)) == [0, 1, 3]


class TestBitsetUniverse:
    def test_rejects_negative_universe(self):
        with pytest.raises(ValidationError):
            BitsetUniverse(-1)

    def test_pack_unpack(self):
        universe = BitsetUniverse(6)
        assert universe.unpack(universe.pack({1, 4})) == frozenset({1, 4})

    def test_from_mask_validates(self):
        universe = BitsetUniverse(3)
        assert universe.from_mask(0b101).to_frozenset() == frozenset({0, 2})
        with pytest.raises(ValidationError):
            universe.from_mask(1 << 3)


class TestBitsetOps:
    def setup_method(self):
        self.universe = BitsetUniverse(8)
        self.a = self.universe.bitset({0, 1, 2})
        self.b = self.universe.bitset({2, 3})

    def test_set_algebra(self):
        assert (self.a & self.b).to_frozenset() == frozenset({2})
        assert (self.a | self.b).to_frozenset() == frozenset({0, 1, 2, 3})
        assert (self.a - self.b).to_frozenset() == frozenset({0, 1})

    def test_len_bool_contains_iter(self):
        assert len(self.a) == 3
        assert bool(self.a) and not bool(self.universe.bitset())
        assert 1 in self.a and 3 not in self.a
        assert list(self.a) == [0, 1, 2]

    def test_subset_and_disjoint(self):
        whole = self.universe.bitset({0, 1, 2, 3})
        assert self.a.issubset(whole) and self.a <= whole
        assert not whole.issubset(self.a)
        assert self.a.isdisjoint(self.universe.bitset({5, 6}))
        assert not self.a.isdisjoint(self.b)

    def test_eq_and_hash(self):
        twin = self.universe.bitset({2, 1, 0})
        assert self.a == twin and hash(self.a) == hash(twin)
        assert self.a != self.b

    def test_cross_universe_rejected(self):
        other = BitsetUniverse(9).bitset({1})
        with pytest.raises(ValidationError):
            _ = self.a & other
        with pytest.raises(TypeError):
            _ = self.a | {1}


class TestMaskTable:
    def test_masks_match_benefits(self, system):
        table = mask_table(system)
        for ws in system.sets:
            assert table.universe.unpack(table.masks[ws.set_id]) == ws.benefit
            assert table.sizes[ws.set_id] == ws.size

    def test_cached_per_system(self, system):
        assert mask_table(system) is mask_table(system)

    def test_coverage_of(self, system):
        table = mask_table(system)
        assert table.coverage_of([0, 1]) == 4
        assert table.coverage_of([]) == 0

    def test_full_union(self, system):
        table = mask_table(system)
        assert table.full_union() == table.union_mask(range(system.n_sets))
        assert table.full_union() is table.full_union()

    def test_owners_index(self, system):
        owners = owners_index(system)
        assert owners[2] == (0, 1, 4)
        assert owners[4] == (2, 4)
        assert owners_index(system) is owners


class TestBitsetTracker:
    def test_mirrors_set_tracker(self, system):
        bitset_tracker = BitsetMarginalTracker(system)
        set_tracker = MarginalTracker(system)
        assert bitset_tracker.live_ids == set_tracker.live_ids
        assert bitset_tracker.select(1) == set_tracker.select(1)
        assert bitset_tracker.covered == set_tracker.covered
        assert dict(bitset_tracker.live_items()) == dict(
            set_tracker.live_items()
        )
        assert bitset_tracker.marginal_benefit(0) == frozenset({0, 1})

    def test_select_evicted_returns_zero(self, system):
        tracker = BitsetMarginalTracker(system)
        tracker.select(4)  # covers everything; all others evicted
        assert len(tracker) == 0
        assert tracker.select(0) == 0
        assert tracker.covered_count == 5

    def test_exhaustion_counts_match_set_backend(self, system):
        """Selecting the full-cover set exercises the exhaustion fast
        path; its update total must equal the per-element walk's."""
        bitset_metrics, set_metrics = Metrics(), Metrics()
        BitsetMarginalTracker(system, metrics=bitset_metrics).select(4)
        MarginalTracker(system, metrics=set_metrics).select(4)
        assert (
            bitset_metrics.marginal_updates == set_metrics.marginal_updates
        )

    def test_restrict_to(self, system):
        tracker = BitsetMarginalTracker(system, restrict_to=[0, 1, 3])
        assert tracker.live_ids == [0, 1]

    def test_drop_and_reset(self, system):
        tracker = BitsetMarginalTracker(system)
        tracker.drop(0)
        assert 0 not in tracker
        tracker.reset()
        assert 0 in tracker and tracker.covered_count == 0

    def test_covered_mask_property(self, system):
        tracker = BitsetMarginalTracker(system)
        tracker.select(1)
        assert tracker.covered_mask == pack_elements(5, {2, 3})


class TestBackendResolution:
    def test_explicit_argument_wins(self, system, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "bitset")
        assert resolve_backend(system, "set") == "set"

    def test_env_overrides_auto(self, system, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "bitset")
        assert resolve_backend(system) == "bitset"

    def test_auto_by_instance_size(self, system, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert system.n_elements * system.n_sets < AUTO_BITSET_MIN_CELLS
        assert resolve_backend(system) == "set"
        big = SetSystem.from_iterables(
            AUTO_BITSET_MIN_CELLS, benefits=[{0}], costs=[1.0]
        )
        assert resolve_backend(big) == "bitset"

    def test_unknown_backend_rejected(self, system, monkeypatch):
        with pytest.raises(ValidationError):
            resolve_backend(system, "quantum")
        monkeypatch.setenv(BACKEND_ENV_VAR, "quantum")
        with pytest.raises(ValidationError):
            resolve_backend(system)

    def test_make_tracker_types(self, system, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert isinstance(
            make_tracker(system, backend="set"), MarginalTracker
        )
        assert isinstance(
            make_tracker(system, backend="bitset"), BitsetMarginalTracker
        )
