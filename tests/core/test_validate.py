"""Unit tests for independent result verification."""

import pytest

from repro.core.cmc import COVERAGE_DISCOUNT, cmc
from repro.core.cwsc import cwsc
from repro.core.guarantees import max_sets_standard
from repro.core.validate import verify_result


class TestCleanResults:
    def test_cwsc_result_verifies(self, random_system):
        for seed in range(5):
            system = random_system(seed=seed)
            result = cwsc(system, 3, 0.6, on_infeasible="full_cover")
            assert verify_result(system, result, k=3, s_hat=0.6) == []

    def test_cmc_result_verifies_with_relaxed_bounds(self, random_system):
        system = random_system(seed=1)
        result = cmc(system, 2, 0.8)
        violations = verify_result(
            system,
            result,
            k=max_sets_standard(2),
            s_hat=COVERAGE_DISCOUNT * 0.8,
        )
        assert violations == []


class TestDetection:
    @pytest.fixture
    def result(self, random_system):
        system = random_system(seed=2)
        return system, cwsc(system, 3, 0.6, on_infeasible="full_cover")

    def test_detects_wrong_cost(self, result):
        system, outcome = result
        outcome.total_cost += 5.0
        assert any(
            "cost" in violation
            for violation in verify_result(system, outcome)
        )

    def test_detects_wrong_coverage(self, result):
        system, outcome = result
        outcome.covered += 1
        assert any(
            "coverage" in violation
            for violation in verify_result(system, outcome)
        )

    def test_detects_size_violation(self, result):
        system, outcome = result
        assert any(
            "exceed" in violation
            for violation in verify_result(system, outcome, k=0)
        )

    def test_detects_duplicates(self, result):
        system, outcome = result
        if not outcome.set_ids:
            pytest.skip("empty solution")
        outcome.set_ids = outcome.set_ids + (outcome.set_ids[0],)
        outcome.labels = outcome.labels + (outcome.labels[0],)
        assert any(
            "duplicate" in violation
            for violation in verify_result(system, outcome)
        )

    def test_detects_foreign_set_id(self, result):
        system, outcome = result
        outcome.set_ids = outcome.set_ids + (10_000,)
        assert any(
            "outside" in violation
            for violation in verify_result(system, outcome)
        )

    def test_detects_underachieved_coverage_claim(self, result):
        system, outcome = result
        violations = verify_result(system, outcome, s_hat=1.01)
        if outcome.covered < system.n_elements * 1.01:
            assert violations
