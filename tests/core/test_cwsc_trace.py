"""The CWSC iteration trace and its Fig. 2 invariants."""

import pytest

from repro.core.cwsc import cwsc


class TestTraceInvariants:
    @pytest.mark.parametrize("seed", range(8))
    def test_every_pick_clears_its_threshold(self, random_system, seed):
        system = random_system(n_elements=20, n_sets=15, seed=seed)
        result = cwsc(system, 4, 0.8, on_infeasible="full_cover")
        for step in result.params.get("trace", []):
            # Fig. 2 line 6: |MBen(q)| >= rem / i.
            assert step["marginal_covered"] >= step["threshold"] - 1e-9

    @pytest.mark.parametrize("seed", range(8))
    def test_rem_decreases_by_marginals(self, random_system, seed):
        system = random_system(n_elements=20, n_sets=15, seed=seed)
        result = cwsc(system, 4, 0.8, on_infeasible="full_cover")
        trace = result.params.get("trace", [])
        for earlier, later in zip(trace, trace[1:]):
            expected = earlier["rem_before"] - earlier["marginal_covered"]
            assert later["rem_before"] == pytest.approx(expected)
            assert later["picks_left"] == earlier["picks_left"] - 1

    def test_trace_matches_solution(self, entities_system):
        result = cwsc(entities_system, 2, 9 / 16)
        trace = result.params["trace"]
        assert [step["set_id"] for step in trace] == list(result.set_ids)
        assert sum(step["marginal_covered"] for step in trace) == (
            result.covered
        )

    def test_paper_walkthrough_thresholds(self, entities_system):
        # First threshold 9/2 = 4.5, second 1/1 = 1 (P16 covered 8 of 9).
        result = cwsc(entities_system, 2, 9 / 16)
        trace = result.params["trace"]
        assert trace[0]["threshold"] == pytest.approx(4.5)
        assert trace[0]["marginal_covered"] == 8
        assert trace[1]["threshold"] == pytest.approx(1.0)

    def test_empty_target_has_empty_trace(self, random_system):
        result = cwsc(random_system(seed=1), 2, 0.0)
        assert result.params["trace"] == []
