"""Unit tests for Cheap Max Coverage (Fig. 1)."""

import math

import pytest

from repro.core.cmc import COVERAGE_DISCOUNT, cmc
from repro.core.exact import solve_exact
from repro.core.guarantees import (
    cost_factor_standard,
    guaranteed_coverage,
    max_sets_standard,
)
from repro.core.setsystem import SetSystem
from repro.errors import InfeasibleError, ValidationError


class TestBasics:
    def test_meets_discounted_coverage(self, random_system):
        for seed in range(10):
            system = random_system(n_elements=20, n_sets=15, seed=seed)
            result = cmc(system, k=3, s_hat=0.7)
            assert result.feasible
            assert result.covered >= guaranteed_coverage(0.7, 20) - 1e-9

    def test_solution_size_within_theorem4(self, random_system):
        for seed in range(10):
            system = random_system(n_elements=20, n_sets=15, seed=seed)
            for k in (1, 2, 4):
                result = cmc(system, k=k, s_hat=0.8)
                assert result.n_sets <= max_sets_standard(k)
                assert result.n_sets <= 5 * k

    def test_cost_within_theorem4_of_optimal(self, random_system):
        # Compare against the exact optimum of the *discounted* target,
        # which is what Theorem 4's C refers to... the theorem compares
        # against an optimum covering s|T| with k sets; CMC covers less
        # but must not cost more than (1+b)(2 log k + 1) times that C.
        for seed in range(6):
            system = random_system(n_elements=14, n_sets=10, seed=seed)
            k, s_hat, b = 3, 0.7, 1.0
            opt = solve_exact(system, k, s_hat)
            result = cmc(system, k=k, s_hat=s_hat, b=b)
            assert result.total_cost <= (
                cost_factor_standard(k, b) * opt.total_cost + 1e-9
            )

    def test_zero_target(self, random_system):
        system = random_system(seed=1)
        result = cmc(system, k=2, s_hat=0.0)
        assert result.feasible
        assert result.n_sets == 0

    def test_budget_rounds_decrease_with_larger_b(self, random_system):
        system = random_system(n_elements=25, n_sets=20, seed=3)
        slow = cmc(system, k=3, s_hat=0.9, b=0.5)
        fast = cmc(system, k=3, s_hat=0.9, b=4.0)
        assert fast.metrics.budget_rounds <= slow.metrics.budget_rounds


class TestLevelQuotas:
    def test_expensive_sets_limited_per_level(self):
        # Eight sets of cost ~B each; level 1 allows only 2 of them for
        # k=2, so CMC must either finish with 2+2 sets or raise budget.
        benefits = [{2 * i, 2 * i + 1} for i in range(8)]
        costs = [4.0] * 8
        benefits.append(set(range(16)))
        costs.append(50.0)
        system = SetSystem.from_iterables(16, benefits, costs)
        result = cmc(system, k=2, s_hat=1.0)
        assert result.feasible
        assert result.n_sets <= max_sets_standard(2)

    def test_worked_example(self, entities_system):
        # Section V-A: k=2, target 9 records, b=1 -> budgets 5, 10, 20;
        # the third round succeeds with 4 patterns covering exactly 9.
        s_hat = (9 / 16) / COVERAGE_DISCOUNT
        result = cmc(entities_system, k=2, s_hat=s_hat, b=1.0)
        assert result.covered == 9
        assert result.metrics.budget_rounds == 3
        assert result.n_sets == 4


class TestInfeasible:
    def test_raises_without_full_cover(self):
        system = SetSystem.from_iterables(10, [{0}, {1}], [1.0, 1.0])
        with pytest.raises(InfeasibleError):
            cmc(system, k=2, s_hat=1.0)

    def test_partial_policy(self):
        system = SetSystem.from_iterables(10, [{0}, {1}], [1.0, 1.0])
        result = cmc(system, k=2, s_hat=1.0, on_infeasible="partial")
        assert not result.feasible
        assert result.covered <= 2

    def test_always_feasible_with_full_cover(self, random_system):
        for seed in range(5):
            system = random_system(seed=seed)  # includes a full cover
            result = cmc(system, k=1, s_hat=1.0)
            assert result.feasible


class TestValidation:
    def test_bad_k(self, random_system):
        with pytest.raises(ValidationError):
            cmc(random_system(), k=0, s_hat=0.5)

    def test_bad_s(self, random_system):
        with pytest.raises(ValidationError):
            cmc(random_system(), k=2, s_hat=-0.1)

    def test_bad_b(self, random_system):
        with pytest.raises(ValidationError):
            cmc(random_system(), k=2, s_hat=0.5, b=0.0)


class TestMetrics:
    def test_considered_sums_over_rounds(self, random_system):
        system = random_system(n_elements=25, n_sets=20, seed=4)
        result = cmc(system, k=2, s_hat=0.9, b=0.5)
        live = sum(1 for ws in system.sets if ws.benefit)
        assert result.metrics.sets_considered == (
            live * result.metrics.budget_rounds
        )

    def test_coverage_discount_value(self):
        assert COVERAGE_DISCOUNT == pytest.approx(1 - 1 / math.e)
