"""Level-quota compliance of CMC selections.

The Theorem 4/5 size bounds rest on never taking more than ``k_i`` sets
from level ``H_i``. The result records the successful budget guess
(``params["final_budget"]``), so the test can rebuild the level scheme and
count the selections per level independently.
"""

import pytest

from repro.core.budget import merged_levels, standard_levels
from repro.core.cmc import cmc
from repro.core.cmc_epsilon import cmc_epsilon
from repro.patterns.optimized_cmc import optimized_cmc


def selections_per_level(result, system_costs, scheme):
    counts = [0] * scheme.n_levels
    for cost in system_costs:
        level = scheme.level_of(cost)
        assert level is not None, "selected an unaffordable set"
        counts[level] += 1
    return counts


class TestStandardQuotas:
    @pytest.mark.parametrize("seed", range(8))
    def test_counts_respect_quotas(self, random_system, seed):
        system = random_system(n_elements=25, n_sets=20, seed=seed)
        k = 3
        result = cmc(system, k=k, s_hat=0.8)
        scheme = standard_levels(result.params["final_budget"], k)
        costs = [system[set_id].cost for set_id in result.set_ids]
        counts = selections_per_level(result, costs, scheme)
        for count, quota in zip(counts, scheme.quotas):
            assert count <= quota


class TestMergedQuotas:
    @pytest.mark.parametrize("seed", range(8))
    def test_counts_respect_quotas(self, random_system, seed):
        system = random_system(n_elements=25, n_sets=20, seed=seed)
        k, eps = 4, 0.5
        result = cmc_epsilon(system, k=k, s_hat=0.8, eps=eps)
        scheme = merged_levels(result.params["final_budget"], k, eps)
        costs = [system[set_id].cost for set_id in result.set_ids]
        counts = selections_per_level(result, costs, scheme)
        for count, quota in zip(counts, scheme.quotas):
            assert count <= quota


class TestOptimizedQuotas:
    @pytest.mark.parametrize("seed", range(6))
    def test_counts_respect_quotas(self, random_table, seed):
        table = random_table(n_rows=30, seed=seed)
        k = 3
        result = optimized_cmc(table, k=k, s_hat=0.8)
        scheme = standard_levels(result.params["final_budget"], k)
        from repro.patterns.costs import MAX_COST
        from repro.patterns.index import PatternIndex

        index = PatternIndex(table)
        cost_fn = MAX_COST.bind(table)
        costs = [
            cost_fn(index.benefit(pattern)) for pattern in result.labels
        ]
        counts = selections_per_level(result, costs, scheme)
        for count, quota in zip(counts, scheme.quotas):
            assert count <= quota
