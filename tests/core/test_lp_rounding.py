"""Unit tests for the randomized LP rounding strawman (Section III)."""

import pytest

from repro.core.cwsc import cwsc
from repro.core.lp_bound import solve_lp_relaxation
from repro.core.lp_rounding import lp_rounding
from repro.core.setsystem import SetSystem
from repro.errors import InfeasibleError, ValidationError


class TestRelaxation:
    def test_fractions_sum_within_k(self, random_system):
        system = random_system(seed=1)
        relaxation = solve_lp_relaxation(system, 3, 0.8)
        assert sum(relaxation.set_fractions.values()) <= 3 + 1e-6
        assert all(
            0 <= x <= 1 + 1e-9 for x in relaxation.set_fractions.values()
        )

    def test_zero_required_has_empty_fractions(self, random_system):
        relaxation = solve_lp_relaxation(random_system(seed=2), 2, 0.0)
        assert relaxation.value == 0.0
        assert relaxation.set_fractions == {}


class TestRounding:
    def test_meets_coverage(self, random_system):
        for seed in range(5):
            system = random_system(seed=seed)
            result = lp_rounding(system, 3, 0.8, trials=5, seed=seed)
            assert result.feasible
            assert result.covered >= system.required_coverage(0.8)

    def test_deterministic_given_seed(self, random_system):
        system = random_system(seed=3)
        a = lp_rounding(system, 3, 0.8, trials=5, seed=9)
        b = lp_rounding(system, 3, 0.8, trials=5, seed=9)
        assert a.set_ids == b.set_ids
        assert a.total_cost == b.total_cost

    def test_cost_at_least_lp_value(self, random_system):
        system = random_system(seed=4)
        result = lp_rounding(system, 3, 0.8, trials=8, seed=1)
        assert result.total_cost >= result.params["lp_value"] - 1e-6

    def test_can_violate_size_constraint(self):
        # n singletons and a full set: the LP with k=2 mixes fractions of
        # everything; roundings routinely include more than 2 sets.
        n = 12
        benefits = [{i} for i in range(n)] + [set(range(n))]
        costs = [1.0] * n + [50.0]
        system = SetSystem.from_iterables(n, benefits, costs)
        result = lp_rounding(system, 2, 1.0, trials=10, alpha=3.0, seed=0)
        assert result.covered == n
        # The winning rounding or its siblings blew the size bound.
        assert (
            result.n_sets > 2 or result.params["size_violations"] > 0
        )

    def test_repair_fallback(self):
        # alpha small enough that roundings select nothing: repair does
        # all the work, behaving like greedy weighted set cover.
        system = SetSystem.from_iterables(
            4, [{0, 1}, {2, 3}, {0, 1, 2, 3}], [1.0, 1.0, 10.0]
        )
        result = lp_rounding(system, 2, 1.0, trials=1, alpha=1e-9, seed=0)
        greedy = cwsc(system, 2, 1.0)
        assert result.covered == 4
        assert result.total_cost <= greedy.total_cost + 10.0

    def test_infeasible_union_raises(self):
        system = SetSystem.from_iterables(4, [{0}, {1}], [1.0, 1.0])
        with pytest.raises(InfeasibleError):
            lp_rounding(system, 2, 1.0)

    def test_validation(self, random_system):
        with pytest.raises(ValidationError):
            lp_rounding(random_system(), 2, 0.5, trials=0)
        with pytest.raises(ValidationError):
            lp_rounding(random_system(), 2, 0.5, alpha=0.0)
