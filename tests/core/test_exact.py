"""Unit tests for the exact solvers (branch and bound vs. brute force)."""

import math

import pytest

from repro.core.exact import brute_force, solve_exact
from repro.core.setsystem import SetSystem
from repro.errors import InfeasibleError, ValidationError


class TestAgainstBruteForce:
    def test_matches_brute_force_on_random_systems(self, random_system):
        for seed in range(12):
            system = random_system(n_elements=10, n_sets=7, seed=seed)
            for k in (1, 2, 3):
                for s_hat in (0.4, 0.7, 1.0):
                    bb = solve_exact(system, k, s_hat)
                    bf = brute_force(system, k, s_hat)
                    assert bb.total_cost == pytest.approx(bf.total_cost), (
                        f"seed={seed} k={k} s={s_hat}"
                    )

    def test_paper_optimum(self, entities_system):
        result = solve_exact(entities_system, k=2, s_hat=9 / 16)
        assert result.total_cost == pytest.approx(27.0)
        assert result.covered >= 9


class TestBranchAndBound:
    def test_prefers_cheap_combination(self):
        system = SetSystem.from_iterables(
            6,
            benefits=[{0, 1, 2}, {3, 4, 5}, set(range(6))],
            costs=[1.0, 1.0, 1.9],
        )
        result = solve_exact(system, k=2, s_hat=1.0)
        assert result.total_cost == pytest.approx(1.9)
        assert result.n_sets == 1

    def test_respects_k(self):
        system = SetSystem.from_iterables(
            4,
            benefits=[{0}, {1}, {2}, {3}, {0, 1, 2, 3}],
            costs=[0.1, 0.1, 0.1, 0.1, 100.0],
        )
        result = solve_exact(system, k=2, s_hat=1.0)
        assert result.total_cost == pytest.approx(100.0)

    def test_skips_infinite_cost_sets(self):
        system = SetSystem.from_iterables(
            2,
            benefits=[{0, 1}, {0, 1}],
            costs=[math.inf, 3.0],
        )
        result = solve_exact(system, k=1, s_hat=1.0)
        assert result.total_cost == pytest.approx(3.0)

    def test_zero_coverage(self, random_system):
        result = solve_exact(random_system(seed=0), k=2, s_hat=0.0)
        assert result.total_cost == 0.0
        assert result.n_sets == 0

    def test_infeasible_raises(self):
        system = SetSystem.from_iterables(4, [{0}, {1}], [1.0, 1.0])
        with pytest.raises(InfeasibleError):
            solve_exact(system, k=2, s_hat=1.0)

    def test_node_limit(self, random_system):
        system = random_system(n_elements=12, n_sets=10, seed=1)
        with pytest.raises(InfeasibleError):
            solve_exact(system, k=3, s_hat=0.9, node_limit=1)

    def test_validation(self, random_system):
        with pytest.raises(ValidationError):
            solve_exact(random_system(), k=0, s_hat=0.5)
        with pytest.raises(ValidationError):
            brute_force(random_system(), k=0, s_hat=0.5)


class TestBruteForce:
    def test_infeasible_raises(self):
        system = SetSystem.from_iterables(4, [{0}, {1}], [1.0, 1.0])
        with pytest.raises(InfeasibleError):
            brute_force(system, k=2, s_hat=1.0)

    def test_tiny_instance(self):
        system = SetSystem.from_iterables(2, [{0}, {1}, {0, 1}], [1, 1, 3])
        result = brute_force(system, k=2, s_hat=1.0)
        assert result.total_cost == pytest.approx(2.0)
