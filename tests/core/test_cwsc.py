"""Unit tests for Concise Weighted Set Cover (Fig. 2)."""

import pytest

from repro.core.cwsc import cwsc
from repro.core.setsystem import SetSystem
from repro.errors import InfeasibleError, ValidationError


def system_with_blocks() -> SetSystem:
    """Two cheap halves plus an expensive full cover."""
    return SetSystem.from_iterables(
        8,
        benefits=[
            {0, 1, 2, 3},
            {4, 5, 6, 7},
            set(range(8)),
            {0},
        ],
        costs=[1.0, 1.0, 10.0, 0.1],
        labels=["left", "right", "all", "tiny"],
    )


class TestBasics:
    def test_full_coverage_prefers_cheap_halves(self):
        result = cwsc(system_with_blocks(), k=2, s_hat=1.0)
        assert result.feasible
        assert sorted(result.labels) == ["left", "right"]
        assert result.total_cost == pytest.approx(2.0)

    def test_respects_k(self, random_system):
        for seed in range(8):
            system = random_system(n_elements=15, n_sets=12, seed=seed)
            result = cwsc(system, k=3, s_hat=0.8, on_infeasible="full_cover")
            assert result.n_sets <= 3

    def test_coverage_target_met(self, random_system):
        for seed in range(8):
            system = random_system(n_elements=15, n_sets=12, seed=seed)
            result = cwsc(system, k=4, s_hat=0.6, on_infeasible="full_cover")
            assert result.covered >= system.required_coverage(0.6)

    def test_zero_coverage_returns_empty(self):
        result = cwsc(system_with_blocks(), k=2, s_hat=0.0)
        assert result.n_sets == 0
        assert result.total_cost == 0
        assert result.feasible

    def test_selection_order_recorded(self):
        result = cwsc(system_with_blocks(), k=3, s_hat=1.0)
        # The two halves tie on gain and benefit; "left" (set id 0) wins
        # on the canonical key.
        assert result.labels[0] == "left"

    def test_half_coverage_single_set(self):
        result = cwsc(system_with_blocks(), k=1, s_hat=0.5)
        assert result.n_sets == 1
        assert result.covered >= 4


class TestThreshold:
    def test_threshold_excludes_small_sets(self):
        # k=1 and full coverage: only the full set clears rem/1 = n.
        result = cwsc(system_with_blocks(), k=1, s_hat=1.0)
        assert list(result.labels) == ["all"]

    def test_threshold_is_fractional(self):
        # 3 elements, k=2: first threshold is 1.5, so the 1-element set
        # is not eligible even though 1 >= floor(1.5).
        system = SetSystem.from_iterables(
            3,
            benefits=[{0}, {0, 1}, {0, 1, 2}],
            costs=[0.01, 0.02, 100.0],
        )
        result = cwsc(system, k=2, s_hat=1.0)
        assert result.set_ids[0] == 1  # the 2-element set, not the singleton


class TestInfeasible:
    def test_raises_by_default(self):
        system = SetSystem.from_iterables(4, [{0}, {1}], [1.0, 1.0])
        with pytest.raises(InfeasibleError) as excinfo:
            cwsc(system, k=2, s_hat=1.0)
        assert excinfo.value.partial is not None
        assert not excinfo.value.partial.feasible

    def test_partial_policy(self):
        system = SetSystem.from_iterables(4, [{0}, {1}], [1.0, 1.0])
        result = cwsc(system, k=2, s_hat=1.0, on_infeasible="partial")
        assert not result.feasible
        assert result.covered <= 2

    def test_full_cover_policy(self):
        result = cwsc(
            SetSystem.from_iterables(
                4,
                [{0}, {1}, {0, 1, 2, 3}, {0, 1, 2, 3}],
                [1.0, 1.0, 9.0, 7.0],
            ),
            k=2,
            s_hat=1.0,
        )
        # k=2 cannot reach 4 elements via the singletons; threshold makes
        # the full sets eligible, though, so no fallback is needed here.
        assert result.feasible

    def test_full_cover_fallback_picks_cheapest(self):
        # Coverage 1.0 with k=3 but only singletons + two full sets, and
        # thresholds pass; force infeasibility with disjoint singletons
        # and k too small after a bad path is impossible for CWSC, so
        # test the fallback on a system with NO threshold-clearing set.
        system = SetSystem.from_iterables(
            6,
            [{0}, {1}, {2}, set(range(6)), set(range(6))],
            [1.0, 1.0, 1.0, 8.0, 6.0],
        )
        # k=6: threshold for i=6 is 1, every singleton clears it; greedy
        # gain picks singletons first and eventually succeeds or falls
        # back. Use k=2 with s below singleton reach instead:
        result = cwsc(system, k=2, s_hat=1.0)
        assert result.feasible
        assert result.total_cost <= 8.0

    def test_fallback_when_no_full_cover_exists_raises(self):
        system = SetSystem.from_iterables(4, [{0}, {1}], [1.0, 1.0])
        with pytest.raises(InfeasibleError):
            cwsc(system, k=2, s_hat=1.0, on_infeasible="full_cover")


class TestValidation:
    def test_k_zero_rejected(self):
        with pytest.raises(ValidationError):
            cwsc(system_with_blocks(), k=0, s_hat=0.5)

    def test_s_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            cwsc(system_with_blocks(), k=1, s_hat=1.5)


class TestMetrics:
    def test_considered_counts_all_sets_once(self):
        system = system_with_blocks()
        result = cwsc(system, k=2, s_hat=1.0)
        assert result.metrics.sets_considered == system.n_sets
        assert result.metrics.budget_rounds == 1
        assert result.metrics.runtime_seconds > 0
