"""Unit tests for the CMC budget schedule and level schemes."""

import itertools

import pytest

from repro.core.budget import (
    budget_schedule,
    generalized_levels,
    merged_levels,
    standard_levels,
)
from repro.errors import ValidationError


class TestBudgetSchedule:
    def test_geometric_growth(self):
        budgets = list(budget_schedule(1.0, 1.0, 10.0))
        assert budgets == [1.0, 2.0, 4.0, 8.0, 16.0]

    def test_last_budget_at_least_ceiling(self):
        for b in (0.5, 1.0, 2.0):
            budgets = list(budget_schedule(3.0, b, 100.0))
            assert budgets[-1] >= 100.0
            assert all(earlier < 100.0 for earlier in budgets[:-1])

    def test_initial_at_ceiling_yields_once(self):
        assert list(budget_schedule(5.0, 1.0, 5.0)) == [5.0]

    def test_zero_initial_bumped(self):
        budgets = list(budget_schedule(0.0, 1.0, 4.0))
        assert budgets[0] == 1.0

    def test_invalid_growth_rejected(self):
        with pytest.raises(ValidationError):
            list(budget_schedule(1.0, 0.0, 10.0))

    def test_negative_budget_rejected(self):
        with pytest.raises(ValidationError):
            list(budget_schedule(-1.0, 1.0, 10.0))


class TestStandardLevels:
    def test_worked_example_k2_b5(self):
        # The paper's CMC walkthrough: B=5, k=2 gives levels (2.5, 5] and
        # (0, 2.5], two picks each.
        scheme = standard_levels(5.0, 2)
        assert scheme.n_levels == 2
        assert scheme.quotas == (2, 2)
        assert scheme.level_of(4.0) == 0
        assert scheme.level_of(2.0) == 1
        assert scheme.level_of(2.5) == 1
        assert scheme.level_of(6.0) is None

    def test_level_bounds_are_contiguous(self):
        for k in (1, 2, 3, 5, 8, 12, 16, 25):
            scheme = standard_levels(100.0, k)
            for upper, lower in zip(scheme.upper_bounds, scheme.lower_bounds):
                assert lower < upper
            for i in range(scheme.n_levels - 1):
                assert scheme.upper_bounds[i + 1] == scheme.lower_bounds[i]
            assert scheme.upper_bounds[0] == 100.0
            assert scheme.lower_bounds[-1] == 0.0

    def test_every_affordable_cost_has_a_level(self):
        for k in (1, 2, 3, 7, 10, 31):
            scheme = standard_levels(64.0, k)
            for cost in (0.0, 0.001, 1.0, 31.9, 32.0, 63.0, 64.0):
                level = scheme.level_of(cost)
                assert level is not None
                if cost > 0:
                    assert (
                        scheme.lower_bounds[level]
                        < cost
                        <= scheme.upper_bounds[level]
                    )

    def test_zero_cost_lands_in_last_level(self):
        scheme = standard_levels(10.0, 4)
        assert scheme.level_of(0.0) == scheme.n_levels - 1

    def test_max_selections_bounded_by_5k(self):
        for k in range(1, 40):
            assert standard_levels(1.0, k).max_selections() <= 5 * k

    def test_theorem4_exact_bound(self):
        # k + 2 * (2^ceil(log2 k) - 1) <= 5k - 2 for k >= 2.
        for k in range(2, 40):
            assert standard_levels(1.0, k).max_selections() <= 5 * k - 2

    def test_k1(self):
        scheme = standard_levels(10.0, 1)
        assert scheme.max_selections() >= 1
        assert scheme.level_of(10.0) is not None

    def test_invalid_k_rejected(self):
        with pytest.raises(ValidationError):
            standard_levels(1.0, 0)


class TestMergedLevels:
    def test_paper_example_k12_eps_half(self):
        # Section V-A3: k=12, eps=0.5 -> choose 2 from (B/2, B], 4 from
        # (B/4, B/2], and 12 from (0, B/4].
        scheme = merged_levels(8.0, 12, 0.5)
        assert scheme.quotas == (2, 4, 12)
        assert scheme.level_of(5.0) == 0
        assert scheme.level_of(3.0) == 1
        assert scheme.level_of(1.0) == 2

    def test_max_selections_within_1_plus_eps_k(self):
        for k in (1, 2, 5, 10, 12, 25, 100):
            for eps in (0.25, 0.5, 1.0, 2.0):
                assert (
                    merged_levels(1.0, k, eps).max_selections()
                    <= (1 + eps) * k + 1e-9
                )

    def test_tiny_eps_single_level(self):
        scheme = merged_levels(10.0, 3, 0.1)
        assert scheme.quotas == (3,)
        assert scheme.level_of(10.0) == 0

    def test_invalid_eps_rejected(self):
        with pytest.raises(ValidationError):
            merged_levels(1.0, 2, 0.0)


class TestGeneralizedLevels:
    def test_base2_matches_standard_boundaries(self):
        standard = standard_levels(32.0, 8)
        general = generalized_levels(32.0, 8, 2.0)
        assert general.lower_bounds == standard.lower_bounds
        assert general.upper_bounds == standard.upper_bounds

    def test_larger_base_fewer_levels(self):
        few = generalized_levels(100.0, 16, 4.0)
        many = generalized_levels(100.0, 16, 2.0)
        assert few.n_levels <= many.n_levels

    def test_costs_always_covered(self):
        for base, k in itertools.product((1.5, 2.0, 3.0), (2, 7, 16)):
            scheme = generalized_levels(50.0, k, base)
            for cost in (0.0, 0.01, 10.0, 49.9, 50.0):
                assert scheme.level_of(cost) is not None

    def test_invalid_base_rejected(self):
        with pytest.raises(ValidationError):
            generalized_levels(1.0, 2, 1.0)
