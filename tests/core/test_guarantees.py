"""Unit tests for the Theorem 4/5 bound formulas and checkers."""

import pytest

from repro.core.cmc import cmc
from repro.core.cmc_epsilon import cmc_epsilon
from repro.core.exact import solve_exact
from repro.core.guarantees import (
    cost_factor_epsilon,
    cost_factor_standard,
    guaranteed_coverage,
    max_sets_epsilon,
    max_sets_standard,
    within_theorem4,
    within_theorem5,
)
from repro.errors import ValidationError


class TestFormulas:
    def test_max_sets_standard_bounds(self):
        assert max_sets_standard(1) >= 1
        for k in (2, 4, 10, 16, 25):
            assert k <= max_sets_standard(k) <= 5 * k

    def test_max_sets_epsilon(self):
        for k in (2, 10, 16):
            for eps in (0.5, 1.0, 2.0):
                assert max_sets_epsilon(k, eps) <= (1 + eps) * k + 1e-9

    def test_cost_factor_standard(self):
        # (1 + b)(2 ceil(log2 k) + 1).
        assert cost_factor_standard(8, 1.0) == pytest.approx(2 * 7)
        assert cost_factor_standard(1, 1.0) == pytest.approx(2.0)

    def test_cost_factor_epsilon_monotone_in_eps(self):
        # Larger eps keeps more levels -> smaller k / 2^j tail term.
        assert cost_factor_epsilon(16, 1.0, 2.0) <= cost_factor_epsilon(
            16, 1.0, 0.25
        )

    def test_guaranteed_coverage(self):
        assert guaranteed_coverage(0.5, 100) == pytest.approx(
            (1 - 1 / 2.718281828459045) * 50
        )

    def test_validation(self):
        with pytest.raises(ValidationError):
            cost_factor_standard(0, 1.0)
        with pytest.raises(ValidationError):
            cost_factor_standard(2, 0.0)
        with pytest.raises(ValidationError):
            cost_factor_epsilon(2, 1.0, 0.0)


class TestCheckers:
    def test_cmc_runs_pass_theorem4(self, random_system):
        for seed in range(6):
            system = random_system(n_elements=14, n_sets=10, seed=seed)
            k, s_hat, b = 3, 0.7, 1.0
            opt = solve_exact(system, k, s_hat)
            result = cmc(system, k=k, s_hat=s_hat, b=b)
            assert within_theorem4(result, opt.total_cost, k, b, s_hat)

    def test_cmc_epsilon_runs_pass_theorem5(self, random_system):
        for seed in range(6):
            system = random_system(n_elements=14, n_sets=10, seed=seed)
            k, s_hat, b, eps = 3, 0.7, 1.0, 1.0
            opt = solve_exact(system, k, s_hat)
            result = cmc_epsilon(system, k=k, s_hat=s_hat, b=b, eps=eps)
            assert within_theorem5(result, opt.total_cost, k, b, eps, s_hat)

    def test_infeasible_result_fails_checkers(self, random_system):
        result = cmc(random_system(seed=0), k=2, s_hat=0.5)
        result.feasible = False
        assert not within_theorem4(result, 100.0, 2, 1.0, 0.5)
        assert not within_theorem5(result, 100.0, 2, 1.0, 1.0, 0.5)
