"""Shared fixtures: the paper's running example and seeded random inputs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.setsystem import SetSystem
from repro.datasets.entities import entities_table
from repro.patterns.pattern_sets import build_set_system
from repro.patterns.table import PatternTable


@pytest.fixture(scope="session")
def entities() -> PatternTable:
    """Table I: the 16 real-world entities."""
    return entities_table()


@pytest.fixture(scope="session")
def entities_system(entities) -> SetSystem:
    """Table II: the 24 patterns of the entities table, max-costs."""
    return build_set_system(entities, "max")


@pytest.fixture
def random_table():
    """Factory for small random pattern tables (seeded, deterministic)."""

    def build(
        n_rows: int = 20,
        n_attributes: int = 3,
        domain_size: int = 4,
        seed: int = 0,
        with_measure: bool = True,
    ) -> PatternTable:
        rng = np.random.default_rng(seed)
        rows = [
            tuple(
                f"v{rng.integers(domain_size)}"
                for _ in range(n_attributes)
            )
            for _ in range(n_rows)
        ]
        measure = (
            [float(m) for m in rng.uniform(0.5, 20.0, size=n_rows)]
            if with_measure
            else None
        )
        return PatternTable(
            attributes=[f"D{i}" for i in range(n_attributes)],
            rows=rows,
            measure=measure,
        )

    return build


@pytest.fixture
def random_system():
    """Factory for small random weighted set systems (seeded).

    Always includes a full-coverage set so the paper's feasibility
    assumption holds.
    """

    def build(
        n_elements: int = 12,
        n_sets: int = 8,
        seed: int = 0,
        max_cost: float = 10.0,
    ) -> SetSystem:
        rng = np.random.default_rng(seed)
        benefits = []
        costs = []
        for _ in range(n_sets - 1):
            size = int(rng.integers(1, max(2, n_elements // 2)))
            benefits.append(
                set(rng.choice(n_elements, size=size, replace=False).tolist())
            )
            costs.append(float(rng.uniform(0.1, max_cost)))
        benefits.append(set(range(n_elements)))
        costs.append(float(max_cost))
        return SetSystem.from_iterables(n_elements, benefits, costs)

    return build
