"""Unit tests for the greedy partial maximum coverage baseline."""

import pytest

from repro.baselines.max_coverage import max_coverage
from repro.core.setsystem import SetSystem
from repro.errors import ValidationError


class TestSelection:
    def test_ignores_cost(self):
        system = SetSystem.from_iterables(
            4,
            benefits=[{0, 1, 2}, {0, 1}],
            costs=[1000.0, 0.01],
        )
        result = max_coverage(system, k=1)
        assert list(result.set_ids) == [0]
        assert result.total_cost == 1000.0

    def test_greedy_1_minus_1_over_e(self, random_system):
        # Greedy coverage with k sets is at least (1 - 1/e) of the best
        # possible k-set coverage; check against brute force.
        import itertools

        for seed in range(5):
            system = random_system(n_elements=12, n_sets=8, seed=seed)
            k = 2
            best = max(
                system.coverage_of(combo)
                for combo in itertools.combinations(range(system.n_sets), k)
            )
            greedy = max_coverage(system, k).covered
            assert greedy >= (1 - 1 / 2.718281828459045) * best - 1e-9

    def test_early_stop_at_target(self, random_system):
        system = random_system(seed=1)  # has a full-cover set
        result = max_coverage(system, k=5, s_hat=0.5)
        # The full-cover set is picked first; the target is met with it.
        assert result.n_sets == 1
        assert result.feasible

    def test_unreachable_target_reported(self):
        system = SetSystem.from_iterables(4, [{0}, {1}], [1.0, 1.0])
        result = max_coverage(system, k=2, s_hat=1.0)
        assert not result.feasible
        assert result.covered == 2

    def test_stops_when_no_benefit_left(self):
        system = SetSystem.from_iterables(2, [{0, 1}], [1.0])
        result = max_coverage(system, k=5)
        assert result.n_sets == 1

    def test_validation(self, random_system):
        with pytest.raises(ValidationError):
            max_coverage(random_system(), k=0)
        with pytest.raises(ValidationError):
            max_coverage(random_system(), k=1, s_hat=-1.0)


class TestPaperSection6C:
    def test_costlier_than_cwsc_on_entities(self, entities_system):
        from repro.core.cwsc import cwsc

        ours = cwsc(entities_system, k=2, s_hat=9 / 16)
        mc = max_coverage(entities_system, k=2, s_hat=9 / 16)
        assert mc.total_cost >= ours.total_cost
