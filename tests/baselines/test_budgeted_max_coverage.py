"""Unit tests for greedy budgeted maximum coverage [Khuller et al.]."""

import pytest

from repro.baselines.budgeted_max_coverage import budgeted_max_coverage
from repro.core.setsystem import SetSystem
from repro.datasets.adversarial import (
    bmc_adversarial_system,
    bmc_optimal_budget,
)
from repro.errors import ValidationError


class TestBudget:
    def test_never_exceeds_budget(self, random_system):
        for seed in range(5):
            system = random_system(seed=seed)
            result = budgeted_max_coverage(system, budget=5.0)
            assert result.total_cost <= 5.0 + 1e-9

    def test_zero_budget_only_free_sets(self):
        system = SetSystem.from_iterables(
            3, [{0}, {1, 2}], [0.0, 1.0]
        )
        result = budgeted_max_coverage(system, budget=0.0)
        assert list(result.set_ids) == [0]

    def test_max_sets_cap(self, random_system):
        system = random_system(seed=3)
        result = budgeted_max_coverage(system, budget=100.0, max_sets=2)
        assert result.n_sets <= 2

    def test_validation(self, random_system):
        with pytest.raises(ValidationError):
            budgeted_max_coverage(random_system(), budget=-1.0)
        with pytest.raises(ValidationError):
            budgeted_max_coverage(random_system(), budget=1.0, max_sets=0)


class TestSection3Adversarial:
    def test_greedy_covers_only_ck(self):
        # The paper's argument: with c << C, greedy by marginal gain
        # picks the weight-1 singletons (gain 1) over the blocks (gain
        # C/(C+1) < 1), covering only ck of Ck elements.
        k, c, big_c = 4, 2, 20
        system = bmc_adversarial_system(k, c, big_c)
        result = budgeted_max_coverage(
            system, budget=bmc_optimal_budget(k, big_c), max_sets=c * k
        )
        assert result.covered == c * k
        assert all(label[0] == "singleton" for label in result.labels)

    def test_optimum_covers_everything(self):
        k, c, big_c = 4, 2, 20
        system = bmc_adversarial_system(k, c, big_c)
        blocks = [
            ws.set_id for ws in system.sets if ws.label[0] == "block"
        ]
        assert system.coverage_of(blocks) == system.n_elements
        assert system.cost_of(blocks) == bmc_optimal_budget(k, big_c)

    def test_coverage_ratio_shrinks_with_block_size(self):
        k, c = 3, 2
        small = bmc_adversarial_system(k, c, 10)
        large = bmc_adversarial_system(k, c, 50)
        ratio_small = budgeted_max_coverage(
            small, bmc_optimal_budget(k, 10), max_sets=c * k
        ).covered / small.n_elements
        ratio_large = budgeted_max_coverage(
            large, bmc_optimal_budget(k, 50), max_sets=c * k
        ).covered / large.n_elements
        assert ratio_large < ratio_small
