"""Unit tests for the greedy partial weighted set cover baseline."""

import pytest

from repro.baselines.weighted_set_cover import weighted_set_cover
from repro.core.setsystem import SetSystem
from repro.errors import InfeasibleError, ValidationError


class TestPaperExample:
    def test_intro_solution(self, entities_system):
        # Section I: s = 9/16 yields 7 patterns with total cost 24.
        result = weighted_set_cover(entities_system, 9 / 16)
        assert result.n_sets == 7
        assert result.total_cost == pytest.approx(24.0)
        assert result.covered >= 9


class TestBehaviour:
    def test_prefers_high_gain(self):
        system = SetSystem.from_iterables(
            4,
            benefits=[{0, 1, 2, 3}, {0, 1}, {2, 3}],
            costs=[8.0, 1.0, 1.0],
        )
        result = weighted_set_cover(system, 1.0)
        assert sorted(result.set_ids) == [1, 2]

    def test_runs_until_target(self, random_system):
        for seed in range(5):
            system = random_system(seed=seed)
            result = weighted_set_cover(system, 0.8)
            assert result.covered >= system.required_coverage(0.8)

    def test_no_size_bound(self):
        # n singletons: full coverage needs n sets.
        system = SetSystem.from_iterables(
            6, [{i} for i in range(6)], [1.0] * 6
        )
        result = weighted_set_cover(system, 1.0)
        assert result.n_sets == 6

    def test_zero_coverage(self, random_system):
        result = weighted_set_cover(random_system(seed=0), 0.0)
        assert result.n_sets == 0

    def test_infeasible_raises_with_partial(self):
        system = SetSystem.from_iterables(4, [{0}, {1}], [1.0, 1.0])
        with pytest.raises(InfeasibleError) as excinfo:
            weighted_set_cover(system, 1.0)
        assert excinfo.value.partial.covered == 2

    def test_max_sets_truncation(self, random_system):
        system = random_system(n_elements=20, n_sets=15, seed=2)
        with pytest.raises(InfeasibleError) as excinfo:
            weighted_set_cover(system, 1.0, max_sets=1)
        assert excinfo.value.partial.n_sets == 1

    def test_validation(self, random_system):
        with pytest.raises(ValidationError):
            weighted_set_cover(random_system(), 1.5)
        with pytest.raises(ValidationError):
            weighted_set_cover(random_system(), 0.5, max_sets=0)
