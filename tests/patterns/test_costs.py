"""Unit tests for pattern cost functions."""

import pytest

from repro.errors import ValidationError
from repro.patterns.costs import (
    COUNT_COST,
    MAX_COST,
    MEAN_COST,
    SUM_COST,
    get_cost_function,
    lp_norm_cost,
)
from repro.patterns.table import PatternTable


@pytest.fixture
def table() -> PatternTable:
    return PatternTable(
        attributes=("A",),
        rows=[("x",), ("x",), ("y",)],
        measure=[3.0, 4.0, 5.0],
    )


class TestAggregates:
    def test_max(self, table):
        fn = MAX_COST.bind(table)
        assert fn([0, 1]) == 4.0
        assert fn([2]) == 5.0

    def test_sum(self, table):
        assert SUM_COST.bind(table)([0, 1, 2]) == 12.0

    def test_mean(self, table):
        assert MEAN_COST.bind(table)([0, 1]) == pytest.approx(3.5)

    def test_count_needs_no_measure(self):
        table = PatternTable(("A",), [("x",), ("y",)])
        assert COUNT_COST.bind(table)([0, 1]) == 2

    def test_l2(self, table):
        fn = lp_norm_cost(2.0).bind(table)
        assert fn([0, 1]) == pytest.approx(5.0)

    def test_lp_invalid_order(self):
        with pytest.raises(ValidationError):
            lp_norm_cost(0.0)


class TestBinding:
    def test_measure_required(self):
        table = PatternTable(("A",), [("x",)])
        with pytest.raises(ValidationError):
            MAX_COST.bind(table)

    def test_empty_benefit_rejected(self, table):
        with pytest.raises(ValidationError):
            MAX_COST.bind(table)([])

    def test_lower_bound(self, table):
        assert MAX_COST.lower_bound(table) == 3.0
        assert COUNT_COST.lower_bound(table) == 1.0


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_cost_function("max") is MAX_COST
        assert get_cost_function("sum") is SUM_COST

    def test_instance_passthrough(self):
        assert get_cost_function(MAX_COST) is MAX_COST

    def test_unknown_name(self):
        with pytest.raises(ValidationError):
            get_cost_function("nope")
