"""Unit tests for the pattern-table -> SetSystem bridge."""

import pytest

from repro.errors import ValidationError
from repro.patterns.pattern import ALL, Pattern
from repro.patterns.pattern_sets import build_set_system, pattern_of
from repro.patterns.table import PatternTable


class TestBuildSetSystem:
    def test_entities_table2(self, entities, entities_system):
        assert entities_system.n_sets == 24
        assert entities_system.n_elements == 16
        assert entities_system.has_full_cover

    def test_known_costs(self, entities_system):
        by_label = {ws.label: ws for ws in entities_system.sets}
        assert by_label[Pattern(("B", ALL))].cost == 24.0
        assert by_label[Pattern(("B", "South"))].cost == 2.0
        assert by_label[Pattern((ALL, ALL))].cost == 96.0
        assert by_label[Pattern(("A", "East"))].cost == 3.0

    def test_labels_sorted_deterministically(self, entities_system):
        labels = [ws.label for ws in entities_system.sets]
        assert labels == sorted(labels, key=Pattern.sort_key)

    def test_count_cost_without_measure(self):
        table = PatternTable(("A",), [("x",), ("x",), ("y",)])
        system = build_set_system(table, "count")
        by_label = {ws.label: ws for ws in system.sets}
        assert by_label[Pattern(("x",))].cost == 2.0
        assert by_label[Pattern((ALL,))].cost == 3.0

    def test_empty_table_rejected(self):
        with pytest.raises(ValidationError):
            build_set_system(PatternTable(("A",), []))

    def test_pattern_of(self, entities_system):
        assert isinstance(pattern_of(entities_system, 0), Pattern)

    def test_pattern_of_non_pattern_label(self, random_system):
        with pytest.raises(ValidationError):
            pattern_of(random_system(seed=0), 0)
