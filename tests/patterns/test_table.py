"""Unit tests for PatternTable."""

import pytest

from repro.errors import ValidationError
from repro.patterns.table import PatternTable


@pytest.fixture
def table() -> PatternTable:
    return PatternTable(
        attributes=("Type", "Loc"),
        rows=[("A", "W"), ("A", "E"), ("B", "W"), ("B", "E")],
        measure=[1.0, 2.0, 3.0, 4.0],
        measure_name="Cost",
    )


class TestConstruction:
    def test_basic(self, table):
        assert table.n_rows == 4
        assert table.n_attributes == 2
        assert len(table) == 4
        assert table.measure == (1.0, 2.0, 3.0, 4.0)
        assert table.measure_name == "Cost"

    def test_no_attributes_rejected(self):
        with pytest.raises(ValidationError):
            PatternTable((), [])

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ValidationError):
            PatternTable(("A", "A"), [])

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValidationError):
            PatternTable(("A", "B"), [("x",)])

    def test_measure_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            PatternTable(("A",), [("x",)], measure=[1.0, 2.0])

    def test_from_records(self):
        records = [
            {"Type": "A", "Loc": "W", "Cost": 5, "ignored": 1},
            {"Type": "B", "Loc": "E", "Cost": 7, "ignored": 2},
        ]
        built = PatternTable.from_records(
            records, ("Type", "Loc"), measure_name="Cost"
        )
        assert built.rows == (("A", "W"), ("B", "E"))
        assert built.measure == (5.0, 7.0)

    def test_csv_round_trip(self, table, tmp_path):
        path = tmp_path / "t.csv"
        table.to_csv(path)
        loaded = PatternTable.from_csv(
            path, ("Type", "Loc"), measure_name="Cost"
        )
        assert loaded.rows == table.rows
        assert loaded.measure == table.measure


class TestDomains:
    def test_active_domain(self, table):
        assert table.active_domain(0) == ("A", "B")
        assert table.active_domain(1) == ("E", "W")

    def test_pattern_space_size(self, table):
        assert table.pattern_space_size() == 9  # (2+1) * (2+1)


class TestTransformations:
    def test_project(self, table):
        projected = table.project(["Loc"])
        assert projected.attributes == ("Loc",)
        assert projected.rows == (("W",), ("E",), ("W",), ("E",))
        assert projected.measure == table.measure

    def test_project_unknown_attribute(self, table):
        with pytest.raises(ValidationError):
            table.project(["Nope"])

    def test_sample_deterministic(self, table):
        a = table.sample(2, seed=5)
        b = table.sample(2, seed=5)
        assert a.rows == b.rows
        assert a.n_rows == 2

    def test_sample_too_large_rejected(self, table):
        with pytest.raises(ValidationError):
            table.sample(99)

    def test_take_preserves_order(self, table):
        sub = table.take([2, 0])
        assert sub.rows == (("B", "W"), ("A", "W"))
        assert sub.measure == (3.0, 1.0)

    def test_with_measure(self, table):
        swapped = table.with_measure([9, 9, 9, 9], measure_name="x")
        assert swapped.measure == (9.0,) * 4
        assert swapped.measure_name == "x"
        assert table.measure == (1.0, 2.0, 3.0, 4.0)  # original untouched

    def test_extend(self, table):
        grown = table.extend(table)
        assert grown.n_rows == 8
        assert grown.measure[:4] == table.measure

    def test_extend_schema_mismatch(self, table):
        other = PatternTable(("X",), [("a",)])
        with pytest.raises(ValidationError):
            table.extend(other)

    def test_extend_measure_mismatch(self, table):
        other = PatternTable(("Type", "Loc"), [("A", "W")])
        with pytest.raises(ValidationError):
            table.extend(other)
