"""Unit tests for patterns and the ALL wildcard."""

import pickle

import pytest

from repro.errors import ValidationError
from repro.patterns.pattern import (
    ALL,
    Pattern,
    parent_values,
    values_sort_key,
)


class TestAllSentinel:
    def test_singleton(self):
        from repro.patterns.pattern import _AllType

        assert _AllType() is ALL

    def test_repr(self):
        assert repr(ALL) == "ALL"

    def test_pickle_round_trip(self):
        assert pickle.loads(pickle.dumps(ALL)) is ALL


class TestMatching:
    def test_wildcards_match_anything(self):
        pattern = Pattern((ALL, "West"))
        assert pattern.matches(("A", "West"))
        assert pattern.matches(("B", "West"))
        assert not pattern.matches(("A", "East"))

    def test_all_pattern_matches_everything(self):
        pattern = Pattern.all_pattern(3)
        assert pattern.matches(("x", "y", "z"))
        assert pattern.is_all

    def test_fully_constant_pattern(self):
        pattern = Pattern(("A", "West"))
        assert pattern.matches(("A", "West"))
        assert not pattern.matches(("A", "East"))
        assert pattern.n_wildcards == 0

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            Pattern(("A",)).matches(("A", "B"))


class TestLatticeOps:
    def test_specialize(self):
        child = Pattern((ALL, ALL)).specialize(0, "A")
        assert child.values == ("A", ALL)

    def test_specialize_constant_rejected(self):
        with pytest.raises(ValidationError):
            Pattern(("A", ALL)).specialize(0, "B")

    def test_specialize_to_all_rejected(self):
        with pytest.raises(ValidationError):
            Pattern((ALL,)).specialize(0, ALL)

    def test_generalize(self):
        parent = Pattern(("A", "B")).generalize(1)
        assert parent.values == ("A", ALL)

    def test_generalize_wildcard_rejected(self):
        with pytest.raises(ValidationError):
            Pattern((ALL, "B")).generalize(0)

    def test_parents_one_per_constant(self):
        parents = list(Pattern(("A", "B", ALL)).parents())
        assert Pattern((ALL, "B", ALL)) in parents
        assert Pattern(("A", ALL, ALL)) in parents
        assert len(parents) == 2

    def test_all_pattern_has_no_parents(self):
        assert list(Pattern.all_pattern(2).parents()) == []

    def test_parent_values_matches_parents(self):
        pattern = Pattern(("A", ALL, "C"))
        assert set(parent_values(pattern.values)) == {
            p.values for p in pattern.parents()
        }

    def test_is_specialization_of(self):
        child = Pattern(("A", "B"))
        assert child.is_specialization_of(Pattern(("A", ALL)))
        assert child.is_specialization_of(Pattern((ALL, ALL)))
        assert child.is_specialization_of(child)
        assert not Pattern(("A", ALL)).is_specialization_of(child)

    def test_positions(self):
        pattern = Pattern(("A", ALL, "C"))
        assert pattern.wildcard_positions() == [1]
        assert pattern.constant_positions() == [0, 2]
        assert pattern.n_constants == 2


class TestOrderingAndIdentity:
    def test_equality_and_hash(self):
        assert Pattern(("A", ALL)) == Pattern(("A", ALL))
        assert hash(Pattern(("A", ALL))) == hash(Pattern(("A", ALL)))
        assert Pattern(("A", ALL)) != Pattern((ALL, "A"))

    def test_sort_key_total_order(self):
        patterns = [
            Pattern((ALL, ALL)),
            Pattern(("A", ALL)),
            Pattern((ALL, "B")),
            Pattern(("A", "B")),
        ]
        ordered = sorted(patterns)
        assert ordered[0] == Pattern((ALL, ALL))  # wildcards sort first

    def test_values_sort_key_matches_pattern_sort_key(self):
        for values in [("A", ALL), (ALL, 3), (1, 2)]:
            assert values_sort_key(values) == Pattern(values).sort_key()

    def test_repr_and_format(self):
        pattern = Pattern(("A", ALL))
        assert repr(pattern) == "Pattern('A', ALL)"
        assert pattern.format(("Type", "Loc")) == "Type='A', Loc=ALL"

    def test_format_arity_mismatch(self):
        with pytest.raises(ValidationError):
            Pattern(("A",)).format(("X", "Y"))

    def test_all_pattern_validation(self):
        with pytest.raises(ValidationError):
            Pattern.all_pattern(0)
