"""Unit tests for the lattice-optimized CMC (Fig. 4)."""

import math

import pytest

from repro.core.guarantees import guaranteed_coverage, max_sets_standard
from repro.errors import ValidationError
from repro.patterns.optimized_cmc import optimized_cmc
from repro.patterns.pattern import Pattern
from repro.patterns.pattern_sets import build_set_system
from repro.patterns.table import PatternTable


class TestGuarantees:
    @pytest.mark.parametrize("seed", range(5))
    def test_coverage_floor(self, random_table, seed):
        table = random_table(n_rows=30, seed=seed)
        result = optimized_cmc(table, k=3, s_hat=0.7)
        assert result.feasible
        assert result.covered >= guaranteed_coverage(0.7, 30) - 1e-9

    @pytest.mark.parametrize("seed", range(5))
    def test_size_bound_standard(self, random_table, seed):
        table = random_table(n_rows=30, seed=seed)
        result = optimized_cmc(table, k=2, s_hat=0.8)
        assert result.n_sets <= max_sets_standard(2)

    @pytest.mark.parametrize("seed", range(5))
    def test_size_bound_epsilon(self, random_table, seed):
        table = random_table(n_rows=30, seed=seed)
        for eps in (0.5, 1.0):
            result = optimized_cmc(table, k=4, s_hat=0.8, eps=eps)
            assert result.n_sets <= math.floor((1 + eps) * 4 + 1e-9)

    def test_always_feasible_on_tables(self, random_table):
        # The all-wildcards pattern guarantees feasibility.
        for seed in range(5):
            result = optimized_cmc(random_table(seed=seed), k=1, s_hat=1.0)
            assert result.feasible


class TestGeneralizedLevels:
    @pytest.mark.parametrize("seed", range(4))
    def test_l_variant_meets_guarantees(self, random_table, seed):
        import math

        from repro.core.guarantees import guaranteed_coverage

        table = random_table(n_rows=30, seed=seed)
        result = optimized_cmc(table, k=4, s_hat=0.7, l=2.0)
        assert result.feasible
        assert result.params["variant"] == "generalized"
        assert result.covered >= guaranteed_coverage(0.7, 30) - 1e-9
        # k (1 + (1+l)^2 / l) bound from Section V-A2.
        assert result.n_sets <= math.ceil(4 * (1 + 9 / 2))

    def test_eps_and_l_mutually_exclusive(self, random_table):
        with pytest.raises(ValidationError):
            optimized_cmc(random_table(), k=2, s_hat=0.5, eps=1.0, l=1.0)

    def test_l_validation(self, random_table):
        with pytest.raises(ValidationError):
            optimized_cmc(random_table(), k=2, s_hat=0.5, l=0.0)


class TestBudgets:
    def test_explicit_initial_budget(self, random_table):
        table = random_table(n_rows=20, seed=1)
        low = optimized_cmc(table, k=2, s_hat=0.5, initial_budget=0.01)
        high = optimized_cmc(table, k=2, s_hat=0.5, initial_budget=1e6)
        assert low.feasible and high.feasible
        assert low.metrics.budget_rounds >= high.metrics.budget_rounds

    def test_larger_b_fewer_rounds(self, random_table):
        table = random_table(n_rows=30, seed=2)
        slow = optimized_cmc(table, k=2, s_hat=0.8, b=0.25)
        fast = optimized_cmc(table, k=2, s_hat=0.8, b=4.0)
        assert fast.metrics.budget_rounds <= slow.metrics.budget_rounds


class TestPruning:
    def test_considers_fewer_patterns_than_enumeration_rounds(
        self, random_table
    ):
        table = random_table(n_rows=150, n_attributes=4, domain_size=6, seed=7)
        system = build_set_system(table, "max")
        result = optimized_cmc(table, k=3, s_hat=0.4)
        rounds = result.metrics.budget_rounds
        # The unoptimized CMC would consider every pattern per round.
        assert result.metrics.sets_considered < system.n_sets * rounds

    def test_selected_patterns_have_nonoverlapping_marginals(
        self, random_table
    ):
        table = random_table(n_rows=40, seed=3)
        result = optimized_cmc(table, k=3, s_hat=0.6)
        assert len(set(result.labels)) == result.n_sets


class TestValidation:
    def test_bad_inputs(self, random_table):
        with pytest.raises(ValidationError):
            optimized_cmc(random_table(), k=0, s_hat=0.5)
        with pytest.raises(ValidationError):
            optimized_cmc(random_table(), k=2, s_hat=-0.5)
        with pytest.raises(ValidationError):
            optimized_cmc(random_table(), k=2, s_hat=0.5, eps=0.0)
        with pytest.raises(ValidationError):
            optimized_cmc(PatternTable(("A",), []), k=1, s_hat=0.5)

    def test_count_cost_initial_budget(self, random_table):
        table = random_table(n_rows=20, with_measure=False, seed=5)
        result = optimized_cmc(table, k=2, s_hat=0.5, cost="count")
        assert result.feasible


class TestResultShape:
    def test_labels_are_patterns(self, random_table):
        result = optimized_cmc(random_table(seed=0), k=2, s_hat=0.5)
        assert all(isinstance(p, Pattern) for p in result.labels)

    def test_params_recorded(self, random_table):
        result = optimized_cmc(random_table(seed=0), k=2, s_hat=0.5, eps=1.0)
        assert result.params["variant"] == "epsilon"
        assert result.params["cost"] == "max"
