"""Unit tests for the candidate pool of the optimized algorithms."""

import pytest

from repro.core.result import Metrics
from repro.patterns.candidates import Candidate, CandidatePool
from repro.patterns.pattern import ALL


def count_cost(rows) -> float:
    rows = list(rows)
    return float(len(rows))


@pytest.fixture
def pool() -> CandidatePool:
    return CandidatePool(count_cost, Metrics())


class TestCandidate:
    def test_fields(self):
        cand = Candidate(("a", ALL), [0, 1, 2], 3.0)
        cand.mben = {0, 1}
        assert cand.mben_size == 2
        assert cand.mgain == pytest.approx(2 / 3)

    def test_zero_cost_gain(self):
        cand = Candidate(("a",), [0], 0.0)
        cand.mben = {0}
        assert cand.mgain == float("inf")
        cand.mben = set()
        assert cand.mgain == 0.0

    def test_sort_key_cached(self):
        cand = Candidate((ALL, "b"), [0], 1.0)
        assert cand.sort_key() is cand.sort_key()


class TestPoolLifecycle:
    def test_materialize_counts_and_computes(self, pool):
        cand = pool.materialize(("a",), [0, 1])
        assert cand.cost == 2.0
        assert cand.mben == {0, 1}
        assert pool._metrics.sets_considered == 1

    def test_materialize_respects_covered(self):
        pool = CandidatePool(count_cost, Metrics(), covered=[0])
        cand = pool.materialize(("a",), [0, 1])
        assert cand.mben == {1}

    def test_add_get_remove(self, pool):
        cand = pool.materialize(("a",), [0])
        pool.add(cand)
        assert ("a",) in pool
        assert pool.get(("a",)) is cand
        assert len(pool) == 1
        pool.remove(("a",))
        assert pool.get(("a",)) is None

    def test_select_updates_other_candidates(self, pool):
        first = pool.materialize(("a",), [0, 1])
        second = pool.materialize(("b",), [1, 2])
        pool.add(first)
        pool.add(second)
        newly = pool.select(first)
        assert newly == {0, 1}
        assert pool.covered == {0, 1}
        assert pool.get(("b",)).mben == {2}

    def test_select_evicts_emptied(self, pool):
        big = pool.materialize(("a",), [0, 1, 2])
        small = pool.materialize(("b",), [0, 1])
        pool.add(big)
        pool.add(small)
        pool.select(big)
        assert pool.get(("b",)) is None

    def test_prune_archives_and_rehydrates_without_recount(self, pool):
        cand = pool.materialize(("a",), [0, 1, 2])
        pool.add(cand)
        considered = pool._metrics.sets_considered
        pool.prune(lambda c: False)
        assert len(pool) == 0
        revived = pool.materialize(("a",), [0, 1, 2])
        assert revived is cand
        assert pool._metrics.sets_considered == considered

    def test_rehydration_refreshes_marginal(self, pool):
        cand = pool.materialize(("a",), [0, 1, 2])
        pool.add(cand)
        other = pool.materialize(("b",), [0, 1])
        pool.add(other)
        pool.prune(lambda c: c.values == ("b",))
        pool.select(pool.get(("b",)))  # covers {0, 1}
        revived = pool.materialize(("a",), [0, 1, 2])
        assert revived.mben == {2}

    def test_archive_explicit(self, pool):
        cand = pool.materialize(("a",), [0])
        pool.archive(cand)
        assert pool.materialize(("a",), [0]) is cand


class TestSelectionRules:
    def test_best_by_gain(self, pool):
        cheap = pool.materialize(("a",), [0])  # gain 1/1
        wide = pool.materialize(("b",), [1, 2, 3])  # gain 3/3 = 1 (tie)
        pool.add(cheap)
        pool.add(wide)
        # Tie on gain -> larger marginal benefit wins.
        assert pool.best_by_gain() is wide

    def test_best_by_gain_threshold(self, pool):
        pool.add(pool.materialize(("a",), [0]))
        pool.add(pool.materialize(("b",), [1, 2]))
        assert pool.best_by_gain(min_mben=2).values == ("b",)
        assert pool.best_by_gain(min_mben=3) is None

    def test_best_by_mben(self, pool):
        pool.add(pool.materialize(("a",), [0, 1]))
        pool.add(pool.materialize(("b",), [2, 3, 4]))
        assert pool.best_by_mben().values == ("b",)

    def test_ties_broken_by_sort_key(self, pool):
        pool.add(pool.materialize(("b",), [0]))
        pool.add(pool.materialize(("a",), [1]))
        # Same size and cost: the lexicographically smaller key wins.
        assert pool.best_by_mben().values == ("a",)
        assert pool.best_by_gain().values == ("a",)

    def test_empty_pool(self, pool):
        assert pool.best_by_gain() is None
        assert pool.best_by_mben() is None
