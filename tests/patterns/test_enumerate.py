"""Unit tests for full pattern enumeration (Table II)."""

import pytest

from repro.errors import PatternSpaceError
from repro.patterns.enumerate import (
    count_nonempty_patterns,
    enumerate_nonempty_patterns,
)
from repro.patterns.index import PatternIndex
from repro.patterns.pattern import ALL, Pattern
from repro.patterns.table import PatternTable


class TestEntitiesExample:
    def test_exactly_24_patterns(self, entities):
        # Table II lists exactly 24 patterns for the 16-entity table.
        assert count_nonempty_patterns(entities) == 24

    def test_known_benefits(self, entities):
        patterns = enumerate_nonempty_patterns(entities)
        assert len(patterns[Pattern((ALL, ALL))]) == 16
        assert len(patterns[Pattern(("B", ALL))]) == 8
        assert len(patterns[Pattern(("B", "South"))]) == 2
        assert len(patterns[Pattern((ALL, "North"))]) == 3

    def test_benefits_match_index(self, entities):
        patterns = enumerate_nonempty_patterns(entities)
        index = PatternIndex(entities)
        for pattern, ben in patterns.items():
            assert index.benefit(pattern) == ben


class TestGeneralProperties:
    def test_all_pattern_always_present(self, random_table):
        table = random_table(n_rows=10, seed=3)
        patterns = enumerate_nonempty_patterns(table)
        assert Pattern.all_pattern(table.n_attributes) in patterns

    def test_no_empty_benefits(self, random_table):
        patterns = enumerate_nonempty_patterns(random_table(seed=1))
        assert all(ben for ben in patterns.values())

    def test_every_row_generates_its_generalizations(self, random_table):
        table = random_table(n_rows=6, n_attributes=2, seed=2)
        patterns = enumerate_nonempty_patterns(table)
        row = table.rows[0]
        for values in [
            row,
            (row[0], ALL),
            (ALL, row[1]),
            (ALL, ALL),
        ]:
            assert Pattern(values) in patterns
            assert 0 in patterns[Pattern(values)]

    def test_count_bounded_by_n_times_2j(self, random_table):
        table = random_table(n_rows=12, n_attributes=3, seed=4)
        assert count_nonempty_patterns(table) <= 12 * 2**3

    def test_too_many_attributes_rejected(self):
        table = PatternTable(
            attributes=[f"D{i}" for i in range(21)],
            rows=[tuple("x" for _ in range(21))],
        )
        with pytest.raises(PatternSpaceError):
            enumerate_nonempty_patterns(table)

    def test_empty_table(self):
        table = PatternTable(("A",), [])
        assert enumerate_nonempty_patterns(table) == {}
