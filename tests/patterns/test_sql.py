"""Unit tests for the SQL rendering of patterns and solutions."""

import pytest

from repro.errors import ValidationError
from repro.patterns.optimized_cwsc import optimized_cwsc
from repro.patterns.pattern import ALL, Pattern
from repro.patterns.sql import pattern_to_sql, solution_to_sql, sql_literal


class TestSqlLiteral:
    def test_strings_quoted_and_escaped(self):
        assert sql_literal("West") == "'West'"
        assert sql_literal("O'Brien") == "'O''Brien'"

    def test_numbers_plain(self):
        assert sql_literal(3) == "3"
        assert sql_literal(2.5) == "2.5"

    def test_none_and_bool(self):
        assert sql_literal(None) == "NULL"
        assert sql_literal(True) == "TRUE"
        assert sql_literal(False) == "FALSE"


class TestPatternToSql:
    def test_conjunction(self):
        pattern = Pattern(("B", "South"))
        assert (
            pattern_to_sql(pattern, ("Type", "Location"))
            == "Type = 'B' AND Location = 'South'"
        )

    def test_wildcards_omitted(self):
        assert (
            pattern_to_sql(Pattern(("B", ALL)), ("Type", "Location"))
            == "Type = 'B'"
        )

    def test_all_pattern_is_true(self):
        assert pattern_to_sql(Pattern.all_pattern(2), ("a", "b")) == "TRUE"

    def test_null_uses_is_null(self):
        assert (
            pattern_to_sql(Pattern((None, "x")), ("a", "b"))
            == "a IS NULL AND b = 'x'"
        )

    def test_arity_checked(self):
        with pytest.raises(ValidationError):
            pattern_to_sql(Pattern(("a",)), ("x", "y"))


class TestSolutionToSql:
    def test_end_to_end_on_entities(self, entities):
        result = optimized_cwsc(entities, k=2, s_hat=9 / 16)
        query = solution_to_sql(result, entities.attributes, "entities")
        assert query.startswith("SELECT *\nFROM entities\nWHERE")
        assert "(Type = 'B')" in query
        assert "(Type = 'A' AND Location = 'North')" in query
        assert " OR " in query

    def test_sql_selects_exactly_the_covered_rows(self, entities):
        # Evaluate the predicates in Python: the disjunction must match
        # exactly the rows the solution covers.
        result = optimized_cwsc(entities, k=2, s_hat=9 / 16)
        covered = set()
        for pattern in result.labels:
            for row_id, row in enumerate(entities.rows):
                if pattern.matches(row):
                    covered.add(row_id)
        assert len(covered) == result.covered

    def test_empty_solution_is_false(self):
        from repro.core.result import Metrics, make_result

        empty = make_result("x", [], [], 0.0, 0, 5, True, {}, Metrics())
        assert "WHERE FALSE;" in solution_to_sql(empty, ("a",))

    def test_non_pattern_labels_rejected(self):
        from repro.core.result import Metrics, make_result

        bad = make_result("x", [0], ["str"], 1.0, 1, 5, True, {}, Metrics())
        with pytest.raises(ValidationError):
            solution_to_sql(bad, ("a",))
