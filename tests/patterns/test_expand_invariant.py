"""The Fig. 3 expansion invariant, checked against brute force.

After pruning + expansion at threshold ``rem / i``, the candidate pool
must contain *exactly* the patterns whose marginal benefit clears the
threshold (excluding selected ones). This is the property that makes the
optimized CWSC's selection provably identical to the unoptimized one; we
verify it directly by enumerating all patterns and recomputing marginal
benefits from scratch.
"""

import pytest

from repro.core.result import Metrics
from repro.patterns.candidates import CandidatePool
from repro.patterns.costs import MAX_COST
from repro.patterns.enumerate import enumerate_nonempty_patterns
from repro.patterns.index import PatternIndex
from repro.patterns.optimized_cwsc import _expand
from repro.patterns.pattern import ALL


def expanded_pool(table, covered, threshold):
    """Prune + expand a pool seeded with the all-pattern, as Fig. 3 does."""
    index = PatternIndex(table)
    cost_fn = MAX_COST.bind(table)
    pool = CandidatePool(cost_fn, Metrics(), covered=covered)
    all_values = (ALL,) * table.n_attributes
    root = pool.materialize(all_values, index.all_rows)
    if root.mben_size >= threshold:
        pool.add(root)
    _expand(pool, index, selected_values=set(), threshold=threshold)
    return pool


class TestExpansionInvariant:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("threshold_fraction", [0.05, 0.2, 0.5])
    def test_pool_equals_bruteforce_threshold_set(
        self, random_table, seed, threshold_fraction
    ):
        table = random_table(n_rows=24, n_attributes=3, seed=seed)
        threshold = max(1.0, threshold_fraction * table.n_rows)
        pool = expanded_pool(table, covered=set(), threshold=threshold)

        expected = {
            pattern.values
            for pattern, ben in enumerate_nonempty_patterns(table).items()
            if len(ben) >= threshold
        }
        actual = {candidate.values for candidate in pool}
        assert actual == expected

    @pytest.mark.parametrize("seed", range(4))
    def test_invariant_with_partial_coverage(self, random_table, seed):
        # Cover some rows first: marginal benefits shrink, and the pool
        # must reflect the *marginal* threshold set.
        table = random_table(n_rows=24, n_attributes=3, seed=seed)
        covered = set(range(0, table.n_rows, 2))
        threshold = 2.0
        pool = expanded_pool(table, covered=covered, threshold=threshold)

        expected = {
            pattern.values
            for pattern, ben in enumerate_nonempty_patterns(table).items()
            if len(ben - covered) >= threshold
        }
        actual = {candidate.values for candidate in pool}
        assert actual == expected

    def test_candidate_marginals_are_exact(self, random_table):
        table = random_table(n_rows=20, n_attributes=2, seed=9)
        covered = {0, 1, 2}
        pool = expanded_pool(table, covered=covered, threshold=1.0)
        index = PatternIndex(table)
        for candidate in pool:
            from repro.patterns.pattern import Pattern

            ben = index.benefit(Pattern(candidate.values))
            assert candidate.mben == set(ben) - covered
