"""Unit tests for the pattern inverted index."""

import pytest

from repro.errors import ValidationError
from repro.patterns.index import PatternIndex
from repro.patterns.pattern import ALL, Pattern
from repro.patterns.table import PatternTable


@pytest.fixture
def index() -> PatternIndex:
    table = PatternTable(
        attributes=("Type", "Loc"),
        rows=[("A", "W"), ("A", "E"), ("B", "W"), ("B", "E"), ("B", "E")],
    )
    return PatternIndex(table)


class TestBenefit:
    def test_all_pattern(self, index):
        assert index.benefit(Pattern((ALL, ALL))) == frozenset(range(5))
        assert index.all_rows == frozenset(range(5))

    def test_single_constant(self, index):
        assert index.benefit(Pattern(("A", ALL))) == frozenset({0, 1})
        assert index.benefit(Pattern((ALL, "E"))) == frozenset({1, 3, 4})

    def test_two_constants(self, index):
        assert index.benefit(Pattern(("B", "E"))) == frozenset({3, 4})

    def test_absent_value(self, index):
        assert index.benefit(Pattern(("C", ALL))) == frozenset()
        assert index.benefit(Pattern(("A", "Nope"))) == frozenset()

    def test_arity_mismatch(self, index):
        with pytest.raises(ValidationError):
            index.benefit(Pattern((ALL,)))

    def test_rows_with_value(self, index):
        assert index.rows_with_value(0, "B") == frozenset({2, 3, 4})
        assert index.rows_with_value(1, "Z") == frozenset()


class TestChildren:
    def test_children_partition_parent(self, index):
        parent = Pattern((ALL, ALL))
        children = dict(index.children_of(parent))
        union: set = set()
        for child, ben in children.items():
            assert ben  # no empty children materialized
            assert ben <= index.benefit(parent)
            assert ben == index.benefit(child)
        for position in (0, 1):
            slice_union: set = set()
            for child, ben in children.items():
                if child.values[position] is not ALL:
                    slice_union |= ben
            assert slice_union == set(range(5))

    def test_children_of_leafless_pattern(self, index):
        fully_constant = Pattern(("A", "W"))
        assert list(index.children_of(fully_constant)) == []

    def test_children_values_agree_with_children_of(self, index):
        parent = Pattern((ALL, "E"))
        via_patterns = {
            child.values: ben for child, ben in index.children_of(parent)
        }
        via_values = {
            child: frozenset(rows)
            for _, child, rows in index.children_values(
                parent.values, index.benefit(parent)
            )
        }
        assert via_patterns == via_values

    def test_children_respect_given_benefit(self, index):
        # Restricting the parent benefit restricts the children.
        children = list(
            index.children_values((ALL, ALL), [0, 2])  # only the W rows
        )
        values = {child for _, child, _ in children}
        assert (ALL, "E") not in values
        assert (ALL, "W") in values

    def test_children_yield_specialization_position(self, index):
        for position, child, _ in index.children_values(
            (ALL, ALL), range(5)
        ):
            assert child[position] is not ALL
            other = 1 - position
            assert child[other] is ALL

    def test_deterministic_order(self, index):
        first = list(index.children_values((ALL, ALL), range(5)))
        second = list(index.children_values((ALL, ALL), range(5)))
        assert [c for _, c, _ in first] == [c for _, c, _ in second]
