"""Unit tests for the table profiler."""

from repro.patterns.stats import profile_table
from repro.patterns.table import PatternTable


class TestProfile:
    def test_entities_profile(self, entities):
        profile = profile_table(entities)
        assert profile.n_rows == 16
        assert profile.n_attributes == 2
        # 2 types and 7 locations -> (2+1) * (7+1) syntactic patterns.
        assert profile.pattern_space_size == (2 + 1) * (7 + 1)
        type_profile = profile.attributes[0]
        assert type_profile.name == "Type"
        assert type_profile.cardinality == 2
        assert type_profile.top_share == 0.5
        assert profile.measure.name == "Cost"
        assert profile.measure.minimum == 1.0
        assert profile.measure.maximum == 96.0

    def test_median_even_and_odd(self):
        even = PatternTable(("A",), [("x",)] * 4, measure=[1, 2, 3, 4])
        assert profile_table(even).measure.median == 2.5
        odd = PatternTable(("A",), [("x",)] * 3, measure=[1, 2, 9])
        assert profile_table(odd).measure.median == 2

    def test_no_measure(self):
        table = PatternTable(("A",), [("x",), ("y",)])
        profile = profile_table(table)
        assert profile.measure is None
        assert "count" in profile.render()

    def test_render_mentions_attributes(self, entities):
        text = profile_table(entities).render()
        assert "Type" in text
        assert "Location" in text
        assert "rows: 16" in text

    def test_top_value_deterministic_on_ties(self):
        table = PatternTable(("A",), [("x",), ("y",)])
        profile = profile_table(table)
        # Tie between x and y: the larger repr wins deterministically.
        assert profile.attributes[0].top_value == "y"
