"""Unit tests for the pure lattice utilities."""

from repro.patterns.lattice import (
    ancestors,
    common_generalization,
    lattice_depth,
    syntactic_children,
)
from repro.patterns.pattern import ALL, Pattern


class TestSyntacticChildren:
    def test_all_children_generated(self):
        domains = [("A", "B"), ("X",)]
        children = list(syntactic_children(Pattern((ALL, ALL)), domains))
        assert Pattern(("A", ALL)) in children
        assert Pattern(("B", ALL)) in children
        assert Pattern((ALL, "X")) in children
        assert len(children) == 3

    def test_leaf_has_no_children(self):
        assert list(syntactic_children(Pattern(("A", "X")), [("A",), ("X",)])) == []


class TestDepthAndMeet:
    def test_lattice_depth(self):
        assert lattice_depth(Pattern((ALL, ALL))) == 0
        assert lattice_depth(Pattern(("A", ALL))) == 1
        assert lattice_depth(Pattern(("A", "B"))) == 2

    def test_common_generalization(self):
        meet = common_generalization(Pattern(("A", "B")), Pattern(("A", "C")))
        assert meet == Pattern(("A", ALL))

    def test_common_generalization_with_wildcards(self):
        meet = common_generalization(Pattern(("A", ALL)), Pattern(("A", "C")))
        assert meet == Pattern(("A", ALL))

    def test_disjoint_meet_is_all(self):
        meet = common_generalization(Pattern(("A", "B")), Pattern(("C", "D")))
        assert meet.is_all


class TestAncestors:
    def test_counts(self):
        pattern = Pattern(("A", "B"))
        found = list(ancestors(pattern))
        assert len(found) == 3  # (A, ALL), (ALL, B), (ALL, ALL)
        assert Pattern((ALL, ALL)) in found

    def test_every_ancestor_generalizes(self):
        pattern = Pattern(("A", "B", "C"))
        for ancestor in ancestors(pattern):
            assert pattern.is_specialization_of(ancestor)

    def test_root_has_no_ancestors(self):
        assert list(ancestors(Pattern.all_pattern(3))) == []
