"""Patterns over unusual attribute values (None, ints, unicode, mixed).

The library treats attribute values as opaque hashables; tie-breaking and
domain ordering go through ``repr``, so heterogeneous value types must not
crash anything.
"""

import pytest

from repro.patterns.enumerate import enumerate_nonempty_patterns
from repro.patterns.index import PatternIndex
from repro.patterns.optimized_cwsc import optimized_cwsc
from repro.patterns.pattern import ALL, Pattern
from repro.patterns.table import PatternTable


@pytest.fixture
def weird_table() -> PatternTable:
    return PatternTable(
        attributes=("a", "b"),
        rows=[
            (None, 1),
            (None, 2),
            ("ünïcode", 1),
            (0, 2),
            (0, 1),
        ],
        measure=[1.0, 2.0, 3.0, 4.0, 5.0],
    )


class TestWeirdValues:
    def test_none_is_a_value_not_a_wildcard(self, weird_table):
        index = PatternIndex(weird_table)
        assert index.benefit(Pattern((None, ALL))) == frozenset({0, 1})
        # None != ALL: the wildcard matches everything, None only rows 0-1.
        assert index.benefit(Pattern((ALL, ALL))) == frozenset(range(5))

    def test_int_and_str_values_coexist(self, weird_table):
        index = PatternIndex(weird_table)
        assert index.benefit(Pattern((0, 1))) == frozenset({4})
        assert index.benefit(Pattern(("ünïcode", ALL))) == frozenset({2})

    def test_enumeration_handles_mixed_types(self, weird_table):
        patterns = enumerate_nonempty_patterns(weird_table)
        assert Pattern((None, ALL)) in patterns
        assert Pattern((0, 2)) in patterns

    def test_active_domain_ordering_is_deterministic(self, weird_table):
        domain = weird_table.active_domain(0)
        assert domain == weird_table.active_domain(0)
        assert set(domain) == {None, "ünïcode", 0}

    def test_solver_runs(self, weird_table):
        result = optimized_cwsc(weird_table, k=2, s_hat=0.6)
        assert result.feasible

    def test_pattern_format_with_weird_values(self):
        pattern = Pattern((None, ALL))
        assert pattern.format(("x", "y")) == "x=None, y=ALL"

    def test_sort_keys_total_order_over_mixed_types(self, weird_table):
        patterns = sorted(enumerate_nonempty_patterns(weird_table))
        keys = [pattern.sort_key() for pattern in patterns]
        assert keys == sorted(keys)
