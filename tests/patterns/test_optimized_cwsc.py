"""Unit tests for the lattice-optimized CWSC (Fig. 3)."""

import pytest

from repro.core.cwsc import cwsc
from repro.errors import InfeasibleError, ValidationError
from repro.patterns.optimized_cwsc import optimized_cwsc
from repro.patterns.pattern import ALL, Pattern
from repro.patterns.pattern_sets import build_set_system
from repro.patterns.table import PatternTable


class TestWorkedExample:
    def test_paper_walkthrough(self, entities):
        # Section V-C1: k=2, s=9/16 -> P16 (B, ALL) then P3 (A, North).
        result = optimized_cwsc(entities, k=2, s_hat=9 / 16)
        assert list(result.labels) == [
            Pattern(("B", ALL)),
            Pattern(("A", "North")),
        ]
        assert result.total_cost == pytest.approx(28.0)
        assert result.covered == 10

    def test_considers_fewer_than_all_patterns_on_large_tables(
        self, random_table
    ):
        table = random_table(n_rows=200, n_attributes=4, domain_size=6, seed=9)
        full = build_set_system(table, "max")
        result = optimized_cwsc(table, k=4, s_hat=0.4)
        assert result.metrics.sets_considered <= full.n_sets


class TestAgainstUnoptimized:
    @pytest.mark.parametrize("seed", range(6))
    def test_same_patterns_as_core_cwsc(self, random_table, seed):
        table = random_table(n_rows=30, n_attributes=3, seed=seed)
        system = build_set_system(table, "max")
        unopt = cwsc(system, k=3, s_hat=0.6, on_infeasible="full_cover")
        opt = optimized_cwsc(
            table, k=3, s_hat=0.6, on_infeasible="full_cover"
        )
        assert list(opt.labels) == list(unopt.labels)
        assert opt.total_cost == pytest.approx(unopt.total_cost)


class TestConstraints:
    def test_respects_k(self, random_table):
        for seed in range(5):
            table = random_table(n_rows=25, seed=seed)
            result = optimized_cwsc(
                table, k=3, s_hat=0.7, on_infeasible="full_cover"
            )
            assert result.n_sets <= 3

    def test_meets_coverage(self, random_table):
        for seed in range(5):
            table = random_table(n_rows=25, seed=seed)
            result = optimized_cwsc(
                table, k=4, s_hat=0.6, on_infeasible="full_cover"
            )
            assert result.covered >= 0.6 * 25 - 1e-9

    def test_zero_coverage(self, random_table):
        result = optimized_cwsc(random_table(seed=0), k=2, s_hat=0.0)
        assert result.n_sets == 0
        assert result.feasible

    def test_k1_full_coverage_picks_all_pattern(self, random_table):
        table = random_table(n_rows=15, seed=2)
        result = optimized_cwsc(table, k=1, s_hat=1.0)
        assert list(result.labels) == [Pattern.all_pattern(3)]


class TestInfeasiblePolicies:
    def table_forcing_fallback(self) -> PatternTable:
        # k=1 with s=1 always succeeds via the all-pattern, so build a
        # situation where the threshold dead-ends: impossible for
        # patterned systems (the all-pattern always clears rem/i at
        # i = k). Instead verify the fallback path directly via a cost
        # function — not reachable -> the policies still behave sanely.
        return PatternTable(("A",), [("x",), ("y",)], measure=[1.0, 2.0])

    def test_full_cover_never_needed_but_allowed(self):
        table = self.table_forcing_fallback()
        result = optimized_cwsc(
            table, k=2, s_hat=1.0, on_infeasible="full_cover"
        )
        assert result.feasible

    def test_validation(self, random_table):
        with pytest.raises(ValidationError):
            optimized_cwsc(random_table(), k=0, s_hat=0.5)
        with pytest.raises(ValidationError):
            optimized_cwsc(random_table(), k=2, s_hat=2.0)
        with pytest.raises(ValidationError):
            optimized_cwsc(PatternTable(("A",), []), k=1, s_hat=0.5)


class TestCostFunctions:
    def test_count_cost(self, random_table):
        table = random_table(n_rows=20, with_measure=False, seed=3)
        result = optimized_cwsc(table, k=3, s_hat=0.5, cost="count")
        assert result.feasible
        assert result.total_cost >= result.covered / 3  # sanity

    def test_sum_cost_matches_unoptimized(self, random_table):
        table = random_table(n_rows=25, seed=4)
        system = build_set_system(table, "sum")
        unopt = cwsc(system, k=3, s_hat=0.5, on_infeasible="full_cover")
        opt = optimized_cwsc(
            table, k=3, s_hat=0.5, cost="sum", on_infeasible="full_cover"
        )
        assert list(opt.labels) == list(unopt.labels)
