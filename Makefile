# Test and verification entry points.
#
#   make test         tier-1 suite (what CI gates on)
#   make chaos        fault-injection suite only, fixed seeds so failures reproduce
#   make verify       tier-1 followed by the chaos suite — the full gate
#   make bench        quick benchmark matrix, gated against the committed baseline
#                     (runtime AND quality); appends to BENCH_history.jsonl
#   make bench-large  n = 10^5 packed-vs-bitset matrix (--scale large), gated
#                     against the committed baseline's large cells (runtime,
#                     quality, and peak RSS)
#   make trace-smoke  traced solves (plain + --isolate), schema-validated
#   make profile-smoke  profiled solve, flamegraph export, dashboard render
#   make serve-smoke  boot the real daemon twice: healthy mixed-deadline
#                     traffic, then forced overload (429s) + SIGTERM drain
#   make debug-smoke  boot the daemon with a postmortem spool, SIGKILL a
#                     pool worker mid-service, assert exactly one
#                     schema-valid flight-recorder bundle appears and the
#                     public debug CLI accepts it
#   make dashboard    render trace-smoke's solve trace + bench history to
#                     report.html
#
# PYTHONHASHSEED is pinned so set/dict iteration orders (and thus any
# order-dependent tie-breaking bug the suites might expose) reproduce
# run to run.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
export PYTHONHASHSEED := 0

.PHONY: test chaos verify bench bench-large trace-smoke profile-smoke serve-smoke debug-smoke dashboard

test:
	$(PYTHON) -m pytest -x -q

chaos:
	$(PYTHON) -m pytest -x -q -m chaos

verify: test chaos

bench:
	$(PYTHON) -m repro.bench --quick --check --out BENCH_micro.json

bench-large:
	$(PYTHON) -m repro.bench --scale large --repeat 2 --check --out BENCH_large.json

trace-smoke:
	$(PYTHON) benchmarks/trace_smoke.py trace-smoke

profile-smoke:
	$(PYTHON) benchmarks/profile_smoke.py profile-smoke

serve-smoke:
	$(PYTHON) benchmarks/serve_smoke.py serve-smoke

debug-smoke:
	$(PYTHON) benchmarks/debug_smoke.py debug-smoke

dashboard: trace-smoke
	$(PYTHON) -m repro.cli report trace-smoke/solve.jsonl -o report.html
