"""Bench: Section VI-C — partial max coverage ignores cost.

Paper shape: the max-coverage heuristic returns the same expensive
solution regardless of the coverage fraction, several times costlier than
CWSC (10x at s=0.3, >3x at s=0.6 on LBL).
"""


def test_sec6c_max_coverage_blowup(regenerate):
    report = regenerate("sec6c")
    ratios = report.data["ratios"]
    mc_costs = report.data["max_coverage"]

    # Never cheaper than CWSC, and clearly costlier at low coverage.
    assert all(ratio >= 1.0 - 1e-9 for ratio in ratios.values())
    low_s = min(ratios)
    assert ratios[low_s] > 2.0

    # The max coverage solution's cost is insensitive to s: the greedy
    # prefix is the same, only its length varies.
    costs = [mc_costs[s] for s in sorted(mc_costs)]
    assert max(costs) <= costs[0] * 3
