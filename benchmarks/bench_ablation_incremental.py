"""Ablation: incremental maintenance vs. recompute-on-every-batch.

The incremental maintainer (paper §VII future work) keeps the current
patterns while they still satisfy the coverage fraction and repairs with
spare picks before falling back to a full recompute. This ablation streams
the same batches through (a) the maintainer and (b) a recompute-always
loop, and compares total work (patterns considered) and wall time.
"""

import pytest

from repro.datasets.lbl import lbl_trace
from repro.extensions.incremental import IncrementalCWSC
from repro.patterns.optimized_cwsc import optimized_cwsc

K = 8
S_HAT = 0.4
BASE_ROWS = 2_000
BATCH_ROWS = 500
N_BATCHES = 5


def batches():
    return [lbl_trace(BATCH_ROWS, seed=200 + i) for i in range(N_BATCHES)]


def run_incremental():
    maintainer = IncrementalCWSC(
        lbl_trace(BASE_ROWS, seed=199), k=K, s_hat=S_HAT
    )
    for batch in batches():
        maintainer.add_records(batch)
    return maintainer


def run_recompute_always():
    table = lbl_trace(BASE_ROWS, seed=199)
    considered = 0
    result = optimized_cwsc(table, K, S_HAT, on_infeasible="full_cover")
    considered += result.metrics.sets_considered
    for batch in batches():
        table = table.extend(batch)
        result = optimized_cwsc(table, K, S_HAT, on_infeasible="full_cover")
        considered += result.metrics.sets_considered
    return considered, result


def test_incremental_maintenance(benchmark):
    maintainer = benchmark.pedantic(run_incremental, rounds=1, iterations=1)
    result = maintainer.current_result()
    assert result.feasible
    assert result.n_sets <= K
    print(
        f"\nincremental: kept={maintainer.stats.kept} "
        f"repaired={maintainer.stats.repaired} "
        f"recomputed={maintainer.stats.recomputed} "
        f"considered={maintainer.stats.metrics.sets_considered}"
    )


def test_recompute_always(benchmark):
    considered, result = benchmark.pedantic(
        run_recompute_always, rounds=1, iterations=1
    )
    assert result.feasible
    print(f"\nrecompute-always: considered={considered}")


def test_incremental_does_less_work():
    maintainer = run_incremental()
    recompute_considered, _ = run_recompute_always()
    # The maintainer skips full recomputation whenever coverage held, so
    # over a stationary stream it examines fewer patterns in total.
    assert (
        maintainer.stats.metrics.sets_considered <= recompute_considered
    )
