"""Ablation: the optimized CMC's initial budget seed.

Fig. 4 line 1 seeds the budget with the cost of the k cheapest patterns,
which cannot be known without enumeration; our default uses the sum of the
k smallest measure values (DESIGN.md documents the deviation). This
ablation measures what the choice costs: a deliberately tiny seed forces
extra low-budget rounds (each a lattice walk), a huge seed skips the
guessing ladder entirely but can overshoot the cost guarantee.
"""

import pytest

from repro.experiments.sweeps import master_trace
from repro.patterns.optimized_cmc import optimized_cmc

N_ROWS = 6_000
SEED = 7
K = 10
S_HAT = 0.3


@pytest.fixture(scope="module")
def table():
    return master_trace(N_ROWS, SEED)


def run(table, initial_budget):
    return optimized_cmc(
        table, K, S_HAT, b=1.0, eps=1.0, initial_budget=initial_budget
    )


def test_default_seed(benchmark, table):
    result = benchmark.pedantic(
        optimized_cmc, args=(table, K, S_HAT),
        kwargs={"b": 1.0, "eps": 1.0}, rounds=2, iterations=1,
    )
    assert result.feasible


def test_tiny_seed_more_rounds(benchmark, table):
    result = benchmark.pedantic(
        run, args=(table, 1e-4), rounds=1, iterations=1
    )
    default = optimized_cmc(table, K, S_HAT, b=1.0, eps=1.0)
    assert result.feasible
    assert result.metrics.budget_rounds >= default.metrics.budget_rounds

    print(
        f"\nablation: tiny seed -> {result.metrics.budget_rounds} rounds, "
        f"{result.metrics.sets_considered} patterns considered; default "
        f"-> {default.metrics.budget_rounds} rounds, "
        f"{default.metrics.sets_considered} considered"
    )


def test_huge_seed_one_round(benchmark, table):
    result = benchmark.pedantic(
        run, args=(table, 1e9), rounds=1, iterations=1
    )
    assert result.feasible
    assert result.metrics.budget_rounds == 1
