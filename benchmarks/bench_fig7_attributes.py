"""Bench: Fig. 7 — running time vs. number of pattern attributes.

Paper shape: more attributes mean an exponentially larger pattern space,
so the unoptimized algorithms slow down steeply while the optimized ones
stay ahead at the full five attributes.
"""


def test_fig7_runtime_vs_attributes(regenerate):
    report = regenerate("fig7")
    rows = report.data["rows"]
    first, last = rows[0], rows[-1]

    # Work grows with attribute count for the unoptimized algorithms
    # (counts are deterministic; runtimes are noisy).
    assert last["cwsc"]["considered"] > first["cwsc"]["considered"]
    assert last["cmc"]["considered"] > first["cmc"]["considered"]
    # At 5 attributes the optimized variants win.
    assert (
        last["optimized_cwsc"]["runtime"] < last["cwsc"]["runtime"] * 1.2
    )
    assert last["optimized_cmc"]["runtime"] < last["cmc"]["runtime"] * 1.2
