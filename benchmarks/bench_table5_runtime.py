"""Bench: Table V — running time, CWSC vs. CMC(b, eps).

Paper shape: CWSC takes well under half the time of every CMC
configuration; increasing b speeds CMC up (fewer budget rounds).
"""


def test_table5_runtime_grid(regenerate):
    report = regenerate("table5")
    runtimes = report.data["runtimes"]
    s_values = report.data["config"]["s_values"]
    cmc_labels = [label for label in runtimes if label.startswith("CMC")]

    for s in s_values:
        fastest_cmc = min(runtimes[label][s] for label in cmc_labels)
        # The paper reports < 0.5x; allow slack for machine noise.
        assert runtimes["CWSC"][s] < fastest_cmc * 0.9

    # b=2 is not slower than b=0.5 at the same eps (fewer rounds).
    for s in s_values:
        assert (
            runtimes["CMC (b=2, eps=1)"][s]
            <= runtimes["CMC (b=0.5, eps=1)"][s] * 1.3
        )
