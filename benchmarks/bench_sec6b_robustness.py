"""Bench: Section VI-B — quality robustness on perturbed weights.

Paper shape: on both synthetic groups (uniform +-delta noise, log-normal
re-ranked weights) CWSC's costs stay no greater than CMC's across its
(b, eps) configurations — mirroring Table IV's high-coverage behaviour
(the experiment runs at s = 0.6 where the targets align).
"""


def test_sec6b_perturbation_robustness(regenerate):
    report = regenerate("sec6b")
    records = report.data["records"]
    assert len(records) >= 6  # 3 deltas + 3 sigmas

    wins = 0
    for record in records:
        best_cmc = min(record["cmc"].values())
        if record["cwsc"] <= best_cmc * 1.1:
            wins += 1
    # CWSC stays competitive on the majority of perturbed data sets. The
    # paper reports it never losing on LBL-derived perturbations; on the
    # synthetic trace the most extreme log-normal re-ranking (sigma=4)
    # inflates the cost of CWSC's full-coverage obligation relative to
    # CMC's (1 - 1/e)-discounted target — recorded in EXPERIMENTS.md.
    assert wins * 2 >= len(records)
