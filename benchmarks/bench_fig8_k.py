"""Bench: Fig. 8 — running time vs. the size constraint k.

Paper shape: CWSC gets slower as k grows (more threshold iterations)
while CMC gets faster (cheap feasible solutions appear at smaller
budgets, so fewer budget rounds are tried).
"""


def test_fig8_runtime_vs_k(regenerate):
    report = regenerate("fig8")
    rows = report.data["rows"]
    first, last = rows[0], rows[-1]

    # CMC tries fewer (or equal) budget rounds at the largest k.
    assert last["cmc"]["rounds"] <= first["cmc"]["rounds"]
    assert last["optimized_cmc"]["rounds"] <= first["optimized_cmc"]["rounds"]
    # And is not slower there than at the smallest k (with slack).
    assert last["cmc"]["runtime"] <= first["cmc"]["runtime"] * 1.3
    # Every configuration stays feasible.
    for row in rows:
        for name in ("cmc", "optimized_cmc", "cwsc", "optimized_cwsc"):
            assert row[name]["covered"] > 0
