"""Bench: Section VI-D — comparison to the exhaustive optimum.

Paper shape: on small samples CMC with small b finds an optimal solution
and CWSC is optimal or near-optimal (one miss by 1/8 in the paper).
"""


def test_sec6d_vs_optimal(regenerate):
    report = regenerate("sec6d")
    records = report.data["records"]
    assert records

    for record in records:
        assert record["lp_bound"] <= record["optimal"] + 1e-6
        assert record["cwsc"] >= record["optimal"] - 1e-9
        # Near-optimal: within a small constant factor on every sample.
        # (The paper reports CWSC "almost always" exactly optimal on its
        # LBL samples; on the synthetic trace the gap is larger — see
        # EXPERIMENTS.md.)
        assert record["cwsc"] <= record["optimal"] * 2.5 + 1e-9

    # And actually near-optimal (within 10%) on at least one sample.
    assert any(
        record["cwsc"] <= record["optimal"] * 1.1 + 1e-9
        for record in records
    )
