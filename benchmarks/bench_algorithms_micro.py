"""Micro-benchmarks of the individual algorithms at a fixed workload.

Unlike the artifact benches (which time one full regeneration), these give
pytest-benchmark proper multi-round statistics per algorithm, on the
Fig. 5 midpoint configuration (n = 12000, k = 10, s = 0.3, b = 1, eps = 1).
"""

import pytest

from repro.core.cmc_epsilon import cmc_epsilon
from repro.core.cwsc import cwsc
from repro.experiments.sweeps import master_trace
from repro.patterns.optimized_cmc import optimized_cmc
from repro.patterns.optimized_cwsc import optimized_cwsc
from repro.patterns.pattern_sets import build_set_system

N_ROWS = 12_000
SEED = 7
K = 10
S_HAT = 0.3


@pytest.fixture(scope="module")
def table():
    return master_trace(N_ROWS, SEED)


@pytest.fixture(scope="module")
def system(table):
    return build_set_system(table, "max")


def test_enumerate_and_build_system(benchmark, table):
    result = benchmark.pedantic(
        build_set_system, args=(table, "max"), rounds=2, iterations=1
    )
    assert result.has_full_cover


def test_cwsc_unoptimized(benchmark, system):
    result = benchmark.pedantic(
        cwsc, args=(system, K, S_HAT),
        kwargs={"on_infeasible": "full_cover"}, rounds=2, iterations=1,
    )
    assert result.feasible


def test_cmc_unoptimized(benchmark, system):
    result = benchmark.pedantic(
        cmc_epsilon, args=(system, K, S_HAT),
        kwargs={"b": 1.0, "eps": 1.0}, rounds=2, iterations=1,
    )
    assert result.feasible


def test_cwsc_optimized(benchmark, table):
    result = benchmark.pedantic(
        optimized_cwsc, args=(table, K, S_HAT),
        kwargs={"on_infeasible": "full_cover"}, rounds=2, iterations=1,
    )
    assert result.feasible


def test_cmc_optimized(benchmark, table):
    result = benchmark.pedantic(
        optimized_cmc, args=(table, K, S_HAT),
        kwargs={"b": 1.0, "eps": 1.0}, rounds=2, iterations=1,
    )
    assert result.feasible
