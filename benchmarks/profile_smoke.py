#!/usr/bin/env python
"""CI profile-smoke: end-to-end exercise of ``--profile`` + dashboard.

Generates a small LBL-style CSV, runs ``scwsc solve --profile --trace``,
then checks that

1. the trace validates against ``scwsc-trace/1`` including the new
   ``profile`` and ``quality`` record types;
2. the trace contains cProfile and memory profile records for the
   ``solve`` scope, plus a parent peak-RSS sample;
3. ``scwsc trace flamegraph`` exports non-empty collapsed stacks;
4. ``scwsc report TRACE -o report.html`` renders the self-contained
   dashboard with its waterfall / self-time / quality / profile panels.

Exit 0 on success; non-zero with a message on the first failure. CI
uploads the rendered ``report.html`` as an artifact.

Usage::

    python benchmarks/profile_smoke.py [OUT_DIR]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.cli import main as cli_main
from repro.datasets.registry import load_dataset
from repro.obs.report import load_trace
from repro.obs.schema import validate_trace_file

ATTRIBUTES = "protocol,localhost,remotehost,endstate,flags"


def fail(message: str) -> None:
    print(f"profile-smoke: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def run_cli(argv: list[str]) -> None:
    code = cli_main(argv)
    if code != 0:
        fail(f"`scwsc {' '.join(argv)}` exited {code}")


def main() -> int:
    out_dir = (
        Path(sys.argv[1]) if len(sys.argv) > 1 else Path("profile-smoke")
    )
    out_dir.mkdir(parents=True, exist_ok=True)
    csv_path = out_dir / "smoke.csv"
    load_dataset("lbl:300@7").to_csv(csv_path)

    # 1. Profiled, traced solve.
    trace_path = out_dir / "profiled.jsonl"
    run_cli(
        [
            "solve", str(csv_path),
            "--attributes", ATTRIBUTES,
            "--measure", "duration",
            "-k", "4", "-s", "0.6",
            "--profile",
            "--trace", str(trace_path),
        ]
    )
    problems = validate_trace_file(str(trace_path))
    if problems:
        for problem in problems[:20]:
            print(f"profile-smoke: {trace_path}: {problem}", file=sys.stderr)
        fail(f"{trace_path} has {len(problems)} schema problem(s)")
    records = load_trace(str(trace_path))
    kinds = {
        (r.get("profile_kind"), r.get("scope"))
        for r in records
        if r.get("type") == "profile"
    }
    for expected in (("cprofile", "solve"), ("memory", "solve"), ("rss", "process")):
        if expected not in kinds:
            fail(f"{trace_path} missing profile record {expected}; got {sorted(kinds)}")
    if not any(r.get("type") == "quality" for r in records):
        fail(f"{trace_path} has no quality record")

    # 2. Flamegraph export.
    collapsed_path = out_dir / "profiled.collapsed"
    run_cli(
        ["trace", "flamegraph", str(trace_path), "-o", str(collapsed_path)]
    )
    stacks = collapsed_path.read_text().splitlines()
    if not stacks:
        fail("flamegraph export produced no stacks")
    if not any(line.startswith("cpu:solve;") for line in stacks):
        fail("flamegraph export has no cProfile-derived cpu: stacks")

    # 3. Dashboard render.
    report_path = out_dir / "report.html"
    run_cli(["report", str(trace_path), "-o", str(report_path)])
    html = report_path.read_text()
    for panel in ("waterfall", "self-time", "quality", "profile", "bench-trends"):
        if f'id="{panel}"' not in html:
            fail(f"report.html missing panel id={panel!r}")
    if "<script src=" in html or "http://" in html or "https://" in html.replace(
        "https://www.w3.org", ""
    ):
        fail("report.html is not self-contained (external reference found)")

    print(f"profile-smoke: ok ({trace_path}, {report_path})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
