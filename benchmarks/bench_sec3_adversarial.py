"""Bench: Section III — the budgeted-max-coverage adversarial instance.

Paper shape: greedy BMC allowed ck sets covers only ck of Ck elements
(arbitrarily small as C grows), while the problem's optimum — which CWSC
finds — covers 100%.
"""


def test_sec3_adversarial_instance(regenerate):
    report = regenerate("sec3")
    data = report.data
    config = data["config"]

    assert data["bmc_covered"] == config["c"] * config["k"]
    assert data["cwsc_covered"] == data["n_elements"]
    assert data["bmc_covered"] / data["n_elements"] == (
        config["c"] / config["big_c"]
    )
