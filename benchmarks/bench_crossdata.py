"""Bench: the Table IV-style comparison on census-like data.

Checks that the paper's qualitative conclusion — CWSC competitive with
CMC, winning at high coverage — is not an artifact of the network-trace
workload.
"""


def test_crossdata_quality(regenerate):
    report = regenerate("crossdata")
    records = report.data["records"]

    for record in records:
        assert record["cwsc"] > 0
        assert record["cwsc_sets"] <= report.data["config"]["k"]
    # At the highest coverage fraction CWSC stays within a small factor
    # of the best CMC configuration.
    top = max(records, key=lambda record: record["s"])
    best_cmc = min(top["cmc"].values())
    assert top["cwsc"] <= best_cmc * 2.0
