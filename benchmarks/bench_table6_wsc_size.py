"""Bench: Table VI — plain partial weighted set cover needs many patterns.

Paper shape: the pattern count grows steeply with the coverage fraction
(15 -> 58 between s=0.5 and s=0.9 on LBL), far past any reasonable k.
"""


def test_table6_wsc_pattern_counts(regenerate):
    report = regenerate("table6")
    counts = report.data["counts"]
    s_values = sorted(counts)

    ordered = [counts[s] for s in s_values]
    assert ordered == sorted(ordered)  # monotone growth
    assert ordered[-1] >= 2 * ordered[0]  # steep growth
    assert ordered[-1] > 10  # far beyond the paper's k = 10
