"""Bench: regenerate Tables I/II and the worked examples (Sections I/V)."""


def test_running_example(regenerate):
    report = regenerate("running-example")
    data = report.data
    assert data["n_patterns"] == 24
    assert data["wsc"] == {"n_sets": 7, "cost": 24.0}
    assert data["optimal_cost"] == 27.0
    assert data["cwsc_cost"] == 28.0
    assert data["cmc_covered"] == 9
    assert data["cmc_rounds"] == 3
