"""Bench: Table IV — solution cost, CWSC vs. CMC(b, eps).

Paper shape: CWSC's costs are competitive with CMC across the grid and
win at the highest coverage fraction; increasing b tends to increase
CMC's cost. (CMC targets only (1 - 1/e) of the requested coverage —
Theorem 4 — so at low s it can undercut CWSC; see EXPERIMENTS.md.)
"""


def test_table4_quality_grid(regenerate):
    report = regenerate("table4")
    costs = report.data["costs"]
    s_values = report.data["config"]["s_values"]
    cmc_labels = [label for label in costs if label.startswith("CMC")]
    s_top = max(s_values)

    # At the highest coverage fraction CWSC is at least competitive with
    # the best CMC configuration (the paper's Table IV has it winning).
    best_cmc_top = min(costs[label][s_top] for label in cmc_labels)
    assert costs["CWSC"][s_top] <= best_cmc_top * 1.5

    # Larger b never helps CMC's cost at the top coverage fraction:
    # compare b=0.5 vs b=2 at eps=1.
    assert (
        costs["CMC (b=0.5, eps=1)"][s_top]
        <= costs["CMC (b=2, eps=1)"][s_top] * 1.0 + 1e-9
    )

    # Costs weakly increase with the coverage requirement.
    for label, by_s in costs.items():
        ordered = [by_s[s] for s in s_values]
        assert ordered[-1] >= ordered[0] - 1e-9, label
