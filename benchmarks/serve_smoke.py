#!/usr/bin/env python
"""CI serve-smoke: boot the real daemon, load it, shed it, drain it.

Two daemon boots, both through ``scwsc serve`` subprocesses so the whole
stack (CLI, signal handling, pool spawn) is on the hook:

1. **Healthy daemon** — concurrent solves with mixed deadlines must all
   come back 200 with verified bodies; an upstream ``traceparent`` is
   adopted end to end; ``/healthz``, ``/readyz``, and ``/metrics``
   answer; a SIGTERM exits 0 and leaves a schema-valid trace plus a
   schema-valid access log (one record per request), both uploaded as
   CI artifacts (the trace also renders into the run dashboard).
2. **Overloaded daemon** — workers are forced to hang via the chaos
   layer (``REPRO_CHAOS=hang=1``) with an admission cap of 4, and 8
   concurrent requests must split into exactly 4 degraded 200s and
   4 429s (with ``Retry-After``); SIGTERM lands *during* the load and
   the daemon must still drain the in-flight work and exit 0.

Exit 0 on success; non-zero with a message on the first failure. CI
uploads the output directory (traces + dashboard) as an artifact.

Usage::

    python benchmarks/serve_smoke.py [OUT_DIR]
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.cli import main as cli_main
from repro.core.result import result_from_dict
from repro.core.validate import verify_result
from repro.datasets.registry import load_dataset
from repro.obs.schema import validate_trace_file
from repro.serve.accesslog import iter_access_records, validate_access_file
from repro.patterns.pattern_sets import build_set_system
from repro.resilience.pool.protocol import system_from_payload, system_to_payload

HANG_ENV = "hang=1.0,hang_seconds=120,fault_limit=1000000"
DEADLINE = 2.0
GRACE = 0.5


def fail(message: str) -> None:
    print(f"serve-smoke: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


class Daemon:
    """One ``scwsc serve`` subprocess plus a JSON client for it."""

    def __init__(self, out_dir: Path, name: str, extra_args: list[str],
                 chaos: str | None = None):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        if chaos is not None:
            env["REPRO_CHAOS"] = chaos
        self.trace_path = out_dir / f"{name}.jsonl"
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0",
                "--workers", "2",
                "--default-deadline", str(DEADLINE),
                "--grace", str(GRACE),
                "--trace", str(self.trace_path),
                *extra_args,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        line = self.proc.stdout.readline()
        try:
            boot = json.loads(line)
        except ValueError:
            self.kill()
            fail(f"{name}: unparseable boot line: {line!r}")
        if boot.get("event") != "listening" or not boot.get("ready"):
            self.kill()
            fail(f"{name}: bad boot record: {boot}")
        self.base = f"http://127.0.0.1:{boot['port']}"

    def request(self, path: str, body=None, timeout: float = 60.0,
                headers: dict | None = None):
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            self.base + path, data=data, headers=headers or {}
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return response.status, json.loads(response.read()), dict(
                    response.headers
                )
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read()), dict(error.headers)

    def get_text(self, path: str) -> tuple[int, str]:
        with urllib.request.urlopen(self.base + path, timeout=30) as response:
            return response.status, response.read().decode()

    def terminate(self, timeout: float = 60.0) -> int:
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()


def check_trace(path: Path, required_events: set[str]) -> None:
    problems = validate_trace_file(str(path))
    if problems:
        for problem in problems[:20]:
            print(f"serve-smoke: {path}: {problem}", file=sys.stderr)
        fail(f"{path} has {len(problems)} schema problem(s)")
    events = set()
    with open(path) as handle:
        for line in handle:
            record = json.loads(line)
            if record.get("type") == "event":
                events.add(record["name"])
    missing = required_events - events
    if missing:
        fail(f"{path} missing events {sorted(missing)}; got {sorted(events)}")


def solve_payload() -> dict:
    # The paper's 16-entity running example: small enough that the full
    # solver chain finishes well inside the tightest deadline, so every
    # healthy-phase request must come back "ok", never degraded.
    system = build_set_system(load_dataset("entities"), "count")
    return system_to_payload(system)


def healthy_phase(out_dir: Path, system_payload: dict) -> Path:
    access_path = out_dir / "serve-access.jsonl"
    if access_path.exists():
        access_path.unlink()
    daemon = Daemon(
        out_dir, "serve-healthy", ["--access-log", str(access_path)]
    )
    try:
        code, _, _ = daemon.request("/healthz")
        if code != 200:
            fail(f"healthz answered {code}")
        code, ready, _ = daemon.request("/readyz")
        if code != 200 or not ready.get("ready"):
            fail(f"readyz not ready: {code} {ready}")

        deadlines = [0.5, 1.0, 2.0, 5.0, 10.0, 30.0]
        outcomes: list[tuple[float, int, dict]] = []
        lock = threading.Lock()

        def fire(deadline: float) -> None:
            code, body, _ = daemon.request(
                "/solve",
                {
                    "system": system_payload,
                    "k": 4,
                    "s": 0.5,
                    "deadline": deadline,
                    "tag": f"d{deadline:g}",
                },
                timeout=deadline + GRACE + 60,
            )
            with lock:
                outcomes.append((deadline, code, body))

        threads = [
            threading.Thread(target=fire, args=(d,)) for d in deadlines
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
            if thread.is_alive():
                fail("healthy solve hung")

        system = system_from_payload(system_payload)
        for deadline, code, body in outcomes:
            if code != 200:
                fail(f"healthy solve (deadline {deadline}) answered {code}: {body}")
            problems = verify_result(
                system, result_from_dict(body["result"]), k=4, s_hat=0.5
            )
            if problems:
                fail(f"200 body failed verification: {problems}")

        # One solve with an upstream traceparent: the daemon must adopt
        # the caller's trace id end to end (response body + header).
        upstream_tid = "ab" * 16
        code, body, headers = daemon.request(
            "/solve",
            {"system": system_payload, "k": 4, "s": 0.5, "tag": "traced"},
            headers={"traceparent": f"00-{upstream_tid}-{'cd' * 8}-01"},
        )
        if code != 200 or body.get("trace_id") != upstream_tid:
            fail(f"traceparent not adopted: {code} {body.get('trace_id')}")
        echoed = headers.get("Traceparent", "")
        if upstream_tid not in echoed:
            fail(f"response Traceparent header missing trace id: {echoed!r}")

        code, page = daemon.get_text("/metrics")
        for needle in (
            "scwsc_build_info{",
            'scwsc_server_requests_total{code="200",endpoint="/solve"}',
            "scwsc_server_request_seconds_bucket",
            "scwsc_slo_burn_rate{",
        ):
            if needle not in page:
                fail(f"/metrics missing {needle!r}")

        exit_code = daemon.terminate()
        if exit_code != 0:
            fail(f"healthy daemon exited {exit_code} on SIGTERM")
    finally:
        daemon.kill()

    # Access log: one schema-valid record per request we made —
    # healthz + readyz + 6 deadline solves + the traced solve + metrics.
    count = validate_access_file(str(access_path))
    if count != 10:
        fail(f"expected 10 access-log records, got {count}")
    traced = [
        record
        for record in iter_access_records(str(access_path))
        if record["trace_id"] == upstream_tid
    ]
    if len(traced) != 1 or traced[0].get("solve_status") != "ok":
        fail(f"bad access record for traced solve: {traced}")
    check_trace(
        daemon.trace_path,
        {"server_start", "server_complete", "server_drain_begin",
         "server_drained", "server_stop"},
    )
    print(f"serve-smoke: healthy phase ok ({len(deadlines)} mixed-deadline 200s)")
    return daemon.trace_path


def overload_phase(out_dir: Path, system_payload: dict) -> None:
    daemon = Daemon(
        out_dir, "serve-overload", ["--max-inflight", "4"], chaos=HANG_ENV
    )
    try:
        outcomes: list[tuple[int, dict, dict]] = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def fire() -> None:
            barrier.wait()
            code, body, headers = daemon.request(
                "/solve",
                {"system": system_payload, "k": 4, "s": 0.5,
                 "deadline": DEADLINE},
                timeout=DEADLINE + GRACE + 60,
            )
            with lock:
                outcomes.append((code, body, headers))

        threads = [threading.Thread(target=fire) for _ in range(8)]
        for thread in threads:
            thread.start()
        # SIGTERM while the admitted requests are still in flight: the
        # drain must finish them before the process exits.
        time.sleep(0.7)
        daemon.proc.send_signal(signal.SIGTERM)
        for thread in threads:
            thread.join(120)
            if thread.is_alive():
                fail("overload request hung")

        codes = sorted(code for code, _, _ in outcomes)
        if codes != [200] * 4 + [429] * 4:
            fail(f"expected 4x200 + 4x429, got {codes}")
        for code, body, headers in outcomes:
            if code == 429:
                if "Retry-After" not in headers:
                    fail("429 without Retry-After")
            elif body.get("status") != "fallback":
                fail(f"hung-worker 200 was not a fallback: {body.get('status')}")
        exit_code = daemon.proc.wait(timeout=60)
        if exit_code != 0:
            fail(f"overloaded daemon exited {exit_code} on SIGTERM")
    finally:
        daemon.kill()
    check_trace(
        daemon.trace_path,
        {"server_start", "server_shed", "server_drain_begin",
         "server_drained", "server_stop"},
    )
    print("serve-smoke: overload phase ok (4x200 fallback, 4x429, clean drain)")


def main() -> int:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("serve-smoke")
    out_dir.mkdir(parents=True, exist_ok=True)
    system_payload = solve_payload()

    healthy_trace = healthy_phase(out_dir, system_payload)
    overload_phase(out_dir, system_payload)

    # The served trace renders into the standard run dashboard.
    report_path = out_dir / "serve-report.html"
    code = cli_main(
        ["report", str(healthy_trace), "-o", str(report_path),
         "--title", "serve-smoke"]
    )
    if code != 0 or not report_path.exists():
        fail(f"dashboard render exited {code}")
    print(f"serve-smoke: ok (dashboard at {report_path})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
