"""Ablation: redundancy pruning of greedy output.

:func:`repro.core.prune_redundant` is a post-processing extension (the
paper's algorithms return raw greedy output). This bench measures how
much pruning saves on top of CWSC and (especially) CMC, whose per-level
quotas and budget overshoot routinely leave redundant picks behind.
"""

import pytest

from repro.core.cmc_epsilon import cmc_epsilon
from repro.core.cwsc import cwsc
from repro.core.postprocess import prune_redundant
from repro.experiments.sweeps import master_trace
from repro.patterns.pattern_sets import build_set_system

N_ROWS = 6_000
SEED = 7
K = 10
S_HAT = 0.5


@pytest.fixture(scope="module")
def system():
    return build_set_system(master_trace(N_ROWS, SEED), "max")


def test_prune_after_cwsc(benchmark, system):
    result = cwsc(system, K, S_HAT, on_infeasible="full_cover")
    pruned = benchmark.pedantic(
        prune_redundant, args=(system, result, S_HAT),
        rounds=3, iterations=1,
    )
    assert pruned.total_cost <= result.total_cost + 1e-9
    assert pruned.covered >= system.required_coverage(S_HAT)
    print(
        f"\nCWSC: {result.n_sets} sets @ {result.total_cost:.2f} -> "
        f"{pruned.n_sets} sets @ {pruned.total_cost:.2f}"
    )


def test_prune_after_cmc(benchmark, system):
    result = cmc_epsilon(system, K, S_HAT, b=1.0, eps=1.0)
    # CMC's own coverage obligation is the discounted one; prune against
    # what the run actually achieved.
    achieved = result.covered / system.n_elements
    pruned = benchmark.pedantic(
        prune_redundant, args=(system, result, achieved),
        rounds=3, iterations=1,
    )
    assert pruned.total_cost <= result.total_cost + 1e-9
    print(
        f"\nCMC: {result.n_sets} sets @ {result.total_cost:.2f} -> "
        f"{pruned.n_sets} sets @ {pruned.total_cost:.2f}"
    )
