"""Ablation: the LP-rounding strawman vs. the paper's algorithms.

Section III argues LP rounding "may violate the cardinality constraint by
more than a (1 + eps) factor unless k is large". This bench runs the
randomized rounding on an enumerated LBL sample and reports the size
violations alongside CWSC (which never violates k).
"""

import pytest

from repro.core.cwsc import cwsc
from repro.core.lp_rounding import lp_rounding
from repro.experiments.sweeps import master_trace
from repro.patterns.pattern_sets import build_set_system

N_ROWS = 600
SEED = 7
K = 5
S_HAT = 0.5


@pytest.fixture(scope="module")
def system():
    table = master_trace(12_000, SEED).sample(N_ROWS, seed=3)
    return build_set_system(table, "max")


def test_lp_rounding(benchmark, system):
    result = benchmark.pedantic(
        lp_rounding, args=(system, K, S_HAT),
        kwargs={"trials": 10, "seed": 1}, rounds=1, iterations=1,
    )
    greedy = cwsc(system, K, S_HAT, on_infeasible="full_cover")
    print(
        f"\nlp_rounding: {result.n_sets} sets (k={K}), cost "
        f"{result.total_cost:.2f}, size violations "
        f"{result.params['size_violations']}/10 trials; CWSC: "
        f"{greedy.n_sets} sets, cost {greedy.total_cost:.2f}"
    )
    assert result.feasible
    assert greedy.n_sets <= K
    # The LP value sandwiches both costs from below.
    assert result.total_cost >= result.params["lp_value"] - 1e-6
    assert greedy.total_cost >= result.params["lp_value"] - 1e-6


def test_cwsc_reference(benchmark, system):
    result = benchmark.pedantic(
        cwsc, args=(system, K, S_HAT),
        kwargs={"on_infeasible": "full_cover"}, rounds=3, iterations=1,
    )
    assert result.n_sets <= K
