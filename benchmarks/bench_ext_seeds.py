"""Bench: cost stability of the CWSC/CMC comparison across data seeds."""


def test_ext_seeds_stability(regenerate):
    report = regenerate("ext-seeds")
    records = report.data["records"]
    assert len(records) == len(report.data["config"]["seeds"])

    ratios = [record["ratio"] for record in records]
    # The comparison is stable: the CWSC/CMC cost ratio varies by well
    # under an order of magnitude across seeds.
    assert max(ratios) <= 4 * min(ratios)
    for record in records:
        assert record["cwsc"] > 0
        assert record["cmc"] > 0
