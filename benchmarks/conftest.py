"""Shared benchmark helpers.

Each benchmark regenerates one paper artifact (full scale), prints the
rendered table (run pytest with ``-s`` to see it live), and asserts the
*shape* the paper reports. Deterministic quantities (costs, sizes, pattern
counts) are asserted strictly; runtime orderings carry slack for machine
noise.

Sweeps are memoized inside :mod:`repro.experiments.sweeps`, so Fig. 5 and
Fig. 6 (two views of the same runs) cost one sweep per session, exactly
like the paper's methodology.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import run_experiment

#: When set, every regenerated artifact is appended to this file, so a
#: benchmark run leaves behind the rendered tables for EXPERIMENTS.md.
REPORT_SINK = os.environ.get("REPRO_BENCH_REPORTS")


@pytest.fixture
def regenerate(benchmark):
    """Benchmark the regeneration of one artifact; returns its report."""

    def run(experiment_id: str):
        report = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"scale": "full"},
            rounds=1,
            iterations=1,
        )
        print("\n" + report.text)
        if REPORT_SINK:
            with open(REPORT_SINK, "a") as sink:
                sink.write(report.text + "\n\n")
        benchmark.extra_info["experiment"] = experiment_id
        return report

    return run
