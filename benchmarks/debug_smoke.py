#!/usr/bin/env python
"""CI debug-smoke: kill a pool worker under a live daemon, get a bundle.

The flight-recorder acceptance scenario, end to end through public
surfaces only:

1. boot ``scwsc serve`` with ``--postmortem-dir``, send healthy solves
   so the rings (spans, access, worker rings) carry real evidence;
2. SIGKILL the daemon's pool worker mid-service and keep a trickle of
   traffic going so the supervisor notices immediately;
3. wait for exactly one ``worker_death`` bundle in the spool, check it
   carries ring-buffer spans, pool events (including ``worker_death``),
   sampled stacks, and a metrics snapshot;
4. validate the bundle through the public CLI (``scwsc debug validate``
   then ``scwsc debug inspect``), plus ``/debug/vars`` and
   ``/debug/flightrec`` over HTTP while the daemon is still up;
5. render the bundle into the run dashboard (``scwsc report
   --postmortem``).

Exit 0 on success; non-zero with a message on the first failure. CI
uploads the output directory (bundles + dashboard) as an artifact.

Usage::

    python benchmarks/debug_smoke.py [OUT_DIR]
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from serve_smoke import Daemon, fail, solve_payload  # noqa: E402

from repro.cli import main as cli_main  # noqa: E402
from repro.obs.postmortem import validate_bundle_file  # noqa: E402

BUNDLE_WAIT = 60.0


def worker_pids(daemon_pid: int) -> list[int]:
    """Child PIDs of the daemon — its pool workers (/proc scan; CI is
    Linux). The dispatcher is a thread, so every child is a worker."""
    pids = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/stat") as handle:
                fields = handle.read().rsplit(")", 1)[1].split()
        except OSError:
            continue
        if int(fields[1]) == daemon_pid:
            pids.append(int(entry))
    return sorted(pids)


def wait_for_bundle(spool: Path, daemon) -> Path:
    deadline = time.monotonic() + BUNDLE_WAIT
    while time.monotonic() < deadline:
        bundles = sorted(spool.glob("postmortem-*worker_death*.json"))
        if bundles:
            return bundles[0]
        # keep a trickle of traffic so the supervisor polls its children
        daemon.request("/healthz")
        time.sleep(0.3)
    fail(f"no worker_death bundle in {spool} after {BUNDLE_WAIT:g}s")


def main() -> int:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("debug-smoke")
    out_dir.mkdir(parents=True, exist_ok=True)
    spool = out_dir / "postmortems"
    for stale in spool.glob("postmortem-*.json"):
        stale.unlink()
    system_payload = solve_payload()

    daemon = Daemon(
        out_dir,
        "debug-smoke",
        ["--postmortem-dir", str(spool), "--postmortem-interval", "60"],
    )
    try:
        # Healthy traffic first: the rings must hold real spans, access
        # records, and shipped worker rings *before* the incident.
        for index in range(4):
            code, body, _ = daemon.request(
                "/solve",
                {"system": system_payload, "k": 4, "s": 0.5,
                 "tag": f"warm{index}"},
            )
            if code != 200 or body.get("status") != "ok":
                fail(f"warmup solve {index} answered {code}/{body.get('status')}")

        pids = worker_pids(daemon.proc.pid)
        if not pids:
            fail("no pool worker process found under the daemon")
        os.kill(pids[0], signal.SIGKILL)
        print(f"debug-smoke: killed worker pid {pids[0]}")
        daemon.request(
            "/solve", {"system": system_payload, "k": 4, "s": 0.5}
        )

        bundle_path = wait_for_bundle(spool, daemon)

        # The daemon's own introspection surface while it is still up.
        code, flightrec, _ = daemon.request("/debug/flightrec")
        if code != 200 or not flightrec.get("armed"):
            fail(f"/debug/flightrec broken: {code} {flightrec}")
        counts = flightrec["triggers"]["counts"]["worker_death"]
        if counts["fired"] != 1:
            fail(f"expected exactly one worker_death firing, got {counts}")
        if bundle_path.name not in flightrec["spool"]["bundles"]:
            fail(f"{bundle_path.name} missing from /debug/flightrec spool")
        code, debug_vars, _ = daemon.request("/debug/vars")
        if code != 200 or not debug_vars.get("build", {}).get("version"):
            fail(f"/debug/vars broken: {code}")

        exit_code = daemon.terminate()
        if exit_code != 0:
            fail(f"daemon exited {exit_code} on SIGTERM")
    finally:
        daemon.kill()

    death_bundles = sorted(spool.glob("postmortem-*worker_death*.json"))
    if len(death_bundles) != 1:
        fail(f"expected exactly one worker_death bundle, got "
             f"{[p.name for p in death_bundles]}")

    # Library-level validation plus the contents the scenario demands.
    bundle = validate_bundle_file(str(bundle_path))
    rings = bundle["rings"]
    if not rings["spans"]["records"]:
        fail("bundle has no ring-buffer spans")
    event_names = {r.get("name") for r in rings["events"]["records"]}
    if "worker_death" not in event_names:
        fail(f"bundle events missing worker_death: {sorted(event_names)}")
    if not bundle["stacks"]["samples"] or not bundle["stacks"]["collapsed"]:
        fail("bundle has no sampled stacks")
    if not rings["metrics"]["records"] or not bundle["metrics"]:
        fail("bundle has no metrics snapshot")
    if not bundle["workers"]:
        fail("bundle has no shipped worker ring")

    # The public CLI must agree.
    if cli_main(["debug", "validate", str(bundle_path)]) != 0:
        fail("scwsc debug validate rejected the bundle")
    if cli_main(["debug", "inspect", str(bundle_path)]) != 0:
        fail("scwsc debug inspect failed")

    report_path = out_dir / "debug-report.html"
    code = cli_main(
        ["report", str(out_dir / "debug-smoke.jsonl"), "-o",
         str(report_path), "--title", "debug-smoke",
         "--postmortem", str(spool)]
    )
    if code != 0 or not report_path.exists():
        fail(f"dashboard render exited {code}")

    print(f"debug-smoke: ok ({bundle_path.name}, "
          f"{len(rings['spans']['records'])} spans, "
          f"{len(rings['events']['records'])} events, "
          f"{len(bundle['stacks']['samples'])} stack samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
