"""Bench: Fig. 9 — running time vs. the coverage fraction s.

Paper shape: CWSC's cost of an iteration does not depend on s (its
iteration count is bounded by k), while CMC must raise its budget further
to reach higher coverage, so its rounds — and runtime — grow with s.
"""


def test_fig9_runtime_vs_coverage(regenerate):
    report = regenerate("fig9")
    rows = report.data["rows"]
    first, last = rows[0], rows[-1]

    # CMC needs at least as many budget rounds at the highest coverage.
    assert last["cmc"]["rounds"] >= first["cmc"]["rounds"]
    assert (
        last["optimized_cmc"]["rounds"] >= first["optimized_cmc"]["rounds"]
    )
    # CWSC's work stays flat-ish: its pattern considerations are one
    # enumeration regardless of s.
    considered = [row["cwsc"]["considered"] for row in rows]
    assert max(considered) == min(considered)
    # Coverage obligations met everywhere.
    for row in rows:
        assert row["cwsc"]["covered"] >= row["x"] * 12_000 - 1e-6
