"""Bench: Fig. 6 — patterns considered vs. data size.

Paper shape: the optimizations work because far fewer patterns are
considered; CMC's counts (summed over budget rounds) dominate CWSC's, and
the gap grows with data size. These counts are deterministic, so the
assertions are strict.
"""


def test_fig6_patterns_considered(regenerate):
    report = regenerate("fig6")
    rows = report.data["rows"]

    for row in rows:
        assert (
            row["optimized_cwsc"]["considered"] < row["cwsc"]["considered"]
        )
        assert row["optimized_cmc"]["considered"] < row["cmc"]["considered"]
        # CMC re-enumerates per budget round, so it dominates CWSC.
        assert row["cmc"]["considered"] > row["cwsc"]["considered"]

    # The unoptimized counts grow with data size.
    considered = [row["cmc"]["considered"] for row in rows]
    assert considered == sorted(considered)
