#!/usr/bin/env python
"""CI trace-smoke: a tiny end-to-end exercise of ``--trace``.

Generates a small LBL-style CSV, runs ``scwsc solve --trace`` both
in-process and pool-isolated, then checks that

1. every record in each trace file validates against ``scwsc-trace/1``
   (:mod:`repro.obs.schema`);
2. the in-process trace contains solver spans (``solve``/``select``);
3. the isolated trace interleaves pool lifecycle events
   (``worker_spawn``/``dispatch``/``request_complete``) with replayed
   worker solver spans carrying ``request_id``;
4. ``scwsc trace summarize`` renders a per-phase rollup.

Exit 0 on success; non-zero with a message on the first failure. CI
uploads the trace files as artifacts so a red run is diagnosable.

Usage::

    python benchmarks/trace_smoke.py [OUT_DIR]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.cli import main as cli_main
from repro.datasets.registry import load_dataset
from repro.obs.report import load_trace, phase_rollups, summarize_file
from repro.obs.schema import validate_trace_file

ATTRIBUTES = "protocol,localhost,remotehost,endstate,flags"


def fail(message: str) -> None:
    print(f"trace-smoke: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def run_cli(argv: list[str]) -> None:
    code = cli_main(argv)
    if code != 0:
        fail(f"`scwsc {' '.join(argv)}` exited {code}")


def check_valid(path: Path) -> list[dict]:
    problems = validate_trace_file(str(path))
    if problems:
        for problem in problems[:20]:
            print(f"trace-smoke: {path}: {problem}", file=sys.stderr)
        fail(f"{path} has {len(problems)} schema problem(s)")
    return load_trace(str(path))


def main() -> int:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("trace-smoke")
    out_dir.mkdir(parents=True, exist_ok=True)
    csv_path = out_dir / "smoke.csv"
    load_dataset("lbl:300@7").to_csv(csv_path)

    # 1. In-process solve.
    solve_trace = out_dir / "solve.jsonl"
    run_cli(
        [
            "solve", str(csv_path),
            "--attributes", ATTRIBUTES,
            "--measure", "duration",
            "-k", "4", "-s", "0.6",
            "--trace", str(solve_trace),
        ]
    )
    records = check_valid(solve_trace)
    rollups = phase_rollups(records)
    for phase in ("solve", "select"):
        if phase not in rollups:
            fail(f"{solve_trace} has no {phase!r} spans; got {sorted(rollups)}")

    # 2. Pool-isolated solve: lifecycle events + replayed worker spans.
    isolate_trace = out_dir / "isolate.jsonl"
    run_cli(
        [
            "solve", str(csv_path),
            "--attributes", ATTRIBUTES,
            "--measure", "duration",
            "-k", "4", "-s", "0.6",
            "--timeout", "60", "--isolate",
            "--trace", str(isolate_trace),
        ]
    )
    records = check_valid(isolate_trace)
    events = {r["name"] for r in records if r.get("type") == "event"}
    for name in ("worker_spawn", "dispatch", "request_complete"):
        if name not in events:
            fail(f"{isolate_trace} missing pool event {name!r}; got {sorted(events)}")
    worker_spans = [
        r
        for r in records
        if r.get("type") == "span"
        and r.get("attrs", {}).get("request_id") is not None
    ]
    if not worker_spans:
        fail(f"{isolate_trace} has no replayed worker spans with request_id")

    # 3. The summarizer renders.
    summary = summarize_file(str(solve_trace))
    if "phase rollup" not in summary:
        fail("summarize produced no phase rollup")
    print(summary)
    print(f"trace-smoke: ok ({solve_trace}, {isolate_trace})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
