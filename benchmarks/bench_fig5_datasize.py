"""Bench: Fig. 5 — running time vs. data size.

Paper shape: optimized variants are faster than their unoptimized
counterparts (about 2x on LBL), the gap widens with data size, and CWSC
is faster than CMC.
"""


def test_fig5_runtime_vs_datasize(regenerate):
    report = regenerate("fig5")
    rows = report.data["rows"]
    largest = rows[-1]

    # Optimized beats unoptimized at the largest size (slack for noise).
    assert (
        largest["optimized_cwsc"]["runtime"]
        < largest["cwsc"]["runtime"] * 1.2
    )
    assert (
        largest["optimized_cmc"]["runtime"]
        < largest["cmc"]["runtime"] * 1.2
    )
    # CWSC is faster than CMC in both variants.
    assert largest["cwsc"]["runtime"] < largest["cmc"]["runtime"]
    assert (
        largest["optimized_cwsc"]["runtime"]
        < largest["optimized_cmc"]["runtime"]
    )
    # Every run met its coverage obligation.
    for row in rows:
        for name in ("cmc", "optimized_cmc", "cwsc", "optimized_cwsc"):
            assert row[name]["covered"] > 0
