"""Shim: the benchmark regression harness lives in :mod:`repro.bench`.

Run it either as the installed CLI::

    scwsc bench --quick --check

or directly from a checkout without installing::

    PYTHONPATH=src python benchmarks/harness.py --quick --check

This file only re-exports the harness API so existing
``benchmarks/``-relative tooling keeps one import point; all behaviour
(workload matrix, report schema, tolerance checking) is implemented and
tested in :mod:`repro.bench`.
"""

from repro.bench import (  # noqa: F401
    BACKENDS,
    BenchCase,
    DEFAULT_BASELINE,
    DEFAULT_OUT,
    DEFAULT_TOLERANCE,
    SCHEMA,
    compare_reports,
    default_cases,
    main,
    render_report,
    run_benchmarks,
)

if __name__ == "__main__":
    raise SystemExit(main())
