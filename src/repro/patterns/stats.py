"""Profiling helpers for pattern tables.

Before running the algorithms on a new data set it helps to know how big
the pattern space is, how skewed each attribute is, and what the measure
looks like — these determine whether the optimized algorithms' lattice
pruning will pay off (paper §V-C) and how many budget rounds CMC will
need. ``scwsc info`` prints this profile from the command line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.patterns.table import PatternTable


@dataclass(frozen=True)
class AttributeProfile:
    """Distribution summary of one pattern attribute."""

    name: str
    cardinality: int
    top_value: object
    top_share: float


@dataclass(frozen=True)
class MeasureProfile:
    """Distribution summary of the measure column."""

    name: str
    minimum: float
    median: float
    maximum: float
    total: float


@dataclass(frozen=True)
class TableProfile:
    """Everything ``scwsc info`` reports about a table."""

    n_rows: int
    n_attributes: int
    pattern_space_size: int
    attributes: tuple[AttributeProfile, ...]
    measure: MeasureProfile | None

    def render(self) -> str:
        """Human-readable multi-line profile."""
        lines = [
            f"rows: {self.n_rows}",
            f"pattern attributes: {self.n_attributes}",
            f"syntactic pattern space: {self.pattern_space_size:,}",
        ]
        for attribute in self.attributes:
            lines.append(
                f"  {attribute.name}: {attribute.cardinality} values, "
                f"top {attribute.top_value!r} "
                f"({attribute.top_share:.1%} of rows)"
            )
        if self.measure is not None:
            lines.append(
                f"measure {self.measure.name}: min={self.measure.minimum:g} "
                f"median={self.measure.median:g} "
                f"max={self.measure.maximum:g} sum={self.measure.total:g}"
            )
        else:
            lines.append("measure: none (use the 'count' cost function)")
        return "\n".join(lines)


def profile_table(table: PatternTable) -> TableProfile:
    """Compute a :class:`TableProfile` for a table."""
    attributes = []
    for position, name in enumerate(table.attributes):
        counts: dict = {}
        for row in table.rows:
            counts[row[position]] = counts.get(row[position], 0) + 1
        if counts:
            top_value, top_count = max(
                counts.items(), key=lambda item: (item[1], repr(item[0]))
            )
            top_share = top_count / table.n_rows
        else:
            top_value, top_share = None, 0.0
        attributes.append(
            AttributeProfile(
                name=name,
                cardinality=len(counts),
                top_value=top_value,
                top_share=top_share,
            )
        )

    measure_profile = None
    if table.measure is not None and table.measure:
        ordered = sorted(table.measure)
        mid = len(ordered) // 2
        median = (
            ordered[mid]
            if len(ordered) % 2
            else (ordered[mid - 1] + ordered[mid]) / 2
        )
        measure_profile = MeasureProfile(
            name=table.measure_name,
            minimum=ordered[0],
            median=median,
            maximum=ordered[-1],
            total=sum(ordered),
        )

    return TableProfile(
        n_rows=table.n_rows,
        n_attributes=table.n_attributes,
        pattern_space_size=table.pattern_space_size(),
        attributes=tuple(attributes),
        measure=measure_profile,
    )
