"""Pattern cost (weight) functions.

The paper leaves the cost computation application-specific: "the cost of a
pattern is computed as a function of the costs of the entities in the set"
(Section I-A; the running example and the hardness proof use ``max`` over a
measure attribute, and Lemma 1 notes the reduction extends to ``sum`` and
lp-norms). A :class:`CostFunction` maps the benefit set of a pattern to a
weight via the table's measure column.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.errors import ValidationError
from repro.patterns.table import PatternTable


class CostFunction:
    """Computes ``Cost(p)`` from the rows a pattern covers.

    Parameters
    ----------
    name:
        Registry name ("max", "sum", ...), recorded in results.
    aggregate:
        Maps the covered rows' measure values to a cost.
    needs_measure:
        Whether the table must carry a measure column.
    row_lower_bound:
        Maps the full measure column (or row count) to a lower bound on
        the cost of *any* non-empty pattern. Used to seed the optimized
        CMC budget schedule without enumerating patterns.
    """

    def __init__(
        self,
        name: str,
        aggregate: Callable[[list[float]], float],
        needs_measure: bool = True,
        row_lower_bound: Callable[[PatternTable], float] | None = None,
    ) -> None:
        self.name = name
        self._aggregate = aggregate
        self.needs_measure = needs_measure
        self._row_lower_bound = row_lower_bound

    def bind(self, table: PatternTable) -> Callable[[Iterable[int]], float]:
        """Return ``ben_rows -> cost`` for one table.

        Validates the measure requirement once, up front.
        """
        if self.needs_measure and table.measure is None:
            raise ValidationError(
                f"cost function {self.name!r} needs a measure column, but "
                f"the table has none"
            )
        measure = table.measure

        def compute(ben_rows: Iterable[int]) -> float:
            values = (
                [measure[row] for row in ben_rows]
                if measure is not None
                else [1.0 for _ in ben_rows]
            )
            if not values:
                raise ValidationError(
                    f"cost function {self.name!r} applied to an empty "
                    "benefit set"
                )
            return self._aggregate(values)

        return compute

    def lower_bound(self, table: PatternTable) -> float:
        """Lower bound on any non-empty pattern's cost in this table."""
        if self._row_lower_bound is not None:
            return self._row_lower_bound(table)
        return 0.0

    def __repr__(self) -> str:
        return f"CostFunction({self.name!r})"


def _min_measure(table: PatternTable) -> float:
    if table.measure is None or not table.measure:
        return 0.0
    return min(table.measure)


#: ``Cost(p) = max`` measure over covered rows (the paper's example).
MAX_COST = CostFunction("max", max, row_lower_bound=_min_measure)

#: ``Cost(p) = sum`` of measures over covered rows.
SUM_COST = CostFunction("sum", sum, row_lower_bound=_min_measure)

#: ``Cost(p) = mean`` measure over covered rows.
MEAN_COST = CostFunction(
    "mean", lambda values: sum(values) / len(values),
    row_lower_bound=_min_measure,
)

#: ``Cost(p) = |Ben(p)|`` — measure-free, for tables without a measure.
COUNT_COST = CostFunction(
    "count", len, needs_measure=False, row_lower_bound=lambda table: 1.0
)


def lp_norm_cost(p: float) -> CostFunction:
    """``Cost(p) = (sum measure^p)^(1/p)`` — the lp-norms of Lemma 1."""
    if p <= 0:
        raise ValidationError(f"lp norm order must be > 0, got {p}")

    def aggregate(values: list[float]) -> float:
        return sum(abs(value) ** p for value in values) ** (1.0 / p)

    return CostFunction(f"l{p:g}", aggregate, row_lower_bound=_min_measure)


_REGISTRY: dict[str, CostFunction] = {
    "max": MAX_COST,
    "sum": SUM_COST,
    "mean": MEAN_COST,
    "count": COUNT_COST,
    "l2": lp_norm_cost(2.0),
}


def get_cost_function(name_or_fn: "str | CostFunction") -> CostFunction:
    """Resolve a registry name (or pass a :class:`CostFunction` through)."""
    if isinstance(name_or_fn, CostFunction):
        return name_or_fn
    try:
        return _REGISTRY[name_or_fn]
    except KeyError:
        raise ValidationError(
            f"unknown cost function {name_or_fn!r}; "
            f"known: {sorted(_REGISTRY)}"
        ) from None
