"""Optimized Concise Weighted Set Cover for patterned sets — Fig. 3.

Instead of enumerating every pattern up front, the candidate set ``C``
starts with the all-wildcards pattern and grows down the lattice: a child
pattern is materialized only when *all* of its parents are candidates
(a child's marginal benefit can never exceed a parent's, so a missing
parent proves the child is below the ``rem / i`` threshold too). At the
selection step ``C`` therefore contains exactly the patterns that clear the
threshold, and — with shared tie-breaking — the optimized algorithm selects
the very same patterns as the unoptimized one (paper, end of Section V-C1);
``tests/integration/test_equivalence.py`` asserts this.

The inner loops run on raw value tuples (see
:mod:`repro.patterns.candidates`); only the returned solution is wrapped in
:class:`Pattern` objects.
"""

from __future__ import annotations

import heapq
import time
from typing import Literal

from repro.core.result import CoverResult, Metrics, make_result
from repro.errors import InfeasibleError, ValidationError
from repro.obs import trace as obs_trace
from repro.patterns.candidates import Candidate, CandidatePool, Values
from repro.patterns.costs import CostFunction, get_cost_function
from repro.patterns.index import PatternIndex
from repro.patterns.pattern import ALL, Pattern
from repro.patterns.table import PatternTable

OnInfeasible = Literal["raise", "full_cover", "partial"]

_EPS = 1e-9


def optimized_cwsc(
    table: PatternTable,
    k: int,
    s_hat: float,
    cost: "str | CostFunction" = "max",
    on_infeasible: OnInfeasible = "raise",
) -> CoverResult:
    """Run the lattice-pruned CWSC directly on a pattern table.

    Parameters
    ----------
    table:
        The record table (non-empty).
    k:
        Maximum number of patterns in the solution.
    s_hat:
        Required coverage fraction.
    cost:
        Pattern cost function (name or instance); default ``"max"``.
    on_infeasible:
        Same policies as :func:`repro.core.cwsc.cwsc`; ``"full_cover"``
        falls back to the all-wildcards pattern.
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    if not (0.0 <= s_hat <= 1.0):
        raise ValidationError(f"s_hat must be in [0, 1], got {s_hat}")
    if table.n_rows == 0:
        raise ValidationError("cannot cover an empty table")
    traced = obs_trace.enabled()
    with (
        obs_trace.span("solve", algorithm="optimized_cwsc", k=k, s_hat=s_hat)
        if traced
        else obs_trace.NULL_SPAN
    ) as solve_span:
        result = _optimized_cwsc_body(
            table, k, s_hat, cost, on_infeasible, traced
        )
        if solve_span.enabled:
            solve_span.set(
                n_sets=result.n_sets,
                total_cost=result.total_cost,
                covered=result.covered,
                feasible=result.feasible,
            )
        return result


def _optimized_cwsc_body(
    table: PatternTable,
    k: int,
    s_hat: float,
    cost: "str | CostFunction",
    on_infeasible: OnInfeasible,
    traced: bool,
) -> CoverResult:
    start = time.perf_counter()
    metrics = Metrics()
    params = {
        "k": k,
        "s_hat": s_hat,
        "cost": get_cost_function(cost).name,
        "on_infeasible": on_infeasible,
    }

    with (
        obs_trace.span("preprocess", op="pattern_index")
        if traced
        else obs_trace.NULL_SPAN
    ):
        index = PatternIndex(table)
        cost_fn = get_cost_function(cost).bind(table)
        pool = CandidatePool(cost_fn, metrics)
        all_values: Values = (ALL,) * table.n_attributes
        pool.add(pool.materialize(all_values, index.all_rows))

    selected: list[Candidate] = []
    selected_values: set[Values] = set()
    rem = s_hat * table.n_rows
    if rem <= _EPS:
        return _finish(table, selected, True, params, metrics, start)

    for i in range(k, 0, -1):
        threshold = rem / i - _EPS
        with (
            obs_trace.span("select", picks_left=i, threshold=rem / i)
            if traced
            else obs_trace.NULL_SPAN
        ) as pick_span:
            # Fig. 3 lines 8-10: drop candidates below the new threshold.
            pool.prune(lambda candidate: candidate.mben_size >= threshold)
            _expand(pool, index, selected_values, threshold)
            # Fig. 3 line 21: C holds exactly the threshold-clearing
            # patterns.
            best = pool.best_by_gain()
            if best is None:
                return _bail(
                    table, index, cost_fn, selected, on_infeasible,
                    params, metrics, start,
                )
            newly = pool.select(best)
            if pick_span.enabled:
                pick_span.set(
                    pattern=str(Pattern(best.values)),
                    marginal_covered=len(newly),
                )
        selected.append(best)
        selected_values.add(best.values)
        rem -= len(newly)
        if rem <= _EPS:
            return _finish(table, selected, True, params, metrics, start)
    # Guard: each pick covers >= rem/i, so k picks always suffice.
    return _bail(
        table, index, cost_fn, selected, on_infeasible, params, metrics, start
    )  # pragma: no cover


def _expand(
    pool: CandidatePool,
    index: PatternIndex,
    selected_values: set[Values],
    threshold: float,
) -> None:
    """Fig. 3 lines 11-20: grow ``C`` downward until no child qualifies.

    The waitlist is processed in decreasing marginal benefit (line 13);
    marginal benefits are static during expansion, so a plain heap keyed by
    ``(-|mben|, sort_key)`` realizes the argmax deterministically.
    """
    heap: list[tuple[int, tuple, Values]] = [
        (-candidate.mben_size, candidate.sort_key(), candidate.values)
        for candidate in pool
    ]
    heapq.heapify(heap)
    while heap:
        _, _, values = heapq.heappop(heap)
        candidate = pool.get(values)
        if candidate is None:  # pragma: no cover - not removed mid-phase
            continue
        for position, child, child_ben in index.children_values(
            values, candidate.ben
        ):
            # |MBen| <= |Ben|, so a child whose full benefit is already
            # below the threshold can never qualify; skipping it here is
            # equivalent to materializing it and failing line 18.
            if len(child_ben) < threshold:
                continue
            if child in pool or child in selected_values:
                continue
            # All-parents-in-C check (Fig. 3 line 16). The parent at
            # ``position`` is the pool candidate being expanded, so only
            # the other constants need a lookup.
            parents_in_pool = True
            for other_pos, other_value in enumerate(child):
                if other_value is ALL or other_pos == position:
                    continue
                parent = child[:other_pos] + (ALL,) + child[other_pos + 1:]
                if parent not in pool:
                    parents_in_pool = False
                    break
            if not parents_in_pool:
                continue
            child_candidate = pool.materialize(child, child_ben)
            if child_candidate.mben_size >= threshold:
                pool.add(child_candidate)
                heapq.heappush(
                    heap,
                    (
                        -child_candidate.mben_size,
                        child_candidate.sort_key(),
                        child,
                    ),
                )
            else:
                pool.archive(child_candidate)


def _finish(
    table: PatternTable,
    selected: list[Candidate],
    feasible: bool,
    params: dict,
    metrics: Metrics,
    start: float,
) -> CoverResult:
    metrics.runtime_seconds = time.perf_counter() - start
    covered: set[int] = set()
    for candidate in selected:
        covered.update(candidate.ben)
    return make_result(
        algorithm="optimized_cwsc",
        chosen=list(range(len(selected))),
        labels=[Pattern(candidate.values) for candidate in selected],
        total_cost=sum(candidate.cost for candidate in selected),
        covered=len(covered),
        n_elements=table.n_rows,
        feasible=feasible,
        params=params,
        metrics=metrics,
    )


def _bail(
    table: PatternTable,
    index: PatternIndex,
    cost_fn,
    selected: list[Candidate],
    on_infeasible: OnInfeasible,
    params: dict,
    metrics: Metrics,
    start: float,
) -> CoverResult:
    if on_infeasible == "partial":
        return _finish(table, selected, False, params, metrics, start)
    if on_infeasible == "full_cover":
        all_values: Values = (ALL,) * table.n_attributes
        fallback = Candidate(
            all_values, index.all_rows, cost_fn(index.all_rows)
        )
        fallback.mben = set(index.all_rows)
        return _finish(table, [fallback], True, params, metrics, start)
    partial = _finish(table, selected, False, params, metrics, start)
    raise InfeasibleError(
        "optimized_cwsc: no pattern clears the per-pick benefit threshold",
        partial=partial,
    )
