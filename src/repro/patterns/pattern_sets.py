"""Bridge from pattern tables to the core :class:`SetSystem`.

The unoptimized algorithms of the paper treat the patterns of a table as an
ordinary weighted set collection. :func:`build_set_system` enumerates every
non-empty pattern, computes its cost with the chosen cost function, and
packs the result into a :class:`~repro.core.SetSystem` whose labels are the
patterns themselves (sorted by :meth:`Pattern.sort_key` so set ids are
deterministic).
"""

from __future__ import annotations

from repro.core.setsystem import SetSystem
from repro.errors import ValidationError
from repro.patterns.costs import CostFunction, get_cost_function
from repro.patterns.enumerate import enumerate_nonempty_patterns
from repro.patterns.pattern import Pattern
from repro.patterns.table import PatternTable


def build_set_system(
    table: PatternTable,
    cost: "str | CostFunction" = "max",
) -> SetSystem:
    """Materialize the full patterned set system of a table.

    Parameters
    ----------
    table:
        The record table. Must be non-empty — an empty table has no
        all-wildcards cover and Definition 1's feasibility assumption
        fails.
    cost:
        Cost function name or instance (default ``"max"``, as in the
        paper's running example).

    Returns
    -------
    SetSystem
        One weighted set per non-empty pattern; ``label`` is the
        :class:`Pattern`.
    """
    if table.n_rows == 0:
        raise ValidationError("cannot build a set system from an empty table")
    cost_fn = get_cost_function(cost).bind(table)
    patterns = enumerate_nonempty_patterns(table)
    ordered = sorted(patterns, key=Pattern.sort_key)
    benefits = [patterns[pattern] for pattern in ordered]
    costs = [cost_fn(patterns[pattern]) for pattern in ordered]
    return SetSystem.from_iterables(
        table.n_rows, benefits, costs, labels=ordered
    )


def pattern_of(system: SetSystem, set_id: int) -> Pattern:
    """The pattern labeling a set of a pattern-derived system."""
    label = system[set_id].label
    if not isinstance(label, Pattern):
        raise ValidationError(
            f"set {set_id} of this system is not labeled with a Pattern"
        )
    return label
