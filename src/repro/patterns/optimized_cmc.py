"""Optimized Cheap Max Coverage for patterned sets — Fig. 4.

Differences from the unoptimized CMC (Fig. 1), per the paper:

* the candidate set starts with the all-wildcards pattern and is grown
  down the lattice instead of being fully enumerated;
* rather than working level-by-level, the round repeatedly takes the
  candidate with the globally largest marginal benefit; if its cost level
  still has quota it is selected, otherwise it is marked *visited* and its
  children become candidates (once all their parents are visited);
* the per-level attempt counter ``count[i]`` increments on every pop whose
  level is affordable (Fig. 4 line 21 pre-increments), and the round ends
  once total attempts exceed the total quota — this bounds the work of a
  round whose budget is hopeless.

The marginal-benefit argmax is a lazy heap (marginal benefits only shrink;
same CELF argument as in :mod:`repro.core.cmc`), and the inner loops run on
raw value tuples (see :mod:`repro.patterns.candidates`).

Documented deviation: Fig. 4 line 1 seeds the budget with "the cost of the
``k`` cheapest patterns", which cannot be known without enumerating
patterns — the very thing the optimization avoids. By default we seed with
the sum of the ``k`` smallest measure values (for measure-monotone cost
functions such as ``max`` this is the cost such patterns would have if
some pattern isolates each cheap record, which holds on high-cardinality
data like LBL); pass ``initial_budget`` to override. A smaller seed only
adds budget rounds; it never affects feasibility.
"""

from __future__ import annotations

import heapq
import time
from typing import Callable, Literal

from repro._typing import Cost
from repro.core.budget import (
    LevelScheme,
    budget_schedule,
    generalized_levels,
    merged_levels,
    standard_levels,
)
from repro.core.cmc import COVERAGE_DISCOUNT
from repro.core.result import CoverResult, Metrics, make_result
from repro.errors import InfeasibleError, ValidationError
from repro.obs import trace as obs_trace
from repro.patterns.candidates import Candidate, CandidatePool, Values
from repro.patterns.costs import CostFunction, get_cost_function
from repro.patterns.index import PatternIndex
from repro.patterns.pattern import ALL, Pattern
from repro.patterns.table import PatternTable

OnInfeasible = Literal["raise", "partial"]

_EPS = 1e-9


def optimized_cmc(
    table: PatternTable,
    k: int,
    s_hat: float,
    b: float = 1.0,
    cost: "str | CostFunction" = "max",
    eps: float | None = None,
    l: float | None = None,
    initial_budget: float | None = None,
    on_infeasible: OnInfeasible = "raise",
) -> CoverResult:
    """Run the lattice-pruned CMC directly on a pattern table.

    Parameters
    ----------
    table:
        The record table (non-empty).
    k:
        Size constraint of the optimal solution being approximated.
    s_hat:
        Requested coverage fraction; the run targets
        ``(1 - 1/e) * s_hat * n`` elements.
    b:
        Budget growth factor.
    cost:
        Pattern cost function (name or instance); default ``"max"``.
    eps:
        When given, uses the merged ``(1 + eps) k`` level scheme of
        Section V-A3 instead of the standard (up to ``5k``) one.
    l:
        When given, uses the generalized geometric levels of Section
        V-A2 with base ``1 + l`` (mutually exclusive with ``eps``).
    initial_budget:
        First budget guess; defaults to the sum of the ``k`` smallest
        measure values (see the module docstring).
    on_infeasible:
        ``"raise"`` or ``"partial"``. Infeasibility cannot occur on a
        non-empty table (the all-wildcards pattern covers everything and
        is affordable at the final budget), so this only matters for
        pathological cost functions.
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    if not (0.0 <= s_hat <= 1.0):
        raise ValidationError(f"s_hat must be in [0, 1], got {s_hat}")
    if table.n_rows == 0:
        raise ValidationError("cannot cover an empty table")
    if eps is not None and eps <= 0:
        raise ValidationError(f"eps must be > 0, got {eps}")
    if l is not None and l <= 0:
        raise ValidationError(f"l must be > 0, got {l}")
    if eps is not None and l is not None:
        raise ValidationError("eps and l are mutually exclusive")
    traced = obs_trace.enabled()
    with (
        obs_trace.span("solve", algorithm="optimized_cmc", k=k, s_hat=s_hat, b=b)
        if traced
        else obs_trace.NULL_SPAN
    ) as solve_span:
        result = _optimized_cmc_body(
            table, k, s_hat, b, cost, eps, l, initial_budget,
            on_infeasible, traced,
        )
        if solve_span.enabled:
            solve_span.set(
                variant=result.params["variant"],
                budget_rounds=result.metrics.budget_rounds,
                n_sets=result.n_sets,
                total_cost=result.total_cost,
                covered=result.covered,
                feasible=result.feasible,
            )
        return result


def _optimized_cmc_body(
    table: PatternTable,
    k: int,
    s_hat: float,
    b: float,
    cost: "str | CostFunction",
    eps: float | None,
    l: float | None,
    initial_budget: float | None,
    on_infeasible: OnInfeasible,
    traced: bool,
) -> CoverResult:
    start = time.perf_counter()
    metrics = Metrics()
    cost_obj = get_cost_function(cost)
    if eps is not None:
        variant = "epsilon"
    elif l is not None:
        variant = "generalized"
    else:
        variant = "standard"
    params = {
        "k": k,
        "s_hat": s_hat,
        "b": b,
        "cost": cost_obj.name,
        "eps": eps,
        "l": l,
        "variant": variant,
    }

    with (
        obs_trace.span("preprocess", op="pattern_index")
        if traced
        else obs_trace.NULL_SPAN
    ):
        index = PatternIndex(table)
        cost_fn = cost_obj.bind(table)
        all_values: Values = (ALL,) * table.n_attributes
        all_cost = cost_fn(index.all_rows)
    target = COVERAGE_DISCOUNT * s_hat * table.n_rows
    params["target_elements"] = target

    if initial_budget is None:
        initial_budget = _default_initial_budget(table, cost_obj, k)
    if eps is not None:
        scheme_factory: Callable[[Cost, int], LevelScheme] = (
            lambda budget, k_: merged_levels(budget, k_, eps)
        )
    elif l is not None:
        scheme_factory = (
            lambda budget, k_: generalized_levels(budget, k_, 1.0 + l)
        )
    else:
        scheme_factory = standard_levels

    selected: list[Candidate] = []
    # Pattern costs are static, so budget rounds share this cache.
    # (Caching the children *partitions* across rounds was tried and
    # reverted: the memory churn cost more than the recomputation saved.)
    cost_cache: dict[Values, float] = {}
    first_round = True
    for budget in budget_schedule(initial_budget, b, all_cost):
        if first_round:
            first_round = False
        else:
            metrics.budget_rounds += 1
        with (
            obs_trace.span(
                "budget_round", round=metrics.budget_rounds, budget=budget
            )
            if traced
            else obs_trace.NULL_SPAN
        ) as round_span:
            scheme = scheme_factory(budget, k)
            selected, reached = _run_round(
                index, cost_fn, all_values, scheme, target, metrics,
                cost_cache, traced,
            )
            if round_span.enabled:
                round_span.set(selections=len(selected), reached=reached)
        if reached:
            params["final_budget"] = budget
            return _finish(table, selected, True, params, metrics, start)

    partial = _finish(table, selected, False, params, metrics, start)
    if on_infeasible == "partial":
        return partial
    raise InfeasibleError(
        "optimized_cmc: exhausted the budget schedule without reaching "
        f"{target:.2f} covered rows",
        partial=partial,
    )


def _default_initial_budget(
    table: PatternTable, cost_obj: CostFunction, k: int
) -> float:
    """Sum of the ``k`` smallest measure values (or ``k`` without one)."""
    if table.measure is not None and cost_obj.needs_measure:
        return sum(sorted(table.measure)[:k])
    return float(k)


def _run_round(
    index: PatternIndex,
    cost_fn: Callable,
    all_values: Values,
    scheme: LevelScheme,
    target: float,
    metrics: Metrics,
    cost_cache: dict[Values, float],
    traced: bool = False,
) -> tuple[list[Candidate], bool]:
    """One budget round of Fig. 4 (lines 8-35)."""
    pool = CandidatePool(cost_fn, metrics, cost_cache=cost_cache)
    root = pool.materialize(all_values, index.all_rows)
    pool.add(root)
    heap: list[tuple[int, float, tuple, Values]] = [
        (-root.mben_size, root.cost, root.sort_key(), root.values)
    ]
    visited: set[Values] = set()
    selected: list[Candidate] = []
    selected_values: set[Values] = set()
    attempts = [0] * scheme.n_levels
    max_attempts = scheme.max_selections()
    rem = target
    if rem <= _EPS:
        return selected, True

    while heap and sum(attempts) <= max_attempts:
        neg_size, _, _, values = heapq.heappop(heap)
        candidate = pool.get(values)
        if candidate is None:
            continue  # selected, visited, or evicted since being pushed
        if candidate.mben_size != -neg_size:
            heapq.heappush(
                heap,
                (
                    -candidate.mben_size,
                    candidate.cost,
                    candidate.sort_key(),
                    values,
                ),
            )
            continue
        level = scheme.level_of(candidate.cost)
        placeable = False
        if level is not None:
            attempts[level] += 1
            placeable = attempts[level] <= scheme.quotas[level]
        if placeable:
            with (
                obs_trace.span(
                    "select",
                    level=level,
                    pattern=str(Pattern(candidate.values)),
                )
                if traced
                else obs_trace.NULL_SPAN
            ) as pick_span:
                newly = pool.select(candidate)
                if pick_span.enabled:
                    pick_span.set(marginal_covered=len(newly))
            selected.append(candidate)
            selected_values.add(candidate.values)
            rem -= len(newly)
            if rem <= _EPS:
                return selected, True
        else:
            pool.remove(candidate.values)
            visited.add(candidate.values)
            for position, child, child_ben in index.children_values(
                values, candidate.ben
            ):
                if (
                    child in pool
                    or child in visited
                    or child in selected_values
                ):
                    continue
                # All-parents-in-V check (Fig. 4 line 33). The parent at
                # ``position`` is the just-visited candidate itself, so
                # only the other constants need a lookup.
                parents_visited = True
                for other_pos, other_value in enumerate(child):
                    if other_value is ALL or other_pos == position:
                        continue
                    parent = (
                        child[:other_pos] + (ALL,) + child[other_pos + 1:]
                    )
                    if parent not in visited:
                        parents_visited = False
                        break
                if parents_visited:
                    child_candidate = pool.materialize(child, child_ben)
                    # Fig. 4 lines 28-29 evict zero-marginal candidates;
                    # never admitting them is equivalent.
                    if child_candidate.mben:
                        pool.add(child_candidate)
                        heapq.heappush(
                            heap,
                            (
                                -child_candidate.mben_size,
                                child_candidate.cost,
                                child_candidate.sort_key(),
                                child,
                            ),
                        )
                    else:
                        visited.add(child)
    return selected, False


def _finish(
    table: PatternTable,
    selected: list[Candidate],
    feasible: bool,
    params: dict,
    metrics: Metrics,
    start: float,
) -> CoverResult:
    metrics.runtime_seconds = time.perf_counter() - start
    covered: set[int] = set()
    for candidate in selected:
        covered.update(candidate.ben)
    return make_result(
        algorithm="optimized_cmc",
        chosen=list(range(len(selected))),
        labels=[Pattern(candidate.values) for candidate in selected],
        total_cost=sum(candidate.cost for candidate in selected),
        covered=len(covered),
        n_elements=table.n_rows,
        feasible=feasible,
        params=params,
        metrics=metrics,
    )
