"""Full enumeration of the non-empty patterns of a table.

The *unoptimized* algorithms of the paper operate on the complete pattern
collection (Table II of the running example lists all 24 patterns of the
16-row entities table). Every non-empty pattern is a generalization of at
least one record, so enumerating the ``2^j`` generalization masks of each
record visits exactly the non-empty patterns — there are at most
``n * 2^j`` of them, far fewer than the syntactic space
``prod(|dom| + 1)``.
"""

from __future__ import annotations

from itertools import combinations

from repro.errors import PatternSpaceError
from repro.patterns.pattern import ALL, Pattern
from repro.patterns.table import PatternTable

#: Enumeration materializes ``n * 2^j`` pattern/row pairs; beyond this many
#: attributes that blows up no matter how small the table is.
MAX_ENUMERABLE_ATTRIBUTES = 20


def enumerate_nonempty_patterns(
    table: PatternTable,
) -> dict[Pattern, frozenset[int]]:
    """Map every non-empty pattern of the table to its benefit set.

    Includes the all-wildcards pattern whenever the table has rows, so a
    set system built from the result always has a full-coverage set (the
    paper's feasibility assumption).

    Raises
    ------
    PatternSpaceError
        If the table has more than :data:`MAX_ENUMERABLE_ATTRIBUTES`
        pattern attributes.
    """
    j = table.n_attributes
    if j > MAX_ENUMERABLE_ATTRIBUTES:
        raise PatternSpaceError(
            f"enumerating patterns over {j} attributes would touch "
            f"n * 2^{j} pattern/row pairs; restructure the table or use "
            "the optimized (lattice-pruned) algorithms"
        )
    masks = _generalization_masks(j)
    accumulator: dict[tuple, list[int]] = {}
    for row_id, row in enumerate(table.rows):
        for mask in masks:
            key = tuple(
                row[i] if keep else ALL for i, keep in enumerate(mask)
            )
            accumulator.setdefault(key, []).append(row_id)
    return {
        Pattern(values): frozenset(rows)
        for values, rows in accumulator.items()
    }


def _generalization_masks(j: int) -> list[tuple[bool, ...]]:
    """All ``2^j`` keep/wildcard masks, most-general first.

    Ordering is irrelevant to correctness; most-general-first makes the
    accumulator's insertion order stable for debugging.
    """
    masks: list[tuple[bool, ...]] = []
    for kept in range(j + 1):
        for keep_positions in combinations(range(j), kept):
            mask = tuple(i in keep_positions for i in range(j))
            masks.append(mask)
    return masks


def count_nonempty_patterns(table: PatternTable) -> int:
    """Number of distinct non-empty patterns (Table II's row count)."""
    return len(enumerate_nonempty_patterns(table))
