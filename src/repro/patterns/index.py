"""Per-attribute inverted index over a pattern table.

Supports the two benefit-set operations the algorithms need:

* :meth:`PatternIndex.benefit` — the rows matching an arbitrary pattern,
  via intersection of per-value row sets (smallest first);
* :meth:`PatternIndex.children_of` — all non-empty children of a pattern
  together with their benefit sets, by partitioning the parent's benefit
  per wildcard attribute. This is the primitive behind the lattice-pruned
  algorithms of Section V-C: a child's rows are exactly one value-group of
  its parent's rows, so children with empty benefit are never materialized.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro._typing import AttrValue
from repro.errors import ValidationError
from repro.patterns.pattern import ALL, Pattern
from repro.patterns.table import PatternTable


class PatternIndex:
    """Inverted index ``attribute -> value -> row ids`` for one table."""

    def __init__(self, table: PatternTable) -> None:
        self._table = table
        # Columnar copy of the table: one tuple per attribute. The child
        # partition loop is the hottest code in the optimized algorithms
        # and runs ~30% faster on single-indexed columns than on row
        # tuples.
        self._columns: list[tuple[AttrValue, ...]] = [
            tuple(row[position] for row in table.rows)
            for position in range(table.n_attributes)
        ]
        self._by_value: list[dict[AttrValue, frozenset[int]]] = []
        for position in range(table.n_attributes):
            buckets: dict[AttrValue, list[int]] = {}
            for row_id, value in enumerate(self._columns[position]):
                buckets.setdefault(value, []).append(row_id)
            self._by_value.append(
                {value: frozenset(ids) for value, ids in buckets.items()}
            )
        self._all_rows = frozenset(range(table.n_rows))

    @property
    def table(self) -> PatternTable:
        return self._table

    @property
    def all_rows(self) -> frozenset[int]:
        """Row ids of the whole table (benefit of the all-ALL pattern)."""
        return self._all_rows

    def rows_with_value(self, position: int, value: AttrValue) -> frozenset[int]:
        """Rows whose ``position``-th attribute equals ``value``."""
        return self._by_value[position].get(value, frozenset())

    # ------------------------------------------------------------------
    def benefit(self, pattern: Pattern) -> frozenset[int]:
        """``Ben(p)``: rows matching the pattern.

        Intersects per-value row sets smallest-first; the all-wildcards
        pattern short-circuits to all rows.
        """
        if pattern.n_attributes != self._table.n_attributes:
            raise ValidationError(
                f"pattern arity {pattern.n_attributes} != table arity "
                f"{self._table.n_attributes}"
            )
        parts = [
            self._by_value[i].get(value, frozenset())
            for i, value in enumerate(pattern.values)
            if value is not ALL
        ]
        if not parts:
            return self._all_rows
        parts.sort(key=len)
        result = parts[0]
        for part in parts[1:]:
            result = result & part
            if not result:
                return frozenset()
        return result

    # ------------------------------------------------------------------
    def children_of(
        self,
        pattern: Pattern,
        benefit: Iterable[int] | None = None,
    ) -> Iterator[tuple[Pattern, frozenset[int]]]:
        """Yield every non-empty child with its benefit set.

        For each wildcard position, the parent's benefit is partitioned by
        that attribute's value; each group is exactly one child's benefit.
        Children are yielded in deterministic order (position, then value
        repr) so callers inherit reproducibility.

        Parameters
        ----------
        pattern:
            The parent pattern.
        benefit:
            The parent's benefit set, if the caller already has it
            (children partition it); computed via :meth:`benefit`
            otherwise.
        """
        parent_rows = (
            list(benefit) if benefit is not None else self.benefit(pattern)
        )
        for position, child, rows in self.children_values(
            pattern.values, parent_rows
        ):
            yield Pattern(child), frozenset(rows)

    def children_values(
        self,
        values: tuple[AttrValue, ...],
        benefit: Iterable[int],
    ) -> Iterator[tuple[int, tuple[AttrValue, ...], list[int]]]:
        """Hot-path variant of :meth:`children_of` on raw value tuples.

        Yields ``(position, child_values, child_rows)`` without
        constructing :class:`Pattern` objects — ``position`` is the
        attribute that was specialized, letting callers skip the parent
        they expanded from in the all-parents check. The optimized
        algorithms run their inner loops on plain tuples and only wrap
        the final solution in patterns.
        """
        columns = self._columns
        for position, value in enumerate(values):
            if value is not ALL:
                continue
            column = columns[position]
            groups: dict[AttrValue, list[int]] = {}
            setdefault = groups.setdefault
            for row_id in benefit:
                setdefault(column[row_id], []).append(row_id)
            for child_value in sorted(groups, key=repr):
                child = (
                    values[:position] + (child_value,) + values[position + 1:]
                )
                yield position, child, groups[child_value]
