"""Record tables: the element collection for patterned set cover.

A :class:`PatternTable` is the paper's input ``T`` for the special case of
Section II: ``n`` records over ``j`` categorical *pattern attributes*, plus
an optional numeric *measure* attribute from which pattern costs are
computed (the paper's running example uses ``Cost`` with the ``max``
function).
"""

from __future__ import annotations

import csv
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro._typing import AttrValue
from repro.errors import ValidationError


class PatternTable:
    """An immutable table of records with pattern attributes and a measure.

    Parameters
    ----------
    attributes:
        Names of the pattern attributes ``D_1 .. D_j``.
    rows:
        One tuple of attribute values per record, each of arity ``j``.
    measure:
        Optional numeric value per record (parallel to ``rows``), used by
        measure-based cost functions.
    measure_name:
        Display name of the measure attribute.
    """

    def __init__(
        self,
        attributes: Sequence[str],
        rows: Sequence[Sequence[AttrValue]],
        measure: Sequence[float] | None = None,
        measure_name: str = "measure",
    ) -> None:
        self._attributes = tuple(attributes)
        if not self._attributes:
            raise ValidationError("a pattern table needs >= 1 attribute")
        if len(set(self._attributes)) != len(self._attributes):
            raise ValidationError(
                f"attribute names must be unique, got {self._attributes}"
            )
        self._rows = tuple(tuple(row) for row in rows)
        for row_id, row in enumerate(self._rows):
            if len(row) != len(self._attributes):
                raise ValidationError(
                    f"row {row_id} has {len(row)} values, expected "
                    f"{len(self._attributes)}"
                )
        if measure is not None:
            if len(measure) != len(self._rows):
                raise ValidationError(
                    f"got {len(measure)} measure values for "
                    f"{len(self._rows)} rows"
                )
            self._measure: tuple[float, ...] | None = tuple(
                float(value) for value in measure
            )
        else:
            self._measure = None
        self._measure_name = measure_name
        self._domains: list[tuple[AttrValue, ...]] | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        records: Iterable[Mapping[str, AttrValue]],
        attributes: Sequence[str],
        measure_name: str | None = None,
    ) -> "PatternTable":
        """Build from dict records, selecting pattern and measure columns."""
        rows = []
        measure = [] if measure_name is not None else None
        for record in records:
            rows.append(tuple(record[name] for name in attributes))
            if measure is not None:
                measure.append(float(record[measure_name]))
        return cls(
            attributes,
            rows,
            measure=measure,
            measure_name=measure_name or "measure",
        )

    @classmethod
    def from_csv(
        cls,
        path,
        attributes: Sequence[str],
        measure_name: str | None = None,
    ) -> "PatternTable":
        """Load records from a CSV file with a header row."""
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            return cls.from_records(reader, attributes, measure_name)

    def to_csv(self, path) -> None:
        """Write the table (pattern attributes + measure) as CSV."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            header = list(self._attributes)
            if self._measure is not None:
                header.append(self._measure_name)
            writer.writerow(header)
            for row_id, row in enumerate(self._rows):
                out = list(row)
                if self._measure is not None:
                    out.append(self._measure[row_id])
                writer.writerow(out)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> tuple[str, ...]:
        return self._attributes

    @property
    def n_attributes(self) -> int:
        return len(self._attributes)

    @property
    def rows(self) -> tuple[tuple[AttrValue, ...], ...]:
        return self._rows

    @property
    def n_rows(self) -> int:
        return len(self._rows)

    @property
    def measure(self) -> tuple[float, ...] | None:
        return self._measure

    @property
    def measure_name(self) -> str:
        return self._measure_name

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return (
            f"PatternTable(n_rows={self.n_rows}, "
            f"attributes={list(self._attributes)}, "
            f"measure={self._measure_name if self._measure else None})"
        )

    def active_domain(self, position: int) -> tuple[AttrValue, ...]:
        """Distinct values of one attribute, in deterministic (repr) order."""
        if self._domains is None:
            self._domains = [
                tuple(
                    sorted(
                        {row[i] for row in self._rows},
                        key=repr,
                    )
                )
                for i in range(self.n_attributes)
            ]
        return self._domains[position]

    def pattern_space_size(self) -> int:
        """``prod(|dom(D_i)| + 1)`` — the number of syntactic patterns."""
        size = 1
        for i in range(self.n_attributes):
            size *= len(self.active_domain(i)) + 1
        return size

    # ------------------------------------------------------------------
    # Transformations (each returns a new table)
    # ------------------------------------------------------------------
    def project(self, attributes: Sequence[str]) -> "PatternTable":
        """Keep only the named pattern attributes (Fig. 7's workload)."""
        missing = [name for name in attributes if name not in self._attributes]
        if missing:
            raise ValidationError(f"unknown attributes: {missing}")
        indices = [self._attributes.index(name) for name in attributes]
        return PatternTable(
            attributes,
            [tuple(row[i] for i in indices) for row in self._rows],
            measure=self._measure,
            measure_name=self._measure_name,
        )

    def sample(self, n: int, seed: int = 0) -> "PatternTable":
        """Uniform random sample of ``n`` rows without replacement."""
        if not (0 <= n <= self.n_rows):
            raise ValidationError(
                f"cannot sample {n} of {self.n_rows} rows"
            )
        rng = np.random.default_rng(seed)
        chosen = sorted(rng.choice(self.n_rows, size=n, replace=False))
        return self.take(chosen)

    def take(self, row_ids: Sequence[int]) -> "PatternTable":
        """Sub-table with exactly the given rows (order preserved)."""
        rows = [self._rows[i] for i in row_ids]
        measure = (
            [self._measure[i] for i in row_ids]
            if self._measure is not None
            else None
        )
        return PatternTable(
            self._attributes, rows, measure=measure,
            measure_name=self._measure_name,
        )

    def with_measure(
        self, measure: Sequence[float], measure_name: str | None = None
    ) -> "PatternTable":
        """Same rows with a replaced measure column (Section VI-B)."""
        return PatternTable(
            self._attributes,
            self._rows,
            measure=measure,
            measure_name=measure_name or self._measure_name,
        )

    def extend(self, other: "PatternTable") -> "PatternTable":
        """Concatenate two tables over the same schema (incremental use)."""
        if other.attributes != self._attributes:
            raise ValidationError(
                f"schema mismatch: {other.attributes} vs {self._attributes}"
            )
        if (self._measure is None) != (other.measure is None):
            raise ValidationError(
                "cannot concatenate a table with a measure and one without"
            )
        measure = (
            list(self._measure) + list(other.measure)
            if self._measure is not None and other.measure is not None
            else None
        )
        return PatternTable(
            self._attributes,
            list(self._rows) + list(other.rows),
            measure=measure,
            measure_name=self._measure_name,
        )
