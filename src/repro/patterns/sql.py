"""Render patterns and solutions as SQL predicates.

A pattern is a conjunction of equality constraints, so a summary computed
by this library translates directly into SQL — the form in which a
database user would actually consume it ("these k WHERE-clauses cover 60%
of the table"). Values are rendered as SQL literals with single-quote
escaping; this is for *readability and hand-off*, not as an injection-safe
query builder — always prefer bound parameters when executing.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.result import CoverResult
from repro.errors import ValidationError
from repro.patterns.pattern import ALL, Pattern


def sql_literal(value) -> str:
    """Render a Python value as a SQL literal.

    Strings get single-quoted with embedded quotes doubled; booleans map
    to TRUE/FALSE; None maps to NULL; numbers render plainly.
    """
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value).replace("'", "''")
    return f"'{text}'"


def pattern_to_sql(
    pattern: Pattern, attributes: Sequence[str]
) -> str:
    """One pattern as a conjunctive predicate.

    Wildcard positions impose no constraint; the all-wildcards pattern
    renders as ``TRUE`` (it matches every row). ``None`` values use
    ``IS NULL`` (SQL equality with NULL never holds).
    """
    if len(attributes) != pattern.n_attributes:
        raise ValidationError(
            f"got {len(attributes)} attribute names for a "
            f"{pattern.n_attributes}-ary pattern"
        )
    clauses = []
    for name, value in zip(attributes, pattern.values):
        if value is ALL:
            continue
        if value is None:
            clauses.append(f"{name} IS NULL")
        else:
            clauses.append(f"{name} = {sql_literal(value)}")
    return " AND ".join(clauses) if clauses else "TRUE"


def solution_to_sql(
    result: CoverResult,
    attributes: Sequence[str],
    table_name: str = "t",
) -> str:
    """A whole solution as a SELECT over the disjunction of its patterns.

    The returned query selects exactly the covered rows: each chosen
    pattern contributes one parenthesized conjunct to the WHERE clause.
    """
    predicates = []
    for label in result.labels:
        if not isinstance(label, Pattern):
            raise ValidationError(
                "solution_to_sql needs a pattern-labeled result "
                f"(got label {label!r})"
            )
        predicates.append(f"({pattern_to_sql(label, attributes)})")
    if not predicates:
        where = "FALSE"
    else:
        where = "\n   OR ".join(predicates)
    return f"SELECT *\nFROM {table_name}\nWHERE {where};"
