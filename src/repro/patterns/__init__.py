"""Patterned set systems: the paper's practical special case (Section V-C).

Public surface:

* :data:`ALL` / :class:`Pattern` — patterns over categorical attributes.
* :class:`PatternTable` — records + measure attribute.
* :class:`PatternIndex` — benefit sets and lattice traversal.
* :func:`enumerate_nonempty_patterns` / :func:`build_set_system` — the
  unoptimized path (full pattern collection as a :class:`SetSystem`).
* :func:`optimized_cwsc` / :func:`optimized_cmc` — Figs. 3 and 4.
* Cost functions: :data:`MAX_COST`, :data:`SUM_COST`, :data:`MEAN_COST`,
  :data:`COUNT_COST`, :func:`lp_norm_cost`.
"""

from repro.patterns.candidates import Candidate, CandidatePool
from repro.patterns.costs import (
    COUNT_COST,
    MAX_COST,
    MEAN_COST,
    SUM_COST,
    CostFunction,
    get_cost_function,
    lp_norm_cost,
)
from repro.patterns.enumerate import (
    count_nonempty_patterns,
    enumerate_nonempty_patterns,
)
from repro.patterns.index import PatternIndex
from repro.patterns.lattice import (
    ancestors,
    common_generalization,
    lattice_depth,
    syntactic_children,
)
from repro.patterns.optimized_cmc import optimized_cmc
from repro.patterns.optimized_cwsc import optimized_cwsc
from repro.patterns.pattern import ALL, Pattern
from repro.patterns.pattern_sets import build_set_system, pattern_of
from repro.patterns.sql import pattern_to_sql, solution_to_sql, sql_literal
from repro.patterns.stats import TableProfile, profile_table
from repro.patterns.table import PatternTable

__all__ = [
    "ALL",
    "COUNT_COST",
    "Candidate",
    "CandidatePool",
    "CostFunction",
    "MAX_COST",
    "MEAN_COST",
    "Pattern",
    "PatternIndex",
    "PatternTable",
    "SUM_COST",
    "TableProfile",
    "profile_table",
    "ancestors",
    "build_set_system",
    "common_generalization",
    "count_nonempty_patterns",
    "enumerate_nonempty_patterns",
    "get_cost_function",
    "lattice_depth",
    "lp_norm_cost",
    "optimized_cmc",
    "optimized_cwsc",
    "pattern_of",
    "pattern_to_sql",
    "solution_to_sql",
    "sql_literal",
    "syntactic_children",
]
