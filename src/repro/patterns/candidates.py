"""Candidate-pattern pool shared by the optimized algorithms (Section V-C).

The optimized CWSC and CMC never materialize the full pattern collection;
they maintain a small pool of *candidate* patterns, each carrying its
static benefit set and cost plus a mutable marginal-benefit set. The pool
implements the two update loops both figures share: materializing a child
pattern discovered via the lattice, and subtracting a selection's newly
covered rows from every remaining candidate (Fig. 3 lines 27–30, Fig. 4
lines 26–29 — candidates whose marginal benefit empties are evicted).

For speed the pool works on raw pattern *value tuples* (with the
:data:`~repro.patterns.pattern.ALL` sentinel), not :class:`Pattern`
objects; callers wrap the final solution in patterns. Tie-breaking uses
:func:`repro.patterns.pattern.values_sort_key`, which orders value tuples
exactly like :meth:`Pattern.sort_key` orders patterns — this is what makes
the optimized and unoptimized algorithms select identical sets.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro._typing import AttrValue
from repro.core.result import Metrics
from repro.patterns.pattern import values_sort_key

#: A candidate's identity: one value-or-ALL per attribute.
Values = tuple[AttrValue, ...]


class Candidate:
    """One candidate pattern with static benefit/cost and live marginal."""

    __slots__ = ("values", "ben", "cost", "mben", "_sort_key")

    def __init__(
        self, values: Values, ben: Iterable[int], cost: float
    ) -> None:
        self.values = values
        self.ben = tuple(ben)
        self.cost = cost
        self.mben: set[int] = set()
        self._sort_key: tuple | None = None

    @property
    def mben_size(self) -> int:
        return len(self.mben)

    @property
    def mgain(self) -> float:
        if self.cost == 0:
            return float("inf") if self.mben else 0.0
        return len(self.mben) / self.cost

    def sort_key(self) -> tuple:
        """Cached :func:`values_sort_key` of this candidate's values."""
        if self._sort_key is None:
            self._sort_key = values_sort_key(self.values)
        return self._sort_key

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Candidate({self.values!r}, |ben|={len(self.ben)}, "
            f"cost={self.cost:g}, |mben|={len(self.mben)})"
        )


class CandidatePool:
    """The live candidate collection ``C`` plus the covered-row set.

    Parameters
    ----------
    cost_fn:
        Bound cost function ``ben_rows -> cost``
        (see :meth:`repro.patterns.costs.CostFunction.bind`).
    metrics:
        Shared metrics; every materialization counts one "pattern
        considered" (the Fig. 6 measure).
    covered:
        Rows to treat as already covered (incremental repair).
    """

    def __init__(
        self,
        cost_fn: Callable[[Iterable[int]], float],
        metrics: Metrics,
        covered: Iterable[int] | None = None,
        cost_cache: dict[Values, float] | None = None,
    ) -> None:
        self._cost_fn = cost_fn
        self._metrics = metrics
        self._candidates: dict[Values, Candidate] = {}
        self._archive: dict[Values, Candidate] = {}
        self._covered: set[int] = set(covered) if covered is not None else set()
        # Pattern costs are static, so CMC shares this cache across its
        # budget rounds (each round uses a fresh pool otherwise).
        self._cost_cache = cost_cache if cost_cache is not None else {}

    # ------------------------------------------------------------------
    @property
    def covered(self) -> set[int]:
        """Rows covered by all selections so far (do not mutate)."""
        return self._covered

    @property
    def covered_count(self) -> int:
        return len(self._covered)

    def __len__(self) -> int:
        return len(self._candidates)

    def __contains__(self, values: Values) -> bool:
        return values in self._candidates

    def __iter__(self) -> Iterator[Candidate]:
        return iter(self._candidates.values())

    def get(self, values: Values) -> Candidate | None:
        return self._candidates.get(values)

    # ------------------------------------------------------------------
    def materialize(self, values: Values, ben: Iterable[int]) -> Candidate:
        """Build a candidate (benefit, cost, marginal) without adding it.

        Fresh materializations count toward ``sets_considered`` — this is
        exactly the work the optimizations exist to avoid, so it is the
        quantity Fig. 6 plots. Candidates previously pruned from the pool
        are rehydrated from the archive instead of recomputing their cost
        and benefit (their stale marginal only shrinks, so refreshing it
        against the covered set is exact).
        """
        archived = self._archive.pop(values, None)
        covered = self._covered
        if archived is not None:
            archived.mben = {
                row for row in archived.mben if row not in covered
            }
            return archived
        self._metrics.sets_considered += 1
        cost = self._cost_cache.get(values)
        if cost is None:
            cost = self._cost_fn(ben)
            self._cost_cache[values] = cost
        candidate = Candidate(values, ben, cost)
        if covered:
            candidate.mben = {
                row for row in candidate.ben if row not in covered
            }
        else:
            candidate.mben = set(candidate.ben)
        return candidate

    def add(self, candidate: Candidate) -> None:
        self._candidates[candidate.values] = candidate

    def archive(self, candidate: Candidate) -> None:
        """Stash a materialized-but-unqualified candidate for cheap reuse."""
        self._archive[candidate.values] = candidate

    def remove(self, values: Values) -> Candidate | None:
        return self._candidates.pop(values, None)

    def prune(self, predicate: Callable[[Candidate], bool]) -> None:
        """Archive every candidate for which ``predicate`` is false.

        Archived candidates leave ``C`` (they no longer participate in
        selection or parent checks) but can be rehydrated cheaply if a
        later, lower threshold re-qualifies them.
        """
        doomed = [
            values
            for values, candidate in self._candidates.items()
            if not predicate(candidate)
        ]
        for values in doomed:
            self._archive[values] = self._candidates.pop(values)

    # ------------------------------------------------------------------
    def select(self, candidate: Candidate) -> set[int]:
        """Move a candidate into the solution; returns its newly covered rows.

        Subtracts the newly covered rows from every other candidate's
        marginal benefit and evicts candidates that become useless.
        """
        self._candidates.pop(candidate.values, None)
        self._metrics.selections += 1
        newly = set(candidate.mben)
        self._covered |= newly
        emptied: list[Values] = []
        for other in self._candidates.values():
            before = len(other.mben)
            other.mben -= newly
            if len(other.mben) != before:
                self._metrics.marginal_updates += 1
            if not other.mben:
                emptied.append(other.values)
        for values in emptied:
            # Evicted-but-materialized candidates go to the archive so a
            # later expansion round reuses them instead of recomputing
            # (and re-counting) their benefit and cost.
            self._archive[values] = self._candidates.pop(values)
        return newly

    # ------------------------------------------------------------------
    def best_by_gain(self, min_mben: float = 0.0) -> Candidate | None:
        """Candidate maximizing marginal gain among those with
        ``|mben| >= min_mben`` — CWSC's selection rule (Fig. 2/3).

        Ties: larger ``|mben|``, then lower cost, then smaller sort key —
        the same order as :func:`repro.core.greedy_common.gain_key` with
        pattern labels.
        """
        best: Candidate | None = None
        best_key = None
        for candidate in self._candidates.values():
            size = candidate.mben_size
            if size < min_mben:
                continue
            key = (candidate.mgain, size, -candidate.cost)
            if best_key is None or key > best_key or (
                key == best_key
                and candidate.sort_key() < best.sort_key()
            ):
                best = candidate
                best_key = key
        return best

    def best_by_mben(self) -> Candidate | None:
        """Candidate maximizing marginal benefit — CMC's selection rule."""
        best: Candidate | None = None
        best_key = None
        for candidate in self._candidates.values():
            key = (candidate.mben_size, -candidate.cost)
            if best_key is None or key > best_key or (
                key == best_key
                and candidate.sort_key() < best.sort_key()
            ):
                best = candidate
                best_key = key
        return best
