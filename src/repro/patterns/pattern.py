"""Patterns: conjunctions of attribute values with an ``ALL`` wildcard.

A pattern over ``j`` attributes has, in each position, either a value from
that attribute's domain or the wildcard :data:`ALL` (paper Section II). A
record matches a pattern if they agree on every non-wildcard position.
Patterns form a lattice: replacing a constant with ``ALL`` gives a *parent*
(never covers fewer records), replacing an ``ALL`` with a constant gives a
*child* (never covers more).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro._typing import AttrValue
from repro.errors import ValidationError


class _AllType:
    """Singleton wildcard; compares equal only to itself."""

    _instance: "_AllType | None" = None

    def __new__(cls) -> "_AllType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ALL"

    def __reduce__(self):
        # Pickle round-trips to the same singleton.
        return (_AllType, ())


#: The wildcard value. ``Pattern((ALL, "West"))`` matches every record
#: whose second attribute is ``"West"``.
ALL = _AllType()


def parent_values(
    values: Sequence[AttrValue],
) -> Iterator[tuple[AttrValue, ...]]:
    """Immediate-parent value tuples (one per constant position).

    Hot-path counterpart of :meth:`Pattern.parents` on raw tuples.
    """
    values = tuple(values)
    for position, value in enumerate(values):
        if value is not ALL:
            yield values[:position] + (ALL,) + values[position + 1:]


def values_sort_key(values: Sequence[AttrValue]) -> tuple:
    """Deterministic total-order key over raw pattern value tuples.

    Identical to :meth:`Pattern.sort_key`, for hot paths that work on
    plain tuples instead of :class:`Pattern` objects (the optimized
    algorithms of Section V-C); both sides of an optimized/unoptimized
    comparison therefore break ties the same way.
    """
    return tuple(
        (0, "") if value is ALL else (1, repr(value)) for value in values
    )


class Pattern:
    """An immutable pattern: one value-or-``ALL`` per attribute.

    Hashable and totally ordered via :meth:`sort_key`, so collections of
    patterns can be processed deterministically.
    """

    __slots__ = ("_values", "_hash")

    def __init__(self, values: Sequence[AttrValue]) -> None:
        self._values = tuple(values)
        self._hash = hash(self._values)

    # ------------------------------------------------------------------
    @classmethod
    def all_pattern(cls, n_attributes: int) -> "Pattern":
        """The all-wildcards pattern, which covers every record."""
        if n_attributes < 1:
            raise ValidationError(
                f"patterns need >= 1 attribute, got {n_attributes}"
            )
        return cls((ALL,) * n_attributes)

    # ------------------------------------------------------------------
    @property
    def values(self) -> tuple[AttrValue, ...]:
        """The raw value tuple."""
        return self._values

    @property
    def n_attributes(self) -> int:
        return len(self._values)

    @property
    def n_wildcards(self) -> int:
        """Number of ``ALL`` positions."""
        return sum(1 for value in self._values if value is ALL)

    @property
    def n_constants(self) -> int:
        """Number of constant (non-``ALL``) positions."""
        return len(self._values) - self.n_wildcards

    @property
    def is_all(self) -> bool:
        """Whether this is the all-wildcards pattern."""
        return self.n_constants == 0

    def wildcard_positions(self) -> list[int]:
        """Indices of ``ALL`` positions, ascending."""
        return [i for i, value in enumerate(self._values) if value is ALL]

    def constant_positions(self) -> list[int]:
        """Indices of constant positions, ascending."""
        return [i for i, value in enumerate(self._values) if value is not ALL]

    # ------------------------------------------------------------------
    def matches(self, record: Sequence[AttrValue]) -> bool:
        """Whether a record agrees with every non-wildcard position."""
        if len(record) != len(self._values):
            raise ValidationError(
                f"record has {len(record)} attributes, pattern has "
                f"{len(self._values)}"
            )
        return all(
            value is ALL or value == record[i]
            for i, value in enumerate(self._values)
        )

    def specialize(self, position: int, value: AttrValue) -> "Pattern":
        """Child obtained by fixing one wildcard position to ``value``."""
        if self._values[position] is not ALL:
            raise ValidationError(
                f"position {position} of {self!r} is already the constant "
                f"{self._values[position]!r}"
            )
        if value is ALL:
            raise ValidationError("cannot specialize a position to ALL")
        values = list(self._values)
        values[position] = value
        return Pattern(values)

    def generalize(self, position: int) -> "Pattern":
        """Parent obtained by wildcarding one constant position."""
        if self._values[position] is ALL:
            raise ValidationError(
                f"position {position} of {self!r} is already ALL"
            )
        values = list(self._values)
        values[position] = ALL
        return Pattern(values)

    def parents(self) -> Iterator["Pattern"]:
        """All immediate parents (one per constant position)."""
        for position in self.constant_positions():
            yield self.generalize(position)

    def is_specialization_of(self, other: "Pattern") -> bool:
        """Whether every record matching ``self`` also matches ``other``.

        True when ``other`` agrees with ``self`` on all of ``other``'s
        constant positions.
        """
        if other.n_attributes != self.n_attributes:
            raise ValidationError("patterns have different arities")
        return all(
            value is ALL or value == self._values[i]
            for i, value in enumerate(other._values)
        )

    # ------------------------------------------------------------------
    def sort_key(self) -> tuple:
        """Deterministic total-order key (wildcards first per position)."""
        return values_sort_key(self._values)

    def __eq__(self, other) -> bool:
        return isinstance(other, Pattern) and self._values == other._values

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Pattern") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:
        inner = ", ".join(repr(value) for value in self._values)
        return f"Pattern({inner})"

    def format(self, attributes: Sequence[str]) -> str:
        """Readable form with attribute names, e.g. ``Type=A, Location=ALL``."""
        if len(attributes) != len(self._values):
            raise ValidationError(
                f"got {len(attributes)} attribute names for a "
                f"{len(self._values)}-ary pattern"
            )
        return ", ".join(
            f"{name}={value!r}" if value is not ALL else f"{name}=ALL"
            for name, value in zip(attributes, self._values)
        )
