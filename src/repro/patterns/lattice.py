"""Pure pattern-lattice utilities (no table required).

The lattice orders patterns by specialization: ``p <= q`` when every record
matching ``p`` also matches ``q``. :mod:`repro.patterns.index` provides the
table-aware traversal the optimized algorithms use; this module provides the
syntactic operations, mainly for tests and tools.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro._typing import AttrValue
from repro.patterns.pattern import ALL, Pattern


def syntactic_children(
    pattern: Pattern, domains: Sequence[Sequence[AttrValue]]
) -> Iterator[Pattern]:
    """All immediate children given per-attribute domains.

    Unlike :meth:`PatternIndex.children_of`, this includes children with
    empty benefit — it is the raw lattice, not the data-restricted one.
    """
    for position in pattern.wildcard_positions():
        for value in domains[position]:
            yield pattern.specialize(position, value)


def lattice_depth(pattern: Pattern) -> int:
    """Number of constants: 0 for the all-wildcards root, ``j`` for leaves."""
    return pattern.n_constants


def common_generalization(left: Pattern, right: Pattern) -> Pattern:
    """The most specific pattern that both inputs specialize.

    Positions where the two disagree (or either is ``ALL``) become ``ALL``.
    """
    values = [
        lv if lv is not ALL and lv == rv else ALL
        for lv, rv in zip(left.values, right.values)
    ]
    return Pattern(values)


def ancestors(pattern: Pattern) -> Iterator[Pattern]:
    """Every proper generalization of a pattern (up to ``2^c - 1`` of them).

    Yielded in breadth-first order ending at the all-wildcards root.
    """
    seen = {pattern}
    frontier = [pattern]
    while frontier:
        next_frontier: list[Pattern] = []
        for current in frontier:
            for parent in current.parents():
                if parent not in seen:
                    seen.add(parent)
                    next_frontier.append(parent)
                    yield parent
        frontier = next_frontier
