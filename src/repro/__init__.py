"""repro — a reproduction of *Size-Constrained Weighted Set Cover*
(Golab, Korn, Li, Saha, Srivastava; ICDE 2015).

Given ``n`` elements, weighted candidate sets, a size bound ``k`` and a
coverage fraction ``s_hat``, find at most ``k`` sets covering at least
``s_hat * n`` elements with minimal total weight.

Quickstart::

    from repro import SetSystem, cwsc
    system = SetSystem.from_iterables(
        n_elements=4,
        benefits=[{0, 1}, {2, 3}, {0, 1, 2, 3}],
        costs=[1.0, 1.0, 5.0],
    )
    result = cwsc(system, k=2, s_hat=1.0)
    assert result.total_cost == 2.0

For data records with categorical attributes, use the patterned special
case (:class:`PatternTable` + :func:`optimized_cwsc` /
:func:`optimized_cmc`), which prunes the pattern lattice instead of
enumerating it.
"""

import logging as _logging

# Stdlib library convention: importing repro must never print or log
# unless the application opts in (repro.obs.log.console_logging does).
_logging.getLogger("repro").addHandler(_logging.NullHandler())

from repro.core import (
    COVERAGE_DISCOUNT,
    CoverResult,
    Metrics,
    SetSystem,
    WeightedSet,
    brute_force,
    cmc,
    cmc_epsilon,
    cmc_generalized,
    cwsc,
    lp_lower_bound,
    solve_exact,
    verify_result,
)
from repro.errors import (
    DeadlineExceeded,
    InfeasibleError,
    PatternSpaceError,
    ReproError,
    TransientSolverError,
    ValidationError,
)
from repro.resilience import Deadline, resilient_solve
from repro.patterns import (
    ALL,
    Pattern,
    PatternIndex,
    PatternTable,
    build_set_system,
    enumerate_nonempty_patterns,
    optimized_cmc,
    optimized_cwsc,
)

__version__ = "1.0.0"

__all__ = [
    "ALL",
    "COVERAGE_DISCOUNT",
    "CoverResult",
    "Deadline",
    "DeadlineExceeded",
    "InfeasibleError",
    "Metrics",
    "Pattern",
    "PatternIndex",
    "PatternSpaceError",
    "PatternTable",
    "ReproError",
    "SetSystem",
    "TransientSolverError",
    "ValidationError",
    "WeightedSet",
    "__version__",
    "brute_force",
    "build_set_system",
    "cmc",
    "cmc_epsilon",
    "cmc_generalized",
    "cwsc",
    "enumerate_nonempty_patterns",
    "lp_lower_bound",
    "optimized_cmc",
    "optimized_cwsc",
    "resilient_solve",
    "solve_exact",
    "verify_result",
]
