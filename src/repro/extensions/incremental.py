"""Incremental size-constrained weighted set cover (paper Section VII).

The paper names, as future work, "an incremental version ... in which the
solution must be continuously maintained as new elements arrive". This
module implements a practical maintainer for the patterned case:

* New records can only *shrink* the coverage fraction of the current
  pattern collection (patterns keep matching what they matched) and can
  change pattern costs (a new record can raise a ``max``-cost).
* On each batch arrival the maintainer re-evaluates the solution on the
  grown table. While the coverage fraction still meets ``s_hat`` the
  solution is kept (a cheap O(batch) update). When it drops below:

  - with spare capacity (``|S| < k``) it runs a *repair*: a CWSC-style
    threshold-greedy over the remaining picks, seeded with the rows the
    current patterns already cover;
  - otherwise it *recomputes* from scratch with
    :func:`repro.patterns.optimized_cwsc`.

The maintainer tracks how often each path fired, so experiments can report
maintenance cost against recompute-always.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.result import CoverResult, Metrics, make_result
from repro.errors import InfeasibleError, ValidationError
from repro.patterns.candidates import CandidatePool
from repro.patterns.costs import CostFunction, get_cost_function
from repro.patterns.index import PatternIndex
from repro.patterns.optimized_cwsc import optimized_cwsc, _expand
from repro.patterns.pattern import ALL, Pattern
from repro.patterns.table import PatternTable

_EPS = 1e-9


@dataclass
class MaintenanceStats:
    """How the maintainer reacted to arrivals."""

    batches: int = 0
    kept: int = 0
    repaired: int = 0
    recomputed: int = 0
    repair_failures: int = 0
    metrics: Metrics = field(default_factory=Metrics)


class IncrementalCWSC:
    """Maintains a CWSC solution while records arrive in batches.

    Parameters
    ----------
    table:
        The initial (non-empty) record table.
    k:
        Maximum number of patterns in the maintained solution.
    s_hat:
        Coverage fraction the maintained solution must always satisfy.
    cost:
        Pattern cost function (name or instance).
    """

    def __init__(
        self,
        table: PatternTable,
        k: int,
        s_hat: float,
        cost: "str | CostFunction" = "max",
    ) -> None:
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        if not (0.0 <= s_hat <= 1.0):
            raise ValidationError(f"s_hat must be in [0, 1], got {s_hat}")
        self._k = k
        self._s_hat = s_hat
        self._cost_obj = get_cost_function(cost)
        self._table = table
        self._stats = MaintenanceStats()
        self._patterns: list[Pattern] = []
        self._recompute()

    # ------------------------------------------------------------------
    @property
    def table(self) -> PatternTable:
        """The current (grown) table."""
        return self._table

    @property
    def patterns(self) -> tuple[Pattern, ...]:
        """The maintained solution."""
        return tuple(self._patterns)

    @property
    def stats(self) -> MaintenanceStats:
        return self._stats

    def current_result(self) -> CoverResult:
        """The maintained solution evaluated on the current table."""
        index = PatternIndex(self._table)
        cost_fn = self._cost_obj.bind(self._table)
        covered: set[int] = set()
        total_cost = 0.0
        for pattern in self._patterns:
            ben = index.benefit(pattern)
            covered |= ben
            total_cost += cost_fn(ben)
        return make_result(
            algorithm="incremental_cwsc",
            chosen=list(range(len(self._patterns))),
            labels=list(self._patterns),
            total_cost=total_cost,
            covered=len(covered),
            n_elements=self._table.n_rows,
            feasible=len(covered) >= self._s_hat * self._table.n_rows - _EPS,
            params={"k": self._k, "s_hat": self._s_hat},
            metrics=self._stats.metrics,
        )

    # ------------------------------------------------------------------
    def add_records(self, batch: PatternTable) -> CoverResult:
        """Absorb a batch of new records and restore feasibility.

        Returns the maintained solution on the grown table.
        """
        start = time.perf_counter()
        self._table = self._table.extend(batch)
        self._stats.batches += 1

        index = PatternIndex(self._table)
        covered: set[int] = set()
        for pattern in self._patterns:
            covered |= index.benefit(pattern)
        required = self._s_hat * self._table.n_rows
        if len(covered) >= required - _EPS:
            self._stats.kept += 1
        elif len(self._patterns) < self._k and self._repair(index, covered):
            self._stats.repaired += 1
        else:
            self._recompute()
            self._stats.recomputed += 1
        self._stats.metrics.runtime_seconds += time.perf_counter() - start
        return self.current_result()

    # ------------------------------------------------------------------
    def _repair(self, index: PatternIndex, covered: set[int]) -> bool:
        """Extend the current solution with up to ``k - |S|`` patterns.

        Runs the CWSC threshold loop seeded with the already-covered rows.
        Returns False (leaving the solution untouched) if the thresholded
        selection dead-ends, in which case the caller recomputes.
        """
        cost_fn = self._cost_obj.bind(self._table)
        pool = CandidatePool(cost_fn, self._stats.metrics, covered=covered)
        all_values = (ALL,) * self._table.n_attributes
        pool.add(pool.materialize(all_values, index.all_rows))
        selected_values = {pattern.values for pattern in self._patterns}
        additions: list[Pattern] = []
        rem = self._s_hat * self._table.n_rows - len(covered)
        picks_left = self._k - len(self._patterns)
        for i in range(picks_left, 0, -1):
            threshold = rem / i - _EPS
            pool.prune(lambda candidate: candidate.mben_size >= threshold)
            _expand(pool, index, selected_values, threshold)
            best = pool.best_by_gain()
            if best is None:
                self._stats.repair_failures += 1
                return False
            newly = pool.select(best)
            additions.append(Pattern(best.values))
            selected_values.add(best.values)
            rem -= len(newly)
            if rem <= _EPS:
                self._patterns.extend(additions)
                return True
        self._stats.repair_failures += 1
        return False

    def _recompute(self) -> None:
        """Full optimized-CWSC run on the current table."""
        try:
            result = optimized_cwsc(
                self._table,
                self._k,
                self._s_hat,
                cost=self._cost_obj,
                on_infeasible="full_cover",
            )
        except InfeasibleError:  # pragma: no cover - full_cover never raises
            raise
        self._patterns = list(result.labels)
        self._stats.metrics = self._stats.metrics.merge(result.metrics)
