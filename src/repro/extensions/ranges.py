"""Numerical-range pattern attributes (paper Section II aside).

The paper's patterns take exact values or ``ALL``; Section II notes that
"numerical ranges may be used as well, but are not considered in this
paper". The standard realization is discretization: replace a numeric
column with interval labels, optionally at two granularities (coarse and
fine bins, where each fine bin nests inside a coarse one) so that patterns
can generalize along the range hierarchy exactly like along a taxonomy.

All downstream machinery (enumeration, lattice pruning, cost functions)
then applies unchanged, because the interval labels are ordinary
categorical values.
"""

from __future__ import annotations

import bisect
from typing import Literal, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.patterns.table import PatternTable

BinStyle = Literal["equiwidth", "quantile"]


def compute_bin_edges(
    values: Sequence[float], n_bins: int, style: BinStyle = "equiwidth"
) -> list[float]:
    """Interior edges that split ``values`` into ``n_bins`` intervals.

    ``equiwidth`` slices the value range evenly; ``quantile`` puts an
    (approximately) equal number of records in each bin. Degenerate edges
    (identical neighbors) are deduplicated, so fewer bins may result.
    """
    if n_bins < 2:
        raise ValidationError(f"n_bins must be >= 2, got {n_bins}")
    if not values:
        raise ValidationError("cannot bin an empty value list")
    array = np.asarray(list(values), dtype=float)
    if style == "equiwidth":
        raw = np.linspace(array.min(), array.max(), n_bins + 1)[1:-1]
    elif style == "quantile":
        quantiles = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
        raw = np.quantile(array, quantiles)
    else:
        raise ValidationError(f"unknown binning style {style!r}")
    low, high = float(array.min()), float(array.max())
    edges: list[float] = []
    for edge in raw.tolist():
        # Drop duplicates and edges at/past the extremes (they would
        # create empty bins).
        if low < edge < high and (not edges or edge > edges[-1]):
            edges.append(edge)
    return edges


def interval_label(edges: Sequence[float], value: float) -> str:
    """The half-open interval label containing ``value``.

    Labels look like ``[low, high)`` with ``-inf``/``+inf`` at the ends;
    they sort lexicographically by bin index via a zero-padded prefix so
    deterministic tie-breaking stays readable.
    """
    index = bisect.bisect_right(edges, value)
    low = "-inf" if index == 0 else f"{edges[index - 1]:g}"
    high = "+inf" if index == len(edges) else f"{edges[index]:g}"
    return f"b{index:03d}:[{low}, {high})"


def bin_numeric_attribute(
    table: PatternTable,
    values: Sequence[float],
    name: str,
    n_bins: int = 4,
    style: BinStyle = "equiwidth",
    coarse_bins: int | None = None,
) -> PatternTable:
    """Append a numeric column to the table as range-pattern attributes.

    Parameters
    ----------
    table:
        The base table; ``values`` must be parallel to its rows.
    values:
        The numeric attribute to discretize (this may be the measure
        itself or any other per-record number).
    name:
        Base name for the generated column(s).
    n_bins:
        Number of (fine) intervals.
    style:
        ``equiwidth`` or ``quantile``.
    coarse_bins:
        When given, also adds a coarser column (``{name}_coarse``) whose
        intervals nest the fine ones, enabling two-level range
        generalization. Must divide into fewer bins than ``n_bins``.

    Returns
    -------
    PatternTable
        The table with one (or two) added categorical columns.
    """
    if len(values) != table.n_rows:
        raise ValidationError(
            f"got {len(values)} values for {table.n_rows} rows"
        )
    if coarse_bins is not None and coarse_bins >= n_bins:
        raise ValidationError(
            f"coarse_bins ({coarse_bins}) must be < n_bins ({n_bins})"
        )

    fine_edges = compute_bin_edges(values, n_bins, style)
    new_columns: list[tuple[str, list[str]]] = []
    if coarse_bins is not None:
        # Coarse edges are a subsample of the fine ones, so every fine
        # interval nests inside exactly one coarse interval.
        step = max(1, round(len(fine_edges) / coarse_bins))
        coarse_edges = fine_edges[step - 1::step][: coarse_bins - 1]
        new_columns.append(
            (
                f"{name}_coarse",
                [interval_label(coarse_edges, v) for v in values],
            )
        )
    new_columns.append(
        (name, [interval_label(fine_edges, v) for v in values])
    )

    attributes = list(table.attributes)
    rows = [list(row) for row in table.rows]
    for column_name, labels in new_columns:
        attributes.append(column_name)
        for row, label in zip(rows, labels):
            row.append(label)
    return PatternTable(
        attributes,
        [tuple(row) for row in rows],
        measure=table.measure,
        measure_name=table.measure_name,
    )
