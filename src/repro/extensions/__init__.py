"""Extensions beyond the paper's core: its Section VII future work
(incremental maintenance, multiple weights) and the Section II aside on
attribute hierarchies."""

from repro.extensions.hierarchy import Taxonomy, flatten_hierarchy
from repro.extensions.incremental import IncrementalCWSC, MaintenanceStats
from repro.extensions.multiweight import (
    MultiWeightSetSystem,
    ParetoPoint,
    pareto_sweep,
)
from repro.extensions.ranges import (
    bin_numeric_attribute,
    compute_bin_edges,
    interval_label,
)

__all__ = [
    "IncrementalCWSC",
    "MaintenanceStats",
    "MultiWeightSetSystem",
    "ParetoPoint",
    "Taxonomy",
    "bin_numeric_attribute",
    "compute_bin_edges",
    "flatten_hierarchy",
    "interval_label",
    "pareto_sweep",
]
