"""Attribute tree hierarchies (paper Section II: "attribute tree
hierarchies or numerical ranges may be used as well, but are not
considered in this paper").

A :class:`Taxonomy` is a rooted tree over an attribute's values. Flattening
replaces the attribute with one column per tree level (the record's
ancestor at that depth), so ordinary patterns over the level columns
express hierarchical generalizations: ``region=West`` is the pattern with
the level-1 column fixed and deeper columns wildcarded. All algorithms then
apply unchanged — the lattice over level columns *contains* the
hierarchical pattern lattice.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

from repro.errors import ValidationError
from repro.patterns.table import PatternTable


class Taxonomy:
    """A rooted tree over attribute values.

    Parameters
    ----------
    parent_of:
        ``child -> parent`` mapping. Exactly one value (the root) must not
        appear as a key; leaves are the values that appear in records.
    """

    def __init__(self, parent_of: Mapping[Hashable, Hashable]) -> None:
        self._parent_of = dict(parent_of)
        children = set(self._parent_of)
        parents = set(self._parent_of.values())
        roots = parents - children
        if len(roots) != 1:
            raise ValidationError(
                f"taxonomy must have exactly one root, found {sorted(map(repr, roots))}"
            )
        self._root = next(iter(roots))
        # Validate acyclicity by walking every chain to the root.
        for value in children:
            self.path_to_root(value)

    @property
    def root(self) -> Hashable:
        return self._root

    def path_to_root(self, value: Hashable) -> list[Hashable]:
        """``[value, parent, ..., root]``; raises on unknown values/cycles."""
        path = [value]
        seen = {value}
        current = value
        while current != self._root:
            if current not in self._parent_of:
                raise ValidationError(
                    f"value {current!r} is not in the taxonomy"
                )
            current = self._parent_of[current]
            if current in seen:
                raise ValidationError(
                    f"taxonomy contains a cycle through {current!r}"
                )
            seen.add(current)
            path.append(current)
        return path

    def depth(self) -> int:
        """Length of the longest leaf-to-root path (root alone = 1)."""
        leaves = set(self._parent_of) - set(self._parent_of.values())
        if not leaves:
            return 1
        return max(len(self.path_to_root(leaf)) for leaf in leaves)

    def ancestor_at(self, value: Hashable, level: int) -> Hashable:
        """The ancestor of ``value`` at tree depth ``level``.

        Level 0 is the root. Values shallower than ``level`` return
        themselves (a leaf stays itself below its own depth).
        """
        path = list(reversed(self.path_to_root(value)))  # root .. value
        if level < 0:
            raise ValidationError(f"level must be >= 0, got {level}")
        return path[min(level, len(path) - 1)]


def flatten_hierarchy(
    table: PatternTable,
    attribute: str,
    taxonomy: Taxonomy,
    level_names: Sequence[str] | None = None,
) -> PatternTable:
    """Replace one attribute with per-level taxonomy columns.

    Parameters
    ----------
    table:
        The input table; ``attribute`` must be one of its pattern
        attributes and every value of it must be in the taxonomy.
    taxonomy:
        The tree over the attribute's values.
    level_names:
        Names for the generated columns, depth-1 first; defaults to
        ``f"{attribute}_l{d}"``. The root level is omitted (it equals
        ``ALL`` semantically).

    Returns
    -------
    PatternTable
        Same rows and measure, with ``attribute`` replaced by
        ``taxonomy.depth() - 1`` level columns.
    """
    if attribute not in table.attributes:
        raise ValidationError(
            f"{attribute!r} is not an attribute of the table"
        )
    position = table.attributes.index(attribute)
    n_levels = taxonomy.depth() - 1  # root level carries no information
    if n_levels < 1:
        raise ValidationError("taxonomy is a single root; nothing to flatten")
    if level_names is None:
        level_names = [f"{attribute}_l{d}" for d in range(1, n_levels + 1)]
    if len(level_names) != n_levels:
        raise ValidationError(
            f"need {n_levels} level names, got {len(level_names)}"
        )

    attributes = (
        table.attributes[:position]
        + tuple(level_names)
        + table.attributes[position + 1:]
    )
    rows = []
    for row in table.rows:
        levels = tuple(
            taxonomy.ancestor_at(row[position], depth)
            for depth in range(1, n_levels + 1)
        )
        rows.append(row[:position] + levels + row[position + 1:])
    return PatternTable(
        attributes,
        rows,
        measure=table.measure,
        measure_name=table.measure_name,
    )
