"""Multiple weights per set (paper Section VII).

The paper's second future-work item: "how to handle multiple weights
associated with each set or pattern". This module provides the two
standard treatments on top of the single-weight algorithms:

* **scalarization** — collapse the weight vector with user-supplied
  multipliers and solve the single-weight problem;
* **Pareto sweep** — solve a grid of scalarizations and keep the
  non-dominated outcomes, giving the caller the trade-off curve between
  the weight dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Sequence

from repro.core.cwsc import cwsc
from repro.core.result import CoverResult
from repro.core.setsystem import SetSystem
from repro.errors import ValidationError


class MultiWeightSetSystem:
    """A set system whose sets carry a weight *vector*.

    Parameters
    ----------
    n_elements:
        Universe size.
    benefits:
        One element collection per set.
    weight_vectors:
        One weight tuple per set; all tuples must share the arity of
        ``weight_names``.
    weight_names:
        Names of the weight dimensions (e.g. ``("build_cost",
        "staff_cost")``).
    labels:
        Optional per-set labels.
    """

    def __init__(
        self,
        n_elements: int,
        benefits: Sequence[Iterable[int]],
        weight_vectors: Sequence[Sequence[float]],
        weight_names: Sequence[str],
        labels: Sequence[Hashable] | None = None,
    ) -> None:
        if len(benefits) != len(weight_vectors):
            raise ValidationError(
                f"{len(benefits)} benefit sets but "
                f"{len(weight_vectors)} weight vectors"
            )
        self._names = tuple(weight_names)
        if not self._names:
            raise ValidationError("need >= 1 weight dimension")
        for i, vector in enumerate(weight_vectors):
            if len(vector) != len(self._names):
                raise ValidationError(
                    f"set {i} has {len(vector)} weights, expected "
                    f"{len(self._names)}"
                )
        self._n = n_elements
        self._benefits = [frozenset(ben) for ben in benefits]
        self._vectors = [tuple(float(w) for w in v) for v in weight_vectors]
        self._labels = (
            list(labels) if labels is not None else [None] * len(benefits)
        )

    @property
    def weight_names(self) -> tuple[str, ...]:
        return self._names

    @property
    def n_sets(self) -> int:
        return len(self._benefits)

    def scalarize(self, multipliers: Sequence[float]) -> SetSystem:
        """Single-weight system with ``cost = multipliers . weights``."""
        if len(multipliers) != len(self._names):
            raise ValidationError(
                f"got {len(multipliers)} multipliers for "
                f"{len(self._names)} weight dimensions"
            )
        if any(m < 0 for m in multipliers):
            raise ValidationError("multipliers must be non-negative")
        costs = [
            sum(m * w for m, w in zip(multipliers, vector))
            for vector in self._vectors
        ]
        return SetSystem.from_iterables(
            self._n, self._benefits, costs, labels=self._labels
        )

    def totals(self, set_ids: Iterable[int]) -> tuple[float, ...]:
        """Per-dimension total weight of a solution."""
        totals = [0.0] * len(self._names)
        for set_id in set_ids:
            for dim, weight in enumerate(self._vectors[set_id]):
                totals[dim] += weight
        return tuple(totals)


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated outcome of a scalarization sweep."""

    multipliers: tuple[float, ...]
    totals: tuple[float, ...]
    result: CoverResult


def pareto_sweep(
    system: MultiWeightSetSystem,
    k: int,
    s_hat: float,
    multiplier_grid: Sequence[Sequence[float]],
    solver: Callable[..., CoverResult] = cwsc,
) -> list[ParetoPoint]:
    """Solve one scalarization per grid point; keep non-dominated outcomes.

    Parameters
    ----------
    multiplier_grid:
        Multiplier vectors to sweep (e.g. ``[(1, 0), (0.5, 0.5), (0, 1)]``).
    solver:
        Single-weight solver with the ``(system, k, s_hat)`` signature;
        defaults to :func:`repro.core.cwsc.cwsc` with the ``full_cover``
        fallback so every grid point yields a solution.

    Returns
    -------
    list[ParetoPoint]
        Non-dominated points, sorted by the first weight dimension.
    """
    points: list[ParetoPoint] = []
    for multipliers in multiplier_grid:
        scalar = system.scalarize(multipliers)
        result = solver(scalar, k, s_hat, on_infeasible="full_cover")
        totals = system.totals(result.set_ids)
        points.append(
            ParetoPoint(tuple(float(m) for m in multipliers), totals, result)
        )
    frontier = [
        point
        for point in points
        if not any(_dominates(other.totals, point.totals) for other in points)
    ]
    # Multiple multipliers can yield identical totals; deduplicate.
    unique: dict[tuple[float, ...], ParetoPoint] = {}
    for point in frontier:
        unique.setdefault(point.totals, point)
    return sorted(unique.values(), key=lambda point: point.totals)


def _dominates(left: tuple[float, ...], right: tuple[float, ...]) -> bool:
    """Strict Pareto dominance: <= everywhere and < somewhere."""
    return all(lv <= rv for lv, rv in zip(left, right)) and any(
        lv < rv for lv, rv in zip(left, right)
    )
