"""JSONL access log for the solver daemon: one record per HTTP request.

The trace file answers "what happened inside this request"; the access
log answers "what happened to every request" — a flat, greppable,
schema-stable stream that survives log shipping. Each line is one JSON
object (schema ``scwsc-access/1``):

========================  ===================================================
field                     meaning
========================  ===================================================
schema                    always ``scwsc-access/1``
ts                        wall-clock unix seconds when the response was sent
trace_id                  the request's 32-hex trace id (accepted from the
                          client's ``traceparent`` or minted at the edge)
method / endpoint         HTTP method and route path
status                    HTTP response code (``null`` if the client left
                          before one was written)
tenant                    ``X-Scwsc-Tenant`` value (``default`` when unset;
                          ``null`` for non-solve endpoints)
duration_seconds          request wall time at the edge
shed_reason               admission shed reason for 429s, else ``null``
deadline                  the request's end-to-end budget (solve endpoints)
queue_seconds             budget spent waiting before the first dispatch
solve_seconds             budget spent inside workers (all attempts)
requeue_seconds           budget spent waiting between attempts
requeues                  pool requeue count for the accepted answer
solve_status              pool outcome (``ok`` / ``fallback`` / ...) or
                          ``null`` for non-solve requests
error                     terminal error string, else ``null``
========================  ===================================================

Validation is strict on the writer side (:func:`validate_access_record`
raises on a malformed record before it is written), so consumers can
trust every line that made it to disk; :func:`validate_access_file` is
the read-side check used by tests and CI over shipped artifacts.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Iterable

from repro.errors import ValidationError

__all__ = [
    "ACCESS_SCHEMA",
    "AccessLog",
    "iter_access_records",
    "validate_access_record",
    "validate_access_file",
]

ACCESS_SCHEMA = "scwsc-access/1"

#: field name -> (required, allowed types). ``None`` is always allowed
#: for optional fields.
_FIELDS: dict[str, tuple[bool, tuple[type, ...]]] = {
    "schema": (True, (str,)),
    "ts": (True, (int, float)),
    "trace_id": (True, (str,)),
    "method": (True, (str,)),
    "endpoint": (True, (str,)),
    "status": (False, (int,)),
    "tenant": (False, (str,)),
    "duration_seconds": (True, (int, float)),
    "shed_reason": (False, (str,)),
    "deadline": (False, (int, float)),
    "queue_seconds": (False, (int, float)),
    "solve_seconds": (False, (int, float)),
    "requeue_seconds": (False, (int, float)),
    "requeues": (False, (int,)),
    "solve_status": (False, (str,)),
    "error": (False, (str,)),
}


def validate_access_record(record: Any) -> list[str]:
    """Problems with one access record; empty list when valid."""
    if not isinstance(record, dict):
        return [f"record must be an object, got {type(record).__name__}"]
    problems: list[str] = []
    if record.get("schema") != ACCESS_SCHEMA:
        problems.append(
            f"schema must be {ACCESS_SCHEMA!r}, got {record.get('schema')!r}"
        )
    for name, (required, types) in _FIELDS.items():
        if name not in record or record[name] is None:
            if required and record.get(name) is None:
                problems.append(f"missing required field {name!r}")
            continue
        value = record[name]
        if isinstance(value, bool) or not isinstance(value, types):
            problems.append(
                f"field {name!r} must be "
                f"{'/'.join(t.__name__ for t in types)}, "
                f"got {type(value).__name__}"
            )
    unknown = set(record) - set(_FIELDS)
    if unknown:
        problems.append(f"unknown fields {sorted(unknown)}")
    trace_id = record.get("trace_id")
    if isinstance(trace_id, str) and (
        len(trace_id) != 32
        or any(c not in "0123456789abcdef" for c in trace_id)
    ):
        problems.append(f"trace_id must be 32 lowercase hex chars, got {trace_id!r}")
    return problems


def validate_access_file(path: str) -> int:
    """Validate every line of a JSONL access log; returns the record
    count, raising :class:`ValidationError` on the first bad line."""
    count = 0
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValidationError(
                    f"{path}:{lineno}: not valid JSON: {error}"
                ) from error
            problems = validate_access_record(record)
            if problems:
                raise ValidationError(
                    f"{path}:{lineno}: " + "; ".join(problems)
                )
            count += 1
    return count


class AccessLog:
    """Thread-safe JSONL writer with write-time schema validation.

    Handler threads log concurrently; each record is validated, then
    written and flushed under one lock so lines never interleave and a
    SIGKILL'd daemon leaves a valid prefix.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "a", encoding="utf-8")
        self._lock = threading.Lock()

    def log(self, **fields: Any) -> dict:
        """Build, validate, write, and return one record."""
        record = {"schema": ACCESS_SCHEMA, "ts": round(time.time(), 3)}
        record.update(
            {name: value for name, value in fields.items() if value is not None}
        )
        problems = validate_access_record(record)
        if problems:
            raise ValidationError(
                "refusing to write malformed access record: "
                + "; ".join(problems)
            )
        line = json.dumps(record, separators=(",", ":"))
        with self._lock:
            self._fh.write(line + "\n")
            self._fh.flush()
        return record

    def close(self) -> None:
        with self._lock:
            try:
                self._fh.close()
            except OSError:  # pragma: no cover - nothing left to do
                pass


def iter_access_records(path: str) -> Iterable[dict]:
    """Yield parsed records from a JSONL access log (no validation)."""
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def main(argv: list[str] | None = None) -> int:
    import sys

    args = sys.argv[1:] if argv is None else argv
    if len(args) != 1:
        print(
            "usage: python -m repro.serve.accesslog ACCESS.jsonl",
            file=sys.stderr,
        )
        return 2
    try:
        count = validate_access_file(args[0])
    except (OSError, ValueError, ValidationError) as error:
        print(f"{args[0]}: {error}", file=sys.stderr)
        return 1
    print(f"{args[0]}: ok ({count} record(s))")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
