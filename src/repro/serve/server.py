"""HTTP front-end for the solver daemon: routes, shedding, drain.

Transport is deliberately boring — stdlib
:class:`http.server.ThreadingHTTPServer`, one thread per connection,
``Connection: close`` on every response so a half-parsed request can
never desynchronize a keep-alive stream. The interesting parts are the
failure paths:

* request bodies are length-checked (411/413) and read under the
  socket's ``read_timeout``, so a slow-loris client costs one thread
  for a bounded time and then a 408;
* malformed bytes (bad JSON, bad schema, bad set system) are a 400 on
  that connection and nothing else — the accept loop and other
  connections never see them;
* admission runs before any solver work: a shed is a 429 with a
  ``Retry-After`` hint and a ``scwsc_server_shed_total{reason=...}``
  increment, not a queued request that times out later;
* a worker-side failure degrades through the pool's requeue → breaker →
  universal-fallback ladder and still produces a *verified* 200
  (``status: "fallback"``); 5xx is reserved for the server itself
  shutting down under a request.

Endpoints::

    GET  /healthz   liveness (200 while the process runs)
    GET  /readyz    readiness (pool warm, not draining, no open breaker)
    GET  /metrics   Prometheus text exposition
    POST /solve     one solve request
    POST /batch     several solve requests sharing one admission ticket

See ``docs/SERVING.md`` for the request/response schema and the drain
runbook.
"""

from __future__ import annotations

import json
import logging
import math
import signal
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import ProtocolError, ValidationError
from repro.obs import flightrec as obs_flightrec
from repro.obs import stacks as obs_stacks
from repro.obs import trace as obs_trace
from repro.obs.metrics import get_registry, publish_build_info
from repro.obs.postmortem import BundleSpool, TriggerEngine, build_info
from repro.obs.slo import GLOBAL_SCOPE, SloTracker
from repro.resilience.pool import SolveRequest
from repro.resilience.pool.protocol import system_from_payload
from repro.serve.accesslog import ACCESS_SCHEMA, AccessLog
from repro.serve.admission import AdmissionController
from repro.serve.config import ServeConfig
from repro.serve.engine import ServeEngine, Ticket

__all__ = ["SolverServer", "build_solve_request", "run_server"]

logger = logging.getLogger(__name__)

#: Extra server-side slack on top of a request's deadline + grace before
#: the handler gives up waiting on its ticket. The pool's hard timeouts
#: make this unreachable in normal operation.
_TICKET_SLACK = 30.0


def build_solve_request(
    payload: dict, config: ServeConfig, system=None
) -> SolveRequest:
    """Validate one JSON solve payload into a :class:`SolveRequest`.

    ``system`` short-circuits deserialization for batch entries sharing
    a top-level system. Raises :class:`ValidationError` (bad schema or
    parameters) or :class:`ProtocolError` (bad system payload), both of
    which the handler maps to 400.
    """
    if not isinstance(payload, dict):
        raise ValidationError("request body must be a JSON object")
    if system is None:
        system_payload = payload.get("system")
        if not isinstance(system_payload, dict):
            raise ValidationError("missing or invalid 'system' object")
        system = system_from_payload(system_payload)
    k = payload.get("k")
    if not isinstance(k, int) or isinstance(k, bool):
        raise ValidationError("'k' must be an integer")
    s_hat = payload.get("s", payload.get("s_hat"))
    if not isinstance(s_hat, (int, float)) or isinstance(s_hat, bool):
        raise ValidationError("'s' (coverage target) must be a number")
    deadline = payload.get("deadline")
    if deadline is None:
        deadline = config.default_deadline
    elif not isinstance(deadline, (int, float)) or isinstance(deadline, bool):
        raise ValidationError("'deadline' must be a number of seconds")
    elif deadline <= 0:
        raise ValidationError(f"'deadline' must be > 0, got {deadline}")
    deadline = min(float(deadline), config.max_deadline)
    solver = payload.get("solver", "resilient")
    if not isinstance(solver, str):
        raise ValidationError("'solver' must be a string")
    chain = payload.get("chain")
    if chain is not None:
        if not isinstance(chain, list) or not all(
            isinstance(stage, str) for stage in chain
        ):
            raise ValidationError("'chain' must be a list of stage names")
        chain = tuple(chain)
    seed = payload.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ValidationError("'seed' must be an integer")
    tag = payload.get("tag")
    if tag is not None and not isinstance(tag, str):
        raise ValidationError("'tag' must be a string")
    for key in ("options", "stage_options"):
        if payload.get(key) is not None and not isinstance(payload[key], dict):
            raise ValidationError(f"'{key}' must be an object")
    options = payload.get("options")
    # Top-level backend/shard knobs (documented in docs/SERVING.md) are
    # sugar for the matching resilient_solve options; an explicit
    # options entry wins.
    backend = payload.get("backend")
    if backend is not None:
        from repro.core.marginal import KNOWN_BACKENDS

        if backend not in KNOWN_BACKENDS:
            raise ValidationError(
                f"'backend' must be one of {', '.join(KNOWN_BACKENDS)}, "
                f"got {backend!r}"
            )
        options = dict(options or {})
        options.setdefault("backend", backend)
    shards = payload.get("shards")
    if shards is not None:
        if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
            raise ValidationError("'shards' must be a positive integer")
        if solver != "resilient":
            raise ValidationError(
                "'shards' requires the 'resilient' solver (the worker "
                "becomes the sharding parent for its greedy stages)"
            )
        options = dict(options or {})
        options.setdefault("shards", shards)
    return SolveRequest(
        system=system,
        k=k,
        s_hat=float(s_hat),
        solver=solver,
        chain=chain,
        timeout=deadline,
        stage_options=payload.get("stage_options"),
        options=options,
        seed=seed,
        tag=tag,
    )


class _Handler(BaseHTTPRequestHandler):
    """One connection. ``self.server`` is the :class:`SolverServer`."""

    protocol_version = "HTTP/1.1"
    server_version = "scwsc-serve"

    # -- plumbing --------------------------------------------------------

    def setup(self) -> None:
        # Slow-client guard: every read on this connection (request
        # line, headers, body) times out rather than parking the
        # handler thread forever.
        self.timeout = self.server.config.read_timeout
        super().setup()

    def log_message(self, format: str, *args) -> None:
        logger.debug("%s - %s", self.address_string(), format % args)

    def _send_json(
        self, code: int, payload: dict, retry_after: float | None = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        try:
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            if retry_after is not None:
                self.send_header(
                    "Retry-After", str(max(1, math.ceil(retry_after)))
                )
            ctx = getattr(self, "_trace_ctx", None)
            if ctx is not None:
                # Echo the server-side trace context so the client can
                # join its logs to the daemon's trace and access log.
                self.send_header("Traceparent", ctx.to_traceparent())
            self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError, socket.timeout):
            # The client left; its problem, not the daemon's.
            self.server.count_connection_error()
        self.close_connection = True
        self._status = code

    # -- routing ---------------------------------------------------------

    def do_GET(self) -> None:
        self._route("GET")

    def do_POST(self) -> None:
        self._route("POST")

    def _route(self, method: str) -> None:
        path = self.path.split("?", 1)[0]
        self._status = None
        # Every request gets a W3C-style trace context: a valid incoming
        # ``traceparent`` keeps its trace id (with a fresh server-side
        # span id); anything else gets a minted one. The context rides
        # the pool frames so worker and shard spans replay under it, the
        # response echoes it, and the access-log record carries it.
        incoming = obs_trace.parse_traceparent(self.headers.get("traceparent"))
        ctx = (
            incoming.child()
            if incoming is not None
            else obs_trace.TraceContext.mint()
        )
        self._trace_ctx = ctx
        #: Per-request facts the endpoint handlers fill in for the
        #: access-log record written below (tenant, shed reason, pool
        #: timing breakdown, ...).
        self._access: dict = {}
        started = time.monotonic()
        token = obs_trace.set_context(ctx)
        span = obs_trace.span(
            "server_request",
            method=method,
            endpoint=path,
            trace_id=ctx.trace_id,
        )
        if span.enabled:
            # The edge span IS the traceparent span: it takes the
            # context's span id so worker subtrees replayed with
            # ``root_parent=ctx.span_id`` attach to it, and upstream
            # callers see their child span id in the echoed header.
            span.span_id = ctx.span_id
            if incoming is not None:
                span.set(upstream_span_id=incoming.span_id)
        try:
            with span:
                handler = {
                    ("GET", "/healthz"): self._do_healthz,
                    ("GET", "/readyz"): self._do_readyz,
                    ("GET", "/metrics"): self._do_metrics,
                    ("GET", "/debug/vars"): self._do_debug_vars,
                    ("GET", "/debug/stacks"): self._do_debug_stacks,
                    ("GET", "/debug/flightrec"): self._do_debug_flightrec,
                    ("POST", "/solve"): self._do_solve,
                    ("POST", "/batch"): self._do_batch,
                }.get((method, path))
                if handler is None:
                    self._send_json(
                        404, {"error": f"no route {method} {path}"}
                    )
                    return
                handler()
        except (BrokenPipeError, ConnectionResetError) as exc:
            self.server.count_connection_error()
            logger.debug("client gone mid-request: %s", exc)
            self.close_connection = True
        except socket.timeout:
            obs_trace.event(
                "server_request_timeout",
                endpoint=path,
                trace_id=ctx.trace_id,
                tenant=self._access.get("tenant"),
            )
            self._send_json(408, {"error": "timed out reading request"})
        except Exception:
            # Absolute backstop: a handler bug answers 500 on this one
            # connection and the accept loop lives on.
            logger.exception("unhandled error serving %s %s", method, path)
            if self._status is None:
                self._send_json(500, {"error": "internal server error"})
        finally:
            obs_trace.reset_context(token)
            duration = time.monotonic() - started
            self.server.observe_request(
                path,
                self._status,
                duration,
                tenant=self._access.get("tenant"),
            )
            self.server.log_access(
                trace_id=ctx.trace_id,
                method=method,
                endpoint=path,
                status=self._status,
                duration_seconds=round(duration, 6),
                **self._access,
            )

    # -- GET endpoints ---------------------------------------------------

    def _do_healthz(self) -> None:
        self._send_json(200, {"ok": True})

    def _do_readyz(self) -> None:
        status = self.server.readiness()
        self._send_json(200 if status["ready"] else 503, status)

    def _do_metrics(self) -> None:
        text = self.server.metrics_page().encode("utf-8")
        try:
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(text)))
            self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(text)
        except (BrokenPipeError, ConnectionResetError, socket.timeout):
            self.server.count_connection_error()
        self.close_connection = True
        self._status = 200

    # -- /debug endpoints (loopback only) --------------------------------

    _LOOPBACK = ("127.0.0.1", "::1", "::ffff:127.0.0.1")

    def _debug_gate(self) -> bool:
        """The /debug surface is operator-only: enabled in config AND
        the peer is loopback. Anything else is a 403 — the routes exist
        (so probes learn nothing from 404-vs-403), but answer nothing."""
        if not self.server.config.debug_endpoints:
            self._send_json(403, {"error": "debug endpoints disabled"})
            return False
        if self.client_address[0] not in self._LOOPBACK:
            self._send_json(403, {"error": "debug endpoints are loopback-only"})
            return False
        return True

    def _do_debug_vars(self) -> None:
        if not self._debug_gate():
            return
        self._send_json(200, self.server.debug_vars())

    def _do_debug_stacks(self) -> None:
        if not self._debug_gate():
            return
        self._send_json(200, self.server.debug_stacks())

    def _do_debug_flightrec(self) -> None:
        if not self._debug_gate():
            return
        self._send_json(200, self.server.debug_flightrec())

    # -- POST endpoints --------------------------------------------------

    def _read_json_body(self) -> dict | list | None:
        """Read and decode the body, answering the error response (and
        returning ``None``) on any malformed frame."""
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            self._send_json(411, {"error": "Content-Length required"})
            return None
        try:
            length = int(length_header)
        except ValueError:
            self._send_json(400, {"error": "invalid Content-Length"})
            return None
        if length < 0:
            self._send_json(400, {"error": "invalid Content-Length"})
            return None
        if length > self.server.config.max_body_bytes:
            self._send_json(
                413,
                {
                    "error": "body too large",
                    "limit_bytes": self.server.config.max_body_bytes,
                },
            )
            return None
        try:
            data = self.rfile.read(length)
        except socket.timeout:
            self._send_json(408, {"error": "timed out reading body"})
            return None
        if len(data) < length:
            self._send_json(400, {"error": "truncated body"})
            return None
        try:
            return json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": f"malformed JSON body: {exc}"})
            return None

    def _tenant(self) -> str:
        header = self.headers.get("X-Scwsc-Tenant", "")
        return header.strip() or "default"

    def _shed(self, tenant: str, decision, endpoint: str, n: int) -> None:
        self.server.count_shed(decision.reason, tenant=tenant, n=n)
        self._access["shed_reason"] = decision.reason
        obs_trace.event(
            "server_shed",
            endpoint=endpoint,
            tenant=tenant,
            reason=decision.reason,
            requests=n,
            trace_id=self._trace_ctx.trace_id,
        )
        self._send_json(
            429,
            {
                "error": "request shed",
                "reason": decision.reason,
                "retry_after": decision.retry_after,
            },
            retry_after=decision.retry_after,
        )

    def _do_solve(self) -> None:
        payload = self._read_json_body()
        if payload is None:
            return
        tenant = self._tenant()
        self._access["tenant"] = tenant
        try:
            request = build_solve_request(payload, self.server.config)
        except (ValidationError, ProtocolError) as exc:
            self._send_json(400, {"error": str(exc)})
            return
        self._access["deadline"] = request.timeout
        admission = self.server.admission
        decision = admission.try_admit(
            tenant, 1, queue_depth=self.server.engine.queue_depth
        )
        if not decision.admitted:
            self._shed(tenant, decision, "/solve", 1)
            return
        self.server.count_admitted(tenant=tenant)
        # The pool carries the request's trace context to the worker so
        # its captured spans replay under this trace id.
        request.traceparent = self._trace_ctx.to_traceparent()
        try:
            ticket = self.server.engine.submit(request)
            outcome = self._await(ticket)
            if outcome is None:
                return
            code, body = outcome
            body["trace_id"] = self._trace_ctx.trace_id
            self._send_json(code, body)
            obs_trace.event(
                "server_complete",
                endpoint="/solve",
                tenant=tenant,
                code=code,
                status=body.get("status"),
                tag=request.tag,
                trace_id=self._trace_ctx.trace_id,
            )
        finally:
            admission.release(tenant, 1)

    def _do_batch(self) -> None:
        payload = self._read_json_body()
        if payload is None:
            return
        tenant = self._tenant()
        self._access["tenant"] = tenant
        if not isinstance(payload, dict):
            self._send_json(400, {"error": "request body must be a JSON object"})
            return
        entries = payload.get("requests")
        if not isinstance(entries, list) or not entries:
            self._send_json(
                400, {"error": "'requests' must be a non-empty list"}
            )
            return
        if len(entries) > self.server.config.max_batch:
            self._send_json(
                400,
                {
                    "error": "batch too large",
                    "limit": self.server.config.max_batch,
                },
            )
            return
        shared_system = None
        try:
            if isinstance(payload.get("system"), dict):
                shared_system = system_from_payload(payload["system"])
            requests = [
                build_solve_request(
                    entry,
                    self.server.config,
                    system=None if isinstance(entry, dict) and "system" in entry
                    else shared_system,
                )
                for entry in entries
            ]
        except (ValidationError, ProtocolError) as exc:
            self._send_json(400, {"error": str(exc)})
            return
        n = len(requests)
        admission = self.server.admission
        decision = admission.try_admit(
            tenant, n, queue_depth=self.server.engine.queue_depth
        )
        if not decision.admitted:
            self._shed(tenant, decision, "/batch", n)
            return
        self.server.count_admitted(tenant=tenant, n=n)
        self._access["deadline"] = max(
            (req.timeout for req in requests if req.timeout), default=None
        )
        traceparent = self._trace_ctx.to_traceparent()
        for req in requests:
            req.traceparent = traceparent
        try:
            tickets = [self.server.engine.submit(req) for req in requests]
            results = []
            for ticket, request in zip(tickets, requests):
                outcome = self._await(ticket)
                if outcome is None:
                    return
                _, body = outcome
                results.append(body)
            worst = max(
                (entry.get("code", 200) for entry in results), default=200
            )
            self._send_json(
                200,
                {
                    "count": len(results),
                    "results": results,
                    "trace_id": self._trace_ctx.trace_id,
                },
            )
            obs_trace.event(
                "server_complete",
                endpoint="/batch",
                tenant=tenant,
                code=200,
                requests=n,
                worst_entry_code=worst,
                trace_id=self._trace_ctx.trace_id,
            )
        finally:
            admission.release(tenant, n)

    def _await(self, ticket: Ticket) -> tuple[int, dict] | None:
        """Wait for the pool's answer; map it to ``(code, body)``.

        Returns ``None`` only when the ticket never resolved inside the
        server-side backstop window (504 already sent).
        """
        budget = (
            (ticket.request.timeout or self.server.config.default_deadline)
            + self.server.config.grace
            + _TICKET_SLACK
        )
        if not ticket.wait(budget):
            self._access["error"] = "request lost in dispatcher"
            self._send_json(504, {"error": "request lost in dispatcher"})
            return None
        if ticket.error is not None:
            self._access["error"] = str(ticket.error)
            return 503, {"status": "error", "error": ticket.error, "code": 503}
        pool_result = ticket.result
        assert pool_result is not None
        self._record_pool_outcome(pool_result)
        body: dict = {
            "status": pool_result.status,
            "tag": pool_result.tag,
            "pool": pool_result.provenance,
            "result": (
                pool_result.result.to_dict()
                if pool_result.result is not None
                else None
            ),
        }
        if pool_result.status in ("ok", "fallback"):
            return 200, body
        body["code"] = 422
        return 422, body

    def _record_pool_outcome(self, pool_result) -> None:
        """Fold one pool answer's deadline-budget breakdown into the
        access record. Batch requests accumulate across tickets, so the
        logged numbers are totals over every entry."""
        access = self._access
        access["solve_status"] = pool_result.status
        provenance = pool_result.provenance or {}
        timings = provenance.get("timings") or {}
        for key in ("queue_seconds", "solve_seconds", "requeue_seconds"):
            value = timings.get(key)
            if isinstance(value, (int, float)):
                access[key] = round(access.get(key, 0.0) + value, 6)
        requeues = provenance.get("requeues")
        if isinstance(requeues, int):
            access["requeues"] = access.get("requeues", 0) + requeues


class SolverServer(ThreadingHTTPServer):
    """The daemon: accept loop + engine + admission + metrics.

    Built separately from :func:`run_server` so tests can run one
    in-process (port 0, background thread) without signal handling.
    """

    daemon_threads = True
    allow_reuse_address = True
    # The socketserver default backlog of 5 drops SYNs under a burst of
    # concurrent clients; the dropped connection retries ~1s later and
    # can then straddle a drain, dying with an RST instead of a 429.
    request_queue_size = 128

    def __init__(
        self,
        config: ServeConfig,
        engine: ServeEngine,
        admission: AdmissionController,
    ) -> None:
        self.config = config
        self.engine = engine
        self.admission = admission
        self.registry = get_registry()
        publish_build_info(self.registry)
        self._requests_total = self.registry.counter(
            "scwsc_server_requests_total", "HTTP requests by endpoint and code"
        )
        self._admitted_total = self.registry.counter(
            "scwsc_server_admitted_total", "Requests admitted by tenant"
        )
        self._shed_total = self.registry.counter(
            "scwsc_server_shed_total", "Requests shed by reason"
        )
        self._conn_errors = self.registry.counter(
            "scwsc_server_connection_errors_total",
            "Connections dropped mid-request by the client",
        )
        self._inflight = self.registry.gauge(
            "scwsc_server_inflight", "Requests admitted and not yet answered"
        )
        self._draining_gauge = self.registry.gauge(
            "scwsc_server_draining", "1 while the server is draining"
        )
        self._latency = self.registry.histogram(
            "scwsc_server_request_seconds", "Request wall time by endpoint"
        )
        self._breaker_state = self.registry.gauge(
            "scwsc_breaker_state",
            "Per-worker breaker state (0 closed, 1 half-open, 2 open)",
        )
        self.slo = SloTracker(
            config.slo_objectives(),
            tenant_overrides=config.slo_tenants,
            windows=config.slo_windows,
            registry=self.registry,
        )
        self.access_log = (
            AccessLog(config.access_log) if config.access_log else None
        )
        self._draining_gauge.set(0)
        self._started_monotonic = time.monotonic()
        # Flight recorder: always-on rings + optional postmortem triggers.
        # Installed before the socket binds so the very first request is
        # already on the record.
        self.recorder: obs_flightrec.FlightRecorder | None = None
        self.sampler: obs_stacks.StackSampler | None = None
        self.triggers: TriggerEngine | None = None
        if config.flightrec:
            self.recorder = obs_flightrec.install(
                span_capacity=config.flightrec_spans,
                event_capacity=config.flightrec_events,
                access_capacity=config.flightrec_access,
                metrics_capacity=config.flightrec_metrics,
            )
            if config.postmortem_dir:
                spool = BundleSpool(
                    config.postmortem_dir,
                    max_bytes=config.postmortem_max_bytes,
                    max_bundles=config.postmortem_max_bundles,
                )
                self.triggers = TriggerEngine(
                    self.recorder,
                    spool,
                    min_interval=config.postmortem_interval,
                    config=config,
                )
                self.recorder.on_event = self._on_ring_event
            self.recorder.on_poll = self._check_fast_burn
            self.recorder.start_metrics_poll(
                self.registry.snapshot, config.flightrec_metrics_interval
            )
            self.sampler = obs_stacks.StackSampler(config.sampler_hz)
            self.sampler.start()
        super().__init__((config.host, config.port), _Handler)

    # -- error containment ----------------------------------------------

    def handle_error(self, request, client_address) -> None:
        # Never let one connection's failure echo a traceback storm or
        # kill the accept loop; disconnects are routine under chaos.
        import sys

        exc = sys.exc_info()[1]
        if isinstance(
            exc, (BrokenPipeError, ConnectionResetError, socket.timeout)
        ):
            self.count_connection_error()
            logger.debug("connection error from %s: %s", client_address, exc)
        else:
            logger.exception("error handling request from %s", client_address)

    # -- metrics hooks (called from handler threads) ---------------------

    def count_connection_error(self) -> None:
        self._conn_errors.inc()

    def count_admitted(self, tenant: str, n: int = 1) -> None:
        self._admitted_total.inc(n, tenant=tenant)
        self._inflight.set(self.admission.inflight)

    def count_shed(self, reason: str, tenant: str, n: int = 1) -> None:
        self._shed_total.inc(n, reason=reason)

    def observe_request(
        self,
        path: str,
        code: int | None,
        seconds: float,
        tenant: str | None = None,
    ) -> None:
        self._requests_total.inc(endpoint=path, code=str(code or "none"))
        self._latency.observe(seconds, endpoint=path)
        self._inflight.set(self.admission.inflight)
        if path in ("/solve", "/batch"):
            # A request with no status means the client vanished before
            # one was written — judged as a server failure (599) so the
            # availability SLO does not silently ignore it.
            self.slo.observe(
                tenant or "default", seconds, code if code is not None else 599
            )
            if (
                self.triggers is not None
                and code is not None
                and code >= 500
            ):
                self.triggers.fire(
                    "server_5xx",
                    f"{path} answered {code}",
                    context={"endpoint": path, "code": code, "tenant": tenant},
                )

    def log_access(self, **fields) -> None:
        """Write one access-log record; never raises into the handler."""
        if self.recorder is not None:
            # Same record shape the file log writes (scwsc-access/1),
            # ringed even when no --access-log file is configured.
            record = {"schema": ACCESS_SCHEMA, "ts": round(time.time(), 3)}
            record.update(
                {name: value for name, value in fields.items() if value is not None}
            )
            self.recorder.record_access(record)
        if self.access_log is None:
            return
        try:
            self.access_log.log(**fields)
        except Exception:  # pragma: no cover - defensive
            logger.exception("failed to write access-log record")

    # -- postmortem triggers ---------------------------------------------

    #: ring-event name -> postmortem trigger kind
    _EVENT_TRIGGERS = {
        "worker_death": "worker_death",
        "hard_timeout": "hard_timeout",
    }

    def _on_ring_event(self, record: dict) -> None:
        """Flight-recorder event tap: map pool lifecycle events to
        postmortem triggers. Runs on the emitting thread (usually the
        pool dispatcher); the engine only does bookkeeping inline and
        builds bundles on their own thread."""
        triggers = self.triggers
        if triggers is None:
            return
        name = record.get("name")
        attrs = record.get("attrs") or {}
        kind = self._EVENT_TRIGGERS.get(name)
        if kind is not None:
            triggers.fire(
                kind,
                f"pool event {name} (worker {attrs.get('worker', '?')})",
                context=dict(attrs),
            )
            return
        if name == "breaker_transition":
            breaker = str(attrs.get("breaker", "?"))
            if attrs.get("new") == "open":
                triggers.fire(
                    "breaker_open",
                    f"breaker {breaker} opened",
                    context=dict(attrs),
                    key=breaker,
                )
            elif attrs.get("new") == "closed":
                # The incident is over; the next open is a new one.
                triggers.reset_dedup("breaker_open", breaker)

    def _check_fast_burn(self) -> None:
        """Evaluate the SLO fast-burn trigger: called on every metrics
        poll tick and on every /metrics scrape, so tests (and operators
        hitting /metrics) get a deterministic evaluation point."""
        triggers = self.triggers
        if triggers is None:
            return
        snapshot = self.slo.snapshot()
        windows = snapshot.get(GLOBAL_SCOPE) or {}
        if not windows:
            return
        # The *short* window is the fast-burn signal; labels sort by
        # their underlying window seconds in self.slo.windows order.
        short_label = self.slo._label_for(self.slo.windows[0])
        rates = windows.get(short_label) or {}
        burn = max(
            rates.get("latency_burn") or 0.0, rates.get("error_burn") or 0.0
        )
        if burn >= self.config.slo_fast_burn_threshold:
            triggers.fire(
                "slo_fast_burn",
                f"short-window SLO burn rate {burn:.1f} >= "
                f"{self.config.slo_fast_burn_threshold:g}",
                context={"window": short_label, **rates},
            )

    # -- /debug pages ----------------------------------------------------

    def debug_vars(self) -> dict:
        """Live process vars: the ``/debug/vars`` body."""
        from dataclasses import asdict

        return {
            "uptime_seconds": round(
                time.monotonic() - self._started_monotonic, 3
            ),
            "build": build_info(),
            "config": asdict(self.config),
            "inflight": self.admission.inflight,
            "queue_depth": self.engine.queue_depth,
            "readiness": self.readiness(),
            "threads": threading.active_count(),
            "flightrec": (
                self.recorder.stats() if self.recorder is not None else None
            ),
            "triggers": (
                self.triggers.stats() if self.triggers is not None else None
            ),
        }

    def debug_stacks(self) -> dict:
        """One fresh stack sample (plus the continuous sampler's ring
        occupancy, when armed): the ``/debug/stacks`` body."""
        sample = obs_stacks.sample_once()
        sampler = self.sampler
        return {
            "sample": sample,
            "collapsed": obs_stacks.collapse_samples([sample]),
            "sampler": {
                "hz": sampler.hz if sampler is not None else 0.0,
                "running": bool(sampler is not None and sampler.running),
                "ring_samples": len(sampler.ring) if sampler is not None else 0,
            },
        }

    def debug_flightrec(self) -> dict:
        """Ring + trigger + spool occupancy: the ``/debug/flightrec``
        body (recent ring *events* included; spans stay in bundles)."""
        recorder = self.recorder
        body: dict = {
            "armed": recorder is not None,
            "stats": recorder.stats() if recorder is not None else None,
            "recent_events": (
                recorder.events.snapshot()[-50:] if recorder is not None else []
            ),
            "triggers": (
                self.triggers.stats() if self.triggers is not None else None
            ),
        }
        if self.triggers is not None:
            spool = self.triggers.spool
            body["spool"] = {
                "directory": spool.directory,
                "bundles": [
                    path.rsplit("/", 1)[-1] for path in spool.paths()
                ],
                "total_bytes": spool.total_bytes(),
                "max_bytes": spool.max_bytes,
                "max_bundles": spool.max_bundles,
            }
        return body

    # -- state pages -----------------------------------------------------

    def readiness(self) -> dict:
        engine = self.engine
        open_breakers = engine.open_breakers
        ready = (
            engine.warm
            and not engine.draining
            and not self.admission.draining
            and not open_breakers
            and engine.warm_failed is None
        )
        return {
            "ready": ready,
            "warm": engine.warm,
            "draining": engine.draining or self.admission.draining,
            "open_breakers": open_breakers,
            "breakers": engine.breaker_snapshot(),
            "warm_error": engine.warm_failed,
        }

    #: Breaker-state label values to gauge values (monotone by severity
    #: so ``max()`` over workers is the fleet's worst state).
    _BREAKER_STATES = {"closed": 0, "half_open": 1, "open": 2}

    def metrics_page(self) -> str:
        self._inflight.set(self.admission.inflight)
        self.registry.gauge(
            "scwsc_server_queue_depth",
            "Requests admitted but not yet dispatched to a worker",
        ).set(self.engine.queue_depth)
        self._draining_gauge.set(
            1 if (self.engine.draining or self.admission.draining) else 0
        )
        for name, snap in (self.engine.breaker_snapshot() or {}).items():
            state = snap.get("state") if isinstance(snap, dict) else None
            self._breaker_state.set(
                self._BREAKER_STATES.get(state, 0), breaker=str(name)
            )
        self.slo.publish()
        # Every scrape is also a fast-burn evaluation point: a paging
        # pipeline polling /metrics arms the postmortem trigger with no
        # extra wiring (the background poll tick does the same).
        self._check_fast_burn()
        return self.registry.exposition()

    def begin_drain(self) -> None:
        self.admission.start_draining()
        self._draining_gauge.set(1)

    def server_close(self) -> None:
        super().server_close()
        if self.access_log is not None:
            self.access_log.close()
        if self.sampler is not None:
            self.sampler.stop()
        if self.triggers is not None:
            # Let in-flight bundle builds land before the process exits —
            # the postmortem for the incident that caused the shutdown is
            # the one you want most.
            self.triggers.drain(timeout=5.0)
        if self.recorder is not None and obs_flightrec.get_recorder() is self.recorder:
            obs_flightrec.uninstall()


def run_server(config: ServeConfig, worker_env: dict | None = None) -> int:
    """Boot the daemon and block until SIGTERM/SIGINT; returns exit code.

    The CLI entry point. Drain sequence on signal: stop admitting
    (everything new sheds with ``reason: draining``), stop accepting
    connections, let the dispatcher finish or deadline-out in-flight
    work, close the pool, exit 0 (SIGTERM) / 130 (SIGINT).
    """
    publish_build_info()
    engine = ServeEngine(config, worker_env=worker_env)
    admission = AdmissionController(config)
    engine.start()
    engine.wait_warm(config.warm_timeout + 5.0)
    if engine.warm_failed is not None:
        engine.stop(drain=False)
        raise ValidationError(f"solver pool failed to start: {engine.warm_failed}")
    httpd = SolverServer(config, engine, admission)
    host, port = httpd.server_address[:2]
    stop = threading.Event()
    received: dict[str, int] = {}

    def _on_signal(signum: int, frame) -> None:
        received.setdefault("signum", signum)
        stop.set()

    previous = {
        signal.SIGTERM: signal.signal(signal.SIGTERM, _on_signal),
        signal.SIGINT: signal.signal(signal.SIGINT, _on_signal),
    }
    accept_thread = threading.Thread(
        target=httpd.serve_forever,
        kwargs={"poll_interval": 0.1},
        name="scwsc-accept",
        daemon=True,
    )
    accept_thread.start()
    # Machine-readable boot line (port 0 callers need the real port).
    print(
        json.dumps(
            {
                "event": "listening",
                "host": host,
                "port": port,
                "workers": config.workers,
                "ready": engine.warm,
            }
        ),
        flush=True,
    )
    obs_trace.event(
        "server_start",
        host=host,
        port=port,
        workers=config.workers,
        max_inflight=config.max_inflight,
    )
    try:
        while not stop.wait(0.2):
            pass
    finally:
        signum = received.get("signum", signal.SIGTERM)
        logger.info("signal %d: draining", signum)
        httpd.begin_drain()
        httpd.shutdown()
        accept_thread.join(5.0)
        engine.stop(drain=True)
        httpd.server_close()
        for signo, handler in previous.items():
            signal.signal(signo, handler)
        obs_trace.event("server_stop", signum=signum)
    return 130 if signum == signal.SIGINT else 0
