"""Admission control for the solver daemon: caps, buckets, shed reasons.

The daemon's robustness story starts before a request touches the pool:
every request passes through one :class:`AdmissionController` that
decides *admit* or *shed* under a lock, so overload turns into prompt
429s with honest ``Retry-After`` hints instead of unbounded queues.

Shedding order is cheapest-first and most-specific-first:

1. ``draining`` — the server received SIGTERM; nothing new is admitted.
2. ``tenant_concurrency`` — the tenant already holds its in-flight cap.
3. ``tenant_rate`` — the tenant's token bucket is empty.
4. ``inflight`` — the global admitted-but-unanswered cap is hit.
5. ``queue`` — the pool's dispatch queue is at depth.

Per-tenant state (bucket + in-flight count) is created lazily on first
sight of a tenant name and never expires: tenants are expected to be a
small, operator-controlled set (header-driven), not attacker-controlled
cardinality.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.serve.config import ServeConfig

__all__ = ["AdmissionDecision", "AdmissionController", "TokenBucket"]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second up to ``burst``.

    ``try_take`` is lock-free from the caller's perspective (the owning
    controller serializes access); refill happens on demand from the
    monotonic clock so an idle bucket needs no timer thread.
    """

    def __init__(self, rate: float, burst: float, *, clock=time.monotonic):
        if rate <= 0 or burst <= 0:
            raise ValueError(f"rate and burst must be > 0, got {rate}/{burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = now

    def try_take(self, n: float = 1.0) -> bool:
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False

    def retry_after(self, n: float = 1.0) -> float:
        """Seconds until ``n`` tokens will be available (0 if already)."""
        self._refill()
        deficit = n - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of :meth:`AdmissionController.try_admit`."""

    admitted: bool
    reason: str | None = None
    retry_after: float = 0.0


class _TenantState:
    __slots__ = ("bucket", "inflight")

    def __init__(self, rate: float, burst: float, clock):
        self.bucket = TokenBucket(rate, burst, clock=clock)
        self.inflight = 0


class AdmissionController:
    """Single gate in front of the dispatcher.

    ``try_admit`` reserves capacity (global and per-tenant) for ``n``
    requests; the caller MUST pair every successful admit with exactly
    one :meth:`release` for the same tenant and ``n``, whatever the
    request's fate (answered, deadline-exhausted, connection lost).
    """

    def __init__(self, config: ServeConfig, *, clock=time.monotonic):
        self.config = config
        self._clock = clock
        self._lock = threading.Lock()
        self._tenants: dict[str, _TenantState] = {}
        self._inflight = 0
        self._draining = False

    # -- lifecycle -------------------------------------------------------

    def start_draining(self) -> None:
        with self._lock:
            self._draining = True

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def inflight(self) -> int:
        return self._inflight

    def tenant_inflight(self, tenant: str) -> int:
        with self._lock:
            state = self._tenants.get(tenant)
            return state.inflight if state else 0

    # -- admission -------------------------------------------------------

    def _tenant(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = _TenantState(
                self.config.tenant_rate, self.config.tenant_burst, self._clock
            )
            self._tenants[tenant] = state
        return state

    def try_admit(
        self, tenant: str, n: int = 1, queue_depth: int = 0
    ) -> AdmissionDecision:
        """Reserve room for ``n`` requests from ``tenant``.

        ``queue_depth`` is the pool's current dispatch-queue length as
        sampled by the caller; it backs the ``queue`` shed reason.
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        retry = self.config.retry_after
        with self._lock:
            if self._draining:
                return AdmissionDecision(False, "draining", retry)
            state = self._tenant(tenant)
            if state.inflight + n > self.config.tenant_max_inflight:
                return AdmissionDecision(False, "tenant_concurrency", retry)
            if not state.bucket.try_take(n):
                return AdmissionDecision(
                    False,
                    "tenant_rate",
                    max(retry, state.bucket.retry_after(n)),
                )
            if self._inflight + n > self.config.max_inflight:
                # Refund the bucket: the tenant was within its own
                # budget; the global cap shed is not its fault.
                state.bucket._tokens = min(
                    state.bucket.burst, state.bucket._tokens + n
                )
                return AdmissionDecision(False, "inflight", retry)
            if queue_depth + n > self.config.max_queue_depth:
                state.bucket._tokens = min(
                    state.bucket.burst, state.bucket._tokens + n
                )
                return AdmissionDecision(False, "queue", retry)
            state.inflight += n
            self._inflight += n
            return AdmissionDecision(True)

    def release(self, tenant: str, n: int = 1) -> None:
        """Return capacity reserved by a successful :meth:`try_admit`."""
        with self._lock:
            self._inflight = max(0, self._inflight - n)
            state = self._tenants.get(tenant)
            if state is not None:
                state.inflight = max(0, state.inflight - n)
