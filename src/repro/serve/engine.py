"""Dispatcher engine: the bridge between HTTP threads and the pool.

:class:`~repro.resilience.pool.SolverPool` is deliberately
single-threaded (one selector loop owns the worker pipes), while
:class:`http.server.ThreadingHTTPServer` hands every connection its own
thread. :class:`ServeEngine` reconciles the two with the classic
inbox/ticket pattern:

* HTTP handler threads call :meth:`ServeEngine.submit`, which drops a
  :class:`Ticket` into a thread-safe inbox and returns immediately.
* One dispatcher thread — the only thread that ever touches the pool —
  drains the inbox into :meth:`SolverPool.submit`, drives
  :meth:`SolverPool.poll`, and resolves tickets as results complete.
* Handler threads block on :meth:`Ticket.wait`; the pool's absolute
  deadlines guarantee the wait is bounded.

Shutdown mirrors the pool's drain contract: :meth:`ServeEngine.stop`
stops intake, lets in-flight work finish (or deadline out) up to
``drain_timeout``, resolves anything still unanswered as ``None``, and
closes the pool.
"""

from __future__ import annotations

import logging
import queue
import threading
import time

from repro.obs import trace as obs_trace
from repro.obs.metrics import get_registry, record_cover_result
from repro.resilience.pool import PoolConfig, PoolResult, SolveRequest, SolverPool
from repro.serve.config import ServeConfig

__all__ = ["Ticket", "ServeEngine"]

logger = logging.getLogger(__name__)


class Ticket:
    """One submitted request's rendezvous point.

    The dispatcher thread fills :attr:`result` (or :attr:`error`) and
    sets the event; the submitting HTTP thread blocks in :meth:`wait`.
    """

    __slots__ = ("request", "submitted_at", "result", "error", "_done")

    def __init__(self, request: SolveRequest) -> None:
        self.request = request
        self.submitted_at = time.monotonic()
        self.result: PoolResult | None = None
        self.error: str | None = None
        self._done = threading.Event()

    def resolve(self, result: PoolResult | None, error: str | None = None) -> None:
        self.result = result
        self.error = error
        self._done.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until resolved; ``False`` only if ``timeout`` elapsed."""
        return self._done.wait(timeout)


class ServeEngine:
    """Owns the warm :class:`SolverPool` behind ``scwsc serve``.

    All pool access happens on the dispatcher thread; the public
    methods (`submit`, `stop`, the state properties) are safe to call
    from any thread. State properties read plain attributes published
    by the dispatcher — monotonic flags and integers, so torn reads are
    impossible and locks are unnecessary.
    """

    #: Pool poll slice. Small enough that ticket-resolution latency is
    #: negligible next to solve time; large enough not to spin.
    POLL_INTERVAL = 0.05

    def __init__(
        self, config: ServeConfig, worker_env: dict | None = None
    ) -> None:
        self.config = config
        self.pool = SolverPool(
            PoolConfig(
                workers=config.workers,
                memory_limit_mb=config.memory_limit_mb,
                request_timeout=config.default_deadline,
                grace=config.grace,
                max_requeues=config.max_requeues,
                breaker_threshold=config.breaker_threshold,
                breaker_cooldown=config.breaker_cooldown,
                worker_env=worker_env,
                absolute_deadlines=True,
            )
        )
        self._inbox: queue.Queue[Ticket] = queue.Queue()
        self._tickets: dict[int, Ticket] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._warm = False
        self._warm_failed: str | None = None
        self._queue_depth = 0
        self._draining = False
        self._drain_requested = True
        self._breakers: dict = {}
        self._registry = get_registry()

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("engine already started")
        self._thread = threading.Thread(
            target=self._run, name="scwsc-dispatcher", daemon=True
        )
        self._thread.start()

    def wait_warm(self, timeout: float | None = None) -> bool:
        """Block until the pool reported warm (or failed to)."""
        give_up_at = (
            time.monotonic() + timeout if timeout is not None else None
        )
        while not self._warm and self._warm_failed is None:
            if give_up_at is not None and time.monotonic() >= give_up_at:
                return False
            time.sleep(0.01)
        return self._warm

    def stop(self, drain: bool = True) -> None:
        """Stop the dispatcher; optionally drain in-flight work first.

        Idempotent. With ``drain`` the dispatcher finishes (or
        deadline-outs) everything already submitted before closing the
        pool; without it, outstanding tickets resolve immediately with
        an error.
        """
        self._drain_requested = drain
        self._stop.set()
        thread = self._thread
        if thread is not None:
            # Generous join bound: drain itself is capped by
            # drain_timeout, plus slack for pool close.
            thread.join(self.config.drain_timeout + 10.0)
            if thread.is_alive():  # pragma: no cover - last-resort guard
                logger.error("dispatcher thread failed to stop")
        self._thread = None

    # -- submission (any thread) -----------------------------------------

    def submit(self, request: SolveRequest) -> Ticket:
        """Queue one request for the dispatcher; returns its ticket.

        Admission control happens *before* this call — the engine
        trusts the server to have reserved capacity already.
        """
        ticket = Ticket(request)
        if self._stop.is_set() or self._draining:
            ticket.resolve(None, "draining")
            return ticket
        self._inbox.put(ticket)
        return ticket

    # -- state (any thread) ----------------------------------------------

    @property
    def warm(self) -> bool:
        return self._warm

    @property
    def warm_failed(self) -> str | None:
        return self._warm_failed

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def queue_depth(self) -> int:
        """Dispatch backlog: inbox plus the pool's undispatched queue."""
        return self._inbox.qsize() + self._queue_depth

    def breaker_snapshot(self) -> dict:
        """Breaker states as last published by the dispatcher."""
        return dict(self._breakers)

    @property
    def open_breakers(self) -> list[str]:
        return sorted(
            name
            for name, snap in self._breakers.items()
            if snap.get("state") == "open"
        )

    # -- dispatcher thread -----------------------------------------------

    def _run(self) -> None:
        depth_gauge = self._registry.gauge(
            "scwsc_server_queue_depth",
            "Requests admitted but not yet dispatched to a worker",
        )
        try:
            self._warm = self.pool.warm(self.config.warm_timeout)
            if not self._warm:
                self._warm_failed = (
                    f"pool not warm after {self.config.warm_timeout:g}s"
                )
        except Exception as exc:  # workers keep dying at startup
            self._warm_failed = str(exc)
            logger.error("pool warm-up failed: %s", exc)
        obs_trace.event(
            "server_pool_warm",
            ok=self._warm,
            workers=self.pool.ready_workers,
            error=self._warm_failed,
        )
        try:
            while not self._stop.is_set():
                self._intake()
                self._step()
                self._publish(depth_gauge)
            self._draining = True
            if self._drain_requested:
                self._intake()  # tickets that raced the stop flag
                self._drain(depth_gauge)
            self._flush_unanswered("draining")
        except Exception:  # pragma: no cover - dispatcher must not die
            logger.exception("dispatcher loop failed")
            self._flush_unanswered("dispatcher error")
        finally:
            self._draining = True
            try:
                self.pool.close()
            except Exception:  # pragma: no cover
                logger.exception("pool close failed")
            self._flush_unanswered("shutdown")

    def _intake(self) -> None:
        while True:
            try:
                ticket = self._inbox.get_nowait()
            except queue.Empty:
                return
            try:
                request_id = self.pool.submit(ticket.request)
            except Exception as exc:
                ticket.resolve(None, str(exc))
                continue
            self._tickets[request_id] = ticket

    def _step(self) -> None:
        for pool_result in self.pool.poll(self.POLL_INTERVAL):
            ticket = self._tickets.pop(pool_result.request_id, None)
            if pool_result.result is not None:
                # The publish-once convention: the pool leaves registry
                # publication to its caller, and for served traffic the
                # dispatcher is that caller — exactly one publish per
                # accepted answer, whatever happens to the ticket.
                record_cover_result(pool_result.result)
            if ticket is not None:
                ticket.resolve(pool_result)

    def _publish(self, depth_gauge) -> None:
        self._queue_depth = self.pool.queue_depth
        depth_gauge.set(self._inbox.qsize() + self._queue_depth)
        self._breakers = self.pool.breaker_snapshot()

    def _drain(self, depth_gauge) -> None:
        obs_trace.event(
            "server_drain_begin",
            outstanding=len(self._tickets),
            queue_depth=self.pool.queue_depth,
        )
        give_up_at = time.monotonic() + self.config.drain_timeout
        while self._tickets and time.monotonic() < give_up_at:
            self._step()
            self._publish(depth_gauge)
        obs_trace.event(
            "server_drained",
            outstanding=len(self._tickets),
            timed_out=bool(self._tickets),
        )

    def _flush_unanswered(self, reason: str) -> None:
        while self._tickets:
            _, ticket = self._tickets.popitem()
            ticket.resolve(None, reason)
        while True:
            try:
                self._inbox.get_nowait().resolve(None, reason)
            except queue.Empty:
                return
