"""Tuning for the ``scwsc serve`` daemon (:mod:`repro.serve`).

One dataclass so the CLI, the tests, and the smoke harness configure a
server the same way. Validation happens at construction: a daemon that
would boot with a nonsensical admission policy should fail before it
binds a port.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = ["ServeConfig"]


@dataclass
class ServeConfig:
    """Knobs for one :class:`~repro.serve.server.SolverServer`.

    Admission control:

    ``max_inflight``
        Ceiling on requests admitted but not yet answered (executing in
        a worker *or* queued inside the pool) — the "admission cap".
        Hitting it sheds with 429 + ``Retry-After``.
    ``max_queue_depth``
        Independent ceiling on the pool's internal dispatch queue, so a
        burst of slow requests cannot build unbounded latency even when
        ``max_inflight`` would admit them.
    ``tenant_rate`` / ``tenant_burst``
        Per-tenant token bucket: sustained requests/second and burst
        capacity. Tenants are named by the ``X-Scwsc-Tenant`` header
        (``default`` otherwise).
    ``tenant_max_inflight``
        Per-tenant concurrent-request cap, so one tenant cannot occupy
        the whole admission budget.

    Deadlines:

    ``default_deadline`` / ``max_deadline``
        Per-request end-to-end budgets in seconds: requests may ask for
        their own ``deadline`` up to ``max_deadline``; omitting it gets
        ``default_deadline``. Budgets are enforced absolutely by the
        pool (queue wait and requeues included) with the SIGKILL
        hard-timeout path behind them; a spent budget degrades to the
        verified universal fallback instead of overrunning.
    ``grace``
        SIGKILL slack past the deadline, and therefore the tolerance on
        end-to-end latency.

    Robustness:

    ``read_timeout``
        Socket timeout for reading a request (line, headers, body); a
        slow-loris client is dropped, not waited on.
    ``max_body_bytes``
        Reject larger request bodies with 413 before reading them.
    ``drain_timeout``
        On SIGTERM, how long to wait for in-flight work before closing
        anyway (deadlines keep being enforced during the drain, so this
        only bites when something is badly wrong).

    Observability:

    ``access_log``
        Path for the JSONL access log (schema ``scwsc-access/1``, one
        record per HTTP request — see :mod:`repro.serve.accesslog`).
        ``None`` disables it.
    ``slo_latency_threshold`` / ``slo_latency_objective``
        The latency SLO: at least ``slo_latency_objective`` of served
        requests should finish within ``slo_latency_threshold`` seconds.
    ``slo_error_objective``
        The availability SLO: at least this fraction of served requests
        should avoid 5xx outcomes.
    ``slo_windows``
        Trailing windows (seconds) for the ``scwsc_slo_burn_rate``
        gauges; the defaults are the classic 5m/1h multi-window pair.
    ``slo_tenants``
        Per-tenant objective overrides, e.g.
        ``{"gold": {"latency_threshold": 0.5}}`` — unset fields inherit
        the global objectives.

    Flight recorder (see :mod:`repro.obs.flightrec` and
    docs/OBSERVABILITY.md §12):

    ``flightrec``
        Arm the always-on ring buffers (default True; the recorder is
        bounded and budgeted at <2% overhead, so it ships on).
    ``flightrec_spans`` / ``flightrec_events`` / ``flightrec_access`` /
    ``flightrec_metrics``
        Per-ring record capacities.
    ``flightrec_metrics_interval``
        Seconds between background metrics-snapshot rings (also the
        SLO fast-burn trigger's evaluation tick).
    ``debug_endpoints``
        Serve the loopback-only ``GET /debug/*`` introspection routes.
    ``postmortem_dir``
        Spool directory for triggered ``scwsc-postmortem/1`` bundles;
        ``None`` disables the trigger engine (rings stay armed).
    ``postmortem_max_bytes`` / ``postmortem_max_bundles``
        Spool caps, enforced oldest-deleted-first.
    ``postmortem_interval``
        Per-trigger-kind rate limit: minimum seconds between bundles of
        the same trigger kind.
    ``sampler_hz``
        Continuous stack-sampler frequency; 0 (default) leaves the
        sampler idle — triggers still take on-demand bursts.
    ``slo_fast_burn_threshold``
        Short-window burn rate at or above which the ``slo_fast_burn``
        postmortem trigger fires (14.4 = the classic "2% of a 30-day
        budget in one hour" page).
    """

    host: str = "127.0.0.1"
    port: int = 8080
    workers: int = 2
    memory_limit_mb: int | None = None
    max_inflight: int = 16
    max_queue_depth: int = 64
    tenant_rate: float = 50.0
    tenant_burst: float = 100.0
    tenant_max_inflight: int = 8
    default_deadline: float = 30.0
    max_deadline: float = 300.0
    grace: float = 1.0
    max_requeues: int = 1
    read_timeout: float = 10.0
    max_body_bytes: int = 32 * 1024 * 1024
    max_batch: int = 256
    retry_after: float = 1.0
    drain_timeout: float = 30.0
    warm_timeout: float = 30.0
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    access_log: str | None = None
    slo_latency_threshold: float = 1.0
    slo_latency_objective: float = 0.99
    slo_error_objective: float = 0.999
    slo_windows: tuple[float, ...] = (300.0, 3600.0)
    slo_tenants: dict | None = None
    flightrec: bool = True
    flightrec_spans: int = 1024
    flightrec_events: int = 1024
    flightrec_access: int = 256
    flightrec_metrics: int = 16
    flightrec_metrics_interval: float = 10.0
    debug_endpoints: bool = True
    postmortem_dir: str | None = None
    postmortem_max_bytes: int = 16 * 1024 * 1024
    postmortem_max_bundles: int = 20
    postmortem_interval: float = 60.0
    sampler_hz: float = 0.0
    slo_fast_burn_threshold: float = 14.4

    def slo_objectives(self):
        """The global :class:`~repro.obs.slo.SloObjectives` (validated)."""
        from repro.obs.slo import SloObjectives

        return SloObjectives(
            latency_threshold=self.slo_latency_threshold,
            latency_objective=self.slo_latency_objective,
            error_objective=self.slo_error_objective,
        )

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValidationError(f"workers must be >= 1, got {self.workers}")
        if self.max_inflight < 1:
            raise ValidationError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.max_queue_depth < 0:
            raise ValidationError(
                f"max_queue_depth must be >= 0, got {self.max_queue_depth}"
            )
        if self.tenant_rate <= 0 or self.tenant_burst <= 0:
            raise ValidationError(
                "tenant_rate and tenant_burst must be > 0, got "
                f"{self.tenant_rate}/{self.tenant_burst}"
            )
        if self.tenant_max_inflight < 1:
            raise ValidationError(
                f"tenant_max_inflight must be >= 1, "
                f"got {self.tenant_max_inflight}"
            )
        if self.default_deadline <= 0 or self.max_deadline <= 0:
            raise ValidationError(
                "default_deadline and max_deadline must be > 0, got "
                f"{self.default_deadline}/{self.max_deadline}"
            )
        if self.default_deadline > self.max_deadline:
            raise ValidationError(
                f"default_deadline {self.default_deadline} exceeds "
                f"max_deadline {self.max_deadline}"
            )
        if self.read_timeout <= 0:
            raise ValidationError(
                f"read_timeout must be > 0, got {self.read_timeout}"
            )
        if self.max_body_bytes < 1:
            raise ValidationError(
                f"max_body_bytes must be >= 1, got {self.max_body_bytes}"
            )
        if self.max_batch < 1:
            raise ValidationError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )
        for name in (
            "flightrec_spans",
            "flightrec_events",
            "flightrec_access",
            "flightrec_metrics",
            "postmortem_max_bundles",
        ):
            if getattr(self, name) < 1:
                raise ValidationError(
                    f"{name} must be >= 1, got {getattr(self, name)}"
                )
        if self.flightrec_metrics_interval <= 0:
            raise ValidationError(
                "flightrec_metrics_interval must be > 0, got "
                f"{self.flightrec_metrics_interval}"
            )
        if self.postmortem_max_bytes < 1:
            raise ValidationError(
                f"postmortem_max_bytes must be >= 1, "
                f"got {self.postmortem_max_bytes}"
            )
        if self.postmortem_interval < 0:
            raise ValidationError(
                f"postmortem_interval must be >= 0, "
                f"got {self.postmortem_interval}"
            )
        if self.sampler_hz < 0:
            raise ValidationError(
                f"sampler_hz must be >= 0, got {self.sampler_hz}"
            )
        if self.slo_fast_burn_threshold <= 0:
            raise ValidationError(
                "slo_fast_burn_threshold must be > 0, got "
                f"{self.slo_fast_burn_threshold}"
            )
        if not self.slo_windows or any(w <= 0 for w in self.slo_windows):
            raise ValidationError(
                f"slo_windows must be positive, got {self.slo_windows}"
            )
        self.slo_windows = tuple(float(w) for w in self.slo_windows)
        if self.slo_tenants is not None and not isinstance(
            self.slo_tenants, dict
        ):
            raise ValidationError("slo_tenants must be a dict of overrides")
        # Validate the objectives (and every tenant override) now, so a
        # daemon with a nonsensical SLO policy fails before binding.
        objectives = self.slo_objectives()
        for tenant, spec in (self.slo_tenants or {}).items():
            if not isinstance(spec, dict):
                raise ValidationError(
                    f"slo_tenants[{tenant!r}] must be a dict, got "
                    f"{type(spec).__name__}"
                )
            objectives.override(spec)
