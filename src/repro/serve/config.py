"""Tuning for the ``scwsc serve`` daemon (:mod:`repro.serve`).

One dataclass so the CLI, the tests, and the smoke harness configure a
server the same way. Validation happens at construction: a daemon that
would boot with a nonsensical admission policy should fail before it
binds a port.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = ["ServeConfig"]


@dataclass
class ServeConfig:
    """Knobs for one :class:`~repro.serve.server.SolverServer`.

    Admission control:

    ``max_inflight``
        Ceiling on requests admitted but not yet answered (executing in
        a worker *or* queued inside the pool) — the "admission cap".
        Hitting it sheds with 429 + ``Retry-After``.
    ``max_queue_depth``
        Independent ceiling on the pool's internal dispatch queue, so a
        burst of slow requests cannot build unbounded latency even when
        ``max_inflight`` would admit them.
    ``tenant_rate`` / ``tenant_burst``
        Per-tenant token bucket: sustained requests/second and burst
        capacity. Tenants are named by the ``X-Scwsc-Tenant`` header
        (``default`` otherwise).
    ``tenant_max_inflight``
        Per-tenant concurrent-request cap, so one tenant cannot occupy
        the whole admission budget.

    Deadlines:

    ``default_deadline`` / ``max_deadline``
        Per-request end-to-end budgets in seconds: requests may ask for
        their own ``deadline`` up to ``max_deadline``; omitting it gets
        ``default_deadline``. Budgets are enforced absolutely by the
        pool (queue wait and requeues included) with the SIGKILL
        hard-timeout path behind them; a spent budget degrades to the
        verified universal fallback instead of overrunning.
    ``grace``
        SIGKILL slack past the deadline, and therefore the tolerance on
        end-to-end latency.

    Robustness:

    ``read_timeout``
        Socket timeout for reading a request (line, headers, body); a
        slow-loris client is dropped, not waited on.
    ``max_body_bytes``
        Reject larger request bodies with 413 before reading them.
    ``drain_timeout``
        On SIGTERM, how long to wait for in-flight work before closing
        anyway (deadlines keep being enforced during the drain, so this
        only bites when something is badly wrong).
    """

    host: str = "127.0.0.1"
    port: int = 8080
    workers: int = 2
    memory_limit_mb: int | None = None
    max_inflight: int = 16
    max_queue_depth: int = 64
    tenant_rate: float = 50.0
    tenant_burst: float = 100.0
    tenant_max_inflight: int = 8
    default_deadline: float = 30.0
    max_deadline: float = 300.0
    grace: float = 1.0
    max_requeues: int = 1
    read_timeout: float = 10.0
    max_body_bytes: int = 32 * 1024 * 1024
    max_batch: int = 256
    retry_after: float = 1.0
    drain_timeout: float = 30.0
    warm_timeout: float = 30.0
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValidationError(f"workers must be >= 1, got {self.workers}")
        if self.max_inflight < 1:
            raise ValidationError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.max_queue_depth < 0:
            raise ValidationError(
                f"max_queue_depth must be >= 0, got {self.max_queue_depth}"
            )
        if self.tenant_rate <= 0 or self.tenant_burst <= 0:
            raise ValidationError(
                "tenant_rate and tenant_burst must be > 0, got "
                f"{self.tenant_rate}/{self.tenant_burst}"
            )
        if self.tenant_max_inflight < 1:
            raise ValidationError(
                f"tenant_max_inflight must be >= 1, "
                f"got {self.tenant_max_inflight}"
            )
        if self.default_deadline <= 0 or self.max_deadline <= 0:
            raise ValidationError(
                "default_deadline and max_deadline must be > 0, got "
                f"{self.default_deadline}/{self.max_deadline}"
            )
        if self.default_deadline > self.max_deadline:
            raise ValidationError(
                f"default_deadline {self.default_deadline} exceeds "
                f"max_deadline {self.max_deadline}"
            )
        if self.read_timeout <= 0:
            raise ValidationError(
                f"read_timeout must be > 0, got {self.read_timeout}"
            )
        if self.max_body_bytes < 1:
            raise ValidationError(
                f"max_body_bytes must be >= 1, got {self.max_body_bytes}"
            )
        if self.max_batch < 1:
            raise ValidationError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )
