"""``scwsc serve``: a fault-tolerant solver daemon.

The serving stack, bottom up:

* :mod:`.config` — :class:`ServeConfig`, every knob in one dataclass;
* :mod:`.admission` — token buckets, per-tenant and global caps, shed
  reasons (:class:`AdmissionController`);
* :mod:`.engine` — :class:`ServeEngine`, the single dispatcher thread
  that owns the warm :class:`~repro.resilience.pool.SolverPool` and
  trades :class:`Ticket`\\ s with HTTP handler threads;
* :mod:`.accesslog` — the ``scwsc-access/1`` JSONL access log: one
  schema-validated record per HTTP request (also a module CLI,
  ``python -m repro.serve.accesslog FILE``);
* :mod:`.server` — :class:`SolverServer` (routes, length-checked JSON
  bodies, request tracing, load shedding, graceful drain) and
  :func:`run_server`, the CLI entry point.

See ``docs/SERVING.md`` for the operator's view.
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionDecision,
    TokenBucket,
)
from repro.serve.config import ServeConfig
from repro.serve.engine import ServeEngine, Ticket
from repro.serve.server import SolverServer, build_solve_request, run_server

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "ServeConfig",
    "ServeEngine",
    "SolverServer",
    "Ticket",
    "TokenBucket",
    "build_solve_request",
    "run_server",
]
