"""Adversarial set systems from the paper's analytical arguments.

Currently one family: the Section III instance showing that truncated
greedy *budgeted maximum coverage* can have arbitrarily poor coverage for
our problem. Elements are ``{0, ..., Ck - 1}``; there are ``ck`` singleton
sets of weight 1 and ``k`` disjoint blocks of ``C`` elements, each of
weight ``C + 1``. With ``c << C`` the greedy gain rule prefers the
singletons (gain 1) over the blocks (gain ``C / (C + 1) < 1``): allowed
``ck`` picks, it covers only ``ck`` elements, while the optimum covers all
``Ck`` with the ``k`` blocks.
"""

from __future__ import annotations

from repro.core.setsystem import SetSystem
from repro.errors import ValidationError


def bmc_adversarial_system(k: int, c: int, big_c: int) -> SetSystem:
    """Build the Section III instance.

    Parameters
    ----------
    k:
        Number of blocks (the optimal solution size).
    c:
        Truncation multiplier — greedy BMC will be allowed ``c * k`` picks.
    big_c:
        Block size ``C``; must satisfy ``c <= C`` so the ``ck`` singletons
        exist among the ``Ck`` elements.

    Returns
    -------
    SetSystem
        ``c * k`` singletons labeled ``("singleton", i)`` followed by
        ``k`` blocks labeled ``("block", i)``.
    """
    if k < 1 or c < 1 or big_c < 1:
        raise ValidationError("k, c and C must all be >= 1")
    if c > big_c:
        raise ValidationError(
            f"need c <= C so the singletons exist, got c={c} > C={big_c}"
        )
    n = big_c * k
    benefits: list[set[int]] = []
    costs: list[float] = []
    labels: list[tuple[str, int]] = []
    for i in range(c * k):
        benefits.append({i})
        costs.append(1.0)
        labels.append(("singleton", i))
    for i in range(k):
        benefits.append(set(range(i * big_c, (i + 1) * big_c)))
        costs.append(float(big_c + 1))
        labels.append(("block", i))
    return SetSystem.from_iterables(n, benefits, costs, labels=labels)


def bmc_optimal_budget(k: int, big_c: int) -> float:
    """Cost of the optimal (all-blocks) solution: ``k (C + 1)``."""
    return float(k * (big_c + 1))
