"""Data sets: the paper's running example, the LBL-like synthetic trace,
the Section VI-B perturbations, and adversarial/hardness instances."""

from repro.datasets.adversarial import bmc_adversarial_system, bmc_optimal_budget
from repro.datasets.census import CENSUS_ATTRIBUTES, census_table
from repro.datasets.entities import ENTITY_ROWS, entities_table
from repro.datasets.lbl import LBL_ATTRIBUTES, lbl_trace
from repro.datasets.perturb import lognormal_rerank, uniform_perturb
from repro.datasets.registry import available_datasets, load_dataset
from repro.datasets.tripartite import (
    PARTS,
    random_tripartite_graph,
    tripartite_graph,
)

__all__ = [
    "CENSUS_ATTRIBUTES",
    "ENTITY_ROWS",
    "LBL_ATTRIBUTES",
    "PARTS",
    "available_datasets",
    "bmc_adversarial_system",
    "bmc_optimal_budget",
    "census_table",
    "entities_table",
    "lbl_trace",
    "load_dataset",
    "lognormal_rerank",
    "random_tripartite_graph",
    "tripartite_graph",
    "uniform_perturb",
]
