"""Synthetic census-like records (a second workload family).

The paper's motivating applications include workforce creation and
marketing over *entity* tables (individuals with demographic attributes
and a numeric cost). This generator produces such a table — demographic
pattern attributes plus an income measure correlated with education and
occupation — so experiments and examples can check behaviour beyond the
network-trace workload. Distributions are skewed (as in real census data)
but parameterized and seeded.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.patterns.table import PatternTable

#: Attribute order of the synthetic census table.
CENSUS_ATTRIBUTES = (
    "age_band", "education", "occupation", "workclass", "region",
)

_AGE_BANDS = ("18-25", "26-35", "36-45", "46-55", "56-65", "66+")
_AGE_WEIGHTS = (0.16, 0.24, 0.22, 0.18, 0.12, 0.08)

_EDUCATION = ("hs", "some-college", "bachelors", "masters", "doctorate")
_EDU_WEIGHTS = (0.38, 0.27, 0.22, 0.10, 0.03)
#: Multiplier on the income location per education level.
_EDU_INCOME = {"hs": 0.7, "some-college": 0.9, "bachelors": 1.2,
               "masters": 1.5, "doctorate": 1.9}

_OCCUPATION = (
    "service", "sales", "admin", "craft", "transport", "tech",
    "professional", "management",
)
_OCC_WEIGHTS = (0.18, 0.15, 0.14, 0.13, 0.10, 0.11, 0.11, 0.08)
_OCC_INCOME = {
    "service": 0.6, "sales": 0.9, "admin": 0.8, "craft": 1.0,
    "transport": 0.9, "tech": 1.4, "professional": 1.5, "management": 1.8,
}
#: Hard income ceiling per occupation (thousands). Wage-scale jobs are
#: bounded no matter the draw, commission/equity jobs are not — this is
#: what makes occupation-slice patterns cheap relative to the
#: all-wildcards pattern, the structure every experiment here relies on.
_OCC_INCOME_CAP = {
    "service": 45.0, "admin": 60.0, "transport": 70.0, "craft": 85.0,
    "sales": 150.0, "tech": 200.0, "professional": 280.0,
    "management": 500.0,
}

_WORKCLASS = ("private", "self-employed", "government", "other")
_WORKCLASS_WEIGHTS = (0.70, 0.12, 0.14, 0.04)

_REGIONS = (
    "northeast", "mid-atlantic", "southeast", "midwest", "southwest",
    "mountain", "pacific",
)
_REGION_WEIGHTS = (0.14, 0.13, 0.19, 0.18, 0.12, 0.08, 0.16)


def census_table(n_rows: int = 5_000, seed: int = 17) -> PatternTable:
    """Generate a synthetic census-like table.

    The measure (``income``, in thousands) is log-normal with a location
    determined by education and occupation, so patterns over those
    attributes have structured costs — mirroring how the LBL generator
    ties durations to protocol and end state.
    """
    if n_rows < 1:
        raise ValidationError(f"n_rows must be >= 1, got {n_rows}")
    rng = np.random.default_rng(seed)

    age = rng.choice(_AGE_BANDS, size=n_rows, p=_AGE_WEIGHTS)
    education = rng.choice(_EDUCATION, size=n_rows, p=_EDU_WEIGHTS)
    occupation = rng.choice(_OCCUPATION, size=n_rows, p=_OCC_WEIGHTS)
    workclass = rng.choice(_WORKCLASS, size=n_rows, p=_WORKCLASS_WEIGHTS)
    region = rng.choice(_REGIONS, size=n_rows, p=_REGION_WEIGHTS)

    edu_factor = np.array([_EDU_INCOME[e] for e in education])
    occ_factor = np.array([_OCC_INCOME[o] for o in occupation])
    occ_cap = np.array([_OCC_INCOME_CAP[o] for o in occupation])
    income = np.round(
        np.minimum(
            50.0 * edu_factor * occ_factor
            * np.exp(rng.normal(0.0, 0.6, size=n_rows)),
            occ_cap,
        ),
        1,
    )

    rows = list(
        zip(
            age.tolist(),
            education.tolist(),
            occupation.tolist(),
            workclass.tolist(),
            region.tolist(),
        )
    )
    return PatternTable(
        attributes=CENSUS_ATTRIBUTES,
        rows=rows,
        measure=income.tolist(),
        measure_name="income",
    )
