"""Tripartite graphs for the Lemma 1 hardness reduction.

Lemma 1 reduces VERTEX COVER IN TRIPARTITE GRAPHS to the threshold variant
of our problem. This module generates tripartite graphs (as
:mod:`networkx` graphs with a ``part`` node attribute) for the reduction
tests in :mod:`repro.hardness`.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.errors import ValidationError

#: Node naming: ``("a", i)``, ``("b", j)``, ``("c", k)`` per part.
PARTS = ("a", "b", "c")


def tripartite_graph(edges) -> nx.Graph:
    """Build a tripartite graph from ``((part, i), (part, j))`` edge pairs.

    Validates that no edge stays within one part.
    """
    graph = nx.Graph()
    for u, v in edges:
        if u[0] not in PARTS or v[0] not in PARTS:
            raise ValidationError(f"nodes must be tagged with parts {PARTS}")
        if u[0] == v[0]:
            raise ValidationError(
                f"edge {u}-{v} stays inside part {u[0]!r}; the graph must "
                "be tripartite"
            )
        graph.add_edge(u, v)
    for node in graph.nodes:
        graph.nodes[node]["part"] = node[0]
    return graph


def random_tripartite_graph(
    n_per_part: int, edge_probability: float, seed: int = 0
) -> nx.Graph:
    """Random tripartite graph: each cross-part pair is an edge w.p. ``p``.

    Isolated nodes are dropped (they are irrelevant to vertex cover and to
    the reduction).
    """
    if n_per_part < 1:
        raise ValidationError(f"n_per_part must be >= 1, got {n_per_part}")
    if not (0.0 < edge_probability <= 1.0):
        raise ValidationError(
            f"edge_probability must be in (0, 1], got {edge_probability}"
        )
    rng = np.random.default_rng(seed)
    edges = []
    for left_part, right_part in (("a", "b"), ("a", "c"), ("b", "c")):
        for i in range(n_per_part):
            for j in range(n_per_part):
                if rng.random() < edge_probability:
                    edges.append(((left_part, i), (right_part, j)))
    if not edges:
        # Guarantee a non-degenerate instance.
        edges.append((("a", 0), ("b", 0)))
    return tripartite_graph(edges)
