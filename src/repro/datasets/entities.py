"""The paper's running example: the 16 real-world entities of Table I.

Pattern attributes ``Type`` and ``Location``, measure attribute ``Cost``.
With the ``max`` cost function this table yields exactly the 24 patterns of
Table II; the worked examples of Sections I, V-A, V-B and V-C all run on
it, and the integration tests replay them verbatim.
"""

from __future__ import annotations

from repro.patterns.table import PatternTable

#: ``(Type, Location, Cost)`` rows of Table I, in id order (ids 1..16 in
#: the paper map to row ids 0..15 here).
ENTITY_ROWS: tuple[tuple[str, str, float], ...] = (
    ("A", "West", 10.0),
    ("A", "Northeast", 32.0),
    ("B", "South", 2.0),
    ("A", "North", 4.0),
    ("B", "East", 7.0),
    ("A", "Northwest", 20.0),
    ("B", "West", 4.0),
    ("B", "Southwest", 24.0),
    ("A", "Southwest", 4.0),
    ("B", "Northwest", 4.0),
    ("A", "North", 3.0),
    ("B", "Northeast", 3.0),
    ("B", "South", 1.0),
    ("B", "North", 20.0),
    ("A", "East", 3.0),
    ("A", "South", 96.0),
)


def entities_table() -> PatternTable:
    """Table I as a :class:`PatternTable` (measure = ``Cost``)."""
    return PatternTable(
        attributes=("Type", "Location"),
        rows=[(type_, location) for type_, location, _ in ENTITY_ROWS],
        measure=[cost for _, _, cost in ENTITY_ROWS],
        measure_name="Cost",
    )
