"""Named dataset registry for the CLI and notebooks.

``scwsc demo --dataset lbl:5000`` resolves through here: a spec is a
generator name with optional ``:rows`` and ``@seed`` suffixes, e.g.
``lbl``, ``census:2000``, ``lbl:10000@42``, ``entities``.
"""

from __future__ import annotations

from typing import Callable

from repro.datasets.census import census_table
from repro.datasets.entities import entities_table
from repro.datasets.lbl import lbl_trace
from repro.errors import ValidationError
from repro.patterns.table import PatternTable

#: name -> (builder(rows, seed), default_rows, sized)
_GENERATORS: dict[str, tuple[Callable[[int, int], PatternTable], int, bool]] = {
    "lbl": (lambda rows, seed: lbl_trace(rows, seed=seed), 10_000, True),
    "census": (
        lambda rows, seed: census_table(rows, seed=seed), 5_000, True,
    ),
    "entities": (lambda rows, seed: entities_table(), 16, False),
}


def available_datasets() -> list[str]:
    """Names accepted by :func:`load_dataset`."""
    return sorted(_GENERATORS)


def load_dataset(spec: str) -> PatternTable:
    """Build a table from a ``name[:rows][@seed]`` spec.

    Examples: ``"lbl"``, ``"census:2000"``, ``"lbl:10000@42"``.
    """
    name, _, seed_part = spec.partition("@")
    name, _, rows_part = name.partition(":")
    try:
        builder, default_rows, sized = _GENERATORS[name]
    except KeyError:
        raise ValidationError(
            f"unknown dataset {name!r}; known: {available_datasets()}"
        ) from None
    try:
        rows = int(rows_part) if rows_part else default_rows
        seed = int(seed_part) if seed_part else 7
    except ValueError:
        raise ValidationError(
            f"bad dataset spec {spec!r}; expected name[:rows][@seed]"
        ) from None
    if rows_part and not sized:
        raise ValidationError(
            f"dataset {name!r} has a fixed size; drop the :rows suffix"
        )
    if rows < 1:
        raise ValidationError(f"rows must be >= 1, got {rows}")
    return builder(rows, seed)
