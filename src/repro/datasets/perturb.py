"""Measure perturbations for the robustness study (Section VI-B).

The paper builds two groups of synthetic data sets from LBL to stress the
quality comparison between CWSC and CMC:

* group 1 replaces each measure value ``m`` by a uniform draw from
  ``[(1 - delta) m, (1 + delta) m]`` for various ``delta`` in ``[0, 1]``;
* group 2 draws fresh values from a log-normal with mean log 2 and a
  chosen standard deviation, then assigns them to records *in the same
  rank order* as the original measure.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.patterns.table import PatternTable


def uniform_perturb(
    table: PatternTable, delta: float, seed: int = 0
) -> PatternTable:
    """Group-1 perturbation: scale each measure by ``U[1-delta, 1+delta]``."""
    if table.measure is None:
        raise ValidationError("uniform_perturb needs a measure column")
    if not (0.0 <= delta <= 1.0):
        raise ValidationError(f"delta must be in [0, 1], got {delta}")
    rng = np.random.default_rng(seed)
    original = np.asarray(table.measure)
    factors = rng.uniform(1.0 - delta, 1.0 + delta, size=len(original))
    return table.with_measure((original * factors).tolist())


def lognormal_rerank(
    table: PatternTable,
    sigma: float,
    seed: int = 0,
    mean_log: float = 2.0,
) -> PatternTable:
    """Group-2 perturbation: log-normal values in the original rank order.

    Draws ``n`` values from ``LogNormal(mean_log, sigma)``, sorts them, and
    assigns the ``r``-th smallest new value to the record with the ``r``-th
    smallest original measure (ties broken by row id), exactly as described
    in Section VI-B.
    """
    if table.measure is None:
        raise ValidationError("lognormal_rerank needs a measure column")
    if sigma <= 0:
        raise ValidationError(f"sigma must be > 0, got {sigma}")
    rng = np.random.default_rng(seed)
    original = np.asarray(table.measure)
    fresh = np.sort(rng.lognormal(mean=mean_log, sigma=sigma, size=len(original)))
    # Rank of each record's original measure (stable, so ties break by id).
    order = np.argsort(original, kind="stable")
    replacement = np.empty_like(fresh)
    replacement[order] = fresh
    return table.with_measure(replacement.tolist())
