"""Synthetic stand-in for the LBL-CONN-7 TCP connection trace.

The paper's experiments run on ``LBL`` — roughly 700k TCP connections with
five pattern attributes (``protocol``, ``localhost``, ``remotehost``,
``endstate``, ``flags``) and the session ``duration`` as the measure. That
trace is not redistributable here, so this generator produces a trace with
the same schema and the structural properties the algorithms are sensitive
to:

* **skewed categorical frequencies** — attribute values drawn from Zipf
  distributions, so a few heavy-hitter patterns cover large fractions of
  the data while a long tail of patterns covers a handful of rows each
  (this is what makes the lattice pruning of Section V-C pay off);
* **heavy-tailed durations** — log-normal session lengths, so pattern
  costs under ``max`` span orders of magnitude (this is what makes the
  CMC cost levels non-trivial);
* **correlation between protocol and duration** — bulk protocols run
  longer, so cheap high-coverage patterns exist but are not trivial to
  find (the interesting regime for CWSC vs. CMC).

Sizes are scaled to what pure Python can sweep in a benchmark run; the
experiment harness samples rows exactly like the paper does (Fig. 5).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.patterns.table import PatternTable

#: Attribute order of the synthetic trace (matches the paper's listing).
LBL_ATTRIBUTES = ("protocol", "localhost", "remotehost", "endstate", "flags")

#: Protocols in descending traffic share (Zipf rank order). The frequent
#: protocols are the short, capped ones — as in real traces — so cheap
#: patterns with large coverage exist at every size scale.
_PROTOCOLS = (
    "http", "domain", "smtp", "ftp-data", "pop", "nntp", "finger",
    "printer", "ftp", "shell", "telnet", "other",
)
#: Per-protocol multiplier on the log-duration (bulk transfers run long).
_PROTOCOL_DURATION_SHIFT = {
    "telnet": 1.5, "ftp": 1.0, "ftp-data": 0.5, "smtp": -0.5,
    "nntp": 0.8, "http": -1.0, "finger": -1.5, "domain": -1.2,
    "printer": 0.2, "pop": -0.8, "shell": 0.6, "other": 0.0,
}
#: Hard per-protocol duration ceiling (seconds). Request/response
#: protocols never run long in real traces, so patterns like
#: ``(domain, ALL, ..., ALL)`` have a *bounded* ``max``-cost no matter how
#: many records they cover — the cheap high-coverage sets the paper's LBL
#: experiments rely on.
_PROTOCOL_DURATION_CAP = {
    "telnet": 200.0, "ftp": 60.0, "ftp-data": 20.0, "smtp": 8.0,
    "nntp": 15.0, "http": 5.0, "finger": 2.0, "domain": 1.0,
    "printer": 20.0, "pop": 3.0, "shell": 90.0, "other": 60.0,
}
_ENDSTATES = (
    "SF", "REJ", "S0", "S1", "S2", "S3", "RSTO", "RSTR", "OTH", "SH",
)
#: Multiplier on the duration per end state: rejected / half-open
#: connections last almost no time, which is what makes patterns like
#: ``(ALL, ..., endstate=REJ, ALL)`` cheap despite covering many records.
_ENDSTATE_DURATION_FACTOR = {
    "SF": 1.0, "REJ": 0.05, "S0": 0.08, "S1": 0.3, "S2": 0.35,
    "S3": 0.4, "RSTO": 0.15, "RSTR": 0.2, "OTH": 0.6, "SH": 0.1,
}
_FLAGS = ("-", "U", "D", "UD", "T", "UT", "DT", "UDT", "N", "X")


def _rotated(values: tuple, drift: float) -> list:
    """Rotate a popularity ranking by ``round(drift * len)`` positions."""
    shift = int(round(drift * len(values))) % len(values)
    return list(values[shift:]) + list(values[:shift])


def _zipf_probabilities(n_values: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, n_values + 1, dtype=float)
    weights = ranks**-exponent
    return weights / weights.sum()


def lbl_trace(
    n_rows: int = 10_000,
    seed: int = 7,
    n_localhosts: int = 300,
    n_remotehosts: int = 1_200,
    zipf_exponent: float = 1.3,
    duration_sigma: float = 0.8,
    drift: float = 0.0,
) -> PatternTable:
    """Generate a synthetic LBL-like connection trace.

    Parameters
    ----------
    n_rows:
        Number of connection records.
    seed:
        RNG seed; identical parameters yield an identical table.
    n_localhosts / n_remotehosts:
        Domain sizes of the two host attributes.
    zipf_exponent:
        Skew of every categorical distribution (larger = heavier head).
    duration_sigma:
        Log-space standard deviation of the session durations.
    drift:
        Distribution drift in ``[0, 1]``: rotates the protocol and end
        state popularity rankings by ``round(drift * domain)`` positions,
        so batches generated with increasing drift model a workload whose
        traffic mix changes over time (this is what exercises the
        incremental maintainer's repair/recompute paths).

    Returns
    -------
    PatternTable
        Five pattern attributes plus a ``duration`` measure.
    """
    if n_rows < 1:
        raise ValidationError(f"n_rows must be >= 1, got {n_rows}")
    if n_localhosts < 1 or n_remotehosts < 1:
        raise ValidationError("host domain sizes must be >= 1")
    if not (0.0 <= drift <= 1.0):
        raise ValidationError(f"drift must be in [0, 1], got {drift}")
    rng = np.random.default_rng(seed)

    protocol_order = _rotated(_PROTOCOLS, drift)
    endstate_order = _rotated(_ENDSTATES, drift)

    protocols = rng.choice(
        protocol_order,
        size=n_rows,
        p=_zipf_probabilities(len(_PROTOCOLS), zipf_exponent),
    )
    localhosts = rng.choice(
        np.array([f"lbl-{i:03d}" for i in range(n_localhosts)]),
        size=n_rows,
        p=_zipf_probabilities(n_localhosts, zipf_exponent),
    )
    remotehosts = rng.choice(
        np.array([f"rem-{i:04d}" for i in range(n_remotehosts)]),
        size=n_rows,
        p=_zipf_probabilities(n_remotehosts, zipf_exponent),
    )
    endstates = rng.choice(
        endstate_order,
        size=n_rows,
        p=_zipf_probabilities(len(_ENDSTATES), zipf_exponent),
    )
    flags = rng.choice(
        _FLAGS,
        size=n_rows,
        p=_zipf_probabilities(len(_FLAGS), zipf_exponent),
    )

    shift = np.array([_PROTOCOL_DURATION_SHIFT[p] for p in protocols])
    state_factor = np.array(
        [_ENDSTATE_DURATION_FACTOR[s] for s in endstates]
    )
    # Log-normal around a protocol-dependent location (mean log-duration
    # ~2, as in the paper's Section VI-B regeneration), scaled down hard
    # for failed/half-open end states.
    cap = np.array([_PROTOCOL_DURATION_CAP[p] for p in protocols])
    durations = state_factor * np.minimum(
        np.exp(rng.normal(loc=2.0 + shift, scale=duration_sigma)), cap
    )
    durations = np.round(durations, 4)
    durations = np.maximum(durations, 0.0001)

    rows = list(
        zip(
            protocols.tolist(),
            localhosts.tolist(),
            remotehosts.tolist(),
            endstates.tolist(),
            flags.tolist(),
        )
    )
    return PatternTable(
        attributes=LBL_ATTRIBUTES,
        rows=rows,
        measure=durations.tolist(),
        measure_name="duration",
    )
