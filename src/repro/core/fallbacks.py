"""Last-resort solutions: the universal set and greedy best-effort partials.

The paper assumes a set covering all of ``T`` exists (for patterned inputs
it is the all-wildcards pattern), which means *some* feasible answer always
exists. This module turns that assumption into runnable fallbacks:

* :func:`universal_result` — the cheapest single full-coverage set, the
  paper's "default solution". Feasible for any ``k >= 1`` and any
  ``s_hat``.
* :func:`greedy_partial` — up to ``k`` sets chosen greedily by marginal
  gain, with no feasibility requirement. Used to populate
  ``InfeasibleError.partial`` / ``DeadlineExceeded.partial`` when a solver
  gives up before finding anything better, so callers always get the best
  cheap answer available instead of ``None``.
"""

from __future__ import annotations

import math
import time

from repro.core.greedy_common import gain_key
from repro.core.marginal import make_tracker
from repro.core.result import CoverResult, Metrics, make_result
from repro.core.setsystem import SetSystem
from repro.errors import InfeasibleError, ValidationError

__all__ = ["greedy_partial", "universal_result"]


def universal_result(system: SetSystem, k: int, s_hat: float) -> CoverResult:
    """The paper's default solution: the cheapest full-coverage set.

    Raises
    ------
    InfeasibleError
        If no finite-cost set covers the whole universe (the paper's
        standing assumption does not hold for this system). The attached
        ``partial`` is a greedy best-effort solution.
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    start = time.perf_counter()
    full = [
        ws
        for ws in system.sets
        if ws.size == system.n_elements and math.isfinite(ws.cost)
    ]
    if not full:
        raise InfeasibleError(
            "universal fallback: no finite-cost set covers the whole "
            "universe",
            partial=greedy_partial(system, k, s_hat),
        )
    cheapest = min(full, key=lambda ws: (ws.cost, ws.set_id))
    # Every solver populates runtime_seconds itself — including this
    # trivial one, so downstream aggregation never sees a 0.0 run time.
    metrics = Metrics(
        selections=1,
        runtime_seconds=time.perf_counter() - start,
    )
    return make_result(
        algorithm="universal",
        chosen=[cheapest.set_id],
        labels=[cheapest.label],
        total_cost=cheapest.cost,
        covered=system.n_elements,
        n_elements=system.n_elements,
        feasible=True,
        params={"k": k, "s_hat": s_hat},
        metrics=metrics,
    )


def greedy_partial(system: SetSystem, k: int, s_hat: float) -> CoverResult:
    """Best-effort cover: up to ``k`` sets greedily by marginal gain.

    Never raises for valid parameters; the result's ``feasible`` flag
    reports whether the greedy selection happened to reach the coverage
    target. Tie-breaking matches the other greedy algorithms so partials
    are deterministic.
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    start = time.perf_counter()
    metrics = Metrics()
    required = system.required_coverage(s_hat)
    tracker = make_tracker(system, metrics=metrics)
    chosen: list[int] = []
    while len(chosen) < k and tracker.covered_count < required:
        best_id = None
        best_key = None
        for set_id, size in tracker.live_items():
            if not math.isfinite(system[set_id].cost):
                continue
            key = gain_key(
                tracker.marginal_gain(set_id),
                size,
                system[set_id].cost,
                system[set_id].label,
                set_id,
            )
            if best_key is None or key > best_key:
                best_id = set_id
                best_key = key
        if best_id is None:
            break
        tracker.select(best_id)
        chosen.append(best_id)
    metrics.runtime_seconds = time.perf_counter() - start
    covered = system.coverage_of(chosen)
    return make_result(
        algorithm="greedy_partial",
        chosen=chosen,
        labels=[system[set_id].label for set_id in chosen],
        total_cost=system.cost_of(chosen),
        covered=covered,
        n_elements=system.n_elements,
        feasible=covered >= required,
        params={"k": k, "s_hat": s_hat},
        metrics=metrics,
    )
