"""Input preprocessing that preserves optimal solutions.

Real pattern collections contain many *dominated* sets — a set is dominated
when some other set covers at least the same elements at no greater cost
(e.g. the pattern ``(A, West)`` is dominated by ``(ALL, West)`` whenever
every West record has type A but the broader pattern costs the same).
Dropping dominated sets never changes the optimal cost and shrinks the
instance for the exact solver and the LP.

Greedy algorithms may select *different* (never cheaper-than-optimal)
solutions on the reduced instance, because tie-breaking sees fewer
candidates; callers who need bit-identical greedy output should not
preprocess.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.core.bitset import mask_table
from repro.core.setsystem import SetSystem, WeightedSet
from repro.obs import trace as obs_trace


def remove_dominated(system: SetSystem) -> SetSystem:
    """Return a system without dominated or empty sets.

    A set ``s`` is dominated when another set ``t`` has
    ``Ben(s) <= Ben(t)`` and ``Cost(t) <= Cost(s)`` (ties keep the
    earlier id). Worst-case quadratic in the number of sets — intended
    as a preprocessing step before :func:`repro.core.exact.solve_exact`
    or :func:`repro.core.lp_bound.lp_lower_bound`, not inside greedy
    loops — but two prunings keep the common case far cheaper:

    * subset tests run on the system's packed benefit masks
      (``s & ~t == 0``), one word-wide AND-NOT per comparison;
    * kept sets are scanned in ascending cost order and the scan stops
      at the first survivor more expensive than the candidate — only
      sets satisfying the cost half of the dominance predicate are ever
      compared.
    """
    with (
        obs_trace.span(
            "preprocess", op="remove_dominated", n_sets=system.n_sets
        )
        if obs_trace.enabled()
        else obs_trace.NULL_SPAN
    ) as sp:
        masks = mask_table(system).masks
        survivors: list[WeightedSet] = []
        # Survivor masks kept sorted by (cost, insertion order) so bisect
        # bounds the dominance scan to survivors with cost <= candidate's.
        kept_costs: list[float] = []
        kept_masks: list[int] = []
        candidates = [ws for ws in system.sets if masks[ws.set_id]]
        # Bigger-first makes the common "subset of a cheaper superset"
        # check hit early; ties on size resolve by cost then id for
        # determinism.
        candidates.sort(key=lambda ws: (-ws.size, ws.cost, ws.set_id))
        for ws in candidates:
            mask = masks[ws.set_id]
            hi = bisect_right(kept_costs, ws.cost)
            if not any(
                mask & ~kept == 0 for kept in kept_masks[:hi]
            ):
                survivors.append(ws)
                kept_costs.insert(hi, ws.cost)
                kept_masks.insert(hi, mask)
        survivors.sort(key=lambda ws: ws.set_id)
        if sp.enabled:
            sp.set(survivors=len(survivors))
        return SetSystem(
            system.n_elements,
            [
                WeightedSet(
                    set_id=new_id,
                    benefit=ws.benefit,
                    cost=ws.cost,
                    label=ws.label,
                )
                for new_id, ws in enumerate(survivors)
            ],
        )


def restrict_to_budget(system: SetSystem, budget: float) -> SetSystem:
    """Return a system keeping only sets with ``cost <= budget``.

    This is the Lemma 1 "threshold" view: solving with only the
    affordable sets. Set ids are re-densified; labels are preserved.
    """
    with (
        obs_trace.span(
            "preprocess", op="restrict_to_budget", budget=budget
        )
        if obs_trace.enabled()
        else obs_trace.NULL_SPAN
    ):
        survivors = [ws for ws in system.sets if ws.cost <= budget]
        return SetSystem(
            system.n_elements,
            [
                WeightedSet(
                    set_id=new_id,
                    benefit=ws.benefit,
                    cost=ws.cost,
                    label=ws.label,
                )
                for new_id, ws in enumerate(survivors)
            ],
        )
