"""Solution post-processing.

Greedy covers often contain *redundant* sets: later selections can make an
earlier one unnecessary (every element it contributed is now covered by
others). The paper's algorithms do not prune — their guarantees are about
the raw greedy output — but a practical deployment wants the cheaper
subsolution, so :func:`prune_redundant` is offered as a post-processing
extension (and an ablation benchmark measures how much it saves).
"""

from __future__ import annotations

from repro.core.result import CoverResult, make_result
from repro.core.setsystem import SetSystem
from repro.errors import ValidationError


def prune_redundant(
    system: SetSystem, result: CoverResult, s_hat: float
) -> CoverResult:
    """Drop sets whose removal keeps the coverage at ``s_hat * n``.

    Candidates are examined most-expensive-first, so the costliest
    redundancies go first; each removal is permanent (a single greedy
    pass — minimal-cost pruning is itself NP-hard).

    Returns a new result (the input is untouched) with the same algorithm
    name suffixed ``"+prune"``. Raises if the input result does not reach
    the target to begin with.
    """
    required = system.required_coverage(s_hat)
    if system.coverage_of(result.set_ids) < required:
        raise ValidationError(
            "prune_redundant: the input result does not reach the "
            f"required coverage of {required} elements"
        )

    kept = list(result.set_ids)
    # Most expensive first; ties toward later selections (which are the
    # likelier redundancies under greedy construction).
    order = sorted(
        kept,
        key=lambda set_id: (system[set_id].cost, kept.index(set_id)),
        reverse=True,
    )
    for candidate in order:
        without = [set_id for set_id in kept if set_id != candidate]
        if system.coverage_of(without) >= required:
            kept = without

    return make_result(
        algorithm=f"{result.algorithm}+prune",
        chosen=kept,
        labels=[system[set_id].label for set_id in kept],
        total_cost=system.cost_of(kept),
        covered=system.coverage_of(kept),
        n_elements=system.n_elements,
        feasible=True,
        params={**result.params, "pruned_from": result.n_sets},
        metrics=result.metrics,
    )
