"""Cheap Max Coverage (CMC) — Fig. 1 of the paper.

CMC guesses the optimal cost ``B``, partitions affordable sets into cost
levels, and runs the greedy maximum-coverage heuristic with a per-level
quota (at most ``2^i`` sets from level ``i``, at most ``k`` from the
cheapest level). If the guess cannot reach the (discounted) coverage target
``(1 - 1/e) * s_hat * n``, the budget grows by ``1 + b`` and the round
restarts. Theorem 4: at most ``5k`` sets, cost within
``(1 + b)(2 ceil(log2 k) + 1)`` of optimal, coverage at least
``(1 - 1/e) * s_hat * n``.

The per-level argmax uses a lazy heap (CELF-style): marginal benefits only
shrink, so a popped entry whose recorded size is still current is a true
maximum. Tie-breaking (larger benefit, then lower cost, then canonical
label key) is encoded directly in the heap entries and matches
:func:`repro.core.greedy_common.benefit_key`.
"""

from __future__ import annotations

import heapq
import math
import time
from typing import Callable, Literal

from repro._typing import Cost
from repro.core.budget import LevelScheme, budget_schedule, standard_levels
from repro.core.greedy_common import canonical_key
from repro.core.marginal import MarginalTracker
from repro.core.result import CoverResult, Metrics, make_result
from repro.core.setsystem import SetSystem
from repro.errors import InfeasibleError, ValidationError

OnInfeasible = Literal["raise", "partial"]

#: Fraction of the requested coverage CMC actually guarantees (Theorem 4).
COVERAGE_DISCOUNT = 1.0 - 1.0 / math.e

_EPS = 1e-9


def cmc(
    system: SetSystem,
    k: int,
    s_hat: float,
    b: float = 1.0,
    on_infeasible: OnInfeasible = "raise",
) -> CoverResult:
    """Run Cheap Max Coverage with the original (up to ``5k``) levels.

    Parameters
    ----------
    system:
        The weighted set system.
    k:
        Size constraint of the *optimal* solution being approximated; CMC
        itself may return up to ``5k`` sets.
    s_hat:
        Requested coverage fraction; the run targets
        ``(1 - 1/e) * s_hat * n`` elements, per Theorem 4.
    b:
        Budget growth factor (Fig. 1 line 28); trades solution cost for
        fewer budget rounds.
    on_infeasible:
        ``"raise"`` (default) raises :class:`InfeasibleError` if no budget
        reaches the target (only possible without a full-coverage set);
        ``"partial"`` returns the last round's sets with
        ``feasible=False``.
    """
    params = {"k": k, "s_hat": s_hat, "b": b, "variant": "standard"}
    return run_cmc_driver(
        system,
        k,
        s_hat,
        b,
        scheme_factory=standard_levels,
        algorithm="cmc",
        params=params,
        on_infeasible=on_infeasible,
    )


def run_cmc_driver(
    system: SetSystem,
    k: int,
    s_hat: float,
    b: float,
    scheme_factory: Callable[[Cost, int], LevelScheme],
    algorithm: str,
    params: dict,
    on_infeasible: OnInfeasible = "raise",
) -> CoverResult:
    """Shared CMC driver, parameterized by the level scheme.

    The ``(1 + eps) k`` and generalized variants reuse this loop with their
    own :func:`scheme_factory`; see :mod:`repro.core.cmc_epsilon`.
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    if not (0.0 <= s_hat <= 1.0):
        raise ValidationError(f"s_hat must be in [0, 1], got {s_hat}")
    start = time.perf_counter()
    metrics = Metrics()
    target = COVERAGE_DISCOUNT * s_hat * system.n_elements
    params = dict(params)
    params["target_elements"] = target

    initial = sum(system.cheapest_costs(k))
    ceiling = system.total_cost

    chosen: list[int] = []
    first_round = True
    for budget in budget_schedule(initial, b, ceiling):
        if first_round:
            first_round = False
        else:
            metrics.budget_rounds += 1
        # Fig. 1 lines 3-5: every round recomputes the marginal benefit of
        # every candidate set from scratch. (A shared tracker with
        # :meth:`MarginalTracker.reset` would amortize this, but the
        # unoptimized algorithm the paper measures does not.)
        tracker = MarginalTracker(system, metrics=metrics)
        scheme = scheme_factory(budget, k)
        chosen, reached = _run_round(system, tracker, scheme, target)
        if reached:
            metrics.runtime_seconds = time.perf_counter() - start
            params["final_budget"] = budget
            return make_result(
                algorithm=algorithm,
                chosen=chosen,
                labels=[system[set_id].label for set_id in chosen],
                total_cost=system.cost_of(chosen),
                covered=system.coverage_of(chosen),
                n_elements=system.n_elements,
                feasible=True,
                params=params,
                metrics=metrics,
            )

    metrics.runtime_seconds = time.perf_counter() - start
    partial = make_result(
        algorithm=algorithm,
        chosen=chosen,
        labels=[system[set_id].label for set_id in chosen],
        total_cost=system.cost_of(chosen),
        covered=system.coverage_of(chosen),
        n_elements=system.n_elements,
        feasible=False,
        params=params,
        metrics=metrics,
    )
    if on_infeasible == "partial":
        return partial
    raise InfeasibleError(
        f"{algorithm}: exhausted the budget schedule without covering "
        f"{target:.2f} elements (the set system lacks a usable "
        "full-coverage set)",
        partial=partial,
    )


def _run_round(
    system: SetSystem,
    tracker: MarginalTracker,
    scheme: LevelScheme,
    target: float,
) -> tuple[list[int], bool]:
    """One budget round: level-by-level quota-bounded greedy max coverage.

    Returns the selections of this round and whether the target was hit.
    """
    # Partition live sets into per-level lazy heaps. Heap entries are
    # (-|MBen|, cost, canonical_key, set_id): heapq pops the smallest
    # tuple, i.e. the largest benefit with ties to cheaper cost.
    heaps: list[list[tuple]] = [[] for _ in range(scheme.n_levels)]
    for set_id, size in tracker.live_items():
        ws = system[set_id]
        level = scheme.level_of(ws.cost)
        if level is None:
            continue
        heaps[level].append(
            (-size, ws.cost, canonical_key(ws.label, set_id), set_id)
        )
    for heap in heaps:
        heapq.heapify(heap)

    chosen: list[int] = []
    rem = target
    if rem <= _EPS:
        return chosen, True
    for level in range(scheme.n_levels):
        heap = heaps[level]
        quota = scheme.quotas[level]
        picked = 0
        while picked < quota and heap:
            neg_size, cost, canon, set_id = heapq.heappop(heap)
            current = tracker.marginal_size(set_id)
            if current == 0:
                continue
            if current != -neg_size:
                # Stale entry: re-insert with the up-to-date benefit.
                heapq.heappush(heap, (-current, cost, canon, set_id))
                continue
            newly = tracker.select(set_id)
            chosen.append(set_id)
            picked += 1
            rem -= newly
            if rem <= _EPS:
                return chosen, True
    return chosen, False
