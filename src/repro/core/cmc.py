"""Cheap Max Coverage (CMC) — Fig. 1 of the paper.

CMC guesses the optimal cost ``B``, partitions affordable sets into cost
levels, and runs the greedy maximum-coverage heuristic with a per-level
quota (at most ``2^i`` sets from level ``i``, at most ``k`` from the
cheapest level). If the guess cannot reach the (discounted) coverage target
``(1 - 1/e) * s_hat * n``, the budget grows by ``1 + b`` and the round
restarts. Theorem 4: at most ``5k`` sets, cost within
``(1 + b)(2 ceil(log2 k) + 1)`` of optimal, coverage at least
``(1 - 1/e) * s_hat * n``.

The per-level argmax uses a lazy heap (CELF-style): marginal benefits only
shrink, so a popped entry whose recorded size is still current is a true
maximum. Tie-breaking (larger benefit, then lower cost, then canonical
label key) is encoded directly in the heap entries and matches
:func:`repro.core.greedy_common.benefit_key`.
"""

from __future__ import annotations

import heapq
import math
import time
import weakref
from typing import Callable, Literal

from repro._typing import Cost
from repro.core.budget import LevelScheme, budget_schedule, standard_levels
from repro.core.greedy_common import canonical_keys
from repro.core.marginal import (
    TrackerBackend,
    make_tracker,
    resolve_backend,
)
from repro.core.result import CoverResult, Metrics, make_result
from repro.core.setsystem import SetSystem
from repro.errors import DeadlineExceeded, InfeasibleError, ValidationError
from repro.obs import trace as obs_trace
from repro.resilience import faults
from repro.resilience.deadline import Deadline

OnInfeasible = Literal["raise", "partial"]

#: Fraction of the requested coverage CMC actually guarantees (Theorem 4).
COVERAGE_DISCOUNT = 1.0 - 1.0 / math.e

_EPS = 1e-9


def cmc(
    system: SetSystem,
    k: int,
    s_hat: float,
    b: float = 1.0,
    on_infeasible: OnInfeasible = "raise",
    deadline: Deadline | None = None,
    backend: TrackerBackend | None = None,
    tracker=None,
) -> CoverResult:
    """Run Cheap Max Coverage with the original (up to ``5k``) levels.

    Parameters
    ----------
    system:
        The weighted set system.
    k:
        Size constraint of the *optimal* solution being approximated; CMC
        itself may return up to ``5k`` sets.
    s_hat:
        Requested coverage fraction; the run targets
        ``(1 - 1/e) * s_hat * n`` elements, per Theorem 4.
    b:
        Budget growth factor (Fig. 1 line 28); trades solution cost for
        fewer budget rounds.
    on_infeasible:
        ``"raise"`` (default) raises :class:`InfeasibleError` if no budget
        reaches the target (only possible without a full-coverage set);
        ``"partial"`` returns the last round's sets with
        ``feasible=False``.
    deadline:
        Optional cooperative deadline, polled per budget round and per
        heap pop; expiry raises :class:`~repro.errors.DeadlineExceeded`
        with the current round's partial selection attached.
    backend:
        Marginal-tracker backend (``"set"``, ``"bitset"``, ``"auto"``);
        defaults to the auto/env selection of
        :func:`repro.core.marginal.resolve_backend`. All backends
        select identical sets with identical metrics.
    tracker:
        Optional pre-built, resettable marginal tracker (overrides
        ``backend``); the universe-sharded pool injects its merged
        tracker here. Its metrics are adopted as the solve's metrics
        and it is reset at the start of every budget round.
    """
    params = {"k": k, "s_hat": s_hat, "b": b, "variant": "standard"}
    return run_cmc_driver(
        system,
        k,
        s_hat,
        b,
        scheme_factory=standard_levels,
        algorithm="cmc",
        params=params,
        on_infeasible=on_infeasible,
        deadline=deadline,
        backend=backend,
        tracker=tracker,
    )


def run_cmc_driver(
    system: SetSystem,
    k: int,
    s_hat: float,
    b: float,
    scheme_factory: Callable[[Cost, int], LevelScheme],
    algorithm: str,
    params: dict,
    on_infeasible: OnInfeasible = "raise",
    deadline: Deadline | None = None,
    backend: TrackerBackend | None = None,
    tracker=None,
) -> CoverResult:
    """Shared CMC driver, parameterized by the level scheme.

    The ``(1 + eps) k`` and generalized variants reuse this loop with their
    own :func:`scheme_factory`; see :mod:`repro.core.cmc_epsilon`.
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    if not (0.0 <= s_hat <= 1.0):
        raise ValidationError(f"s_hat must be in [0, 1], got {s_hat}")
    traced = obs_trace.enabled()
    with (
        obs_trace.span("solve", algorithm=algorithm, k=k, s_hat=s_hat, b=b)
        if traced
        else obs_trace.NULL_SPAN
    ) as solve_span:
        result = _driver_body(
            system,
            k,
            s_hat,
            b,
            scheme_factory,
            algorithm,
            params,
            on_infeasible,
            deadline,
            backend,
            traced,
            tracker,
        )
        if solve_span.enabled:
            solve_span.set(
                backend=result.params["tracker_backend"],
                budget_rounds=result.metrics.budget_rounds,
                n_sets=result.n_sets,
                total_cost=result.total_cost,
                covered=result.covered,
                feasible=result.feasible,
            )
        return result


def _driver_body(
    system: SetSystem,
    k: int,
    s_hat: float,
    b: float,
    scheme_factory: Callable[[Cost, int], LevelScheme],
    algorithm: str,
    params: dict,
    on_infeasible: OnInfeasible,
    deadline: Deadline | None,
    backend: TrackerBackend | None,
    traced: bool,
    shared_tracker=None,
) -> CoverResult:
    start = time.perf_counter()
    if shared_tracker is not None:
        metrics = shared_tracker.metrics
        tracker_backend = getattr(shared_tracker, "backend_name", "injected")
    else:
        metrics = Metrics()
        tracker_backend = resolve_backend(system, backend)
    target = COVERAGE_DISCOUNT * s_hat * system.n_elements
    params = dict(params)
    params["target_elements"] = target
    params["tracker_backend"] = tracker_backend

    initial = sum(system.cheapest_costs(k))
    ceiling = system.total_cost

    def _partial(chosen_now: list[int]) -> CoverResult:
        metrics.runtime_seconds = time.perf_counter() - start
        return make_result(
            algorithm=algorithm,
            chosen=chosen_now,
            labels=[system[set_id].label for set_id in chosen_now],
            total_cost=system.cost_of(chosen_now),
            covered=system.coverage_of(chosen_now),
            n_elements=system.n_elements,
            feasible=False,
            params=params,
            metrics=metrics,
        )

    chosen: list[int] = []
    first_round = True
    for budget in budget_schedule(initial, b, ceiling):
        if first_round:
            first_round = False
        else:
            metrics.budget_rounds += 1
        if deadline is not None and deadline.expired():
            raise DeadlineExceeded(
                f"{algorithm}: deadline expired after "
                f"{metrics.budget_rounds} budget round(s)",
                partial=_partial(chosen),
            )
        with (
            obs_trace.span(
                "budget_round",
                round=metrics.budget_rounds,
                budget=budget,
            )
            if traced
            else obs_trace.NULL_SPAN
        ) as round_span:
            # Fig. 1 lines 3-5: every round recomputes the marginal benefit
            # of every candidate set from scratch. (A shared tracker with
            # :meth:`MarginalTracker.reset` would amortize this, but the
            # unoptimized algorithm the paper measures does not. The bitset
            # backend keeps the per-round rebuild but reuses the cached
            # mask table, which is what makes restarts cheap.)
            with (
                obs_trace.span(
                    "preprocess", op="make_tracker", backend=tracker_backend
                )
                if traced
                else obs_trace.NULL_SPAN
            ):
                if shared_tracker is not None:
                    tracker = shared_tracker
                    # A freshly built tracker already counted this
                    # round's sets_considered in its constructor; only
                    # reset once it has actually been mutated.
                    if not getattr(tracker, "fresh", False):
                        tracker.reset()
                else:
                    tracker = make_tracker(
                        system, metrics=metrics, backend=tracker_backend
                    )
            scheme = scheme_factory(budget, k)
            try:
                chosen, reached = _run_round(
                    system, tracker, scheme, target, deadline, traced
                )
            except _RoundDeadline as signal:
                raise DeadlineExceeded(
                    f"{algorithm}: deadline expired mid-round at budget "
                    f"{budget:g}",
                    partial=_partial(signal.chosen),
                ) from None
            if round_span.enabled:
                round_span.set(selections=len(chosen), reached=reached)
        if reached:
            metrics.runtime_seconds = time.perf_counter() - start
            params["final_budget"] = budget
            return make_result(
                algorithm=algorithm,
                chosen=chosen,
                labels=[system[set_id].label for set_id in chosen],
                total_cost=system.cost_of(chosen),
                covered=system.coverage_of(chosen),
                n_elements=system.n_elements,
                feasible=True,
                params=params,
                metrics=metrics,
            )

    metrics.runtime_seconds = time.perf_counter() - start
    partial = make_result(
        algorithm=algorithm,
        chosen=chosen,
        labels=[system[set_id].label for set_id in chosen],
        total_cost=system.cost_of(chosen),
        covered=system.coverage_of(chosen),
        n_elements=system.n_elements,
        feasible=False,
        params=params,
        metrics=metrics,
    )
    if on_infeasible == "partial":
        return partial
    raise InfeasibleError(
        f"{algorithm}: exhausted the budget schedule without covering "
        f"{target:.2f} elements (the set system lacks a usable "
        "full-coverage set)",
        partial=partial,
    )


class _RoundDeadline(Exception):
    """Internal signal: the deadline expired inside a budget round."""

    def __init__(self, chosen: list[int]) -> None:
        self.chosen = chosen


#: Sorted heap entries per system (see :func:`_sorted_entries`).
_ENTRY_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _sorted_entries(system: SetSystem) -> list[tuple]:
    """Heap entries for every nonempty set, sorted ascending.

    Entries are ``(-|Ben|, cost, canonical_key, set_id)`` — exactly what
    :func:`_run_round` feeds its per-level lazy heaps. Every budget round
    needs the same entries (a fresh tracker's marginal sizes are the full
    benefit sizes), and building the canonical keys dominates round
    startup on large systems, so the list is built once per system.
    Filtering a sorted list by level keeps it sorted, and a sorted list
    is already a valid min-heap, so rounds also skip ``heapify``.
    """
    try:
        entries = _ENTRY_CACHE.get(system)
    except TypeError:  # unhashable/unweakrefable stand-in: build fresh
        entries = None
    if entries is not None:
        return entries
    keys = canonical_keys(system)
    entries = sorted(
        (-ws.size, ws.cost, keys[ws.set_id], ws.set_id)
        for ws in system.sets
        if ws.size
    )
    try:
        _ENTRY_CACHE[system] = entries
    except TypeError:  # pragma: no cover - stand-in objects only
        pass
    return entries


def _run_round(
    system: SetSystem,
    tracker,
    scheme: LevelScheme,
    target: float,
    deadline: Deadline | None = None,
    traced: bool = False,
) -> tuple[list[int], bool]:
    """One budget round: level-by-level quota-bounded greedy max coverage.

    Expects a *fresh, unrestricted* tracker (every live set at its full
    benefit size), which is what the driver builds each round. Returns
    the selections of this round and whether the target was hit. Raises
    :class:`_RoundDeadline` (carrying the round's selections so far)
    when the deadline expires mid-round.
    """
    if getattr(tracker, "best_benefit_in", None) is not None:
        return _run_round_vector(
            system, tracker, scheme, target, deadline, traced
        )
    # Partition live sets into per-level lazy heaps. Heap entries are
    # (-|MBen|, cost, canonical_key, set_id): heapq pops the smallest
    # tuple, i.e. the largest benefit with ties to cheaper cost. The
    # cached entries arrive sorted, so each filtered level list is
    # already a valid heap — no heapify.
    heaps: list[list[tuple]] = [[] for _ in range(scheme.n_levels)]
    level_of = scheme.level_of
    for entry in _sorted_entries(system):
        level = level_of(entry[1])
        if level is not None:
            heaps[level].append(entry)

    chosen: list[int] = []
    rem = target
    if rem <= _EPS:
        return chosen, True
    injector = faults.active()
    for level in range(scheme.n_levels):
        heap = heaps[level]
        quota = scheme.quotas[level]
        picked = 0
        while picked < quota and heap:
            if deadline is not None and deadline.poll():
                raise _RoundDeadline(chosen)
            neg_size, cost, canon, set_id = heapq.heappop(heap)
            current = tracker.marginal_size(set_id)
            if current == 0:
                continue
            if current != -neg_size:
                # Stale entry: re-insert with the up-to-date benefit.
                heapq.heappush(heap, (-current, cost, canon, set_id))
                continue
            if injector is not None:
                injector.iteration()
            with (
                obs_trace.span("select", level=level, set_id=set_id)
                if traced
                else obs_trace.NULL_SPAN
            ) as pick_span:
                newly = tracker.select(set_id)
                if pick_span.enabled:
                    pick_span.set(marginal_covered=newly)
            if injector is not None:
                newly = injector.corrupt_marginal(newly)
            chosen.append(set_id)
            picked += 1
            rem -= newly
            if rem <= _EPS:
                return chosen, True
    return chosen, False


def _run_round_vector(
    system: SetSystem,
    tracker,
    scheme: LevelScheme,
    target: float,
    deadline: Deadline | None = None,
    traced: bool = False,
) -> tuple[list[int], bool]:
    """One budget round on a vectorized tracker (packed or sharded).

    Replaces the lazy heaps with the tracker's
    ``best_benefit_in(member_ids)`` argmax, which reproduces
    :func:`repro.core.greedy_common.benefit_key` exactly (max current
    marginal, then min cost, then the canonical key) — the same winner
    the heap's pop-and-reinsert loop converges to — so selections and
    metrics are identical to the heap path.
    """
    import numpy as np  # tracker presence implies numpy is importable

    from repro.core.packed import assign_levels

    levels = assign_levels(tracker.costs, scheme)
    chosen: list[int] = []
    rem = target
    if rem <= _EPS:
        return chosen, True
    injector = faults.active()
    for level in range(scheme.n_levels):
        member_ids = np.nonzero(levels == level)[0]
        quota = scheme.quotas[level]
        picked = 0
        while picked < quota:
            if deadline is not None and deadline.poll():
                raise _RoundDeadline(chosen)
            set_id = tracker.best_benefit_in(member_ids)
            if set_id is None:
                break
            if injector is not None:
                injector.iteration()
            with (
                obs_trace.span("select", level=level, set_id=set_id)
                if traced
                else obs_trace.NULL_SPAN
            ) as pick_span:
                newly = tracker.select(set_id)
                if pick_span.enabled:
                    pick_span.set(marginal_covered=newly)
            if injector is not None:
                newly = injector.corrupt_marginal(newly)
            chosen.append(set_id)
            picked += 1
            rem -= newly
            if rem <= _EPS:
                return chosen, True
    return chosen, False
