"""Deterministic tie-breaking shared by every greedy selection step.

The paper notes (end of Section V-C1) that the optimized pattern algorithms
choose exactly the same sets as their unoptimized counterparts *provided
both break ties the same way*. We therefore centralize tie-breaking so the
equivalence is testable:

* benefit-greedy steps (CMC) order by larger ``|MBen|``, then smaller cost,
  then smaller canonical key;
* gain-greedy steps (CWSC, WSC, BMC) order by larger ``MGain``, then larger
  ``|MBen|``, then smaller cost, then smaller canonical key.

The canonical key of a set is ``(repr(label), set_id)`` so that systems
built from the same patterns in a different id order still tie-break
identically.
"""

from __future__ import annotations

import weakref
from typing import Callable, Hashable, Iterable, TypeVar

from repro._typing import Cost, SetId

K = TypeVar("K")


def canonical_key(label: Hashable, set_id: SetId) -> tuple:
    """Stable final tie-breaker for a candidate set.

    Labels exposing a ``sort_key()`` (patterns, or the raw value tuples
    the optimized algorithms use via
    :func:`repro.patterns.pattern.values_sort_key`) are ordered by it so
    that the optimized and unoptimized algorithms agree on ties; other
    labels fall back to ``repr``. Labels within one system must be
    homogeneous (all with ``sort_key`` or none).
    """
    sort_key = getattr(label, "sort_key", None)
    if sort_key is not None:
        return (sort_key(), set_id)
    return (repr(label), set_id)


#: Canonical keys per system: building one key calls ``sort_key()`` (or
#: ``repr``), which dominates argmax scans on large systems, yet the key
#: of a set never changes. Weak keys so a dropped system drops its keys.
_CANON_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def canonical_keys(system) -> tuple[tuple, ...]:
    """``canonical_keys(system)[set_id]`` — cached per-set tie-break keys.

    Equal to ``canonical_key(ws.label, ws.set_id)`` for every set of the
    system, computed once per system and shared by every solver run
    against it (CMC rebuilds its heaps each budget round; CWSC scans all
    candidates each pick).
    """
    try:
        keys = _CANON_CACHE.get(system)
    except TypeError:  # unhashable/unweakrefable stand-in: build fresh
        keys = None
    if keys is not None:
        return keys
    keys = tuple(
        canonical_key(ws.label, ws.set_id) for ws in system.sets
    )
    try:
        _CANON_CACHE[system] = keys
    except TypeError:  # pragma: no cover - stand-in objects only
        pass
    return keys


def argbest(
    candidates: Iterable[K],
    key: Callable[[K], tuple],
) -> K | None:
    """Return the candidate with the lexicographically largest key.

    ``None`` when ``candidates`` is empty. Keys must be built so that
    "better" compares greater; invert ascending criteria (cost, canonical
    key) by negating or nesting, as the helpers below do.
    """
    best: K | None = None
    best_key: tuple | None = None
    for candidate in candidates:
        candidate_key = key(candidate)
        if best_key is None or candidate_key > best_key:
            best = candidate
            best_key = candidate_key
    return best


class _Descending:
    """Wraps a value so that a *smaller* value compares as *better*.

    Python tuples compare lexicographically with ``>`` meaning better in
    :func:`argbest`, so ascending criteria are wrapped in this inverter.
    Works for any totally ordered payload (floats, strings, tuples).
    """

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def __lt__(self, other: "_Descending") -> bool:
        return self.value > other.value

    def __gt__(self, other: "_Descending") -> bool:
        return self.value < other.value

    def __eq__(self, other) -> bool:
        return isinstance(other, _Descending) and self.value == other.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_Descending({self.value!r})"


def benefit_key(
    mben_size: int,
    cost: Cost,
    label: Hashable,
    set_id: SetId,
    canon_key: tuple | None = None,
) -> tuple:
    """Ordering key for benefit-greedy steps (CMC, max coverage).

    Pass ``canon_key`` (from :func:`canonical_keys`) to skip recomputing
    the tie-breaker; it must equal ``canonical_key(label, set_id)``.
    """
    if canon_key is None:
        canon_key = canonical_key(label, set_id)
    return (
        mben_size,
        _Descending(cost),
        _Descending(canon_key),
    )


def gain_key(
    gain: float,
    mben_size: int,
    cost: Cost,
    label: Hashable,
    set_id: SetId,
    canon_key: tuple | None = None,
) -> tuple:
    """Ordering key for gain-greedy steps (CWSC, WSC, BMC).

    Pass ``canon_key`` (from :func:`canonical_keys`) to skip recomputing
    the tie-breaker; it must equal ``canonical_key(label, set_id)``.
    """
    if canon_key is None:
        canon_key = canonical_key(label, set_id)
    return (
        gain,
        mben_size,
        _Descending(cost),
        _Descending(canon_key),
    )
