"""Packed-bitset coverage kernel.

Every hot loop in this library — marginal-benefit updates, dominance
subset tests, coverage recomputation — reduces to operations on sets of
dense element ids. Python ``frozenset`` makes those loops pay per
*element*; this module packs an element set into an arbitrary-precision
``int`` bitmask (bit ``e`` set iff element ``e`` is in the set) so the
same operations run per *machine word* inside CPython's C core:

========================  =======================================
set operation             bitmask equivalent
========================  =======================================
``len(a)``                ``a.bit_count()``
``a <= b`` (subset)       ``a & ~b == 0``
``a | b``, ``a & b``      ``a | b``, ``a & b``
``a - covered``           ``a & ~covered``
``|Ben(s) \\ covered|``    ``(ben & ~covered).bit_count()``
========================  =======================================

The kernel has three layers:

* :class:`BitsetUniverse` — a fixed element universe ``[0, n)`` that
  packs/unpacks iterables to masks;
* :class:`Bitset` — an immutable, set-like view over one mask (the
  friendly API; the hot paths use raw ``int`` masks directly);
* :func:`mask_table` — a lazily-built, weakly-cached table of benefit
  masks for a :class:`~repro.core.setsystem.SetSystem`, shared by every
  solver run against that system (CMC rebuilds its tracker each budget
  round; the masks are built exactly once).

Nothing here imports :mod:`repro.core.setsystem` — the table builder
duck-types ``system.n_elements`` / ``system.sets`` — so the set system
itself can delegate :meth:`~repro.core.setsystem.SetSystem.coverage_of`
to this kernel without an import cycle.
"""

from __future__ import annotations

import weakref
from typing import Iterable, Iterator

from repro._typing import ElementId
from repro.errors import ValidationError

__all__ = [
    "Bitset",
    "BitsetUniverse",
    "MaskTable",
    "iter_bits",
    "mask_table",
    "owners_index",
    "pack_elements",
]


def pack_elements(n_elements: int, elements: Iterable[ElementId]) -> int:
    """Pack an iterable of element ids from ``[0, n)`` into a bitmask.

    Builds the mask through a ``bytearray`` so packing costs O(1) per
    element plus one ``int.from_bytes`` conversion, instead of one
    O(n/64) big-int shift per element.
    """
    buf = bytearray((n_elements + 7) >> 3)
    for element in elements:
        if not (0 <= element < n_elements):
            raise ValidationError(
                f"element {element!r} outside universe [0, {n_elements})"
            )
        buf[element >> 3] |= 1 << (element & 7)
    return int.from_bytes(buf, "little")


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class BitsetUniverse:
    """A fixed element universe ``[0, n)`` for packing and unpacking.

    The universe owns the conversion between element iterables and
    masks; :class:`Bitset` instances carry a reference back to it so
    they can refuse cross-universe operations.
    """

    __slots__ = ("n_elements", "full_mask", "__weakref__")

    def __init__(self, n_elements: int) -> None:
        if n_elements < 0:
            raise ValidationError(
                f"n_elements must be >= 0, got {n_elements}"
            )
        self.n_elements = n_elements
        self.full_mask = (1 << n_elements) - 1

    def pack(self, elements: Iterable[ElementId]) -> int:
        """Elements to a raw mask (validating against the universe)."""
        return pack_elements(self.n_elements, elements)

    def unpack(self, mask: int) -> frozenset[ElementId]:
        """A raw mask back to a ``frozenset`` of element ids."""
        return frozenset(iter_bits(mask))

    def bitset(self, elements: Iterable[ElementId] = ()) -> "Bitset":
        """A :class:`Bitset` over this universe from an iterable."""
        return Bitset(self, self.pack(elements))

    def from_mask(self, mask: int) -> "Bitset":
        """A :class:`Bitset` wrapping an existing raw mask."""
        if mask & ~self.full_mask:
            raise ValidationError(
                f"mask has bits outside universe [0, {self.n_elements})"
            )
        return Bitset(self, mask)

    def __repr__(self) -> str:
        return f"BitsetUniverse(n_elements={self.n_elements})"


class Bitset:
    """An immutable set of element ids backed by one packed mask.

    Supports the set operators the solvers need (``& | - <= ==``, len,
    iteration, membership). Operations across different universes raise
    :class:`~repro.errors.ValidationError` rather than silently mixing
    incompatible bit layouts.
    """

    __slots__ = ("universe", "mask")

    def __init__(self, universe: BitsetUniverse, mask: int) -> None:
        self.universe = universe
        self.mask = mask

    def _coerce(self, other: "Bitset") -> int:
        if not isinstance(other, Bitset):
            raise TypeError(
                f"expected a Bitset, got {type(other).__name__}"
            )
        if other.universe.n_elements != self.universe.n_elements:
            raise ValidationError(
                "cannot combine bitsets over different universes "
                f"({self.universe.n_elements} vs "
                f"{other.universe.n_elements} elements)"
            )
        return other.mask

    def __len__(self) -> int:
        return self.mask.bit_count()

    def __bool__(self) -> bool:
        return self.mask != 0

    def __contains__(self, element: ElementId) -> bool:
        return 0 <= element < self.universe.n_elements and bool(
            (self.mask >> element) & 1
        )

    def __iter__(self) -> Iterator[ElementId]:
        return iter_bits(self.mask)

    def __and__(self, other: "Bitset") -> "Bitset":
        return Bitset(self.universe, self.mask & self._coerce(other))

    def __or__(self, other: "Bitset") -> "Bitset":
        return Bitset(self.universe, self.mask | self._coerce(other))

    def __sub__(self, other: "Bitset") -> "Bitset":
        return Bitset(self.universe, self.mask & ~self._coerce(other))

    def __le__(self, other: "Bitset") -> bool:
        return self.mask & ~self._coerce(other) == 0

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Bitset)
            and other.universe.n_elements == self.universe.n_elements
            and other.mask == self.mask
        )

    def __hash__(self) -> int:
        return hash((self.universe.n_elements, self.mask))

    def issubset(self, other: "Bitset") -> bool:
        """Whether every element of this set is in ``other``."""
        return self <= other

    def isdisjoint(self, other: "Bitset") -> bool:
        """Whether the two sets share no element."""
        return self.mask & self._coerce(other) == 0

    def to_frozenset(self) -> frozenset[ElementId]:
        """Materialize the element ids as a ``frozenset``."""
        return self.universe.unpack(self.mask)

    def __repr__(self) -> str:
        return f"Bitset({sorted(iter_bits(self.mask))!r})"


class MaskTable:
    """Benefit masks for every set of one set system, in set-id order.

    Attributes
    ----------
    universe:
        The :class:`BitsetUniverse` of the system's elements.
    masks:
        ``masks[set_id]`` is the packed ``Ben(set_id)``.
    sizes:
        ``sizes[set_id] == masks[set_id].bit_count()``, precomputed
        because tracker resets need every cardinality anyway.
    """

    __slots__ = ("universe", "masks", "sizes", "_full_union")

    def __init__(
        self, universe: BitsetUniverse, masks: tuple[int, ...]
    ) -> None:
        self.universe = universe
        self.masks = masks
        self.sizes = tuple(mask.bit_count() for mask in masks)
        self._full_union: int | None = None

    def full_union(self) -> int:
        """Packed union of *every* set's benefit, computed once.

        Trackers use it as an exhaustion test: once the covered mask
        swallows this union, no set has any marginal benefit left.
        """
        union = self._full_union
        if union is None:
            union = self._full_union = self.union_mask(range(len(self.masks)))
        return union

    def union_mask(self, set_ids: Iterable[int]) -> int:
        """Packed union of the benefits of a collection of sets."""
        covered = 0
        masks = self.masks
        for set_id in set_ids:
            covered |= masks[set_id]
        return covered

    def coverage_of(self, set_ids: Iterable[int]) -> int:
        """``|union of benefits|`` for a collection of sets."""
        return self.union_mask(set_ids).bit_count()


#: One table per live SetSystem. Weak keys: dropping the system drops
#: its masks. Systems are immutable, so a cached table never goes stale.
_TABLE_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

#: element -> tuple of owning set ids, cached per system (see
#: :func:`owners_index`).
_OWNERS_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def mask_table(system) -> MaskTable:
    """The (cached) :class:`MaskTable` of a set system.

    Accepts any object with ``n_elements`` and ``sets`` (each set
    exposing ``benefit``); in practice a
    :class:`~repro.core.setsystem.SetSystem`. The first call packs every
    benefit set; later calls — including from other solvers, other
    budget rounds, or :meth:`SetSystem.coverage_of` — return the same
    table.
    """
    try:
        table = _TABLE_CACHE.get(system)
    except TypeError:  # unhashable/unweakrefable stand-in: build fresh
        table = None
    if table is not None:
        return table
    n = system.n_elements
    universe = BitsetUniverse(n)
    masks = tuple(pack_elements(n, ws.benefit) for ws in system.sets)
    table = MaskTable(universe, masks)
    try:
        _TABLE_CACHE[system] = table
    except TypeError:  # pragma: no cover - stand-in objects only
        pass
    return table


def owners_index(system) -> list[tuple[int, ...]]:
    """``owners_index(system)[e]`` — ids of the sets covering element ``e``.

    The inverted index the lazy-greedy trackers walk on every selection.
    The per-element tracker builds it once per *tracker* (CMC: once per
    budget round); this one is built once per *system* and shared, which
    is where the bitset backend's restart cheapness comes from.
    """
    try:
        owners = _OWNERS_CACHE.get(system)
    except TypeError:
        owners = None
    if owners is not None:
        return owners
    buckets: list[list[int]] = [[] for _ in range(system.n_elements)]
    for ws in system.sets:
        set_id = ws.set_id
        for element in ws.benefit:
            buckets[element].append(set_id)
    owners = [tuple(bucket) for bucket in buckets]
    try:
        _OWNERS_CACHE[system] = owners
    except TypeError:  # pragma: no cover - stand-in objects only
        pass
    return owners
