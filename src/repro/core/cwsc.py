"""Concise Weighted Set Cover (CWSC) — Fig. 2 of the paper.

CWSC adapts the partial weighted set cover heuristic (pick the set with the
highest marginal gain) to the size constraint: with ``i`` picks remaining
and ``rem`` elements still to cover, only sets whose marginal benefit is at
least ``rem / i`` are eligible. It therefore uses at most ``k`` sets and
always reaches the coverage target when it succeeds, but carries no cost
guarantee (Section V-B).
"""

from __future__ import annotations

import time
from typing import Literal

from repro.core.greedy_common import canonical_keys, gain_key
from repro.core.marginal import TrackerBackend, make_tracker, resolve_backend
from repro.core.result import CoverResult, Metrics, make_result
from repro.core.setsystem import SetSystem
from repro.errors import DeadlineExceeded, InfeasibleError, ValidationError
from repro.obs import trace as obs_trace
from repro.resilience import faults
from repro.resilience.deadline import Deadline

#: What to do when no set clears the ``rem / i`` threshold (Fig. 2 line 7).
#:
#: * ``"raise"`` — raise :class:`InfeasibleError` (the paper's
#:   ``return "No solution"``);
#: * ``"full_cover"`` — fall back to the cheapest set covering all of ``T``
#:   (the paper's "default solution with the set that contains all the
#:   elements"); raises if no such set exists;
#: * ``"partial"`` — return the infeasible partial solution with
#:   ``feasible=False``.
OnInfeasible = Literal["raise", "full_cover", "partial"]

#: Tolerance for float coverage arithmetic: ``rem`` starts at the real
#: number ``s_hat * n`` and is decremented by integers.
_EPS = 1e-9


def cwsc(
    system: SetSystem,
    k: int,
    s_hat: float,
    on_infeasible: OnInfeasible = "raise",
    deadline: Deadline | None = None,
    backend: TrackerBackend | None = None,
    tracker=None,
) -> CoverResult:
    """Run Concise Weighted Set Cover on an arbitrary set system.

    Parameters
    ----------
    system:
        The weighted set system.
    k:
        Maximum number of sets in the solution (``k >= 1``).
    s_hat:
        Required coverage fraction in ``[0, 1]``.
    on_infeasible:
        Fallback policy when the threshold selection fails; see
        :data:`OnInfeasible`.
    deadline:
        Optional cooperative deadline, polled once per pick and every few
        candidate scans; expiry raises
        :class:`~repro.errors.DeadlineExceeded` with the best partial
        result attached.
    backend:
        Marginal-tracker backend (``"set"``, ``"bitset"``, ``"auto"``);
        defaults to the auto/env selection of
        :func:`repro.core.marginal.resolve_backend`. All backends
        select identical sets with identical metrics.
    tracker:
        Optional pre-built marginal tracker (overrides ``backend``);
        the universe-sharded pool injects its merged tracker here. The
        tracker must be freshly reset and its metrics are adopted as
        the solve's metrics.

    Returns
    -------
    CoverResult
        Chosen sets in selection order, with metrics.

    Notes
    -----
    Ties on marginal gain are broken toward larger marginal benefit, then
    lower cost, then the canonical label key — identical to the optimized
    patterned variant, so the two select the same sets.
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    if not (0.0 <= s_hat <= 1.0):
        raise ValidationError(f"s_hat must be in [0, 1], got {s_hat}")
    # One enabled() check per solve; per-pick spans below are guarded by
    # this bool so the disabled path allocates nothing.
    traced = obs_trace.enabled()
    with (
        obs_trace.span("solve", algorithm="cwsc", k=k, s_hat=s_hat)
        if traced
        else obs_trace.NULL_SPAN
    ) as solve_span:
        result = _cwsc_body(
            system, k, s_hat, on_infeasible, deadline, backend, traced,
            tracker,
        )
        if solve_span.enabled:
            solve_span.set(
                backend=result.params["tracker_backend"],
                n_sets=result.n_sets,
                total_cost=result.total_cost,
                covered=result.covered,
                feasible=result.feasible,
            )
        return result


def _cwsc_body(
    system: SetSystem,
    k: int,
    s_hat: float,
    on_infeasible: OnInfeasible,
    deadline: Deadline | None,
    backend: TrackerBackend | None,
    traced: bool,
    tracker=None,
) -> CoverResult:
    start = time.perf_counter()
    if tracker is not None:
        metrics = tracker.metrics
        tracker_backend = getattr(tracker, "backend_name", "injected")
    else:
        metrics = Metrics()
        tracker_backend = resolve_backend(system, backend)
    params = {
        "k": k,
        "s_hat": s_hat,
        "on_infeasible": on_infeasible,
        "tracker_backend": tracker_backend,
    }

    if tracker is None:
        with (
            obs_trace.span(
                "preprocess", op="make_tracker", backend=tracker_backend
            )
            if traced
            else obs_trace.NULL_SPAN
        ):
            tracker = make_tracker(
                system, metrics=metrics, backend=tracker_backend
            )
    rem = s_hat * system.n_elements
    chosen: list[int] = []
    # Per-iteration diagnostics (Fig. 2's loop state), recorded in
    # params["trace"]: remaining picks, remaining coverage, threshold,
    # the chosen set and its marginal benefit.
    trace: list[dict] = []
    params["trace"] = trace

    if rem <= _EPS:
        return _finish(system, "cwsc", chosen, True, params, metrics, start)

    injector = faults.active()
    # Vectorized trackers (packed, sharded) expose an argmax that
    # reproduces gain_key's lexicographic order exactly; the Python scan
    # below is the reference path for the dict-based backends.
    fast_argmax = getattr(tracker, "best_gain_candidate", None)
    canon_keys = canonical_keys(system) if fast_argmax is None else None
    for i in range(k, 0, -1):
        if deadline is not None and deadline.expired():
            raise DeadlineExceeded(
                f"cwsc: deadline expired after {len(chosen)} of {k} picks",
                partial=_finish(
                    system, "cwsc", chosen, False, params, metrics, start
                ),
            )
        if injector is not None:
            injector.iteration()
        threshold = rem / i - _EPS
        with (
            obs_trace.span("select", picks_left=i, threshold=rem / i)
            if traced
            else obs_trace.NULL_SPAN
        ) as pick_span:
            if deadline is not None and fast_argmax is not None and deadline.poll():
                raise DeadlineExceeded(
                    f"cwsc: deadline expired scanning candidates for pick "
                    f"{len(chosen) + 1}",
                    partial=_finish(
                        system, "cwsc", chosen, False, params, metrics, start
                    ),
                )
            if fast_argmax is not None:
                best_id = fast_argmax(threshold)
            else:
                best_id = _scan_candidates(
                    system, tracker, threshold, canon_keys, deadline,
                    lambda: _finish(
                        system, "cwsc", chosen, False, params, metrics, start
                    ),
                    len(chosen),
                )
            if best_id is None:
                return _bail(
                    system,
                    "cwsc",
                    chosen,
                    rem,
                    on_infeasible,
                    params,
                    metrics,
                    start,
                )
            newly = tracker.select(best_id)
            if pick_span.enabled:
                pick_span.set(set_id=best_id, marginal_covered=newly)
        if injector is not None:
            newly = injector.corrupt_marginal(newly)
        trace.append(
            {
                "picks_left": i,
                "rem_before": rem,
                "threshold": rem / i,
                "set_id": best_id,
                "marginal_covered": newly,
            }
        )
        chosen.append(best_id)
        rem -= newly
        if rem <= _EPS:
            return _finish(system, "cwsc", chosen, True, params, metrics, start)
    # All k picks used without reaching the target. Unreachable in theory
    # (each pick covers >= rem/i, so k picks cover everything), kept as a
    # guard against float corner cases.
    return _bail(
        system, "cwsc", chosen, rem, on_infeasible, params, metrics, start
    )  # pragma: no cover


def _scan_candidates(
    system: SetSystem,
    tracker,
    threshold: float,
    canon_keys,
    deadline: Deadline | None,
    make_partial,
    picks_done: int,
):
    """Reference argmax: scan live candidates for the best gain key."""
    best_id = None
    best_key = None
    sets = system.sets
    for set_id, size in tracker.live_items():
        if deadline is not None and deadline.poll():
            raise DeadlineExceeded(
                f"cwsc: deadline expired scanning candidates for pick "
                f"{picks_done + 1}",
                partial=make_partial(),
            )
        if size < threshold:
            continue
        ws = sets[set_id]
        cost = ws.cost
        # MGain(s, S) = |MBen| / cost, inlined (live sets have
        # size > 0, so a zero cost means infinite gain).
        gain = size / cost if cost else float("inf")
        if best_key is not None and gain < best_key[0]:
            # gain is the leading key component; a strictly smaller
            # gain can never win the lexicographic comparison, so
            # skip building the full key.
            continue
        key = gain_key(
            gain,
            size,
            cost,
            ws.label,
            set_id,
            canon_key=canon_keys[set_id],
        )
        if best_key is None or key > best_key:
            best_id = set_id
            best_key = key
    return best_id


def _finish(
    system: SetSystem,
    algorithm: str,
    chosen: list[int],
    feasible: bool,
    params: dict,
    metrics: Metrics,
    start: float,
) -> CoverResult:
    metrics.runtime_seconds = time.perf_counter() - start
    return make_result(
        algorithm=algorithm,
        chosen=chosen,
        labels=[system[set_id].label for set_id in chosen],
        total_cost=system.cost_of(chosen),
        covered=system.coverage_of(chosen),
        n_elements=system.n_elements,
        feasible=feasible,
        params=params,
        metrics=metrics,
    )


def _bail(
    system: SetSystem,
    algorithm: str,
    chosen: list[int],
    rem: float,
    on_infeasible: OnInfeasible,
    params: dict,
    metrics: Metrics,
    start: float,
) -> CoverResult:
    """Apply the infeasibility policy after a failed threshold selection."""
    if on_infeasible == "partial":
        return _finish(system, algorithm, chosen, False, params, metrics, start)
    if on_infeasible == "full_cover":
        full = [
            ws for ws in system.sets if ws.size == system.n_elements
        ]
        if full:
            cheapest = min(full, key=lambda ws: (ws.cost, ws.set_id))
            return _finish(
                system, algorithm, [cheapest.set_id], True, params, metrics, start
            )
        # fall through to raising: no default solution exists
    partial = _finish(system, algorithm, chosen, False, params, metrics, start)
    raise InfeasibleError(
        f"{algorithm}: no candidate set covers the required {rem:.3f} "
        "remaining elements per remaining pick",
        partial=partial,
    )
