"""Core size-constrained weighted set cover algorithms (paper Sections II-V).

Public surface:

* :class:`SetSystem` / :class:`WeightedSet` — the problem input.
* :func:`cwsc` — Concise Weighted Set Cover (Fig. 2), at most ``k`` sets.
* :func:`cmc` — Cheap Max Coverage (Fig. 1), at most ``5k`` sets.
* :func:`cmc_epsilon` / :func:`cmc_generalized` — Section V-A variants.
* :func:`solve_exact` / :func:`brute_force` — exact optimum (Section VI-D).
* :func:`lp_lower_bound` — LP-relaxation cost lower bound.
* :mod:`repro.core.guarantees` — Theorem 4/5 bound formulas.
* :func:`universal_result` / :func:`greedy_partial` — last-resort
  fallbacks used by :func:`repro.resilience.resilient_solve`.

Every solver accepts an optional ``deadline``
(:class:`repro.resilience.Deadline`) and raises
:class:`~repro.errors.DeadlineExceeded` with a best-so-far partial when
it expires.
"""

from repro.core.bitset import Bitset, BitsetUniverse, mask_table
from repro.core.budget import (
    LevelScheme,
    budget_schedule,
    generalized_levels,
    merged_levels,
    standard_levels,
)
from repro.core.cmc import COVERAGE_DISCOUNT, cmc
from repro.core.cmc_epsilon import cmc_epsilon, cmc_generalized
from repro.core.cwsc import cwsc
from repro.core.exact import brute_force, solve_exact
from repro.core.fallbacks import greedy_partial, universal_result
from repro.core.lp_bound import LPRelaxation, lp_lower_bound, solve_lp_relaxation
from repro.core.lp_rounding import lp_rounding
from repro.core.marginal import (
    BitsetMarginalTracker,
    MarginalTracker,
    make_tracker,
    resolve_backend,
)
from repro.core.postprocess import prune_redundant
from repro.core.preprocess import remove_dominated, restrict_to_budget
from repro.core.validate import verify_result
from repro.core.result import CoverResult, Metrics, result_from_dict
from repro.core.setsystem import SetSystem, WeightedSet

__all__ = [
    "COVERAGE_DISCOUNT",
    "Bitset",
    "BitsetMarginalTracker",
    "BitsetUniverse",
    "CoverResult",
    "LPRelaxation",
    "LevelScheme",
    "MarginalTracker",
    "Metrics",
    "SetSystem",
    "WeightedSet",
    "brute_force",
    "budget_schedule",
    "cmc",
    "cmc_epsilon",
    "cmc_generalized",
    "cwsc",
    "generalized_levels",
    "greedy_partial",
    "lp_lower_bound",
    "lp_rounding",
    "make_tracker",
    "mask_table",
    "merged_levels",
    "prune_redundant",
    "remove_dominated",
    "resolve_backend",
    "restrict_to_budget",
    "result_from_dict",
    "solve_exact",
    "solve_lp_relaxation",
    "standard_levels",
    "universal_result",
    "verify_result",
]
