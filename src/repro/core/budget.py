"""CMC budget schedule and cost-level partitioning.

CMC "guesses" the optimal total cost ``B``: it starts at the sum of the
``k`` cheapest set costs (Fig. 1 line 1), and whenever the current guess
cannot reach the coverage target it multiplies ``B`` by ``1 + b`` (line 28)
until ``B`` exceeds the total cost of all sets (line 29). For a guess ``B``,
sets are partitioned into levels by cost:

* level ``i`` (``1 <= i <= floor(log2 k)``) holds costs in
  ``(B / 2^i, B / 2^(i-1)]`` and contributes at most ``2^i`` sets;
* a bridging level covers ``(B / k, B / 2^floor(log2 k)]`` when ``k`` is
  not a power of two;
* the last level holds costs in ``(0, B / k]`` and contributes at most
  ``k`` sets;
* sets costing more than ``B`` are out of play for this guess.

The ``(1 + eps) k`` variant (Section V-A3) merges the tail: it keeps level
``i`` (quota ``2^i``) only while ``eps * k >= 2^(i+1) - 2`` and folds
everything cheaper into one final level with quota ``k``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro._typing import Cost
from repro.errors import ValidationError


def budget_schedule(
    initial: Cost, growth: float, ceiling: Cost
) -> Iterator[Cost]:
    """Yield budget guesses ``B, B(1+b), B(1+b)^2, ...``.

    The schedule always yields at least one value, stops after the first
    value strictly greater than ``ceiling`` has been *excluded* — i.e. the
    last yielded guess is the first one ``>= ceiling`` — so a final guess
    can afford every set. A zero ``initial`` (all of the k cheapest sets
    are free) is bumped to 1.0 so the geometric growth can make progress.

    Parameters
    ----------
    initial:
        First guess; the cost of the ``k`` cheapest sets.
    growth:
        The paper's ``b`` parameter; must be positive.
    ceiling:
        Total cost of all sets (or of the all-wildcards pattern for the
        optimized variant). Guesses beyond the first one at or above this
        are pointless: every set is already affordable.
    """
    if growth <= 0:
        raise ValidationError(f"budget growth factor b must be > 0, got {growth}")
    if initial < 0 or ceiling < 0:
        raise ValidationError("budgets must be non-negative")
    budget = initial if initial > 0 else 1.0
    while True:
        yield budget
        if budget >= ceiling:
            return
        budget *= 1.0 + growth


@dataclass(frozen=True)
class LevelScheme:
    """Cost levels for one budget guess.

    Attributes
    ----------
    budget:
        The guess ``B`` this scheme was built for.
    lower_bounds:
        Exclusive lower cost bound per level, descending; entry ``i``
        pairs with quota ``quotas[i]``. The last entry is ``0.0``.
    upper_bounds:
        Inclusive upper cost bound per level, descending. The first entry
        is ``B``.
    quotas:
        Maximum number of sets that may be chosen from each level.
    """

    budget: Cost
    lower_bounds: tuple[float, ...]
    upper_bounds: tuple[float, ...]
    quotas: tuple[int, ...]

    @property
    def n_levels(self) -> int:
        return len(self.quotas)

    def level_of(self, cost: Cost) -> int | None:
        """Level index for a cost, or ``None`` if the set is unaffordable.

        Zero-cost sets always land in the last (cheapest) level.
        """
        if cost > self.budget:
            return None
        if cost <= self.lower_bounds[-1]:  # only possible when cost == 0
            return self.n_levels - 1
        for i in range(self.n_levels):
            if self.lower_bounds[i] < cost <= self.upper_bounds[i]:
                return i
        return None  # pragma: no cover - bounds are contiguous

    def max_selections(self) -> int:
        """Total number of sets selectable under this scheme."""
        return sum(self.quotas)


def standard_levels(budget: Cost, k: int) -> LevelScheme:
    """Level scheme of the original CMC (Fig. 1 lines 7–15).

    Guarantees at most ``k + sum(2^i) <= 5k - 2`` selections (Theorem 4).
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    if budget < 0:
        raise ValidationError(f"budget must be >= 0, got {budget}")
    lower: list[float] = []
    upper: list[float] = []
    quotas: list[int] = []
    n_doubling = int(math.floor(math.log2(k))) if k > 1 else 0
    previous_upper = float(budget)
    for i in range(1, n_doubling + 1):
        lo = budget / (2.0**i)
        lower.append(lo)
        upper.append(previous_upper)
        quotas.append(2**i)
        previous_upper = lo
    bridge_lo = budget / k
    if bridge_lo < previous_upper:
        # Bridging level for non-power-of-two k (Fig. 1 line 9).
        lower.append(bridge_lo)
        upper.append(previous_upper)
        quotas.append(2 ** (n_doubling + 1) if k > 1 else 1)
        previous_upper = bridge_lo
    lower.append(0.0)
    upper.append(previous_upper)
    quotas.append(k)
    return LevelScheme(
        budget=budget,
        lower_bounds=tuple(lower),
        upper_bounds=tuple(upper),
        quotas=tuple(quotas),
    )


def merged_levels(budget: Cost, k: int, eps: float) -> LevelScheme:
    """Level scheme of the ``(1 + eps) k`` CMC variant (Section V-A3).

    Keeps doubling levels while ``eps * k >= 2^(i+1) - 2`` and folds the
    remainder into a single quota-``k`` level, so at most
    ``k + (2^(j+1) - 2) <= (1 + eps) k`` sets are ever selected.
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    if eps <= 0:
        raise ValidationError(f"eps must be > 0, got {eps}")
    if budget < 0:
        raise ValidationError(f"budget must be >= 0, got {budget}")
    lower: list[float] = []
    upper: list[float] = []
    quotas: list[int] = []
    previous_upper = float(budget)
    i = 1
    while eps * k >= 2 ** (i + 1) - 2:
        lo = budget / (2.0**i)
        lower.append(lo)
        upper.append(previous_upper)
        quotas.append(2**i)
        previous_upper = lo
        i += 1
    lower.append(0.0)
    upper.append(previous_upper)
    quotas.append(k)
    return LevelScheme(
        budget=budget,
        lower_bounds=tuple(lower),
        upper_bounds=tuple(upper),
        quotas=tuple(quotas),
    )


def generalized_levels(budget: Cost, k: int, base: float) -> LevelScheme:
    """Level scheme with geometric base ``1 + l`` (Section V-A2).

    The paper's generalized CMC uses level boundaries ``B / (1+l)^i`` with
    quota ``(1+l)^i`` (rounded up) per level; ``base = 1 + l``. ``base = 2``
    recovers :func:`standard_levels` boundaries.
    """
    if base <= 1:
        raise ValidationError(f"level base 1 + l must be > 1, got {base}")
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    lower: list[float] = []
    upper: list[float] = []
    quotas: list[int] = []
    previous_upper = float(budget)
    i = 1
    while base**i < k:
        lo = budget / (base**i)
        lower.append(lo)
        upper.append(previous_upper)
        quotas.append(math.ceil(base**i))
        previous_upper = lo
        i += 1
    bridge_lo = budget / k
    if bridge_lo < previous_upper:
        lower.append(bridge_lo)
        upper.append(previous_upper)
        quotas.append(math.ceil(base**i))
        previous_upper = bridge_lo
    lower.append(0.0)
    upper.append(previous_upper)
    quotas.append(k)
    return LevelScheme(
        budget=budget,
        lower_bounds=tuple(lower),
        upper_bounds=tuple(upper),
        quotas=tuple(quotas),
    )
