"""Closed-form statements of the paper's approximation guarantees.

These mirror Theorems 4 and 5 so tests and benchmarks can assert that each
run stays inside its proven envelope:

* Theorem 4 (standard CMC): at most ``5k`` sets (more precisely the sum of
  the level quotas, ``<= 5k - 2``), total cost at most
  ``(1 + b)(2 ceil(log2 k) + 1)`` times optimal, coverage at least
  ``(1 - 1/e) * s_hat * n``.
* Theorem 5 (``(1 + eps) k`` CMC): at most ``(1 + eps) k`` sets, cost
  at most ``(1 + b)(2 j + k / 2^j)`` times optimal where ``j`` is the
  number of doubling levels kept, coverage as above.
"""

from __future__ import annotations

import math

from repro.core.budget import merged_levels, standard_levels
from repro.core.cmc import COVERAGE_DISCOUNT
from repro.core.result import CoverResult
from repro.errors import ValidationError


def max_sets_standard(k: int) -> int:
    """Largest solution the standard CMC can return (``<= 5k - 2``)."""
    return standard_levels(1.0, k).max_selections()


def max_sets_epsilon(k: int, eps: float) -> int:
    """Largest solution the ``(1 + eps) k`` CMC can return."""
    return merged_levels(1.0, k, eps).max_selections()


def cost_factor_standard(k: int, b: float) -> float:
    """Theorem 4 cost multiplier: ``(1 + b)(2 ceil(log2 k) + 1)``."""
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    if b <= 0:
        raise ValidationError(f"b must be > 0, got {b}")
    return (1.0 + b) * (2 * math.ceil(math.log2(k)) + 1 if k > 1 else 1)


def cost_factor_epsilon(k: int, b: float, eps: float) -> float:
    """Theorem 5 cost multiplier: ``(1 + b)(2 j + k / 2^j)``.

    ``j`` is the number of doubling levels kept by the merged scheme, i.e.
    the largest ``j`` with ``2^(j+1) - 2 <= eps * k`` (possibly 0).
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    if b <= 0 or eps <= 0:
        raise ValidationError("b and eps must be > 0")
    j = merged_levels(1.0, k, eps).n_levels - 1
    return (1.0 + b) * (2.0 * j + k / (2.0**j))


def guaranteed_coverage(s_hat: float, n_elements: int) -> float:
    """Coverage floor of any feasible CMC run: ``(1 - 1/e) s_hat n``."""
    return COVERAGE_DISCOUNT * s_hat * n_elements


def within_theorem4(
    result: CoverResult, opt_cost: float, k: int, b: float, s_hat: float
) -> bool:
    """Check a standard CMC result against every Theorem 4 bound."""
    if not result.feasible:
        return False
    size_ok = result.n_sets <= max_sets_standard(k)
    coverage_ok = (
        result.covered >= guaranteed_coverage(s_hat, result.n_elements) - 1e-9
    )
    cost_ok = (
        opt_cost == 0
        and result.total_cost == 0
        or result.total_cost <= cost_factor_standard(k, b) * opt_cost + 1e-9
    )
    return size_ok and coverage_ok and cost_ok


def within_theorem5(
    result: CoverResult,
    opt_cost: float,
    k: int,
    b: float,
    eps: float,
    s_hat: float,
) -> bool:
    """Check an ``(1 + eps) k`` CMC result against every Theorem 5 bound."""
    if not result.feasible:
        return False
    size_ok = result.n_sets <= math.floor((1 + eps) * k + 1e-9)
    coverage_ok = (
        result.covered >= guaranteed_coverage(s_hat, result.n_elements) - 1e-9
    )
    cost_ok = (
        opt_cost == 0
        and result.total_cost == 0
        or result.total_cost <= cost_factor_epsilon(k, b, eps) * opt_cost + 1e-9
    )
    return size_ok and coverage_ok and cost_ok
