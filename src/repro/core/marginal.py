"""Marginal-benefit bookkeeping shared by the greedy algorithms.

The paper's algorithms repeatedly need, for every remaining candidate set
``s``, the marginal benefit ``MBen(s, S)`` — the elements of ``Ben(s)`` not
yet covered by the partial solution ``S``. A naive implementation recomputes
``Ben(s) \\ covered`` for every set after every selection (the loops in
Fig. 1 lines 24–27 and Fig. 2 lines 12–15). This tracker instead keeps a
static inverted index ``element -> sets containing it`` and per-set marginal
*counts*, so selecting a set only touches the sets that actually intersect
it — the standard lazy implementation of greedy set cover.

CMC restarts from scratch for every budget guess ``B``; :meth:`reset`
supports that without rebuilding the inverted index.
"""

from __future__ import annotations

from typing import Iterable

from repro._typing import ElementId, SetId
from repro.core.result import Metrics
from repro.core.setsystem import SetSystem


class MarginalTracker:
    """Tracks ``|MBen(s, S)|`` for every live candidate set.

    Parameters
    ----------
    system:
        The set system whose candidates are tracked.
    restrict_to:
        Optional subset of set ids to track; defaults to all sets.
    metrics:
        Optional shared :class:`Metrics` to account work into.

    Notes
    -----
    Sets whose marginal benefit drops to zero are evicted automatically,
    matching Fig. 1 lines 26–27 / Fig. 2 lines 14–15. Empty sets are never
    live.
    """

    def __init__(
        self,
        system: SetSystem,
        restrict_to: Iterable[SetId] | None = None,
        metrics: Metrics | None = None,
    ) -> None:
        self._system = system
        self._metrics = metrics if metrics is not None else Metrics()
        ids = range(system.n_sets) if restrict_to is None else list(restrict_to)
        self._tracked: list[SetId] = [
            set_id for set_id in ids if system[set_id].benefit
        ]
        # Static structures, shared across reset() rounds.
        self._element_to_sets: dict[ElementId, tuple[SetId, ...]] = {}
        owners: dict[ElementId, list[SetId]] = {}
        for set_id in self._tracked:
            for element in system[set_id].benefit:
                owners.setdefault(element, []).append(set_id)
        self._element_to_sets = {
            element: tuple(ids) for element, ids in owners.items()
        }
        # Mutable per-round state.
        self._mben_count: dict[SetId, int] = {}
        self._covered: set[ElementId] = set()
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Restore the empty-solution state (new CMC budget round).

        Counts every live set as considered again, matching the paper's
        note that CMC's "patterns considered" sums over budget rounds.
        """
        self._mben_count = {
            set_id: self._system[set_id].size for set_id in self._tracked
        }
        self._covered = set()
        self._metrics.sets_considered += len(self._tracked)

    # ------------------------------------------------------------------
    @property
    def metrics(self) -> Metrics:
        """The metrics object this tracker accounts work into."""
        return self._metrics

    @property
    def covered(self) -> frozenset[ElementId]:
        """Elements covered by all selections so far this round."""
        return frozenset(self._covered)

    @property
    def covered_count(self) -> int:
        """``|covered|`` without copying."""
        return len(self._covered)

    @property
    def live_ids(self) -> list[SetId]:
        """Ids of sets with non-empty marginal benefit, ascending."""
        return sorted(self._mben_count)

    def live_items(self) -> list[tuple[SetId, int]]:
        """``(set_id, |MBen|)`` pairs for all live sets, unordered."""
        return list(self._mben_count.items())

    def __contains__(self, set_id: SetId) -> bool:
        return set_id in self._mben_count

    def __len__(self) -> int:
        return len(self._mben_count)

    def marginal_size(self, set_id: SetId) -> int:
        """``|MBen(s, S)|`` for a live set; 0 for an evicted one."""
        return self._mben_count.get(set_id, 0)

    def marginal_benefit(self, set_id: SetId) -> frozenset[ElementId]:
        """A snapshot of ``MBen(s, S)``, materialized on demand."""
        if set_id not in self._mben_count:
            return frozenset()
        return frozenset(
            self._system[set_id].benefit - self._covered
        )

    def marginal_gain(self, set_id: SetId) -> float:
        """``MGain(s, S) = |MBen(s, S)| / Cost(s)``."""
        size = self.marginal_size(set_id)
        cost = self._system[set_id].cost
        if cost == 0:
            return float("inf") if size else 0.0
        return size / cost

    def drop(self, set_id: SetId) -> None:
        """Remove a set from consideration without selecting it."""
        self._mben_count.pop(set_id, None)

    def select(self, set_id: SetId) -> int:
        """Mark a set as chosen; returns the number of newly covered elements.

        Decrements the marginal count of every intersecting candidate and
        evicts candidates whose marginal benefit becomes empty.
        """
        self._mben_count.pop(set_id, None)
        self._metrics.selections += 1
        newly = [
            element
            for element in self._system[set_id].benefit
            if element not in self._covered
        ]
        counts = self._mben_count
        for element in newly:
            self._covered.add(element)
            for other in self._element_to_sets.get(element, ()):
                remaining = counts.get(other)
                if remaining is None:
                    continue
                self._metrics.marginal_updates += 1
                if remaining == 1:
                    del counts[other]
                else:
                    counts[other] = remaining - 1
        return len(newly)
