"""Marginal-benefit bookkeeping shared by the greedy algorithms.

The paper's algorithms repeatedly need, for every remaining candidate set
``s``, the marginal benefit ``MBen(s, S)`` — the elements of ``Ben(s)`` not
yet covered by the partial solution ``S``. A naive implementation recomputes
``Ben(s) \\ covered`` for every set after every selection (the loops in
Fig. 1 lines 24–27 and Fig. 2 lines 12–15).

Three interchangeable trackers implement the bookkeeping:

* :class:`MarginalTracker` — a static inverted index ``element -> sets
  containing it`` plus per-set marginal *counts*, so selecting a set only
  touches the sets that actually intersect it (the standard lazy
  implementation of greedy set cover). Cheapest on small instances.
* :class:`BitsetMarginalTracker` — the packed-bitset kernel
  (:mod:`repro.core.bitset`): benefits live as int bitmasks, selection
  updates are word-wide AND/popcount sweeps, and the mask table is cached
  per system so CMC's per-budget-round rebuilds cost a handful of
  popcounts instead of an O(sum |Ben|) index rebuild. Wins by a wide
  margin on figure-scale instances.
* :class:`~repro.core.packed.PackedMarginalTracker` — the columnar
  numpy kernel (:mod:`repro.core.packed`): benefits live in a
  ``(n_sets, ceil(n/64))`` ``uint64`` matrix (dense or CSR-blocked by
  density), selection updates are vectorized gather/AND/popcount
  passes with no per-set Python, and the solvers use its vectorized
  argmax helpers instead of scanning ``live_items()``. Wins once the
  universe passes ~10^4 elements; requires numpy >= 2.0.

All three produce **identical selections and identical metrics
counters** — property-tested in ``tests/property/test_props_bitset.py``
— so :func:`make_tracker` is free to pick by instance size
(overridable via its ``backend`` argument or the
``REPRO_SETCOVER_BACKEND`` environment variable; see
docs/PERFORMANCE.md).

CMC restarts from scratch for every budget guess ``B``; :meth:`reset`
supports that without rebuilding the static structures.
"""

from __future__ import annotations

import os
from typing import Iterable, Literal

from repro._typing import ElementId, SetId
from repro.core.bitset import iter_bits, mask_table, owners_index
from repro.core.result import Metrics
from repro.core.setsystem import SetSystem
from repro.errors import ValidationError
from repro.obs import trace as obs_trace

TrackerBackend = Literal["auto", "set", "bitset", "packed"]

#: Backend names accepted by :func:`resolve_backend`.
KNOWN_BACKENDS = ("auto", "set", "bitset", "packed")

#: Environment override for the default tracker backend.
BACKEND_ENV_VAR = "REPRO_SETCOVER_BACKEND"

#: ``auto`` switches away from the inverted index once
#: ``n_elements * n_sets`` reaches this many cells — below it the
#: per-element dict index has less constant overhead, above it packed
#: kernels dominate.
AUTO_BITSET_MIN_CELLS = 1 << 16

#: ``auto`` prefers the columnar packed kernel (when numpy is present
#: and memory allows) from this many cells — around the scale where the
#: bitset kernel's per-set Python loops become the bottleneck.
AUTO_PACKED_MIN_CELLS = 1 << 24

#: ``auto`` only picks ``packed`` when the estimated layout footprint
#: stays below this fraction of ``MemAvailable``.
AUTO_PACKED_MEM_FRACTION = 0.5


class MarginalTracker:
    """Tracks ``|MBen(s, S)|`` for every live candidate set.

    Parameters
    ----------
    system:
        The set system whose candidates are tracked.
    restrict_to:
        Optional subset of set ids to track; defaults to all sets.
    metrics:
        Optional shared :class:`Metrics` to account work into.

    Notes
    -----
    Sets whose marginal benefit drops to zero are evicted automatically,
    matching Fig. 1 lines 26–27 / Fig. 2 lines 14–15. Empty sets are never
    live.
    """

    backend_name = "set"

    def __init__(
        self,
        system: SetSystem,
        restrict_to: Iterable[SetId] | None = None,
        metrics: Metrics | None = None,
    ) -> None:
        self._system = system
        self._metrics = metrics if metrics is not None else Metrics()
        ids = range(system.n_sets) if restrict_to is None else list(restrict_to)
        self._tracked: list[SetId] = [
            set_id for set_id in ids if system[set_id].benefit
        ]
        # Static structures, shared across reset() rounds.
        self._element_to_sets: dict[ElementId, tuple[SetId, ...]] = {}
        owners: dict[ElementId, list[SetId]] = {}
        for set_id in self._tracked:
            for element in system[set_id].benefit:
                owners.setdefault(element, []).append(set_id)
        self._element_to_sets = {
            element: tuple(ids) for element, ids in owners.items()
        }
        # Mutable per-round state.
        self._mben_count: dict[SetId, int] = {}
        self._covered: set[ElementId] = set()
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Restore the empty-solution state (new CMC budget round).

        Counts every live set as considered again, matching the paper's
        note that CMC's "patterns considered" sums over budget rounds.
        """
        self._mben_count = {
            set_id: self._system[set_id].size for set_id in self._tracked
        }
        self._covered = set()
        self._metrics.sets_considered += len(self._tracked)

    # ------------------------------------------------------------------
    @property
    def metrics(self) -> Metrics:
        """The metrics object this tracker accounts work into."""
        return self._metrics

    @property
    def covered(self) -> frozenset[ElementId]:
        """Elements covered by all selections so far this round."""
        return frozenset(self._covered)

    @property
    def covered_count(self) -> int:
        """``|covered|`` without copying."""
        return len(self._covered)

    @property
    def live_ids(self) -> list[SetId]:
        """Ids of sets with non-empty marginal benefit, ascending."""
        return sorted(self._mben_count)

    def live_items(self) -> list[tuple[SetId, int]]:
        """``(set_id, |MBen|)`` pairs for all live sets, unordered."""
        return list(self._mben_count.items())

    def __contains__(self, set_id: SetId) -> bool:
        return set_id in self._mben_count

    def __len__(self) -> int:
        return len(self._mben_count)

    def marginal_size(self, set_id: SetId) -> int:
        """``|MBen(s, S)|`` for a live set; 0 for an evicted one."""
        return self._mben_count.get(set_id, 0)

    def marginal_benefit(self, set_id: SetId) -> frozenset[ElementId]:
        """A snapshot of ``MBen(s, S)``, materialized on demand."""
        if set_id not in self._mben_count:
            return frozenset()
        return frozenset(
            self._system[set_id].benefit - self._covered
        )

    def marginal_gain(self, set_id: SetId) -> float:
        """``MGain(s, S) = |MBen(s, S)| / Cost(s)``."""
        size = self.marginal_size(set_id)
        cost = self._system[set_id].cost
        if cost == 0:
            return float("inf") if size else 0.0
        return size / cost

    def drop(self, set_id: SetId) -> None:
        """Remove a set from consideration without selecting it."""
        self._mben_count.pop(set_id, None)

    def select(self, set_id: SetId) -> int:
        """Mark a set as chosen; returns the number of newly covered elements.

        Decrements the marginal count of every intersecting candidate and
        evicts candidates whose marginal benefit becomes empty.
        """
        self._mben_count.pop(set_id, None)
        self._metrics.selections += 1
        newly = [
            element
            for element in self._system[set_id].benefit
            if element not in self._covered
        ]
        counts = self._mben_count
        updates = 0
        for element in newly:
            self._covered.add(element)
            for other in self._element_to_sets.get(element, ()):
                remaining = counts.get(other)
                if remaining is None:
                    continue
                updates += 1
                if remaining == 1:
                    del counts[other]
                else:
                    counts[other] = remaining - 1
        self._metrics.marginal_updates += updates
        if obs_trace.enabled():
            obs_trace.event(
                "tracker_update",
                backend="set",
                strategy="inverted",
                set_id=set_id,
                newly_covered=len(newly),
                updates=updates,
                live=len(counts),
            )
        return len(newly)


class BitsetMarginalTracker:
    """Bitset-backed drop-in for :class:`MarginalTracker`.

    Same API, same selections, same metrics counters; the representation
    is the packed kernel of :mod:`repro.core.bitset`. Selecting a set
    sweeps the live candidates with one AND + popcount each (word-wide C
    loops) instead of per-element dict updates, and construction reuses
    the per-system mask table, so CMC budget rounds restart for the cost
    of one popcount per candidate.
    """

    backend_name = "bitset"

    def __init__(
        self,
        system: SetSystem,
        restrict_to: Iterable[SetId] | None = None,
        metrics: Metrics | None = None,
    ) -> None:
        self._system = system
        self._metrics = metrics if metrics is not None else Metrics()
        table = mask_table(system)
        self._universe = table.universe
        self._masks = table.masks
        ids = range(system.n_sets) if restrict_to is None else list(restrict_to)
        self._tracked: list[SetId] = [
            set_id for set_id in ids if self._masks[set_id]
        ]
        self._sizes = table.sizes
        self._owners = owners_index(system)
        self._table = table
        # Select-strategy constants: one owners-index update costs about
        # one dict op; one sweep step is an AND + popcount whose word
        # loop runs in C, so it only costs a few dict-op equivalents
        # even for wide universes. Both strategies apply identical
        # count updates.
        n = max(1, system.n_elements)
        self._avg_owners = sum(self._sizes) / n
        self._sweep_step = 1.0 + ((n + 63) >> 6) / 64.0
        # Mutable per-round state.
        self._mben_count: dict[SetId, int] = {}
        self._covered_mask = 0
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Restore the empty-solution state (new CMC budget round)."""
        sizes = self._sizes
        self._mben_count = {
            set_id: sizes[set_id] for set_id in self._tracked
        }
        self._covered_mask = 0
        self._metrics.sets_considered += len(self._tracked)

    # ------------------------------------------------------------------
    @property
    def metrics(self) -> Metrics:
        """The metrics object this tracker accounts work into."""
        return self._metrics

    @property
    def covered(self) -> frozenset[ElementId]:
        """Elements covered by all selections so far this round."""
        return self._universe.unpack(self._covered_mask)

    @property
    def covered_mask(self) -> int:
        """Packed form of :attr:`covered` (no materialization)."""
        return self._covered_mask

    @property
    def covered_count(self) -> int:
        """``|covered|`` without copying."""
        return self._covered_mask.bit_count()

    @property
    def live_ids(self) -> list[SetId]:
        """Ids of sets with non-empty marginal benefit, ascending."""
        return sorted(self._mben_count)

    def live_items(self) -> list[tuple[SetId, int]]:
        """``(set_id, |MBen|)`` pairs for all live sets, unordered."""
        return list(self._mben_count.items())

    def __contains__(self, set_id: SetId) -> bool:
        return set_id in self._mben_count

    def __len__(self) -> int:
        return len(self._mben_count)

    def marginal_size(self, set_id: SetId) -> int:
        """``|MBen(s, S)|`` for a live set; 0 for an evicted one."""
        return self._mben_count.get(set_id, 0)

    def marginal_benefit(self, set_id: SetId) -> frozenset[ElementId]:
        """A snapshot of ``MBen(s, S)``, materialized on demand."""
        if set_id not in self._mben_count:
            return frozenset()
        return frozenset(
            iter_bits(self._masks[set_id] & ~self._covered_mask)
        )

    def marginal_gain(self, set_id: SetId) -> float:
        """``MGain(s, S) = |MBen(s, S)| / Cost(s)``."""
        size = self.marginal_size(set_id)
        cost = self._system[set_id].cost
        if cost == 0:
            return float("inf") if size else 0.0
        return size / cost

    def drop(self, set_id: SetId) -> None:
        """Remove a set from consideration without selecting it."""
        self._mben_count.pop(set_id, None)

    def select(self, set_id: SetId) -> int:
        """Mark a set as chosen; returns the number of newly covered elements.

        Three update strategies, chosen per call by estimated cost, all
        applying the exact decrements of the inverted-index tracker (a
        live candidate loses ``|newly & Ben(candidate)|``), so
        ``marginal_updates`` stays identical across backends:

        * **exhaustion** — when the covered mask swallows the union of
          every benefit set, each live candidate loses exactly its
          remaining count, so the counts just sum and clear;
        * **owners walk** — per newly covered element, decrement the
          sets that own it (cheap when few elements flip);
        * **mask sweep** — per live candidate, one AND + popcount
          against the newly-covered mask (cheap when the flip is wide
          and candidates are few).
        """
        counts = self._mben_count
        counts.pop(set_id, None)
        self._metrics.selections += 1
        newly_mask = self._masks[set_id] & ~self._covered_mask
        newly = newly_mask.bit_count()
        if not newly:
            return 0
        self._covered_mask |= newly_mask
        updates = 0
        if self._table.full_union() & ~self._covered_mask == 0:
            strategy = "exhaustion"
            updates = sum(counts.values())
            counts.clear()
        elif newly * self._avg_owners <= len(counts) * self._sweep_step:
            strategy = "owners_walk"
            owners = self._owners
            for element in iter_bits(newly_mask):
                for other in owners[element]:
                    remaining = counts.get(other)
                    if remaining is None:
                        continue
                    updates += 1
                    if remaining == 1:
                        del counts[other]
                    else:
                        counts[other] = remaining - 1
        else:
            strategy = "mask_sweep"
            masks = self._masks
            evicted: list[SetId] = []
            for other, remaining in counts.items():
                overlap = (masks[other] & newly_mask).bit_count()
                if not overlap:
                    continue
                updates += overlap
                if overlap == remaining:
                    evicted.append(other)
                else:
                    counts[other] = remaining - overlap
            for other in evicted:
                del counts[other]
        self._metrics.marginal_updates += updates
        if obs_trace.enabled():
            obs_trace.event(
                "tracker_update",
                backend="bitset",
                strategy=strategy,
                set_id=set_id,
                newly_covered=newly,
                updates=updates,
                live=len(counts),
            )
        return newly


def _available_memory_bytes() -> int | None:
    """``MemAvailable`` from /proc/meminfo; None when unknowable."""
    try:
        with open("/proc/meminfo") as handle:
            for line in handle:
                if line.startswith("MemAvailable:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):  # pragma: no cover
        pass
    return None


def _packed_layout_bytes(system: SetSystem) -> int:
    """Estimated packed-layout footprint: min(dense, CSR) in bytes.

    Dense needs ``n_sets * ceil(n/64) * 8`` bytes; the CSR form needs
    roughly 24 bytes per (set, element) pair (word + col + owner entry),
    so density — not just cell count — decides affordability.
    """
    n_words = (system.n_elements + 63) >> 6
    dense = system.n_sets * n_words * 8
    pairs = sum(ws.size for ws in system.sets)
    return min(dense, pairs * 24)


def resolve_backend(
    system: SetSystem, backend: TrackerBackend | None = None
) -> str:
    """Resolve ``backend`` to ``"set"``, ``"bitset"``, or ``"packed"``.

    Precedence: the explicit ``backend`` argument wins, then the
    ``REPRO_SETCOVER_BACKEND`` environment variable, then ``"auto"``.
    An explicit (argument or env) ``"packed"`` without a capable numpy
    raises :class:`~repro.errors.ValidationError` — a requested backend
    never silently degrades.

    Auto picks by instance shape, density, and available memory:

    * below :data:`AUTO_BITSET_MIN_CELLS` element-set cells the plain
      inverted index wins on constants — ``"set"``;
    * from :data:`AUTO_PACKED_MIN_CELLS` cells, if numpy >= 2.0 is
      importable and the estimated columnar footprint (the cheaper of
      dense and CSR forms, so sparse instances qualify even when the
      dense matrix would not) fits within
      :data:`AUTO_PACKED_MEM_FRACTION` of ``MemAvailable`` —
      ``"packed"``;
    * otherwise ``"bitset"``.
    """
    choice = backend or os.environ.get(BACKEND_ENV_VAR) or "auto"
    if choice not in KNOWN_BACKENDS:
        raise ValidationError(
            f"unknown tracker backend {choice!r}; "
            f"expected one of {', '.join(repr(b) for b in KNOWN_BACKENDS)}"
        )
    if choice == "packed":
        from repro.core.packed import HAVE_NUMPY

        if not HAVE_NUMPY:
            raise ValidationError(
                "tracker backend 'packed' requires numpy >= 2.0 "
                "(np.bitwise_count); use 'bitset' or 'auto' instead"
            )
        return choice
    if choice == "auto":
        cells = system.n_elements * system.n_sets
        if cells < AUTO_BITSET_MIN_CELLS:
            return "set"
        if cells >= AUTO_PACKED_MIN_CELLS:
            from repro.core.packed import HAVE_NUMPY

            if HAVE_NUMPY:
                budget = _available_memory_bytes()
                if budget is None or (
                    _packed_layout_bytes(system)
                    <= AUTO_PACKED_MEM_FRACTION * budget
                ):
                    return "packed"
        return "bitset"
    return choice


def make_tracker(
    system: SetSystem,
    restrict_to: Iterable[SetId] | None = None,
    metrics: Metrics | None = None,
    backend: TrackerBackend | None = None,
):
    """Build the marginal tracker for a system, choosing the backend.

    See :func:`resolve_backend` for the selection rules. All backends
    yield identical selections and metrics; only speed differs.
    """
    resolved = resolve_backend(system, backend)
    if resolved == "packed":
        from repro.core.packed import PackedMarginalTracker

        return PackedMarginalTracker(
            system, restrict_to=restrict_to, metrics=metrics
        )
    if resolved == "bitset":
        return BitsetMarginalTracker(
            system, restrict_to=restrict_to, metrics=metrics
        )
    return MarginalTracker(system, restrict_to=restrict_to, metrics=metrics)
