"""Randomized LP rounding — the §III strawman, made concrete.

The paper (Related Work): "A natural technique ... is to model it via an
integer linear program, consider its linear relaxation and then round the
fractional solution to a nearby integer optimum. However, to obtain a
guaranteed performance ... may violate the cardinality constraint by more
than a (1 + eps) factor unless k is large."

This module implements that technique so the claim is observable:

1. solve the LP relaxation (:mod:`repro.core.lp_bound`);
2. run ``trials`` independent randomized roundings — include set ``s``
   with probability ``min(1, alpha * x_s)`` where ``alpha`` scales with
   the coverage shortfall;
3. greedily repair any rounding that misses the coverage target (by
   marginal gain, like weighted set cover);
4. return the cheapest repaired rounding.

The result honors the coverage constraint but **not** the size constraint
— ``CoverResult.n_sets`` can exceed ``k``, and
``params["size_violations"]`` records how often that happened across
trials. The ablation benchmark compares this against CWSC/CMC.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.bitset import mask_table
from repro.core.fallbacks import greedy_partial
from repro.core.greedy_common import canonical_keys, gain_key
from repro.core.lp_bound import solve_lp_relaxation
from repro.core.marginal import make_tracker
from repro.core.result import CoverResult, Metrics, make_result
from repro.core.setsystem import SetSystem
from repro.errors import DeadlineExceeded, InfeasibleError, ValidationError
from repro.obs import trace as obs_trace
from repro.resilience.deadline import Deadline

_EPS = 1e-9


def lp_rounding(
    system: SetSystem,
    k: int,
    s_hat: float,
    trials: int = 10,
    alpha: float = 2.0,
    seed: int = 0,
    deadline: Deadline | None = None,
) -> CoverResult:
    """Round the LP relaxation into an integral cover.

    Parameters
    ----------
    system:
        The weighted set system.
    k:
        Size constraint of the LP (the rounding may exceed it; that is
        the point of the experiment).
    s_hat:
        Required coverage fraction; the returned solution always reaches
        it (greedy repair guarantees feasibility whenever the union of
        all sets does).
    trials:
        Number of independent roundings; the cheapest repaired one wins.
    alpha:
        Inclusion-probability multiplier on the fractional values.
    seed:
        RNG seed; runs are deterministic given identical inputs.
    deadline:
        Optional cooperative deadline checked before the LP solve,
        between trials, and inside the repair loop. On expiry the best
        repaired rounding so far (or a greedy best-effort partial) rides
        along on the :class:`~repro.errors.DeadlineExceeded`.
    """
    if trials < 1:
        raise ValidationError(f"trials must be >= 1, got {trials}")
    if alpha <= 0:
        raise ValidationError(f"alpha must be > 0, got {alpha}")
    traced = obs_trace.enabled()
    with (
        obs_trace.span(
            "solve", algorithm="lp_rounding", k=k, s_hat=s_hat, trials=trials
        )
        if traced
        else obs_trace.NULL_SPAN
    ) as solve_span:
        result = _lp_rounding_body(
            system, k, s_hat, trials, alpha, seed, deadline, traced
        )
        if solve_span.enabled:
            solve_span.set(
                n_sets=result.n_sets,
                total_cost=result.total_cost,
                size_violations=result.params.get("size_violations"),
                feasible=result.feasible,
            )
        return result


def _lp_rounding_body(
    system: SetSystem,
    k: int,
    s_hat: float,
    trials: int,
    alpha: float,
    seed: int,
    deadline: Deadline | None,
    traced: bool,
) -> CoverResult:
    start = time.perf_counter()
    metrics = Metrics()
    required = system.required_coverage(s_hat)
    if deadline is not None:
        deadline.require(
            "lp_rounding (before LP solve)",
            partial=greedy_partial(system, k, s_hat),
        )
    relaxation = solve_lp_relaxation(system, k, s_hat)
    rng = np.random.default_rng(seed)

    fractional_ids = sorted(relaxation.set_fractions)
    probabilities = np.array(
        [
            min(1.0, alpha * relaxation.set_fractions[set_id])
            for set_id in fractional_ids
        ]
    )

    def _best_so_far() -> CoverResult:
        if best is not None:
            cost, chosen = best
            return make_result(
                algorithm="lp_rounding",
                chosen=chosen,
                labels=[system[set_id].label for set_id in chosen],
                total_cost=cost,
                covered=system.coverage_of(chosen),
                n_elements=system.n_elements,
                feasible=True,
                params={"k": k, "s_hat": s_hat, "seed": seed},
                metrics=metrics,
            )
        return greedy_partial(system, k, s_hat)

    best: tuple[float, list[int]] | None = None
    size_violations = 0
    for trial in range(trials):
        if deadline is not None and deadline.expired():
            raise DeadlineExceeded(
                "lp_rounding: deadline expired between trials",
                partial=_best_so_far(),
            )
        draws = rng.random(len(fractional_ids)) < probabilities
        chosen = [
            set_id
            for set_id, included in zip(fractional_ids, draws)
            if included
        ]
        try:
            chosen = _repair(system, chosen, required, metrics, deadline)
        except _RepairDeadline:
            raise DeadlineExceeded(
                "lp_rounding: deadline expired during greedy repair",
                partial=_best_so_far(),
            ) from None
        if traced:
            obs_trace.event(
                "lp_trial",
                trial=trial,
                repaired=chosen is not None,
                n_sets=len(chosen) if chosen is not None else 0,
            )
        if chosen is None:
            continue
        if len(chosen) > k:
            size_violations += 1
        cost = system.cost_of(chosen)
        if best is None or cost < best[0]:
            best = (cost, chosen)

    metrics.runtime_seconds = time.perf_counter() - start
    if best is None:
        raise InfeasibleError(
            "lp_rounding: no trial could be repaired to the coverage "
            "target (the union of all sets is too small)",
            partial=greedy_partial(system, k, s_hat),
        )
    cost, chosen = best
    return make_result(
        algorithm="lp_rounding",
        chosen=chosen,
        labels=[system[set_id].label for set_id in chosen],
        total_cost=cost,
        covered=system.coverage_of(chosen),
        n_elements=system.n_elements,
        feasible=True,
        params={
            "k": k,
            "s_hat": s_hat,
            "trials": trials,
            "alpha": alpha,
            "seed": seed,
            "lp_value": relaxation.value,
            "size_violations": size_violations,
        },
        metrics=metrics,
    )


class _RepairDeadline(Exception):
    """Internal signal: deadline expired inside the repair loop."""


def _repair(
    system: SetSystem,
    chosen: list[int],
    required: int,
    metrics: Metrics,
    deadline: Deadline | None = None,
) -> list[int] | None:
    """Greedily extend a rounding until it reaches the coverage target.

    Returns ``None`` when even all sets together fall short. The repair
    drops nothing: removing redundant sets is a separate concern and the
    experiment reports the raw rounding behaviour.
    """
    # Bitmask union over the cached mask table: every trial re-checks
    # its rounding here, so the fast path must not pay per element.
    if mask_table(system).coverage_of(chosen) >= required:
        return list(chosen)

    tracker = make_tracker(system, metrics=metrics)
    canon_keys = canonical_keys(system)
    for set_id in chosen:
        tracker.select(set_id)
    repaired = list(chosen)
    sets = system.sets
    while tracker.covered_count < required:
        best_id = None
        best_key = None
        for set_id, size in tracker.live_items():
            if deadline is not None and deadline.poll():
                raise _RepairDeadline()
            ws = sets[set_id]
            cost = ws.cost
            gain = size / cost if cost else float("inf")
            if best_key is not None and gain < best_key[0]:
                # gain leads the lexicographic key; strictly smaller
                # cannot win, so skip building the full key.
                continue
            key = gain_key(
                gain,
                size,
                cost,
                ws.label,
                set_id,
                canon_key=canon_keys[set_id],
            )
            if best_key is None or key > best_key:
                best_id = set_id
                best_key = key
        if best_id is None:
            return None
        tracker.select(best_id)
        repaired.append(best_id)
    return repaired
