"""LP relaxation of size-constrained weighted set cover.

Section III of the paper mentions the natural LP approach to weighted set
cover. We use the relaxation two ways:

* :func:`lp_lower_bound` — any feasible integral solution costs at least
  the LP optimum, so benchmarks can report ``cost / lp_bound`` even on
  instances too large for :mod:`repro.core.exact`;
* :func:`solve_lp_relaxation` — the full fractional solution, which
  :mod:`repro.core.lp_rounding` rounds into an integral one (illustrating
  the paper's point that rounding tends to violate the cardinality
  constraint).

The LP, over set variables ``x_s`` and element variables ``y_e``::

    minimize    sum_s cost(s) * x_s
    subject to  sum_e y_e                >= ceil(s_hat * n)
                y_e - sum_{s : e in s} x_s <= 0      for every element e
                sum_s x_s                 <= k
                0 <= x_s, y_e <= 1

Solved with ``scipy.optimize.linprog`` (HiGHS) on a sparse constraint
matrix. Sets with infinite cost are excluded (they can never be part of a
finite optimum).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.core.setsystem import SetSystem
from repro.errors import InfeasibleError, TransientSolverError, ValidationError
from repro.obs import trace as obs_trace
from repro.resilience import faults


@dataclass(frozen=True)
class LPRelaxation:
    """A solved LP relaxation.

    Attributes
    ----------
    value:
        The LP optimum — a lower bound on the optimal integral cost.
    set_fractions:
        ``set_id -> x_s`` for every usable set (absent ids are 0).
    """

    value: float
    set_fractions: dict[int, float]


def solve_lp_relaxation(
    system: SetSystem, k: int, s_hat: float
) -> LPRelaxation:
    """Solve the LP relaxation; see the module docstring for the model.

    Raises
    ------
    InfeasibleError
        If even the fractional problem is infeasible (the union of all
        finite-cost sets cannot reach the required coverage with ``k``
        fractional picks).
    TransientSolverError
        If the backend reports a numerical (status 4) failure rather than
        structural infeasibility — retrying, possibly after perturbing
        nothing at all, can succeed. Also raised by the fault-injection
        layer when chaos testing is active.
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    with (
        obs_trace.span(
            "lp_relaxation", k=k, s_hat=s_hat, n_sets=system.n_sets
        )
        if obs_trace.enabled()
        else obs_trace.NULL_SPAN
    ) as sp:
        relaxation = _solve_lp_relaxation(system, k, s_hat)
        if sp.enabled:
            sp.set(
                lp_value=relaxation.value,
                fractional_sets=len(relaxation.set_fractions),
            )
        return relaxation


def _solve_lp_relaxation(
    system: SetSystem, k: int, s_hat: float
) -> LPRelaxation:
    injector = faults.active()
    if injector is not None:
        injector.lp_attempt()
    required = system.required_coverage(s_hat)
    if required == 0:
        return LPRelaxation(value=0.0, set_fractions={})

    usable = [ws for ws in system.sets if ws.benefit and math.isfinite(ws.cost)]
    m = len(usable)
    n = system.n_elements
    if m == 0:
        raise InfeasibleError("lp relaxation: no usable sets")

    # Variable layout: z = [x_0..x_{m-1}, y_0..y_{n-1}].
    costs = np.zeros(m + n)
    costs[:m] = [ws.cost for ws in usable]

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    # Row 0: -sum_e y_e <= -required.
    for e in range(n):
        rows.append(0)
        cols.append(m + e)
        vals.append(-1.0)
    # Rows 1..n: y_e - sum_{s ni e} x_s <= 0.
    for e in range(n):
        rows.append(1 + e)
        cols.append(m + e)
        vals.append(1.0)
    for j, ws in enumerate(usable):
        for e in ws.benefit:
            rows.append(1 + e)
            cols.append(j)
            vals.append(-1.0)
    # Row n+1: sum_s x_s <= k.
    for j in range(m):
        rows.append(n + 1)
        cols.append(j)
        vals.append(1.0)

    a_ub = sparse.coo_matrix(
        (vals, (rows, cols)), shape=(n + 2, m + n)
    ).tocsr()
    b_ub = np.zeros(n + 2)
    b_ub[0] = -float(required)
    b_ub[n + 1] = float(k)

    outcome = linprog(
        costs, A_ub=a_ub, b_ub=b_ub, bounds=(0.0, 1.0), method="highs"
    )
    if not outcome.success:
        # HiGHS status 4 is "numerical difficulties" — a retryable
        # backend failure, unlike statuses 2/3 (infeasible/unbounded)
        # which are properties of the instance.
        if getattr(outcome, "status", None) == 4:
            raise TransientSolverError(
                f"lp relaxation: backend numerical failure "
                f"({outcome.message})"
            )
        raise InfeasibleError(
            f"lp relaxation: LP infeasible or failed ({outcome.message})"
        )
    fractions = {
        ws.set_id: float(outcome.x[j])
        for j, ws in enumerate(usable)
        if outcome.x[j] > 1e-9
    }
    return LPRelaxation(value=float(outcome.fun), set_fractions=fractions)


def lp_lower_bound(system: SetSystem, k: int, s_hat: float) -> float:
    """Return the LP-relaxation optimum — a lower bound on OPT's cost."""
    return solve_lp_relaxation(system, k, s_hat).value
