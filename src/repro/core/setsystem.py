"""The weighted set system that all core algorithms operate on.

A :class:`SetSystem` holds ``n`` elements (dense integers ``0 .. n-1``) and
``m`` candidate sets, each with a frozen benefit set and a non-negative
cost. This mirrors the paper's problem statement (Definition 1): the input
is a collection of elements ``T`` and a collection of weighted sets over
``T``. The paper additionally assumes a set that covers all of ``T`` exists
(for patterned inputs this is the all-wildcards pattern); we expose
:attr:`SetSystem.has_full_cover` so algorithms that rely on the assumption
can check it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

from repro._typing import Cost, ElementId, SetId
from repro.core.bitset import mask_table
from repro.errors import ValidationError


@dataclass(frozen=True)
class WeightedSet:
    """One candidate set: an immutable benefit set plus a cost.

    Parameters
    ----------
    set_id:
        Dense index of the set within its :class:`SetSystem`.
    benefit:
        The elements this set covers — ``Ben(s)`` in the paper.
    cost:
        Non-negative weight — ``Cost(s)``. ``math.inf`` is allowed and
        means the set is never worth choosing.
    label:
        Optional human-readable identity (e.g. the pattern the set was
        derived from). Not interpreted by the algorithms.
    """

    set_id: SetId
    benefit: frozenset[ElementId]
    cost: Cost
    label: Hashable = None

    def __post_init__(self) -> None:
        if self.cost < 0 or math.isnan(self.cost):
            raise ValidationError(
                f"set {self.set_id!r} has invalid cost {self.cost!r}; "
                "costs must be non-negative"
            )

    @property
    def size(self) -> int:
        """Number of elements covered — ``|Ben(s)|``."""
        return len(self.benefit)

    @property
    def gain(self) -> float:
        """``Gain(s) = |Ben(s)| / Cost(s)``; infinite for zero-cost sets."""
        if self.cost == 0:
            return math.inf if self.benefit else 0.0
        return len(self.benefit) / self.cost


class SetSystem:
    """An immutable collection of weighted sets over ``n`` elements.

    The constructor validates every set against the universe. Iteration
    yields :class:`WeightedSet` objects in id order, which doubles as the
    deterministic tie-breaking order used by all greedy algorithms.
    """

    def __init__(
        self,
        n_elements: int,
        sets: Sequence[WeightedSet],
        strict: bool = False,
    ) -> None:
        if n_elements < 0:
            raise ValidationError(f"n_elements must be >= 0, got {n_elements}")
        self._n = n_elements
        self._sets = tuple(sets)
        # Lazy caches over the immutable sets (see cheapest_costs).
        self._sorted_costs: tuple[Cost, ...] | None = None
        self._validate()
        if strict:
            self.validate_strict()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_iterables(
        cls,
        n_elements: int,
        benefits: Sequence[Iterable[ElementId]],
        costs: Sequence[Cost],
        labels: Sequence[Hashable] | None = None,
        strict: bool = False,
    ) -> "SetSystem":
        """Build a system from parallel sequences of benefits and costs."""
        if len(benefits) != len(costs):
            raise ValidationError(
                f"got {len(benefits)} benefit sets but {len(costs)} costs"
            )
        if labels is not None and len(labels) != len(benefits):
            raise ValidationError(
                f"got {len(benefits)} benefit sets but {len(labels)} labels"
            )
        sets = [
            WeightedSet(
                set_id=i,
                benefit=frozenset(ben),
                cost=float(cost),
                label=labels[i] if labels is not None else None,
            )
            for i, (ben, cost) in enumerate(zip(benefits, costs))
        ]
        return cls(n_elements, sets, strict=strict)

    @classmethod
    def from_mapping(
        cls,
        n_elements: int,
        sets: Mapping[Hashable, tuple[Iterable[ElementId], Cost]],
    ) -> "SetSystem":
        """Build a system from ``{label: (benefit, cost)}``.

        Labels are sorted by ``repr`` to fix the set-id order, making
        construction deterministic regardless of mapping order.
        """
        ordered = sorted(sets.items(), key=lambda item: repr(item[0]))
        benefits = [ben for _, (ben, _) in ordered]
        costs = [cost for _, (_, cost) in ordered]
        labels = [label for label, _ in ordered]
        return cls.from_iterables(n_elements, benefits, costs, labels=labels)

    def validate_strict(self) -> "SetSystem":
        """Reject inputs that are legal in the permissive model but almost
        always bugs in a production pipeline.

        The base constructor already rejects NaN and negative costs (see
        :class:`WeightedSet`); strict mode additionally rejects:

        * an **empty element universe** — a coverage target over nothing
          is meaningless and silently makes every solution "feasible";
        * a system with **no candidate sets**;
        * **non-finite costs** — ``inf`` is a supported sentinel for
          "never pick this set" in the research workflows, but in a
          serving pipeline it is almost always an upstream aggregation
          bug about to propagate garbage into the greedy loops.

        Returns ``self`` so calls chain; raises
        :class:`~repro.errors.ValidationError` otherwise. Opt in via
        ``SetSystem(..., strict=True)``, ``from_iterables(...,
        strict=True)``, or an explicit call (used by
        :func:`repro.resilience.resilient_solve`'s ``strict`` flag).
        """
        if self._n == 0:
            raise ValidationError(
                "strict validation: empty element universe (n_elements=0); "
                "a coverage target over nothing is meaningless"
            )
        if not self._sets:
            raise ValidationError(
                "strict validation: the system has no candidate sets"
            )
        for ws in self._sets:
            if not math.isfinite(ws.cost):
                raise ValidationError(
                    f"strict validation: set {ws.set_id} "
                    f"(label={ws.label!r}) has non-finite cost {ws.cost!r}"
                )
        return self

    def _validate(self) -> None:
        for expected_id, ws in enumerate(self._sets):
            if ws.set_id != expected_id:
                raise ValidationError(
                    f"set ids must be dense and ordered; expected {expected_id}, "
                    f"got {ws.set_id}"
                )
            for element in ws.benefit:
                if not (0 <= element < self._n):
                    raise ValidationError(
                        f"set {ws.set_id} covers element {element!r} outside "
                        f"universe [0, {self._n})"
                    )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_elements(self) -> int:
        """Size of the universe — ``|T|`` in the paper."""
        return self._n

    @property
    def n_sets(self) -> int:
        """Number of candidate sets."""
        return len(self._sets)

    @property
    def sets(self) -> tuple[WeightedSet, ...]:
        """All candidate sets in id order."""
        return self._sets

    @property
    def has_full_cover(self) -> bool:
        """Whether some single set covers the entire universe."""
        return any(ws.size == self._n for ws in self._sets)

    @property
    def total_cost(self) -> Cost:
        """Sum of all finite set costs (used as the CMC budget ceiling)."""
        return sum(ws.cost for ws in self._sets if math.isfinite(ws.cost))

    def __len__(self) -> int:
        return len(self._sets)

    def __iter__(self) -> Iterator[WeightedSet]:
        return iter(self._sets)

    def __getitem__(self, set_id: SetId) -> WeightedSet:
        return self._sets[set_id]

    def __repr__(self) -> str:
        return (
            f"SetSystem(n_elements={self._n}, n_sets={len(self._sets)}, "
            f"has_full_cover={self.has_full_cover})"
        )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def coverage_of(self, set_ids: Iterable[SetId]) -> int:
        """Number of distinct elements covered by a collection of sets.

        Computed as a bitmask union over the system's cached mask table
        (:func:`repro.core.bitset.mask_table`), so repeated calls — the
        exact solver probes thousands of combinations, ``verify_result``
        re-checks every claim — cost one OR per set instead of one hash
        insert per element. When the columnar packed layout is already
        cached (a packed-backend solve built it), that is used instead,
        so packed-only runs never pay for the big-int mask table.
        """
        from repro.core.packed import cached_layout

        layout = cached_layout(self)
        if layout is not None:
            return layout.coverage_of(set_ids)
        return mask_table(self).coverage_of(set_ids)

    def cost_of(self, set_ids: Iterable[SetId]) -> Cost:
        """Total cost of a collection of sets."""
        return sum(self._sets[set_id].cost for set_id in set_ids)

    def cheapest_costs(self, k: int) -> list[Cost]:
        """Costs of the ``k`` cheapest sets (fewer if ``m < k``).

        This seeds the CMC budget schedule (Fig. 1 line 1). The sorted
        cost list is computed once per system and sliced per call, so
        grids that run many CMC configurations against one system don't
        re-sort ``m`` costs every run.
        """
        if k < 0:
            raise ValidationError(f"k must be >= 0, got {k}")
        if self._sorted_costs is None:
            self._sorted_costs = tuple(
                sorted(ws.cost for ws in self._sets)
            )
        return list(self._sorted_costs[:k])

    def required_coverage(self, s_hat: float) -> int:
        """Smallest integer coverage satisfying ``>= s_hat * n``."""
        if not (0.0 <= s_hat <= 1.0):
            raise ValidationError(
                f"coverage fraction s_hat must be in [0, 1], got {s_hat}"
            )
        # Guard against float fuzz: 0.3 * 10 must require 3, not 4.
        return math.ceil(s_hat * self._n - 1e-9)
