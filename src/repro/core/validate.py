"""Independent verification of solver outputs.

Algorithms report their own cost/coverage; :func:`verify_result` recomputes
everything from the set system and checks the claimed constraints, so tests
(and distrustful users) never have to take a result's word for it. This is
also the "easy to see that our problem is in NP" checker from the proof of
Theorem 1: given a collection of sets, verify benefit and cost.

Coverage is recomputed through the system's packed-bitset mask table
(:meth:`SetSystem.coverage_of` delegates to
:func:`repro.core.bitset.mask_table`), so verifying is cheap enough that
the resilient harness re-checks every worker claim without a measurable
tax.
"""

from __future__ import annotations

from repro.core.result import CoverResult
from repro.core.setsystem import SetSystem


def verify_result(
    system: SetSystem,
    result: CoverResult,
    k: int | None = None,
    s_hat: float | None = None,
) -> list[str]:
    """Return a list of violations (empty when the result checks out).

    Parameters
    ----------
    system:
        The set system the result claims to solve.
    k:
        If given, the size bound the solution must respect. CMC results
        should pass the *relaxed* bound (e.g.
        :func:`repro.core.guarantees.max_sets_standard`), which is the
        caller's choice.
    s_hat:
        If given, the coverage fraction a *feasible* result must reach.
        For CMC pass the discounted fraction
        ``COVERAGE_DISCOUNT * s_hat``.
    """
    problems: list[str] = []

    if len(set(result.set_ids)) != len(result.set_ids):
        problems.append("duplicate sets in the solution")

    for set_id in result.set_ids:
        if not (0 <= set_id < system.n_sets):
            problems.append(f"set id {set_id} outside the system")
            return problems

    true_cost = system.cost_of(result.set_ids)
    if abs(true_cost - result.total_cost) > 1e-6 * max(1.0, true_cost):
        problems.append(
            f"claimed cost {result.total_cost:g} != recomputed "
            f"{true_cost:g}"
        )

    true_covered = system.coverage_of(result.set_ids)
    if true_covered != result.covered:
        problems.append(
            f"claimed coverage {result.covered} != recomputed "
            f"{true_covered}"
        )

    if result.n_elements != system.n_elements:
        problems.append(
            f"claimed universe {result.n_elements} != system "
            f"{system.n_elements}"
        )

    if k is not None and result.n_sets > k:
        problems.append(f"{result.n_sets} sets exceed the bound k={k}")

    if s_hat is not None and result.feasible:
        required = s_hat * system.n_elements - 1e-9
        if true_covered < required:
            problems.append(
                f"feasible result covers {true_covered} < required "
                f"{required:.2f}"
            )

    return problems
