"""CMC variants: the ``(1 + eps) k`` solution-size bound and the
generalized level base (Sections V-A2 and V-A3 of the paper).

Both reuse the CMC driver from :mod:`repro.core.cmc`; only the level scheme
changes:

* :func:`cmc_epsilon` merges the cheap levels so at most ``(1 + eps) k``
  sets are selected, at cost within ``O(((1 + b) / eps) log k)`` of optimal
  (Theorem 5).
* :func:`cmc_generalized` uses geometric level boundaries with base
  ``1 + l`` and selects at most ``k (1 + (1 + l)^2 / l)`` sets with cost
  ``O((1 + b)(1 + l) log_{1+l} k)`` of optimal; ``l = 1`` recovers the
  standard scheme.
"""

from __future__ import annotations

from repro.core.budget import generalized_levels, merged_levels
from repro.core.cmc import OnInfeasible, run_cmc_driver
from repro.core.marginal import TrackerBackend
from repro.core.result import CoverResult
from repro.core.setsystem import SetSystem
from repro.errors import ValidationError
from repro.resilience.deadline import Deadline


def cmc_epsilon(
    system: SetSystem,
    k: int,
    s_hat: float,
    b: float = 1.0,
    eps: float = 1.0,
    on_infeasible: OnInfeasible = "raise",
    deadline: Deadline | None = None,
    backend: TrackerBackend | None = None,
    tracker=None,
) -> CoverResult:
    """Run CMC with the merged levels of Section V-A3.

    Parameters
    ----------
    eps:
        Solution-size slack: at most ``(1 + eps) k`` sets are returned.
        Smaller values give smaller solutions but a worse cost factor
        (``O(((1 + b) / eps) log k)``). Must be positive.

    See :func:`repro.core.cmc.cmc` for the remaining parameters.
    """
    if eps <= 0:
        raise ValidationError(f"eps must be > 0, got {eps}")
    params = {"k": k, "s_hat": s_hat, "b": b, "eps": eps, "variant": "epsilon"}
    return run_cmc_driver(
        system,
        k,
        s_hat,
        b,
        scheme_factory=lambda budget, k_: merged_levels(budget, k_, eps),
        algorithm="cmc_epsilon",
        params=params,
        on_infeasible=on_infeasible,
        deadline=deadline,
        backend=backend,
        tracker=tracker,
    )


def cmc_generalized(
    system: SetSystem,
    k: int,
    s_hat: float,
    b: float = 1.0,
    l: float = 1.0,
    on_infeasible: OnInfeasible = "raise",
    deadline: Deadline | None = None,
    backend: TrackerBackend | None = None,
) -> CoverResult:
    """Run CMC with geometric level base ``1 + l`` (Section V-A2).

    Parameters
    ----------
    l:
        Level geometry parameter; levels hold costs in
        ``(B / (1+l)^i, B / (1+l)^(i-1)]`` with quota ``ceil((1+l)^i)``.
        ``l = 1`` matches the standard scheme's boundaries.

    See :func:`repro.core.cmc.cmc` for the remaining parameters.
    """
    if l <= 0:
        raise ValidationError(f"l must be > 0, got {l}")
    params = {"k": k, "s_hat": s_hat, "b": b, "l": l, "variant": "generalized"}
    return run_cmc_driver(
        system,
        k,
        s_hat,
        b,
        scheme_factory=lambda budget, k_: generalized_levels(budget, k_, 1.0 + l),
        algorithm="cmc_generalized",
        params=params,
        on_infeasible=on_infeasible,
        deadline=deadline,
        backend=backend,
    )
