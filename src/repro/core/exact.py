"""Exact solvers for size-constrained weighted set cover.

Section VI-D of the paper compares CMC and CWSC against an optimal solution
"obtained using exhaustive search" on small samples. This module provides:

* :func:`solve_exact` — a branch-and-bound search over sets ordered by
  ascending cost, with cost and coverage pruning. Practical for up to a few
  hundred candidate sets with small ``k``.
* :func:`brute_force` — plain enumeration of all subsets up to size ``k``,
  used in tests as an independent cross-check of the branch and bound.

Both minimize total cost subject to ``coverage >= ceil(s_hat * n)`` and
``|S| <= k``, exactly as Definition 1 requires.
"""

from __future__ import annotations

import itertools
import math
import time

from repro.core.fallbacks import greedy_partial
from repro.core.result import CoverResult, Metrics, make_result
from repro.core.setsystem import SetSystem
from repro.errors import DeadlineExceeded, InfeasibleError, ValidationError
from repro.obs import trace as obs_trace
from repro.resilience.deadline import Deadline


def brute_force(
    system: SetSystem,
    k: int,
    s_hat: float,
    deadline: Deadline | None = None,
) -> CoverResult:
    """Enumerate every subset of at most ``k`` sets; return the cheapest
    feasible one.

    Exponential in ``m`` — only for cross-checking on tiny instances.
    The optional ``deadline`` is polled between subsets; on expiry the
    cheapest feasible subset found so far (or a greedy best-effort
    partial) is attached to the :class:`DeadlineExceeded`.
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    required = system.required_coverage(s_hat)
    start = time.perf_counter()
    metrics = Metrics()
    ids = range(system.n_sets)
    best: tuple[float, tuple[int, ...]] | None = None
    for size in range(0, min(k, system.n_sets) + 1):
        for combo in itertools.combinations(ids, size):
            if deadline is not None and deadline.poll():
                partial = (
                    _result("brute_force", system, list(best[1]), k, s_hat, metrics)
                    if best is not None
                    else greedy_partial(system, k, s_hat)
                )
                raise DeadlineExceeded(
                    "brute_force: deadline expired mid-enumeration",
                    partial=partial,
                )
            metrics.sets_considered += 1
            cost = system.cost_of(combo)
            if best is not None and cost >= best[0]:
                continue
            if system.coverage_of(combo) >= required:
                best = (cost, combo)
    if best is None:
        raise InfeasibleError(
            f"brute_force: no subset of <= {k} sets covers {required} elements",
            partial=greedy_partial(system, k, s_hat),
        )
    metrics.runtime_seconds = time.perf_counter() - start
    cost, combo = best
    return _result("brute_force", system, list(combo), k, s_hat, metrics)


def solve_exact(
    system: SetSystem,
    k: int,
    s_hat: float,
    node_limit: int | None = None,
    deadline: Deadline | None = None,
) -> CoverResult:
    """Find an optimal solution by branch and bound.

    Sets are explored in ascending cost order. A branch is pruned when its
    cost already matches the incumbent, or when even the ``r`` largest
    remaining benefit sets cannot close the coverage gap (an optimistic,
    overlap-ignoring bound).

    Parameters
    ----------
    node_limit:
        Optional cap on search nodes; exceeded limits raise
        :class:`InfeasibleError` with the incumbent attached to
        ``partial`` so callers can distinguish "proved optimal" from
        "ran out of budget".
    deadline:
        Optional cooperative deadline, polled inside the search; expiry
        raises :class:`~repro.errors.DeadlineExceeded` with the incumbent
        (or a greedy best-effort partial) attached.
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    with (
        obs_trace.span("solve", algorithm="exact", k=k, s_hat=s_hat)
        if obs_trace.enabled()
        else obs_trace.NULL_SPAN
    ) as solve_span:
        result = _solve_exact_body(
            system, k, s_hat, node_limit, deadline
        )
        if solve_span.enabled:
            solve_span.set(
                nodes=result.metrics.sets_considered,
                n_sets=result.n_sets,
                total_cost=result.total_cost,
            )
        return result


def _solve_exact_body(
    system: SetSystem,
    k: int,
    s_hat: float,
    node_limit: int | None,
    deadline: Deadline | None,
) -> CoverResult:
    required = system.required_coverage(s_hat)
    start = time.perf_counter()
    metrics = Metrics()

    # Drop useless candidates: empty benefit or infinite cost.
    order = sorted(
        (
            ws
            for ws in system.sets
            if ws.benefit and math.isfinite(ws.cost)
        ),
        key=lambda ws: (ws.cost, -ws.size, ws.set_id),
    )
    sizes = [ws.size for ws in order]
    m = len(order)

    # suffix_top[i][r]: sum of the r largest benefit sizes among order[i:],
    # r <= k. Optimistic coverage bound for "r more picks from suffix i".
    suffix_top: list[list[int]] = [[0] * (k + 1) for _ in range(m + 1)]
    top: list[int] = []  # descending sizes, length <= k
    for i in range(m - 1, -1, -1):
        size = sizes[i]
        # insert into the running top-k (small k: linear insert is fine)
        inserted = False
        for j, existing in enumerate(top):
            if size > existing:
                top.insert(j, size)
                inserted = True
                break
        if not inserted:
            top.append(size)
        del top[k:]
        running = suffix_top[i]
        acc = 0
        for r in range(1, k + 1):
            acc += top[r - 1] if r - 1 < len(top) else 0
            running[r] = acc

    best_cost = math.inf
    best_choice: list[int] | None = None
    nodes = 0

    def search(index: int, chosen: list[int], covered: set, cost: float) -> None:
        nonlocal best_cost, best_choice, nodes
        nodes += 1
        if node_limit is not None and nodes > node_limit:
            raise _NodeLimit()
        if deadline is not None and deadline.poll():
            raise _DeadlineSignal()
        if len(covered) >= required:
            if cost < best_cost:
                best_cost = cost
                best_choice = list(chosen)
            return
        picks_left = k - len(chosen)
        if picks_left == 0 or index == m:
            return
        gap = required - len(covered)
        if suffix_top[index][min(picks_left, k)] < gap:
            return
        ws = order[index]
        # Branch 1: include order[index] (only if it helps and can win).
        new_cost = cost + ws.cost
        if new_cost < best_cost and not ws.benefit <= covered:
            chosen.append(ws.set_id)
            search(index + 1, chosen, covered | ws.benefit, new_cost)
            chosen.pop()
        # Branch 2: exclude it.
        search(index + 1, chosen, covered, cost)

    def _incumbent_or_greedy() -> CoverResult:
        """Best-so-far as a result; greedy best-effort when empty-handed."""
        if best_choice is not None:
            return _result("exact", system, best_choice, k, s_hat, metrics)
        return greedy_partial(system, k, s_hat)

    try:
        if required == 0:
            best_cost, best_choice = 0.0, []
        else:
            search(0, [], set(), 0.0)
    except _NodeLimit:
        metrics.runtime_seconds = time.perf_counter() - start
        raise InfeasibleError(
            f"solve_exact: node limit {node_limit} exceeded "
            f"({'incumbent attached' if best_choice is not None else 'greedy partial attached'})",
            partial=_incumbent_or_greedy(),
        ) from None
    except _DeadlineSignal:
        metrics.runtime_seconds = time.perf_counter() - start
        raise DeadlineExceeded(
            f"solve_exact: deadline expired after {nodes} nodes",
            partial=_incumbent_or_greedy(),
        ) from None

    metrics.sets_considered = nodes
    if best_choice is None:
        metrics.runtime_seconds = time.perf_counter() - start
        raise InfeasibleError(
            f"solve_exact: no subset of <= {k} sets covers {required} elements",
            partial=greedy_partial(system, k, s_hat),
        )
    metrics.runtime_seconds = time.perf_counter() - start
    return _result("exact", system, best_choice, k, s_hat, metrics)


class _NodeLimit(Exception):
    """Internal signal: branch-and-bound exceeded its node budget."""


class _DeadlineSignal(Exception):
    """Internal signal: the cooperative deadline expired mid-search."""


def _result(
    algorithm: str,
    system: SetSystem,
    chosen: list[int],
    k: int,
    s_hat: float,
    metrics: Metrics,
) -> CoverResult:
    return make_result(
        algorithm=algorithm,
        chosen=chosen,
        labels=[system[set_id].label for set_id in chosen],
        total_cost=system.cost_of(chosen),
        covered=system.coverage_of(chosen),
        n_elements=system.n_elements,
        feasible=True,
        params={"k": k, "s_hat": s_hat},
        metrics=metrics,
    )
